/**
 * @file
 * scverify: command-line front end for the stream-program static
 * verifier (src/analysis).
 *
 *     scverify prog.s another.s trace.bin program.scbc
 *
 * Each input is sniffed by content: files starting with the "SCTR"
 * magic are deserialized traces, files starting with "SCBC" are
 * compiled bytecode programs decoded back to event order — both
 * checked with the shared event-order lifetime checker; everything
 * else is assembled as stream-ISA text and run through the
 * branch-aware static pass. Exits 1 when any input draws an error
 * diagnostic (or a warning under --werror), 2 on usage, I/O or parse
 * failures, 0 when everything is clean.
 *
 * --compile-bytecode <trace.bin> <out.scbc> lowers a trace to the
 * bytecode form (after verifying it) — how the golden SCBC fixture
 * is (re)generated.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/summary.hh"
#include "analysis/trace_check.hh"
#include "analysis/verifier.hh"
#include "arch/config.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"
#include "trace/compile.hh"
#include "trace/trace.hh"

namespace {

using namespace sc;

struct Cli
{
    std::vector<std::string> files;
    bool werror = false;
    bool quiet = false;
    bool dumpCfg = false;
    bool json = false;
    bool summary = false;
    bool costBounds = false;
    unsigned maxLive = isa::numStreamRegs;
    /** Arch point the quantitative analyses run against (the JobSpec
     *  arch override surface; Table-2 defaults otherwise). */
    arch::SparseCoreConfig arch;

    bool wantSummary() const { return summary || costBounds; }
};

int
usage(std::ostream &os, int code)
{
    os << "usage: scverify [options] <file>...\n"
          "\n"
          "Statically verify stream-ISA assembly programs and check\n"
          "serialized SparseCore traces (SCTR binaries) and compiled\n"
          "bytecode programs (SCBC binaries), both sniffed by magic,\n"
          "against the stream dataflow contract.\n"
          "\n"
          "options:\n"
          "  --werror       exit nonzero on warnings too\n"
          "  --quiet        suppress per-file OK lines\n"
          "  --max-live N   live-stream capacity (default "
       << isa::numStreamRegs
       << ")\n"
          "  --summary      quantitative summary per input: peak\n"
          "                 live-stream pressure (+ profile in JSON)\n"
          "                 and, for traces/SCBC, cost bounds\n"
          "  --cost-bounds  print only the [lower, upper] simulated-\n"
          "                 cycle interval (traces/SCBC)\n"
          "  --json         one byte-stable JSON object per input on\n"
          "                 stdout (diagnostics + any summary)\n"
          "  --sus N        arch override: stream units\n"
          "  --window N     arch override: SU comparator window\n"
          "  --bandwidth N  arch override: aggregate stream bandwidth\n"
          "  --nested 0|1   arch override: nested intersection\n"
          "  --dump-cfg     print each program's basic-block CFG\n"
          "  --list-rules   print the rule table and exit\n"
          "  --compile-bytecode <trace.bin> <out.scbc>\n"
          "                 verify a trace, lower it to bytecode and\n"
          "                 write the SCBC image, then exit\n"
          "  --help         this text\n"
          "\n"
          "exit status: 0 clean, 1 diagnostics, 2 bad input\n";
    return code;
}

int
listRules()
{
    for (unsigned r = 0;
         r < static_cast<unsigned>(analysis::Rule::NumRules); ++r) {
        const auto rule = static_cast<analysis::Rule>(r);
        std::printf("%-24s %s\n", analysis::ruleId(rule),
                    analysis::ruleDescription(rule));
    }
    return 0;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
looksLikeTrace(const std::string &bytes)
{
    return bytes.size() >= 4 && bytes.compare(0, 4, "SCTR") == 0;
}

bool
looksLikeBytecode(const std::string &bytes)
{
    return bytes.size() >= 4 && bytes.compare(0, 4, "SCBC") == 0;
}

/** --compile-bytecode: verify trace.bin, lower, write out.scbc. */
int
compileBytecode(const Cli &cli, const std::string &trace_path,
                const std::string &out_path)
{
    try {
        const trace::Trace tr = trace::Trace::loadFile(trace_path);
        analysis::StreamLifetimeChecker::Options options;
        options.maxLiveStreams = cli.maxLive;
        const auto report = analysis::verifyTrace(tr, options);
        for (const auto &d : report.diagnostics)
            std::cout << trace_path << ": " << d.format() << "\n";
        if (report.hasErrors() ||
            (cli.werror && report.warningCount() != 0))
            return 1;
        const trace::BytecodeProgram bc = trace::compileTrace(tr);
        bc.saveFile(out_path);
        if (!cli.quiet)
            std::cout << out_path << ": " << bc.numInstructions()
                      << " instructions, " << bc.codeBytes()
                      << " code bytes (" << tr.numEvents()
                      << " events)\n";
        return 0;
    } catch (const SimError &e) {
        std::cerr << "scverify: " << e.what() << "\n";
        return 2;
    }
}

void
dumpCfg(const isa::Program &program)
{
    const analysis::Cfg cfg = analysis::buildCfg(program);
    for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
        const auto &b = cfg.blocks[i];
        std::printf("  block %zu: pc [%llu, %llu)", i,
                    static_cast<unsigned long long>(b.first),
                    static_cast<unsigned long long>(b.last));
        if (b.succs.empty()) {
            std::printf(" -> exit\n");
            continue;
        }
        std::printf(" ->");
        for (const auto s : b.succs)
            std::printf(" %u", s);
        std::printf("\n");
    }
}

/** One input's analyses: the lifetime report plus, when requested,
 *  the quantitative summary (pressure always; cost bounds only for
 *  the trace forms, which carry the event stream the cost model
 *  charges). */
struct FileResult
{
    analysis::VerifyReport report;
    std::optional<analysis::ProgramSummary> summary;
};

/** Verify one input; returns its analyses or nullopt on a read/parse
 *  failure (already reported to stderr). */
std::optional<FileResult>
checkFile(const Cli &cli, const std::string &path)
{
    std::string bytes;
    if (!readFile(path, bytes)) {
        std::cerr << "scverify: cannot read " << path << "\n";
        return std::nullopt;
    }

    try {
        FileResult result;
        if (looksLikeTrace(bytes)) {
            const trace::Trace tr = trace::Trace::deserialize(bytes);
            analysis::StreamLifetimeChecker::Options options;
            options.maxLiveStreams = cli.maxLive;
            result.report = analysis::verifyTrace(tr, options);
            if (cli.wantSummary())
                result.summary =
                    analysis::summarizeTrace(tr, cli.arch);
            return result;
        }
        if (looksLikeBytecode(bytes)) {
            const trace::BytecodeProgram bc =
                trace::BytecodeProgram::deserialize(bytes);
            analysis::StreamLifetimeChecker::Options options;
            options.maxLiveStreams = cli.maxLive;
            // Decode back to event order; both trace forms share one
            // checker, so coverage is identical.
            result.report = analysis::verifyBytecode(bc, options);
            if (cli.wantSummary())
                result.summary =
                    analysis::summarizeBytecode(bc, cli.arch);
            return result;
        }
        const isa::Program program = isa::assemble(bytes);
        if (cli.dumpCfg) {
            std::printf("%s: cfg\n", path.c_str());
            dumpCfg(program);
        }
        analysis::VerifyOptions options;
        options.maxLiveStreams = cli.maxLive;
        result.report = analysis::verify(program, options);
        if (cli.wantSummary())
            result.summary =
                analysis::summarizeProgram(program, options);
        return result;
    } catch (const SimError &e) {
        std::cerr << "scverify: " << path << ": " << e.what() << "\n";
        return std::nullopt;
    }
}

/** Human-readable summary lines (the JSON shape is the golden one;
 *  this is the terminal view of the same numbers). */
void
printSummary(const Cli &cli, const std::string &path,
             const analysis::ProgramSummary &summary)
{
    if (cli.summary)
        std::cout << path << ": pressure max " << summary.maxPressure
                  << " @ " << summary.maxPressurePc << " ("
                  << (summary.pressureExact ? "exact" : "upper bound")
                  << "), " << summary.defines << " defines / "
                  << summary.frees << " frees over " << summary.points
                  << " points\n";
    if (summary.cost.valid)
        std::cout << path << ": cost bounds [" << summary.cost.lower
                  << ", " << summary.cost.upper << "] cycles\n";
    else if (cli.costBounds)
        std::cout << path
                  << ": cost bounds unavailable (assembly input)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli;
    std::vector<std::string> compile_args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
        if (arg == "--list-rules")
            return listRules();
        if (arg == "--compile-bytecode") {
            if (i + 2 >= argc)
                return usage(std::cerr, 2);
            compile_args = {argv[i + 1], argv[i + 2]};
            i += 2;
        } else if (arg == "--werror") {
            cli.werror = true;
        } else if (arg == "--quiet" || arg == "-q") {
            cli.quiet = true;
        } else if (arg == "--dump-cfg") {
            cli.dumpCfg = true;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--summary") {
            cli.summary = true;
        } else if (arg == "--cost-bounds") {
            cli.costBounds = true;
        } else if (arg == "--max-live") {
            if (i + 1 >= argc)
                return usage(std::cerr, 2);
            cli.maxLive =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--sus") {
            if (i + 1 >= argc)
                return usage(std::cerr, 2);
            cli.arch.numSus =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--window") {
            if (i + 1 >= argc)
                return usage(std::cerr, 2);
            cli.arch.suWindow =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--bandwidth") {
            if (i + 1 >= argc)
                return usage(std::cerr, 2);
            cli.arch.aggregateBandwidth =
                static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--nested") {
            if (i + 1 >= argc)
                return usage(std::cerr, 2);
            cli.arch.nestedIntersection =
                std::stoul(argv[++i]) != 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "scverify: unknown option " << arg << "\n";
            return usage(std::cerr, 2);
        } else {
            cli.files.push_back(arg);
        }
    }
    if (!compile_args.empty()) {
        if (!cli.files.empty())
            return usage(std::cerr, 2);
        return compileBytecode(cli, compile_args[0],
                               compile_args[1]);
    }
    if (cli.files.empty())
        return usage(std::cerr, 2);

    bool bad_input = false;
    bool failed = false;
    for (const std::string &path : cli.files) {
        const auto result = checkFile(cli, path);
        if (!result) {
            bad_input = true;
            continue;
        }
        const analysis::VerifyReport &report = result->report;
        if (cli.json) {
            // One byte-stable object per input (diagnostics already
            // (pc, sid, rule)-sorted by the analyses) — what the
            // check.sh golden diff pins.
            JsonValue line = JsonValue::object();
            line.set("file", JsonValue::str(path));
            line.set("report", analysis::jsonValue(report));
            if (result->summary)
                line.set("summary",
                         analysis::jsonValue(*result->summary));
            std::cout << line.dump() << "\n";
        } else {
            for (const auto &d : report.diagnostics)
                std::cout << path << ": " << d.format() << "\n";
        }
        const bool fails =
            report.hasErrors() ||
            (cli.werror && report.warningCount() != 0);
        if (fails)
            failed = true;
        else if (!cli.quiet && !cli.json)
            std::cout << path << ": OK ("
                      << report.warningCount() << " warnings)\n";
        if (!cli.json && result->summary)
            printSummary(cli, path, *result->summary);
    }
    if (bad_input)
        return 2;
    return failed ? 1 : 0;
}
