#include "common/logging.hh"

#include <cstdio>

namespace sc {

namespace {
bool verboseOutput = true;
} // namespace

std::string
vstrprintf(const char *fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string out = vstrprintf(fmt, ap);
    va_end(ap);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw SimError("panic: " + msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    throw SimError("fatal: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (!verboseOutput)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!verboseOutput)
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    verboseOutput = verbose;
}

} // namespace sc
