#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace sc {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t n_buckets)
    : bucketWidth_(bucket_width), buckets_(n_buckets + 1, 0)
{
    if (bucket_width == 0)
        panic("Histogram bucket width must be positive");
}

void
Histogram::sample(std::uint64_t value, std::uint64_t weight)
{
    std::size_t idx = value / bucketWidth_;
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1; // overflow bucket
    buckets_[idx] += weight;
    samples_ += weight;
    sum_ += value * weight;
    max_ = std::max(max_, value);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = sum_ = max_ = 0;
}

double
Histogram::mean() const
{
    return samples_ ? static_cast<double>(sum_) / samples_ : 0.0;
}

std::uint64_t
Histogram::percentile(double q) const
{
    if (samples_ == 0)
        return 0;
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(samples_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return i * bucketWidth_;
    }
    return (buckets_.size() - 1) * bucketWidth_;
}

double
Histogram::cdfAt(std::uint64_t value) const
{
    if (samples_ == 0)
        return 0.0;
    std::size_t limit = std::min(value / bucketWidth_ + 1,
                                 static_cast<std::uint64_t>(
                                     buckets_.size()));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < limit; ++i)
        seen += buckets_[i];
    return static_cast<double>(seen) / static_cast<double>(samples_);
}

Counter &
StatSet::counter(const std::string &key)
{
    return counters_[key];
}

std::uint64_t
StatSet::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatSet::reset()
{
    for (auto &entry : counters_)
        entry.second.reset();
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &entry : counters_) {
        os << (name_.empty() ? "" : name_ + ".") << entry.first
           << " = " << entry.second.value() << '\n';
    }
    return os.str();
}

} // namespace sc
