/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All synthetic dataset generators use this RNG so every build of the
 * library reproduces identical graphs, matrices and tensors.
 */

#ifndef SPARSECORE_COMMON_RNG_HH
#define SPARSECORE_COMMON_RNG_HH

#include <cstdint>

namespace sc {

/** SplitMix64: used to seed the main generator from a single word. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator: fast, high-quality, fully deterministic
 * across platforms (unlike std::mt19937 distributions).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedc0de)
    {
        std::uint64_t sm = seed;
        for (auto &word : s)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire-style rejection-free reduction is fine here; modulo
        // bias is negligible for bound << 2^64 and keeps determinism
        // trivially portable.
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace sc

#endif // SPARSECORE_COMMON_RNG_HH
