#include "common/table.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace sc {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    if (header_.empty())
        panic("Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    row.resize(header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::speedup(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::csv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::json() const
{
    auto escape = [](const std::string &s) {
        std::string out;
        out.reserve(s.size() + 2);
        out += '"';
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        out += '"';
        return out;
    };
    auto emitRow = [&](std::ostringstream &os,
                       const std::vector<std::string> &row) {
        os << '[';
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << escape(row[c]);
        }
        os << ']';
    };
    std::ostringstream os;
    os << "{\"header\":";
    emitRow(os, header_);
    os << ",\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (r)
            os << ',';
        emitRow(os, rows_[r]);
    }
    os << "]}";
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        panic("geomean of empty series");
    double acc = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            panic("geomean requires positive values, got %f", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace sc
