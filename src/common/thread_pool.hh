/**
 * @file
 * Host-side work-stealing thread pool.
 *
 * The simulator models *simulated* cores (Table 2 configures six);
 * this pool supplies *host* parallelism to run those per-core engine
 * simulations — and independent benchmark sweep points — concurrently
 * on the machine executing the simulator. The two axes are
 * independent: a 6-simulated-core run produces identical results on a
 * 1-thread or a 64-thread host (see DESIGN.md "Host execution
 * model").
 *
 * Design: a fixed set of worker threads, each owning a deque of
 * tasks. Submitted tasks are distributed round-robin; a worker pops
 * from the front of its own deque and, when empty, steals from the
 * back of another worker's. forEach() adds chunked dynamic
 * scheduling on top: iterations are claimed in fixed-size chunks from
 * a shared counter, the calling thread participates (so a pool of
 * size 1 runs everything inline and nested forEach() calls cannot
 * deadlock), and exceptions thrown by iterations are rethrown in the
 * caller.
 */

#ifndef SPARSECORE_COMMON_THREAD_POOL_HH
#define SPARSECORE_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sc {

/** Fixed-size work-stealing host thread pool. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param num_threads total host threads used by forEach(),
     *        including the calling thread; the pool spawns
     *        num_threads - 1 workers. 0 means defaultNumThreads().
     */
    explicit ThreadPool(unsigned num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Host threads participating in forEach (workers + caller). */
    unsigned numThreads() const { return numThreads_; }

    /** Spawned worker threads (numThreads() - 1). 0 means submit()
     *  runs tasks inline on the calling thread. */
    unsigned numWorkers() const
    {
        return static_cast<unsigned>(queues_.size());
    }

    /**
     * The process-wide pool. Sized by the SC_HOST_THREADS environment
     * variable when set, else std::thread::hardware_concurrency().
     */
    static ThreadPool &global();

    /** SC_HOST_THREADS, or hardware_concurrency(), clamped to >= 1. */
    static unsigned defaultNumThreads();

    /**
     * Enqueue one fire-and-forget task. With no workers (pool size 1)
     * the task runs inline. Exceptions escaping a submitted task are
     * fatal (std::terminate): use forEach() for work whose errors
     * must propagate.
     */
    void submit(Task task);

    /**
     * Run fn(i) for every i in [0, n), blocking until all complete.
     *
     * Iterations are claimed in chunks of `grain` from a shared
     * counter (chunked dynamic scheduling); chunks execute on the
     * workers and on the calling thread. Reentrant: fn may itself
     * call forEach on the same pool. If any iteration throws, further
     * chunks are abandoned and the recorded exception (lowest chunk
     * index among those that threw) is rethrown in the caller once
     * every claimed chunk has finished.
     */
    void forEach(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t)> &fn);

  private:
    struct WorkQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    struct ForEachState;

    void workerLoop(unsigned self);
    bool tryDequeue(unsigned self, Task &out);
    static void runChunks(const std::shared_ptr<ForEachState> &state);

    unsigned numThreads_ = 1;
    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<unsigned> nextQueue_{0};
    std::atomic<int> pendingTasks_{0};
    std::mutex wakeMutex_;
    std::condition_variable wake_;
    bool stop_ = false; ///< guarded by wakeMutex_
};

} // namespace sc

#endif // SPARSECORE_COMMON_THREAD_POOL_HH
