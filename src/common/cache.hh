/**
 * @file
 * LruCache — the shared artifact-lifecycle primitive: a thread-safe,
 * byte-accounted, capacity-bounded map from content keys to
 * shared_ptr-owned values with LRU eviction, pinning and hit/miss/
 * evict counters.
 *
 * Every expensive artifact the system builds — generated graphs with
 * their stream set index, captured execution traces, compiled SCBC
 * programs — shares one lifecycle: built at most once per content key
 * (concurrent requests for the same key wait on the first builder
 * instead of duplicating work), held by shared_ptr so eviction can
 * never invalidate an artifact a caller is still using, and evicted
 * least-recently-used when the byte budget is exceeded. An entry
 * whose value is externally referenced (use_count > the cache's own
 * reference) is *pinned*: it keeps counting against the budget but is
 * skipped by eviction, so in-use artifacts survive arbitrary cache
 * pressure.
 *
 * The api::ArtifactStore composes three of these (graphs, traces,
 * bytecode); graph/datasets.cc uses one directly for the Table-4
 * dataset registry. tests/cache_test.cc pins the semantics.
 */

#ifndef SPARSECORE_COMMON_CACHE_HH
#define SPARSECORE_COMMON_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace sc {

/** Counters + occupancy snapshot of one LruCache. */
struct CacheStats
{
    std::uint64_t hits = 0;      ///< ready or in-flight entry reused
    std::uint64_t misses = 0;    ///< builder invocations (== builds)
    std::uint64_t evictions = 0; ///< entries dropped by the LRU bound
    /** Hits that blocked on another thread's in-flight build — the
     *  convoy signal the affinity job scheduler minimizes. */
    std::uint64_t inflightWaits = 0;
    std::size_t entries = 0;     ///< resident entries
    std::size_t bytes = 0;       ///< resident bytes (pinned included)
    std::size_t capacityBytes = 0; ///< 0 = unbounded
};

/**
 * The cache. K must be hashable and equality-comparable (keys are
 * content-derived strings in practice); V is owned as
 * shared_ptr<const V> so values are immutable and eviction-safe.
 *
 * Thread safety: every public method is safe to call concurrently.
 * Builders run outside the lock; a second request for a key whose
 * build is in flight blocks on the first build's future (and counts
 * as a hit — the artifact is built exactly once). A builder that
 * throws propagates the exception to every waiter and leaves the
 * cache without an entry for the key.
 */
template <typename K, typename V>
class LruCache
{
  public:
    using ValuePtr = std::shared_ptr<const V>;
    using BytesFn = std::function<std::size_t(const V &)>;

    /**
     * @param capacity_bytes LRU byte budget; 0 = unbounded
     * @param bytes_fn measures an entry's resident size once at
     *        insertion (defaults to sizeof(V))
     */
    explicit LruCache(std::size_t capacity_bytes = 0,
                      BytesFn bytes_fn = nullptr)
        : capacity_(capacity_bytes), bytesFn_(std::move(bytes_fn))
    {
    }

    LruCache(const LruCache &) = delete;
    LruCache &operator=(const LruCache &) = delete;

    /**
     * The single entry point: return the value for `key`, invoking
     * `build` at most once per resident lifetime of the key. The
     * returned shared_ptr pins the entry for as long as the caller
     * holds it.
     */
    ValuePtr
    getOrBuild(const K &key, const std::function<ValuePtr()> &build)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (auto it = map_.find(key); it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++hits_;
            return it->second->value;
        }
        if (auto in = inflight_.find(key); in != inflight_.end()) {
            // Another thread is building this key right now; share
            // its result instead of building twice.
            auto future = in->second;
            ++hits_;
            ++inflightWaits_;
            lock.unlock();
            return future.get();
        }
        ++misses_;
        std::promise<ValuePtr> promise;
        inflight_.emplace(key, promise.get_future().share());
        lock.unlock();

        ValuePtr value;
        try {
            value = build();
        } catch (...) {
            lock.lock();
            inflight_.erase(key);
            lock.unlock();
            promise.set_exception(std::current_exception());
            throw;
        }

        lock.lock();
        const std::size_t bytes =
            value ? (bytesFn_ ? bytesFn_(*value) : sizeof(V)) : 0;
        lru_.push_front(Entry{key, value, bytes});
        map_[key] = lru_.begin();
        bytes_ += bytes;
        inflight_.erase(key);
        evictLocked();
        lock.unlock();
        promise.set_value(value);
        return value;
    }

    /** Lookup without building (counts a hit or a miss). */
    ValuePtr
    find(const K &key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            return nullptr;
        }
        lru_.splice(lru_.begin(), lru_, it->second);
        ++hits_;
        return it->second->value;
    }

    /** Lookup without building, counting, or refreshing LRU order —
     *  for admission-time peeks that must not perturb the hit/miss
     *  counters the smoke legs pin. */
    ValuePtr
    peek(const K &key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = map_.find(key);
        return it == map_.end() ? nullptr : it->second->value;
    }

    /** Drop every resident entry (in-flight builds are unaffected;
     *  externally held shared_ptrs stay valid). Not counted as
     *  evictions. */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_.clear();
        lru_.clear();
        bytes_ = 0;
    }

    /** Change the byte budget (0 = unbounded) and evict to fit. */
    void
    setCapacity(std::size_t capacity_bytes)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        capacity_ = capacity_bytes;
        evictLocked();
    }

    CacheStats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CacheStats s;
        s.hits = hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.inflightWaits = inflightWaits_;
        s.entries = map_.size();
        s.bytes = bytes_;
        s.capacityBytes = capacity_;
        return s;
    }

    /** Zero the hit/miss/evict counters (occupancy is untouched). */
    void
    resetStats()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        hits_ = misses_ = evictions_ = inflightWaits_ = 0;
    }

  private:
    struct Entry
    {
        K key;
        ValuePtr value;
        std::size_t bytes = 0;
    };

    /**
     * Drop least-recently-used entries until the budget fits. An
     * entry whose value is referenced outside the cache (our list
     * holds exactly one reference) is pinned: skipped, but its bytes
     * keep counting. If everything live is pinned the cache runs
     * over budget rather than invalidating in-use artifacts.
     */
    void
    evictLocked()
    {
        if (capacity_ == 0)
            return;
        auto it = lru_.end();
        while (bytes_ > capacity_ && it != lru_.begin()) {
            --it;
            if (it->value.use_count() > 1)
                continue; // pinned: an external caller still uses it
            bytes_ -= it->bytes;
            map_.erase(it->key);
            it = lru_.erase(it);
            ++evictions_;
        }
    }

    mutable std::mutex mutex_;
    std::size_t capacity_ = 0;
    BytesFn bytesFn_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<K, typename std::list<Entry>::iterator> map_;
    std::unordered_map<K, std::shared_future<ValuePtr>> inflight_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t inflightWaits_ = 0;
    std::size_t bytes_ = 0;
};

} // namespace sc

#endif // SPARSECORE_COMMON_CACHE_HH
