/**
 * @file
 * sc::Config — the one documented loader for every SC_* environment
 * knob. Before this existed each subsystem called getenv() on its own
 * schedule with its own parsing rules; now the process-wide defaults
 * are read once, validated in one place, and introspectable
 * (describeConfig() backs the CLI's --dump-config and the README
 * table).
 *
 * Precedence, highest first:
 *   1. per-job / per-call overrides (JobSpec fields, RunOptions,
 *      HostOptions, Scoped*Override) — always win;
 *   2. the environment (this loader);
 *   3. built-in defaults.
 *
 * The knobs:
 *
 *   SC_REPLAY              auto|event|bytecode   trace replay engine
 *   SC_JOB_SCHED           fifo|affinity         JobQueue scheduling policy
 *   SC_VERIFY              0|1                   stream-lifetime verifier
 *   SC_ARTIFACT_CACHE      off|on|0|1            content-keyed store
 *   SC_ARTIFACT_CACHE_BYTES <bytes>              per-cache LRU budget
 *   SC_HOST_THREADS        1..1024               host pool size
 *   SC_FORCE_KERNEL        auto|scalar|sse|avx2  SIMD set-op kernels
 *   SC_FORCE_SETINDEX      auto|array|bitmap     hybrid set index
 *   SC_BENCH_DIR           <dir>                 BENCH_*.json directory
 *   SC_BENCH_SMOKE         0|1                   tiny CI sweep points
 *
 * Enum-valued knobs are stored as validated lowercase strings and
 * mapped to their enums by the owning subsystem (trace/replay.cc,
 * streams/...), keeping this layer dependency-free. Numeric and
 * boolean knobs are parsed here with the same error behavior the
 * scattered call sites had (fatal() on nonsense byte counts, warn +
 * fallback on a bad thread count).
 */

#ifndef SPARSECORE_COMMON_CONFIG_HH
#define SPARSECORE_COMMON_CONFIG_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace sc {

/** Resolved process-wide defaults for every SC_* knob. */
struct Config
{
    /** SC_REPLAY: "auto" (= bytecode), "event" or "bytecode". */
    std::string replay = "auto";
    /** SC_JOB_SCHED: "fifo" or "affinity" (the default). */
    std::string jobSched = "affinity";
    /** SC_VERIFY: nullopt = build-type default (debug on). */
    std::optional<bool> verify;
    /** SC_ARTIFACT_CACHE (default on). */
    bool artifactCache = true;
    /** SC_ARTIFACT_CACHE_BYTES (default 1 GiB per cache). */
    std::size_t artifactCacheBytes = std::size_t{1} << 30;
    /** SC_HOST_THREADS: 0 = hardware_concurrency(). */
    unsigned hostThreads = 0;
    /** SC_FORCE_KERNEL: "auto", "scalar", "sse" or "avx2". */
    std::string forceKernel = "auto";
    /** SC_FORCE_SETINDEX: "auto", "array" or "bitmap". */
    std::string forceSetindex = "auto";
    /** SC_BENCH_DIR: where BENCH_*.json reports land. */
    std::string benchDir = "bench_results";
    /** SC_BENCH_SMOKE: shrink bench sweep targets 64x for CI. */
    bool benchSmoke = false;
};

/**
 * The process-wide configuration, loaded from the environment exactly
 * once (first call). Reads after the first are lock-free.
 */
const Config &config();

/**
 * Pure loader: resolve a Config from `lookup` (name -> value, nullopt
 * when unset). This is config()'s implementation and the unit-test
 * entry point — tests inject environments without mutating the
 * process. fatal()s (throws SimError) on unparseable numeric/boolean
 * values; unknown enum strings are rejected here too so a typo fails
 * at startup, not mid-batch.
 */
Config loadConfig(
    const std::function<std::optional<std::string>(const char *)>
        &lookup);

/** One knob's documentation row for --dump-config / the README. */
struct ConfigKnob
{
    std::string name;    ///< environment variable
    std::string value;   ///< resolved value (process config)
    std::string source;  ///< "env" or "default"
    std::string choices; ///< accepted values, human-readable
    std::string help;    ///< one-line description
};

/** Every knob with its resolved value and provenance. */
std::vector<ConfigKnob> describeConfig();

} // namespace sc

#endif // SPARSECORE_COMMON_CONFIG_HH
