/**
 * @file
 * Lightweight statistics package: named counters, scalar stats and
 * histograms grouped into StatSets, loosely modeled on gem5's stats.
 */

#ifndef SPARSECORE_COMMON_STATS_HH
#define SPARSECORE_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sc {

/** A monotonically increasing named counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    Counter &operator++() { ++value_; return *this; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A fixed-bucket histogram over non-negative sample values, used for
 * the stream-length distributions of Fig. 14.
 */
class Histogram
{
  public:
    /** @param bucket_width width of each bucket; @param n_buckets
     *  number of buckets before the overflow bucket. */
    explicit Histogram(std::uint64_t bucket_width = 1,
                       std::size_t n_buckets = 512);

    void sample(std::uint64_t value, std::uint64_t weight = 1);
    void reset();

    std::uint64_t samples() const { return samples_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t maxValue() const { return max_; }
    double mean() const;

    /** Value v such that fraction q of samples are <= v. */
    std::uint64_t percentile(double q) const;

    /** Cumulative distribution: fraction of samples <= value. */
    double cdfAt(std::uint64_t value) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }

  private:
    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A named group of counters, resolved lazily by name. Components own a
 * StatSet and expose it for reporting.
 */
class StatSet
{
  public:
    explicit StatSet(std::string name = "") : name_(std::move(name)) {}

    /** Get-or-create a counter. */
    Counter &counter(const std::string &key);
    /** Read a counter (0 when absent). */
    std::uint64_t get(const std::string &key) const;
    void reset();

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

    /** Render "name.key = value" lines. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

} // namespace sc

#endif // SPARSECORE_COMMON_STATS_HH
