/**
 * @file
 * Minimal JSON value model, strict parser and stable writer — the
 * wire format of the service layer (api/jobspec.hh, the jsonl server)
 * and of every BENCH_*.json / report emission.
 *
 * Scope is deliberately small: UTF-8 text, RFC 8259 syntax, objects
 * preserve insertion order (so emission is byte-stable), numbers keep
 * an exact-integer fast path (cycle counts are uint64 and must round
 * trip losslessly). Parsing never throws: errors come back as a
 * position-tagged message so callers can attach structured
 * diagnostics to user input (a malformed job line must fail that one
 * job, not the process).
 */

#ifndef SPARSECORE_COMMON_JSON_HH
#define SPARSECORE_COMMON_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sc {

/** One JSON value (tree). Objects keep insertion order. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        /** Number that parsed (or was built) as an exact integer. */
        Int,
        /** Unsigned integer too large for int64 (cycle counters). */
        Uint,
        Double,
        String,
        Array,
        Object
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;
    static JsonValue null() { return JsonValue{}; }
    static JsonValue boolean(bool v);
    static JsonValue number(std::int64_t v);
    static JsonValue number(std::uint64_t v);
    static JsonValue number(double v);
    static JsonValue str(std::string v);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }
    /** Number with no fractional part that fits the target width. */
    bool isInteger() const;
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    /** Integer value; call only when isInteger(). */
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const { return string_; }

    const std::vector<JsonValue> &items() const { return items_; }
    const std::vector<Member> &members() const { return members_; }

    /** Append to an array value. */
    JsonValue &push(JsonValue v);
    /** Set a member on an object value (replaces an existing key,
     *  keeping its position; appends otherwise). */
    JsonValue &set(std::string key, JsonValue v);
    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;
    /** Drop a member (no-op when absent or not an object); returns
     *  whether a member was removed. */
    bool remove(std::string_view key);

    /** Compact, byte-stable serialization. */
    std::string dump() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/** Outcome of parseJson: a value or a position-tagged error. */
struct JsonParseResult
{
    std::optional<JsonValue> value;
    std::string error; ///< empty on success
    std::size_t line = 0;
    std::size_t column = 0;

    bool ok() const { return value.has_value(); }
    /** "line L col C: message" (empty on success). */
    std::string describe() const;
};

/**
 * Parse one JSON document (trailing whitespace allowed, anything else
 * after the value is an error). Never throws; malformed input —
 * including truncation anywhere — produces a described error.
 */
JsonParseResult parseJson(std::string_view text);

/** Escape and quote a string for JSON emission. */
std::string jsonQuote(std::string_view s);

} // namespace sc

#endif // SPARSECORE_COMMON_JSON_HH
