/**
 * @file
 * Plain-text table formatting for benchmark output. Every bench binary
 * prints the same rows/series the paper's figures report, using this
 * formatter for alignment plus an optional CSV dump.
 */

#ifndef SPARSECORE_COMMON_TABLE_HH
#define SPARSECORE_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace sc {

/** Column-aligned text table with a header row. */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);
    /** Format as a speedup, e.g. "13.5x". */
    static std::string speedup(double v, int precision = 2);

    /** Render aligned text. */
    std::string str() const;
    /** Render comma-separated values. */
    std::string csv() const;
    /** Render as JSON: {"header": [...], "rows": [[...], ...]}. */
    std::string json() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a non-empty series of positive values. */
double geomean(const std::vector<double> &values);

} // namespace sc

#endif // SPARSECORE_COMMON_TABLE_HH
