/**
 * @file
 * gem5-style logging helpers: panic() for internal invariant violations,
 * fatal() for user-caused errors, warn()/inform() for status messages.
 */

#ifndef SPARSECORE_COMMON_LOGGING_HH
#define SPARSECORE_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace sc {

/** Thrown by panicOrThrow-style checks so tests can assert on them. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Format a printf-style message into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list ap);

/** Format a printf-style message into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug. Throws SimError (instead of
 * aborting) so the condition is unit-testable; callers must not catch
 * it except at test boundaries.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error (bad config, bad input). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform()/warn() output (benches silence them). */
void setVerbose(bool verbose);

} // namespace sc

#endif // SPARSECORE_COMMON_LOGGING_HH
