/**
 * @file
 * Header-only helpers over ThreadPool::forEach: index-space parallel
 * loops and an ordered parallel map. Results are reduced in index
 * order regardless of which host thread ran which iteration, so
 * callers get deterministic (host-thread-count independent) output —
 * the property the multi-core simulation API and the benchmark sweeps
 * rely on.
 */

#ifndef SPARSECORE_COMMON_PARALLEL_FOR_HH
#define SPARSECORE_COMMON_PARALLEL_FOR_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/thread_pool.hh"

namespace sc {

/** Run fn(i) for i in [0, n) on the pool; blocks until done. */
template <typename Fn>
void
parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn,
            std::size_t grain = 1)
{
    const std::function<void(std::size_t)> body =
        [&fn](std::size_t i) { fn(i); };
    pool.forEach(n, grain, body);
}

/**
 * Parallel map: out[i] = fn(i) for i in [0, n), results in index
 * order. T must be default-constructible and movable.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(ThreadPool &pool, std::size_t n, Fn &&fn,
            std::size_t grain = 1)
{
    std::vector<T> out(n);
    parallelFor(
        pool, n, [&out, &fn](std::size_t i) { out[i] = fn(i); },
        grain);
    return out;
}

/** Run two independent callables concurrently (both complete). */
template <typename FnA, typename FnB>
void
parallelInvoke(ThreadPool &pool, FnA &&a, FnB &&b)
{
    parallelFor(pool, 2, [&](std::size_t i) {
        if (i == 0)
            a();
        else
            b();
    });
}

} // namespace sc

#endif // SPARSECORE_COMMON_PARALLEL_FOR_HH
