#include "common/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/config.hh"
#include "common/logging.hh"

namespace sc {

struct ThreadPool::ForEachState
{
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completedChunks{0};
    std::atomic<bool> cancelled{false};
    std::size_t totalChunks = 0;
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t errorChunk = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
};

unsigned
ThreadPool::defaultNumThreads()
{
    // SC_HOST_THREADS through the common/config loader (warn +
    // fallback on unparseable values, clamped to 1..1024 there).
    if (const unsigned threads = config().hostThreads)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : numThreads_(num_threads ? num_threads : defaultNumThreads())
{
    const unsigned workers = numThreads_ - 1;
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkQueue>());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(Task task)
{
    if (queues_.empty()) {
        task();
        return;
    }
    const unsigned idx =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        std::lock_guard<std::mutex> lock(queues_[idx]->mutex);
        queues_[idx]->tasks.push_back(std::move(task));
    }
    pendingTasks_.fetch_add(1, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(wakeMutex_);
        wake_.notify_one();
    }
}

bool
ThreadPool::tryDequeue(unsigned self, Task &out)
{
    const unsigned count = static_cast<unsigned>(queues_.size());
    for (unsigned k = 0; k < count; ++k) {
        WorkQueue &wq = *queues_[(self + k) % count];
        std::lock_guard<std::mutex> lock(wq.mutex);
        if (wq.tasks.empty())
            continue;
        if (k == 0) {
            // Own queue: LIFO-ish front pop keeps locality.
            out = std::move(wq.tasks.front());
            wq.tasks.pop_front();
        } else {
            // Steal from the victim's back.
            out = std::move(wq.tasks.back());
            wq.tasks.pop_back();
        }
        pendingTasks_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    while (true) {
        Task task;
        if (tryDequeue(self, task)) {
            task();
            task = Task{};
            continue;
        }
        std::unique_lock<std::mutex> lock(wakeMutex_);
        if (pendingTasks_.load(std::memory_order_acquire) > 0)
            continue; // raced with a submit: retry the dequeue
        if (stop_)
            return; // drained: queues are empty
        wake_.wait(lock);
    }
}

void
ThreadPool::runChunks(const std::shared_ptr<ForEachState> &state)
{
    while (true) {
        const std::size_t begin =
            state->next.fetch_add(state->grain,
                                  std::memory_order_relaxed);
        if (begin >= state->n)
            return;
        const std::size_t end =
            std::min(state->n, begin + state->grain);
        const std::size_t chunk = begin / state->grain;

        if (!state->cancelled.load(std::memory_order_acquire)) {
            try {
                for (std::size_t i = begin; i < end; ++i)
                    (*state->fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (chunk < state->errorChunk) {
                    state->errorChunk = chunk;
                    state->error = std::current_exception();
                }
                state->cancelled.store(true, std::memory_order_release);
            }
        }

        const std::size_t finished =
            state->completedChunks.fetch_add(
                1, std::memory_order_acq_rel) + 1;
        if (finished == state->totalChunks) {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->done.notify_all();
        }
    }
}

void
ThreadPool::forEach(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;

    auto state = std::make_shared<ForEachState>();
    state->n = n;
    state->grain = grain;
    state->fn = &fn;
    state->totalChunks = (n + grain - 1) / grain;

    // One helper task per worker (capped at the chunk count); the
    // caller claims chunks too, so completion never depends on a
    // worker being free — a task may itself be running this forEach.
    const std::size_t helpers =
        std::min<std::size_t>(workers_.size(), state->totalChunks);
    for (std::size_t h = 0; h < helpers; ++h)
        submit([state] { runChunks(state); });

    runChunks(state);

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] {
        return state->completedChunks.load(std::memory_order_acquire) ==
               state->totalChunks;
    });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace sc
