#include "common/json.hh"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace sc {

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::number(std::int64_t v)
{
    JsonValue out;
    out.kind_ = Kind::Int;
    out.int_ = v;
    return out;
}

JsonValue
JsonValue::number(std::uint64_t v)
{
    JsonValue out;
    out.kind_ = Kind::Uint;
    out.uint_ = v;
    return out;
}

JsonValue
JsonValue::number(double v)
{
    JsonValue out;
    out.kind_ = Kind::Double;
    out.double_ = v;
    return out;
}

JsonValue
JsonValue::str(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::array()
{
    JsonValue out;
    out.kind_ = Kind::Array;
    return out;
}

JsonValue
JsonValue::object()
{
    JsonValue out;
    out.kind_ = Kind::Object;
    return out;
}

bool
JsonValue::isInteger() const
{
    switch (kind_) {
      case Kind::Int:
      case Kind::Uint:
        return true;
      case Kind::Double:
        return std::nearbyint(double_) == double_ &&
               std::abs(double_) < 9.007199254740992e15; // 2^53
      default:
        return false;
    }
}

std::int64_t
JsonValue::asInt() const
{
    switch (kind_) {
      case Kind::Int:
        return int_;
      case Kind::Uint:
        return static_cast<std::int64_t>(uint_);
      case Kind::Double:
        return static_cast<std::int64_t>(double_);
      default:
        panic("JsonValue::asInt on a non-number");
    }
}

std::uint64_t
JsonValue::asUint() const
{
    switch (kind_) {
      case Kind::Int:
        return static_cast<std::uint64_t>(int_);
      case Kind::Uint:
        return uint_;
      case Kind::Double:
        return static_cast<std::uint64_t>(double_);
      default:
        panic("JsonValue::asUint on a non-number");
    }
}

double
JsonValue::asDouble() const
{
    switch (kind_) {
      case Kind::Int:
        return static_cast<double>(int_);
      case Kind::Uint:
        return static_cast<double>(uint_);
      case Kind::Double:
        return double_;
      default:
        panic("JsonValue::asDouble on a non-number");
    }
}

JsonValue &
JsonValue::push(JsonValue v)
{
    if (kind_ != Kind::Array)
        panic("JsonValue::push on a non-array");
    items_.push_back(std::move(v));
    return *this;
}

JsonValue &
JsonValue::set(std::string key, JsonValue v)
{
    if (kind_ != Kind::Object)
        panic("JsonValue::set on a non-object");
    for (Member &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
    return *this;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const Member &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

bool
JsonValue::remove(std::string_view key)
{
    if (kind_ != Kind::Object)
        return false;
    for (auto it = members_.begin(); it != members_.end(); ++it) {
        if (it->first == key) {
            members_.erase(it);
            return true;
        }
    }
    return false;
}

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += raw;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

void
dumpTo(const JsonValue &v, std::string &out)
{
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        out += "null";
        break;
      case JsonValue::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case JsonValue::Kind::Int: {
        char buf[32];
        const auto [p, ec] =
            std::to_chars(buf, buf + sizeof(buf), v.asInt());
        out.append(buf, p);
        break;
      }
      case JsonValue::Kind::Uint: {
        char buf[32];
        const auto [p, ec] =
            std::to_chars(buf, buf + sizeof(buf), v.asUint());
        out.append(buf, p);
        break;
      }
      case JsonValue::Kind::Double: {
        const double d = v.asDouble();
        if (!std::isfinite(d)) {
            // JSON has no inf/nan; emit null (stable, parseable).
            out += "null";
            break;
        }
        char buf[40];
        const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
        out.append(buf, p);
        break;
      }
      case JsonValue::Kind::String:
        out += jsonQuote(v.asString());
        break;
      case JsonValue::Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            dumpTo(item, out);
        }
        out += ']';
        break;
      }
      case JsonValue::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &[key, value] : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += jsonQuote(key);
            out += ':';
            dumpTo(value, out);
        }
        out += '}';
        break;
      }
    }
}

/** Recursive-descent parser with a hard nesting bound. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonParseResult
    parse()
    {
        JsonParseResult result;
        JsonValue value;
        if (!parseValue(value, 0)) {
            fillError(result);
            return result;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            error_ = "trailing characters after the JSON value";
            fillError(result);
            return result;
        }
        result.value = std::move(value);
        return result;
    }

  private:
    static constexpr std::size_t kMaxDepth = 64;

    void
    fillError(JsonParseResult &result) const
    {
        result.error = error_.empty() ? "malformed JSON" : error_;
        result.line = 1;
        result.column = 1;
        for (std::size_t i = 0; i < errorPos_ && i < text_.size();
             ++i) {
            if (text_[i] == '\n') {
                ++result.line;
                result.column = 1;
            } else {
                ++result.column;
            }
        }
    }

    bool
    fail(const std::string &message)
    {
        if (error_.empty()) {
            error_ = message;
            errorPos_ = pos_;
        }
        return false;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    parseValue(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input (expected a value)");
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue::str(std::move(s));
            return true;
          }
          case 't':
            if (!consumeLiteral("true"))
                return fail("bad literal (expected 'true')");
            out = JsonValue::boolean(true);
            return true;
          case 'f':
            if (!consumeLiteral("false"))
                return fail("bad literal (expected 'false')");
            out = JsonValue::boolean(false);
            return true;
          case 'n':
            if (!consumeLiteral("null"))
                return fail("bad literal (expected 'null')");
            out = JsonValue::null();
            return true;
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail(strprintf("unexpected character '%c'", c));
        }
    }

    bool
    consumeLiteral(const char *literal)
    {
        const std::size_t n = std::strlen(literal);
        if (text_.substr(pos_, n) != literal)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseObject(JsonValue &out, std::size_t depth)
    {
        ++pos_; // '{'
        out = JsonValue::object();
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unexpected end of input inside object");
            if (text_[pos_] != '"')
                return fail("expected a quoted member name");
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after member name");
            ++pos_;
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.set(std::move(key), std::move(value));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unexpected end of input inside object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out, std::size_t depth)
    {
        ++pos_; // '['
        out = JsonValue::array();
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            out.push(std::move(value));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unexpected end of input inside array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_];
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            ++pos_;
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape sequence");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // Encode the BMP code point as UTF-8 (surrogate
                // pairs are passed through as two 3-byte sequences;
                // job specs are ASCII in practice).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape sequence");
            }
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (text_[pos_] == '-') {
            negative = true;
            ++pos_;
        }
        if (pos_ >= text_.size() || text_[pos_] < '0' ||
            text_[pos_] > '9')
            return fail("malformed number");
        // Leading zero must not be followed by more digits.
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9')
            return fail("number has a leading zero");
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                return fail("malformed fraction");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() || text_[pos_] < '0' ||
                text_[pos_] > '9')
                return fail("malformed exponent");
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9')
                ++pos_;
        }
        const std::string_view token =
            text_.substr(start, pos_ - start);
        if (integral) {
            if (!negative) {
                std::uint64_t u = 0;
                const auto [p, ec] = std::from_chars(
                    token.data(), token.data() + token.size(), u);
                if (ec == std::errc{} &&
                    p == token.data() + token.size()) {
                    out = JsonValue::number(u);
                    return true;
                }
            } else {
                std::int64_t i = 0;
                const auto [p, ec] = std::from_chars(
                    token.data(), token.data() + token.size(), i);
                if (ec == std::errc{} &&
                    p == token.data() + token.size()) {
                    out = JsonValue::number(i);
                    return true;
                }
            }
            // Out of 64-bit range: fall through to double.
        }
        double d = 0;
        const auto [p, ec] = std::from_chars(
            token.data(), token.data() + token.size(), d);
        if (ec != std::errc{} || p != token.data() + token.size())
            return fail("malformed number");
        out = JsonValue::number(d);
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
    std::size_t errorPos_ = 0;
};

} // namespace

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

std::string
JsonParseResult::describe() const
{
    if (error.empty())
        return {};
    return strprintf("line %zu col %zu: %s", line, column,
                     error.c_str());
}

JsonParseResult
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace sc
