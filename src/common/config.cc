#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace sc {

namespace {

std::optional<std::string>
envLookup(const char *name)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return std::nullopt;
    return std::string(v);
}

bool
oneOf(const std::string &v, std::initializer_list<const char *> set)
{
    for (const char *s : set)
        if (v == s)
            return true;
    return false;
}

} // namespace

Config
loadConfig(
    const std::function<std::optional<std::string>(const char *)>
        &lookup)
{
    Config cfg;

    if (const auto v = lookup("SC_REPLAY")) {
        if (!oneOf(*v, {"auto", "event", "bytecode"}))
            fatal("SC_REPLAY='%s' (expected auto|event|bytecode)",
                  v->c_str());
        cfg.replay = *v;
    }

    if (const auto v = lookup("SC_JOB_SCHED")) {
        if (!oneOf(*v, {"fifo", "affinity"}))
            fatal("SC_JOB_SCHED='%s' (expected fifo|affinity)",
                  v->c_str());
        cfg.jobSched = *v;
    }

    if (const auto v = lookup("SC_VERIFY"))
        cfg.verify = (*v)[0] != '0';

    if (const auto v = lookup("SC_ARTIFACT_CACHE")) {
        if (oneOf(*v, {"on", "1"}))
            cfg.artifactCache = true;
        else if (oneOf(*v, {"off", "0"}))
            cfg.artifactCache = false;
        else
            fatal("SC_ARTIFACT_CACHE must be off|on|0|1, got '%s'",
                  v->c_str());
    }

    if (const auto v = lookup("SC_ARTIFACT_CACHE_BYTES")) {
        char *end = nullptr;
        const unsigned long long bytes =
            std::strtoull(v->c_str(), &end, 10);
        if (end == v->c_str() || *end)
            fatal("SC_ARTIFACT_CACHE_BYTES must be a byte count, "
                  "got '%s'",
                  v->c_str());
        cfg.artifactCacheBytes = static_cast<std::size_t>(bytes);
    }

    if (const auto v = lookup("SC_HOST_THREADS")) {
        char *end = nullptr;
        const long threads = std::strtol(v->c_str(), &end, 10);
        if (end && *end == '\0' && threads >= 1 && threads <= 1024)
            cfg.hostThreads = static_cast<unsigned>(threads);
        else
            warn("ignoring invalid SC_HOST_THREADS='%s'", v->c_str());
    }

    if (const auto v = lookup("SC_FORCE_KERNEL")) {
        if (oneOf(*v, {"auto", "scalar", "sse", "avx2"}))
            cfg.forceKernel = *v;
        else
            warn("SC_FORCE_KERNEL='%s' not recognized "
                 "(want scalar|sse|avx2|auto); auto-detecting",
                 v->c_str());
    }

    if (const auto v = lookup("SC_FORCE_SETINDEX")) {
        if (oneOf(*v, {"auto", "array", "bitmap"}))
            cfg.forceSetindex = *v;
        else
            warn("SC_FORCE_SETINDEX='%s' not recognized "
                 "(want auto|array|bitmap); using auto",
                 v->c_str());
    }

    if (const auto v = lookup("SC_BENCH_DIR"))
        cfg.benchDir = *v;

    if (const auto v = lookup("SC_BENCH_SMOKE"))
        cfg.benchSmoke = *v != "0";

    return cfg;
}

const Config &
config()
{
    static const Config cfg = loadConfig(envLookup);
    return cfg;
}

std::vector<ConfigKnob>
describeConfig()
{
    const Config &cfg = config();
    auto row = [](std::string name, std::string value, bool from_env,
                  std::string choices, std::string help) {
        return ConfigKnob{std::move(name), std::move(value),
                          from_env ? "env" : "default",
                          std::move(choices), std::move(help)};
    };
    const auto set = [](const char *name) {
        const char *v = std::getenv(name);
        return v && *v;
    };
    std::vector<ConfigKnob> knobs;
    knobs.push_back(row(
        "SC_REPLAY", cfg.replay, set("SC_REPLAY"),
        "auto|event|bytecode",
        "trace replay engine (auto = bytecode)"));
    knobs.push_back(row(
        "SC_JOB_SCHED", cfg.jobSched, set("SC_JOB_SCHED"),
        "fifo|affinity",
        "JobQueue scheduling policy (affinity parks cold-dataset "
        "siblings)"));
    knobs.push_back(row(
        "SC_VERIFY",
        cfg.verify ? (*cfg.verify ? "1" : "0") : "build-type",
        set("SC_VERIFY"), "0|1",
        "stream-lifetime verifier (default: on in debug builds)"));
    knobs.push_back(row(
        "SC_ARTIFACT_CACHE", cfg.artifactCache ? "on" : "off",
        set("SC_ARTIFACT_CACHE"), "off|on|0|1",
        "content-keyed trace/program store"));
    knobs.push_back(row(
        "SC_ARTIFACT_CACHE_BYTES",
        std::to_string(cfg.artifactCacheBytes),
        set("SC_ARTIFACT_CACHE_BYTES"), "<bytes>",
        "per-cache LRU byte budget (default 1 GiB)"));
    knobs.push_back(row(
        "SC_HOST_THREADS",
        cfg.hostThreads ? std::to_string(cfg.hostThreads) : "auto",
        set("SC_HOST_THREADS"), "1..1024",
        "host pool size (auto = hardware concurrency)"));
    knobs.push_back(row(
        "SC_FORCE_KERNEL", cfg.forceKernel, set("SC_FORCE_KERNEL"),
        "auto|scalar|sse|avx2", "host SIMD set-op kernel level"));
    knobs.push_back(row(
        "SC_FORCE_SETINDEX", cfg.forceSetindex,
        set("SC_FORCE_SETINDEX"), "auto|array|bitmap",
        "hybrid set-index policy"));
    knobs.push_back(row(
        "SC_BENCH_DIR", cfg.benchDir, set("SC_BENCH_DIR"), "<dir>",
        "directory BENCH_*.json reports land in"));
    knobs.push_back(row(
        "SC_BENCH_SMOKE", cfg.benchSmoke ? "1" : "0",
        set("SC_BENCH_SMOKE"), "0|1",
        "shrink bench sweep targets ~64x for CI"));
    return knobs;
}

} // namespace sc
