/**
 * @file
 * Fundamental scalar types shared across the SparseCore library.
 */

#ifndef SPARSECORE_COMMON_TYPES_HH
#define SPARSECORE_COMMON_TYPES_HH

#include <cstdint>

namespace sc {

/** Graph vertex identifier / stream key. Streams are sorted key lists. */
using Key = std::uint32_t;
/** Vertex identifier (alias of Key: edge lists are key streams). */
using VertexId = std::uint32_t;
/** Floating-point payload of a (key,value) stream. */
using Value = double;
/** Simulated byte address used by the cache models. */
using Addr = std::uint64_t;
/** Simulated clock cycles. */
using Cycles = std::uint64_t;

/** Sentinel returned by S_FETCH past the end of a stream (§3.3). */
constexpr Key endOfStream = 0xffffffffu;

/** Unbounded upper-bound operand value for set operations (R3 = -1). */
constexpr Key noBound = 0xffffffffu;

} // namespace sc

#endif // SPARSECORE_COMMON_TYPES_HH
