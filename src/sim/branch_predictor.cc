#include "sim/branch_predictor.hh"

#include "common/logging.hh"

namespace sc::sim {

namespace {

bool
isPowerOfTwo(std::size_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Apply one branch to a 2-bit saturating counter; returns whether the
 *  pre-update prediction was correct. */
bool
updateCounter(std::uint8_t &ctr, bool taken)
{
    const bool predicted = ctr >= 2;
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    return predicted == taken;
}

} // namespace

TwoBitPredictor::TwoBitPredictor(std::size_t table_size)
    : table_(table_size, 1)
{
    if (!isPowerOfTwo(table_size))
        fatal("branch predictor table size must be a power of two");
}

bool
TwoBitPredictor::predict(std::uint64_t pc, bool taken)
{
    std::uint8_t &ctr = table_[pc & (table_.size() - 1)];
    const bool correct = updateCounter(ctr, taken);
    record(correct);
    return correct;
}

GsharePredictor::GsharePredictor(std::size_t table_size,
                                 unsigned history_bits)
    : table_(table_size, 1), historyMask_((1ull << history_bits) - 1)
{
    if (!isPowerOfTwo(table_size))
        fatal("branch predictor table size must be a power of two");
}

bool
GsharePredictor::predict(std::uint64_t pc, bool taken)
{
    const std::uint64_t idx = (pc ^ history_) & (table_.size() - 1);
    std::uint8_t &ctr = table_[idx];
    const bool correct = updateCounter(ctr, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    record(correct);
    return correct;
}

} // namespace sc::sim
