/**
 * @file
 * Scalar out-of-order core cost model.
 *
 * This is the zSim-style instruction-driven timing stand-in the paper
 * builds on: callers describe the dynamic instruction mix (ALU ops,
 * branches with outcomes, loads with addresses) and the model
 * accumulates cycles into the four categories of Figs. 9/10 —
 * Cache, Mispred., Other computation, and Intersection.
 */

#ifndef SPARSECORE_SIM_CORE_MODEL_HH
#define SPARSECORE_SIM_CORE_MODEL_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"
#include "sim/branch_predictor.hh"
#include "sim/mem_hierarchy.hh"

namespace sc::sim {

/** Core pipeline parameters (Table 2: ROB 128, LQ 32). */
struct CoreParams
{
    unsigned issueWidth = 4;
    unsigned robSize = 128;
    unsigned loadQueueSize = 32;
    Cycles mispredictPenalty = 14;
    /**
     * Fraction of a long-latency miss the OOO window cannot hide.
     * Sequential stream accesses enjoy high MLP; 0.6 calibrates the
     * CPU breakdown to the paper's Fig. 9 shape.
     */
    double missStallFraction = 0.6;
};

/** Cycle accounting categories (the Fig. 9/10 stack). */
enum class CycleClass : unsigned
{
    Cache = 0,       ///< memory stall cycles
    Mispredict,      ///< branch misprediction penalty cycles
    OtherCompute,    ///< non-set-op computation
    Intersection,    ///< set-operation (intersection/subtraction/merge)
    NumClasses
};

/** Human-readable label for a cycle class. */
const char *cycleClassName(CycleClass cls);

/** Per-class cycle totals. */
struct CycleBreakdown
{
    std::array<Cycles, static_cast<unsigned>(CycleClass::NumClasses)>
        cycles{};

    Cycles &operator[](CycleClass cls)
    {
        return cycles[static_cast<unsigned>(cls)];
    }
    Cycles operator[](CycleClass cls) const
    {
        return cycles[static_cast<unsigned>(cls)];
    }
    Cycles total() const;
    /** Fraction of total in a class (0 when total is 0). */
    double fraction(CycleClass cls) const;
    CycleBreakdown &operator+=(const CycleBreakdown &other);
};

/**
 * The core model. Owns its branch predictor and memory hierarchy and
 * exposes event-level charging methods used by execution backends.
 */
class CoreModel
{
  public:
    explicit CoreModel(const CoreParams &params = CoreParams{},
                       const MemParams &mem_params = MemParams{});

    /** Charge n generic ALU/addressing ops (issueWidth-wide). */
    void executeOps(std::uint64_t n,
                    CycleClass cls = CycleClass::OtherCompute);

    /**
     * Charge one conditional branch; runs the predictor and charges
     * the mispredict penalty when it misses.
     * @return true when mispredicted.
     */
    bool executeBranch(std::uint64_t pc, bool taken,
                       CycleClass compute_cls = CycleClass::OtherCompute);

    /**
     * Charge one load. L1 hits are considered fully pipelined; deeper
     * misses charge missStallFraction of the beyond-L1 latency as
     * cache-stall cycles.
     */
    void load(Addr addr, CycleClass compute_cls = CycleClass::OtherCompute);

    /**
     * Charge one load from a batch of INDEPENDENT accesses (gather /
     * scatter loops with no serial dependence): the OOO window
     * overlaps the misses, so the beyond-L1 stall is divided by mlp.
     */
    void loadOverlapped(Addr addr, unsigned mlp,
                        CycleClass compute_cls =
                            CycleClass::OtherCompute);

    /** Directly add cycles to a class (specialized callers). */
    void addCycles(CycleClass cls, Cycles n);

    Cycles cycles() const { return breakdown_.total(); }
    const CycleBreakdown &breakdown() const { return breakdown_; }

    MemHierarchy &mem() { return *mem_; }
    BranchPredictor &predictor() { return *predictor_; }
    const CoreParams &params() const { return params_; }

    void reset();

  private:
    CoreParams params_;
    std::unique_ptr<BranchPredictor> predictor_;
    std::unique_ptr<MemHierarchy> mem_;
    CycleBreakdown breakdown_;
};

} // namespace sc::sim

#endif // SPARSECORE_SIM_CORE_MODEL_HH
