/**
 * @file
 * Three-level cache hierarchy + memory timing model (Table 2 config:
 * 32KB/8-way L1D, 256KB/8-way L2, 12MB/16-way L3, 64B lines).
 *
 * access() walks the levels, installs lines on miss and returns the
 * load-to-use latency in cycles. Two entry points exist: l1Access (CPU
 * loads) and l2Access (S-Cache refills, which bypass L1 per §4.3).
 */

#ifndef SPARSECORE_SIM_MEM_HIERARCHY_HH
#define SPARSECORE_SIM_MEM_HIERARCHY_HH

#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/cache.hh"

namespace sc::sim {

/** Latency (cycles) and geometry of the full hierarchy. */
struct MemParams
{
    CacheParams l1{"l1d", 32 * 1024, 8, 64};
    CacheParams l2{"l2", 256 * 1024, 8, 64};
    CacheParams l3{"l3", 12 * 1024 * 1024, 16, 64};
    Cycles l1Latency = 4;
    Cycles l2Latency = 12;
    Cycles l3Latency = 38;
    Cycles memLatency = 120;
};

/** Where an access was satisfied. */
enum class MemLevel { L1, L2, L3, Memory };

/** The three-level hierarchy with per-level stats. */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemParams &params = MemParams{});

    /** CPU-side load of one byte address; returns load-to-use cycles. */
    Cycles l1Access(Addr addr);
    /** Same but reports the satisfying level. */
    Cycles l1Access(Addr addr, MemLevel &level);

    /** S-Cache refill path: starts at L2 (bypasses/doesn't pollute L1). */
    Cycles l2Access(Addr addr);
    Cycles l2Access(Addr addr, MemLevel &level);

    const MemParams &params() const { return params_; }
    Cache &l1() { return *l1_; }
    Cache &l2() { return *l2_; }
    Cache &l3() { return *l3_; }

    std::uint64_t memAccesses() const { return memAccesses_; }
    void resetStats();

  private:
    MemParams params_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l3_;
    std::uint64_t memAccesses_ = 0;
};

} // namespace sc::sim

#endif // SPARSECORE_SIM_MEM_HIERARCHY_HH
