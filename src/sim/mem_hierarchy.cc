#include "sim/mem_hierarchy.hh"

namespace sc::sim {

MemHierarchy::MemHierarchy(const MemParams &params)
    : params_(params),
      l1_(std::make_unique<Cache>(params.l1)),
      l2_(std::make_unique<Cache>(params.l2)),
      l3_(std::make_unique<Cache>(params.l3))
{
}

Cycles
MemHierarchy::l1Access(Addr addr)
{
    MemLevel level;
    return l1Access(addr, level);
}

Cycles
MemHierarchy::l1Access(Addr addr, MemLevel &level)
{
    if (l1_->access(addr)) {
        level = MemLevel::L1;
        return params_.l1Latency;
    }
    return params_.l1Latency + l2Access(addr, level);
}

Cycles
MemHierarchy::l2Access(Addr addr)
{
    MemLevel level;
    return l2Access(addr, level);
}

Cycles
MemHierarchy::l2Access(Addr addr, MemLevel &level)
{
    if (l2_->access(addr)) {
        level = MemLevel::L2;
        return params_.l2Latency;
    }
    if (l3_->access(addr)) {
        level = MemLevel::L3;
        return params_.l2Latency + params_.l3Latency;
    }
    ++memAccesses_;
    level = MemLevel::Memory;
    return params_.l2Latency + params_.l3Latency + params_.memLatency;
}

void
MemHierarchy::resetStats()
{
    l1_->resetStats();
    l2_->resetStats();
    l3_->resetStats();
    memAccesses_ = 0;
}

} // namespace sc::sim
