/**
 * @file
 * Set-associative cache tag model with LRU replacement.
 *
 * This is a functional tag array: it answers hit/miss per access and
 * tracks occupancy; timing (latency composition across levels) is done
 * by MemHierarchy. Matches the zSim-style modeling the paper relies on.
 */

#ifndef SPARSECORE_SIM_CACHE_HH
#define SPARSECORE_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sc::sim {

/** Geometry and behaviour of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t ways = 8;
    std::uint32_t lineBytes = 64;
};

/** One level of set-associative cache with true-LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access one line.
     * @param addr byte address
     * @return true on hit; on miss the line is installed.
     */
    bool access(Addr addr);

    /** Probe without installing or touching LRU state. */
    bool contains(Addr addr) const;

    /** Invalidate the whole cache. */
    void flush();

    const CacheParams &params() const { return params_; }
    std::uint32_t numSets() const { return numSets_; }

    std::uint64_t hits() const { return stats_.get("hits"); }
    std::uint64_t misses() const { return stats_.get("misses"); }
    const StatSet &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / params_.lineBytes; }

    /** Set index; power-of-two set counts use the fast mask path. */
    std::uint32_t
    setIndex(Addr line) const
    {
        return static_cast<std::uint32_t>(
            setsArePow2_ ? line & (numSets_ - 1) : line % numSets_);
    }

    CacheParams params_;
    std::uint32_t numSets_;
    bool setsArePow2_ = true;
    std::vector<Way> ways_; // numSets_ x params_.ways, row-major
    std::uint64_t useClock_ = 0;
    StatSet stats_;
};

} // namespace sc::sim

#endif // SPARSECORE_SIM_CACHE_HH
