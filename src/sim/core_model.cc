#include "sim/core_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace sc::sim {

const char *
cycleClassName(CycleClass cls)
{
    switch (cls) {
      case CycleClass::Cache:
        return "Cache";
      case CycleClass::Mispredict:
        return "Mispred.";
      case CycleClass::OtherCompute:
        return "Other computation";
      case CycleClass::Intersection:
        return "Intersection";
      default:
        panic("unknown cycle class %u", static_cast<unsigned>(cls));
    }
}

Cycles
CycleBreakdown::total() const
{
    Cycles sum = 0;
    for (Cycles c : cycles)
        sum += c;
    return sum;
}

double
CycleBreakdown::fraction(CycleClass cls) const
{
    const Cycles sum = total();
    return sum ? static_cast<double>((*this)[cls]) /
                     static_cast<double>(sum)
               : 0.0;
}

CycleBreakdown &
CycleBreakdown::operator+=(const CycleBreakdown &other)
{
    for (unsigned i = 0; i < cycles.size(); ++i)
        cycles[i] += other.cycles[i];
    return *this;
}

CoreModel::CoreModel(const CoreParams &params, const MemParams &mem_params)
    : params_(params),
      predictor_(std::make_unique<GsharePredictor>()),
      mem_(std::make_unique<MemHierarchy>(mem_params))
{
    if (params_.issueWidth == 0)
        fatal("core issue width must be positive");
}

void
CoreModel::executeOps(std::uint64_t n, CycleClass cls)
{
    // n ops at issueWidth per cycle; fractional remainders accumulate
    // via integer rounding-up amortization kept simple here.
    breakdown_[cls] += (n + params_.issueWidth - 1) / params_.issueWidth;
}

bool
CoreModel::executeBranch(std::uint64_t pc, bool taken,
                         CycleClass compute_cls)
{
    executeOps(1, compute_cls);
    const bool correct = predictor_->predict(pc, taken);
    if (!correct)
        breakdown_[CycleClass::Mispredict] += params_.mispredictPenalty;
    return !correct;
}

void
CoreModel::load(Addr addr, CycleClass compute_cls)
{
    executeOps(1, compute_cls);
    MemLevel level;
    const Cycles latency = mem_->l1Access(addr, level);
    if (level == MemLevel::L1)
        return; // pipelined, address-generation charged above
    const Cycles beyond_l1 = latency - mem_->params().l1Latency;
    breakdown_[CycleClass::Cache] += static_cast<Cycles>(
        std::llround(static_cast<double>(beyond_l1) *
                     params_.missStallFraction));
}

void
CoreModel::loadOverlapped(Addr addr, unsigned mlp,
                          CycleClass compute_cls)
{
    if (mlp == 0)
        fatal("load MLP must be positive");
    executeOps(1, compute_cls);
    MemLevel level;
    const Cycles latency = mem_->l1Access(addr, level);
    if (level == MemLevel::L1)
        return;
    const Cycles beyond_l1 = latency - mem_->params().l1Latency;
    breakdown_[CycleClass::Cache] += static_cast<Cycles>(
        std::llround(static_cast<double>(beyond_l1) *
                     params_.missStallFraction / mlp));
}

void
CoreModel::addCycles(CycleClass cls, Cycles n)
{
    breakdown_[cls] += n;
}

void
CoreModel::reset()
{
    breakdown_ = CycleBreakdown{};
    predictor_->resetStats();
    mem_->resetStats();
}

} // namespace sc::sim
