#include "sim/cache.hh"

#include "common/logging.hh"

namespace sc::sim {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params)
    : params_(params), stats_(params.name)
{
    if (params_.lineBytes == 0 || !isPowerOfTwo(params_.lineBytes))
        fatal("cache %s: line size must be a power of two",
              params_.name.c_str());
    if (params_.ways == 0)
        fatal("cache %s: needs at least one way", params_.name.c_str());
    std::uint64_t lines = params_.sizeBytes / params_.lineBytes;
    if (lines == 0 || lines % params_.ways != 0)
        fatal("cache %s: size %llu not divisible into %u ways",
              params_.name.c_str(),
              static_cast<unsigned long long>(params_.sizeBytes),
              params_.ways);
    numSets_ = static_cast<std::uint32_t>(lines / params_.ways);
    setsArePow2_ = isPowerOfTwo(numSets_);
    ways_.resize(static_cast<std::size_t>(numSets_) * params_.ways);
}

bool
Cache::access(Addr addr)
{
    const Addr line = lineAddr(addr);
    const std::uint32_t set = setIndex(line);
    Way *base = &ways_[static_cast<std::size_t>(set) * params_.ways];
    ++useClock_;

    Way *victim = base;
    for (std::uint32_t w = 0; w < params_.ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lastUse = useClock_;
            ++stats_.counter("hits");
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->tag = line;
    victim->lastUse = useClock_;
    ++stats_.counter("misses");
    return false;
}

bool
Cache::contains(Addr addr) const
{
    const Addr line = lineAddr(addr);
    const std::uint32_t set = setIndex(line);
    const Way *base = &ways_[static_cast<std::size_t>(set) * params_.ways];
    for (std::uint32_t w = 0; w < params_.ways; ++w)
        if (base[w].valid && base[w].tag == line)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &way : ways_)
        way.valid = false;
}

} // namespace sc::sim
