/**
 * @file
 * Branch predictors used by the CPU baseline model.
 *
 * The paper's Fig. 9 shows misprediction cycles dominating the CPU's
 * intersection loops. We drive a real predictor with the actual
 * advance-direction outcome sequence of each set operation, so the
 * misprediction rate emerges from data rather than a fudge factor.
 */

#ifndef SPARSECORE_SIM_BRANCH_PREDICTOR_HH
#define SPARSECORE_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace sc::sim {

/** Abstract predictor: predict, then update with the outcome. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict+update for one dynamic branch at address pc.
     *  @return true when the prediction matched the outcome. */
    virtual bool predict(std::uint64_t pc, bool taken) = 0;

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    double
    mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) /
                              static_cast<double>(lookups_)
                        : 0.0;
    }
    void resetStats() { lookups_ = mispredicts_ = 0; }

  protected:
    /** Record one resolved branch. */
    void
    record(bool correct)
    {
        ++lookups_;
        if (!correct)
            ++mispredicts_;
    }

  private:
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

/** Classic table of 2-bit saturating counters indexed by pc. */
class TwoBitPredictor : public BranchPredictor
{
  public:
    explicit TwoBitPredictor(std::size_t table_size = 4096);

    bool predict(std::uint64_t pc, bool taken) override;

  private:
    std::vector<std::uint8_t> table_; // 0..3, >=2 predicts taken
};

/** Gshare: global history XOR pc indexing a 2-bit counter table. */
class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(std::size_t table_size = 16384,
                             unsigned history_bits = 12);

    bool predict(std::uint64_t pc, bool taken) override;

  private:
    std::vector<std::uint8_t> table_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

} // namespace sc::sim

#endif // SPARSECORE_SIM_BRANCH_PREDICTOR_HH
