/**
 * @file
 * Mining plans: the compiler IR for pattern enumeration.
 *
 * A plan fixes an enumeration order over the pattern's vertices; each
 * level (one per vertex after the first) describes how the candidate
 * set is computed from earlier vertices' neighbor lists:
 *   C_l = (intersection of N(v_c) for c in connect)
 *         - (union of N(v_d) for d in disconnect)   [vertex-induced]
 *         - {earlier vertices that could still appear}
 *   bounded above by min(v_b for b in bounds)       [symmetry breaking]
 * The planner (planner.hh) derives plans from patterns; the executor
 * (executor.hh) runs them against any ExecBackend.
 */

#ifndef SPARSECORE_GPM_PLAN_HH
#define SPARSECORE_GPM_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpm/pattern.hh"

namespace sc::gpm {

/** Candidate-set recipe for one enumeration level. */
struct LevelPlan
{
    /** Earlier positions whose neighbor lists are intersected. */
    std::vector<unsigned> connect;
    /** Earlier positions whose neighbor lists are subtracted
     *  (vertex-induced patterns only). */
    std::vector<unsigned> disconnect;
    /** Earlier positions upper-bounding this vertex (v_l < v_b);
     *  the effective bound is the runtime minimum. */
    std::vector<unsigned> bounds;
    /** Earlier positions that may appear in the candidate set and
     *  must be subtracted for distinctness. */
    std::vector<unsigned> priorExclude;
    /** C_l = op(C_{l-1}, N(v_{l-1})): reuse the previous set. */
    bool incremental = false;
};

/** A complete enumeration plan for one pattern. */
struct MiningPlan
{
    Pattern pattern;
    /** order[position] = pattern vertex enumerated at that position. */
    std::vector<unsigned> order;
    /** One per position 1..k-1 (position 0 iterates all vertices). */
    std::vector<LevelPlan> levels;
    /** Embeddings are only counted, never materialized. */
    bool countOnly = true;
    /** Vertex-induced (subtract non-adjacent) vs edge-induced. */
    bool vertexInduced = true;
    /** Lower the final counting level to S_NESTINTER when the
     *  backend supports it. */
    bool useNested = false;

    unsigned numPositions() const
    {
        return static_cast<unsigned>(order.size());
    }

    /** Human-readable pseudo-code of the plan. */
    std::string describe() const;
};

} // namespace sc::gpm

#endif // SPARSECORE_GPM_PLAN_HH
