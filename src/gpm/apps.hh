/**
 * @file
 * The Table-3 GPM application registry: triangle (T / TS without
 * nested intersection), three-chain (TC), tailed triangle (TT),
 * 3-motif (TM), 4/5-clique (4C/4CS, 5C/5CS), and FSM.
 */

#ifndef SPARSECORE_GPM_APPS_HH
#define SPARSECORE_GPM_APPS_HH

#include <string>
#include <vector>

#include "backend/exec_backend.hh"
#include "graph/csr_graph.hh"
#include "graph/labeled_graph.hh"
#include "gpm/executor.hh"
#include "gpm/plan.hh"

namespace sc::gpm {

/** Application identifiers (Table 3 + the *S variants of §6.3.2). */
enum class GpmApp : unsigned
{
    T,   ///< triangle counting (nested intersection)
    TS,  ///< triangle counting (explicit loop)
    TC,  ///< three-chain counting
    TT,  ///< tailed-triangle counting
    TM,  ///< 3-motif (triangle + three-chain)
    C4,  ///< 4-clique (nested)
    C4S, ///< 4-clique (explicit loop)
    C5,  ///< 5-clique (nested)
    C5S, ///< 5-clique (explicit loop)
    M4,  ///< 4-motif (all six connected 4-vertex patterns)
    FSM, ///< frequent subgraph mining
};

/** Short display name ("T", "TC", ...). */
const char *gpmAppName(GpmApp app);
/** All apps in Fig. 8 order. */
std::vector<GpmApp> allGpmApps();
/** The apps used by Figs. 7/9 (no *S variants except TS). */
std::vector<GpmApp> figureSevenApps();

/** Plans implementing an app (FSM has none — it runs via runFsm). */
std::vector<MiningPlan> gpmAppPlans(GpmApp app);

/**
 * Run an app on a graph against a backend.
 * @param root_stride process every stride-th start vertex (>=1);
 *        benchmarks use sampling on the largest graphs, tests use 1
 */
GpmRunResult runGpmApp(GpmApp app, const graph::CsrGraph &g,
                       backend::ExecBackend &b);

/** FSM needs labels and a support threshold; see gpm/fsm.hh. */

} // namespace sc::gpm

#endif // SPARSECORE_GPM_APPS_HH
