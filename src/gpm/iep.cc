#include "gpm/iep.hh"

#include "common/logging.hh"
#include "gpm/apps.hh"
#include "gpm/planner.hh"

namespace sc::gpm {

namespace {

/** The arithmetic pass: sum of C(deg(v), 2) over sampled roots. */
std::uint64_t
wedgePairs(const graph::CsrGraph &g, backend::ExecBackend &backend,
           unsigned root_stride)
{
    std::uint64_t pairs = 0;
    for (VertexId v = 0; v < g.numVertices(); v += root_stride) {
        // deg(v) from the vertex array: one load plus the C(d,2)
        // arithmetic and loop control.
        backend.scalarLoad(g.vertexEntryAddr(v));
        backend.scalarOps(4);
        const std::uint64_t d = g.degree(v);
        pairs += d * (d - 1) / 2;
    }
    return pairs;
}

/** Triangles through the regular plan, inside an open backend
 *  session. */
std::uint64_t
triangles(const graph::CsrGraph &g, backend::ExecBackend &backend,
          unsigned root_stride)
{
    PlanExecutor executor(g, backend);
    executor.setRootStride(root_stride);
    return executor
        .runManyNoLifecycle(gpmAppPlans(
            backend.caps().nested ? GpmApp::T : GpmApp::TS))
        .embeddings;
}

} // namespace

GpmRunResult
runThreeChainIep(const graph::CsrGraph &g,
                 backend::ExecBackend &backend, unsigned root_stride)
{
    backend.begin();
    const std::uint64_t tri = triangles(g, backend, root_stride);
    const std::uint64_t pairs = wedgePairs(g, backend, root_stride);

    GpmRunResult result;
    // Each triangle closes one wedge at each of its three corners.
    result.embeddings = pairs - 3 * tri;
    result.cycles = backend.finish();
    result.breakdown = backend.breakdown();
    return result;
}

GpmRunResult
runThreeMotifIep(const graph::CsrGraph &g,
                 backend::ExecBackend &backend, unsigned root_stride)
{
    backend.begin();
    const std::uint64_t tri = triangles(g, backend, root_stride);
    const std::uint64_t pairs = wedgePairs(g, backend, root_stride);

    GpmRunResult result;
    result.embeddings = pairs - 2 * tri; // chains + triangles
    result.cycles = backend.finish();
    result.breakdown = backend.breakdown();
    return result;
}

} // namespace sc::gpm
