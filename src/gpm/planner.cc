#include "gpm/planner.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "gpm/isomorphism.hh"

namespace sc::gpm {

std::vector<unsigned>
identityOrder(unsigned k)
{
    std::vector<unsigned> order(k);
    std::iota(order.begin(), order.end(), 0u);
    return order;
}

MiningPlan
buildPlan(const Pattern &pattern, std::vector<unsigned> order,
          bool vertex_induced, bool use_nested)
{
    const unsigned k = pattern.numVertices();
    if (order.size() != k)
        fatal("order size %zu != pattern size %u", order.size(), k);
    if (!pattern.isConnected())
        fatal("pattern '%s' is not connected", pattern.name().c_str());

    // position of each pattern vertex
    std::vector<unsigned> pos(k);
    for (unsigned p = 0; p < k; ++p) {
        if (order[p] >= k)
            fatal("order entry %u out of range", order[p]);
        pos[order[p]] = p;
    }

    // Symmetry restrictions in pattern-vertex space -> positions.
    // (a, b) means v_a > v_b; we need pos[a] < pos[b] so the later
    // position is upper-bounded by an already-chosen vertex.
    std::vector<std::pair<unsigned, unsigned>> restrictions;
    for (const auto &[a, b] : symmetryRestrictions(pattern)) {
        if (pos[a] >= pos[b])
            fatal("order incompatible with restriction v%u > v%u of "
                  "pattern '%s'",
                  a, b, pattern.name().c_str());
        restrictions.emplace_back(pos[a], pos[b]);
    }

    MiningPlan plan;
    plan.pattern = pattern;
    plan.order = std::move(order);
    plan.vertexInduced = vertex_induced;
    plan.countOnly = true;

    for (unsigned p = 1; p < k; ++p) {
        LevelPlan lp;
        const unsigned pv = plan.order[p];
        for (unsigned q = 0; q < p; ++q) {
            const unsigned qv = plan.order[q];
            if (pattern.hasEdge(pv, qv))
                lp.connect.push_back(q);
            else if (vertex_induced)
                lp.disconnect.push_back(q);
        }
        if (lp.connect.empty())
            fatal("position %u of pattern '%s' has no earlier "
                  "neighbor; choose a connected order",
                  p, pattern.name().c_str());
        for (const auto &[earlier, later] : restrictions)
            if (later == p)
                lp.bounds.push_back(earlier);

        // Earlier positions that can still appear in the candidate
        // set: not excluded by adjacency (a vertex is never its own
        // neighbor), by subtraction, or by an upper bound on q
        // itself.
        for (unsigned q = 0; q < p; ++q) {
            const bool in_connect =
                std::find(lp.connect.begin(), lp.connect.end(), q) !=
                lp.connect.end();
            const bool in_disconnect =
                std::find(lp.disconnect.begin(), lp.disconnect.end(),
                          q) != lp.disconnect.end();
            const bool bounded_by_q =
                std::find(lp.bounds.begin(), lp.bounds.end(), q) !=
                lp.bounds.end();
            if (!in_connect && !in_disconnect && !bounded_by_q)
                lp.priorExclude.push_back(q);
        }
        plan.levels.push_back(std::move(lp));
    }

    // Incremental reuse: C_p = INTER(C_{p-1}, N(v_{p-1}), bound).
    for (unsigned p = 2; p < k; ++p) {
        LevelPlan &cur = plan.levels[p - 1];
        const LevelPlan &prev = plan.levels[p - 2];
        std::vector<unsigned> expected = prev.connect;
        expected.push_back(p - 1);
        std::sort(expected.begin(), expected.end());
        std::vector<unsigned> have = cur.connect;
        std::sort(have.begin(), have.end());
        const bool connect_ok = have == expected;
        const bool disconnect_ok = cur.disconnect == prev.disconnect;
        const bool bound_ok =
            prev.bounds.empty() ||
            std::find(cur.bounds.begin(), cur.bounds.end(), p - 1) !=
                cur.bounds.end();
        const bool exclude_ok = cur.priorExclude == prev.priorExclude;
        cur.incremental =
            connect_ok && disconnect_ok && bound_ok && exclude_ok;
    }

    // Nested tail: last level must be incremental with an empty
    // disconnect/priorExclude set and bounded by the previous
    // position (C = sum over v in C_prev of |C_prev & N(v)|_{<v}).
    if (use_nested && k >= 3) {
        const LevelPlan &last = plan.levels.back();
        const bool bounded_by_prev =
            std::find(last.bounds.begin(), last.bounds.end(), k - 2) !=
            last.bounds.end();
        plan.useNested = last.incremental && last.disconnect.empty() &&
                         last.priorExclude.empty() && bounded_by_prev;
        if (use_nested && !plan.useNested)
            warn("pattern '%s': nested intersection not applicable; "
                 "falling back to the explicit loop",
                 pattern.name().c_str());
    }
    return plan;
}

} // namespace sc::gpm
