#include "gpm/pattern.hh"

#include "common/logging.hh"

namespace sc::gpm {

Pattern::Pattern(unsigned n, std::string name)
    : n_(n), name_(std::move(name))
{
    if (n == 0 || n > maxPatternVertices)
        fatal("pattern size %u out of range [1, %u]", n,
              maxPatternVertices);
}

void
Pattern::addEdge(unsigned u, unsigned v)
{
    if (u >= n_ || v >= n_ || u == v)
        fatal("bad pattern edge (%u,%u) for %u vertices", u, v, n_);
    adj_[u] |= static_cast<std::uint8_t>(1u << v);
    adj_[v] |= static_cast<std::uint8_t>(1u << u);
}

bool
Pattern::hasEdge(unsigned u, unsigned v) const
{
    return u < n_ && v < n_ && (adj_[u] >> v) & 1u;
}

unsigned
Pattern::numEdges() const
{
    unsigned total = 0;
    for (unsigned v = 0; v < n_; ++v)
        total += degree(v);
    return total / 2;
}

unsigned
Pattern::degree(unsigned v) const
{
    return static_cast<unsigned>(__builtin_popcount(adj_[v]));
}

bool
Pattern::isConnected() const
{
    if (n_ == 0)
        return false;
    std::uint8_t visited = 1;
    std::uint8_t frontier = 1;
    while (frontier) {
        std::uint8_t next = 0;
        for (unsigned v = 0; v < n_; ++v)
            if ((frontier >> v) & 1u)
                next |= adj_[v];
        frontier = next & static_cast<std::uint8_t>(~visited);
        visited |= next;
    }
    return visited == (1u << n_) - 1;
}

Pattern
Pattern::triangle()
{
    return clique(3);
}

Pattern
Pattern::threeChain()
{
    return path(3);
}

Pattern
Pattern::tailedTriangle()
{
    // Vertices: 0,2 = symmetric triangle vertices, 1 = tail-bearing
    // triangle vertex, 3 = tail (matches the Fig. 2 role order).
    Pattern p(4, "tailed-triangle");
    p.addEdge(0, 1);
    p.addEdge(0, 2);
    p.addEdge(1, 2);
    p.addEdge(1, 3);
    return p;
}

Pattern
Pattern::clique(unsigned k)
{
    Pattern p(k, std::to_string(k) + "-clique");
    for (unsigned u = 0; u < k; ++u)
        for (unsigned v = u + 1; v < k; ++v)
            p.addEdge(u, v);
    return p;
}

Pattern
Pattern::path(unsigned k)
{
    Pattern p(k, std::to_string(k) + "-path");
    for (unsigned v = 0; v + 1 < k; ++v)
        p.addEdge(v, v + 1);
    return p;
}

Pattern
Pattern::star(unsigned k)
{
    Pattern p(k + 1, std::to_string(k) + "-star");
    for (unsigned v = 1; v <= k; ++v)
        p.addEdge(0, v);
    return p;
}

Pattern
Pattern::cycle(unsigned k)
{
    if (k < 3)
        fatal("cycles need at least three vertices");
    Pattern p(k, std::to_string(k) + "-cycle");
    for (unsigned v = 0; v < k; ++v)
        p.addEdge(v, (v + 1) % k);
    return p;
}

Pattern
Pattern::diamond()
{
    // K4 minus the (2,3) edge: 0 and 1 are the degree-3 vertices.
    Pattern p(4, "diamond");
    p.addEdge(0, 1);
    p.addEdge(0, 2);
    p.addEdge(0, 3);
    p.addEdge(1, 2);
    p.addEdge(1, 3);
    return p;
}

} // namespace sc::gpm
