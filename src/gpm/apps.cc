#include "gpm/apps.hh"

#include "common/logging.hh"
#include "gpm/planner.hh"

namespace sc::gpm {

const char *
gpmAppName(GpmApp app)
{
    switch (app) {
      case GpmApp::T:
        return "T";
      case GpmApp::TS:
        return "TS";
      case GpmApp::TC:
        return "TC";
      case GpmApp::TT:
        return "TT";
      case GpmApp::TM:
        return "TM";
      case GpmApp::C4:
        return "4C";
      case GpmApp::C4S:
        return "4CS";
      case GpmApp::C5:
        return "5C";
      case GpmApp::C5S:
        return "5CS";
      case GpmApp::M4:
        return "4M";
      case GpmApp::FSM:
        return "FSM";
      default:
        panic("unknown GPM app %u", static_cast<unsigned>(app));
    }
}

std::vector<GpmApp>
allGpmApps()
{
    return {GpmApp::TC, GpmApp::TM, GpmApp::TS, GpmApp::T, GpmApp::TT,
            GpmApp::C4, GpmApp::C5, GpmApp::C4S, GpmApp::C5S};
}

std::vector<GpmApp>
figureSevenApps()
{
    return {GpmApp::TC, GpmApp::TM, GpmApp::TT, GpmApp::T, GpmApp::C4,
            GpmApp::C5};
}

std::vector<MiningPlan>
gpmAppPlans(GpmApp app)
{
    switch (app) {
      case GpmApp::T:
        return {buildPlan(Pattern::triangle(), identityOrder(3), true,
                          true)};
      case GpmApp::TS:
        return {buildPlan(Pattern::triangle(), identityOrder(3), true,
                          false)};
      case GpmApp::TC:
        return {buildPlan(Pattern::threeChain(), identityOrder(3), true,
                          false)};
      case GpmApp::TT:
        return {buildPlan(Pattern::tailedTriangle(), identityOrder(4),
                          true, false)};
      case GpmApp::TM:
        // 3-motif: count every connected 3-vertex pattern.
        return {buildPlan(Pattern::triangle(), identityOrder(3), true,
                          false),
                buildPlan(Pattern::threeChain(), identityOrder(3), true,
                          false)};
      case GpmApp::C4:
        return {buildPlan(Pattern::clique(4), identityOrder(4), true,
                          true)};
      case GpmApp::C4S:
        return {buildPlan(Pattern::clique(4), identityOrder(4), true,
                          false)};
      case GpmApp::C5:
        return {buildPlan(Pattern::clique(5), identityOrder(5), true,
                          true)};
      case GpmApp::C5S:
        return {buildPlan(Pattern::clique(5), identityOrder(5), true,
                          false)};
      case GpmApp::M4:
        // 4-motif: every connected 4-vertex pattern, vertex-induced.
        return {buildPlan(Pattern::path(4), identityOrder(4), true,
                          false),
                buildPlan(Pattern::star(3), identityOrder(4), true,
                          false),
                buildPlan(Pattern::cycle(4), identityOrder(4), true,
                          false),
                buildPlan(Pattern::tailedTriangle(), identityOrder(4),
                          true, false),
                buildPlan(Pattern::diamond(), identityOrder(4), true,
                          false),
                buildPlan(Pattern::clique(4), identityOrder(4), true,
                          true)};
      case GpmApp::FSM:
        fatal("FSM runs through gpm/fsm.hh, not plans");
      default:
        panic("unknown GPM app %u", static_cast<unsigned>(app));
    }
}

GpmRunResult
runGpmApp(GpmApp app, const graph::CsrGraph &g, backend::ExecBackend &b)
{
    PlanExecutor executor(g, b);
    return executor.runMany(gpmAppPlans(app));
}

} // namespace sc::gpm
