/**
 * @file
 * Small-graph isomorphism utilities: automorphism groups, canonical
 * codes (FSM pattern dedup), and the GraphPi/GraphZero-style
 * symmetry-breaking restriction generation used by the planner.
 */

#ifndef SPARSECORE_GPM_ISOMORPHISM_HH
#define SPARSECORE_GPM_ISOMORPHISM_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "gpm/pattern.hh"

namespace sc::gpm {

/** A vertex permutation of a pattern. */
using Permutation = std::vector<unsigned>;

/** All automorphisms of a pattern (includes the identity). */
std::vector<Permutation> automorphisms(const Pattern &p);

/** True when the two patterns are isomorphic. */
bool isomorphic(const Pattern &a, const Pattern &b);

/**
 * Canonical code: the lexicographically smallest adjacency-bitmask
 * encoding over all permutations. Equal codes <=> isomorphic.
 */
std::uint64_t canonicalCode(const Pattern &p);

/**
 * Symmetry-breaking restrictions: ordered pairs (a, b) requiring
 * v_a > v_b during enumeration (so position b is upper-bounded by
 * position a). Generated with the first-difference method over the
 * automorphism group: enforcing all pairs keeps exactly one member of
 * each automorphism orbit (the lexicographically-least embedding).
 */
std::vector<std::pair<unsigned, unsigned>>
symmetryRestrictions(const Pattern &p);

} // namespace sc::gpm

#endif // SPARSECORE_GPM_ISOMORPHISM_HH
