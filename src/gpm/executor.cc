#include "gpm/executor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sc::gpm {

using backend::BackendStream;
using backend::noStream;
using streams::SetOpKind;

namespace {

/** Synthetic address regions for executor-managed buffers. */
constexpr Addr candidateRegion = 0x600000000ull;
constexpr Addr priorSetRegion = 0x690000000ull;
constexpr Addr candidateStride = 0x4000000ull;

/** Branch pc of the outer vertex loop. */
constexpr std::uint64_t pcRootLoop = 0x100;

} // namespace

PlanExecutor::PlanExecutor(const graph::CsrGraph &g,
                           backend::ExecBackend &b)
    : graph_(g), backend_(b)
{
}

void
PlanExecutor::setRootStride(unsigned stride)
{
    setRootRange(0, stride);
}

void
PlanExecutor::setRootRange(unsigned offset, unsigned stride)
{
    if (stride == 0)
        fatal("root stride must be positive");
    if (offset >= stride)
        fatal("root offset %u must be below the stride %u", offset,
              stride);
    rootOffset_ = offset;
    rootStride_ = stride;
}

Key
PlanExecutor::boundValue(const LevelPlan &level) const
{
    Key bound = noBound;
    for (unsigned b : level.bounds)
        bound = std::min(bound, static_cast<Key>(embedding_[b]));
    return bound;
}

BackendStream
PlanExecutor::loadNeighborStream(VertexId v, streams::KeySpan span,
                                 unsigned priority)
{
    return backend_.streamLoad(graph_.edgeListAddr(v),
                               static_cast<std::uint32_t>(span.size()),
                               priority, span);
}

GpmRunResult
PlanExecutor::run(const MiningPlan &plan)
{
    return runMany({plan});
}

GpmRunResult
PlanExecutor::runMany(const std::vector<MiningPlan> &plans,
                      std::vector<std::uint64_t> *counts_out)
{
    backend_.begin();
    GpmRunResult result = runManyNoLifecycle(plans, counts_out);
    result.cycles = backend_.finish();
    result.breakdown = backend_.breakdown();
    return result;
}

GpmRunResult
PlanExecutor::runManyNoLifecycle(const std::vector<MiningPlan> &plans,
                                 std::vector<std::uint64_t> *counts_out)
{
    GpmRunResult result;
    for (const MiningPlan &plan : plans) {
        const std::uint64_t c = runPlan(plan);
        result.embeddings += c;
        if (counts_out)
            counts_out->push_back(c);
    }
    return result;
}

std::uint64_t
PlanExecutor::runPlan(const MiningPlan &plan)
{
    const unsigned k = plan.numPositions();
    if (k < 2)
        fatal("plans need at least two positions");
    embedding_.assign(k, 0);
    sets_.assign(k, CandidateSet{});
    arena_.resize(k);
    arenaTmp_.resize(k);
    count_ = 0;

    const VertexId n = graph_.numVertices();
    for (VertexId v0 = rootOffset_; v0 < n; v0 += rootStride_) {
        // Outer loop control: vertex-array access plus loop handling.
        backend_.scalarLoad(graph_.vertexEntryAddr(v0));
        backend_.scalarOps(3);
        backend_.scalarBranch(pcRootLoop, v0 + 1 < n);
        if (graph_.degree(v0) == 0)
            continue;
        embedding_[0] = v0;
        recurse(plan, 1);
    }
    return count_;
}

void
PlanExecutor::recurse(const MiningPlan &plan, unsigned position)
{
    const unsigned k = plan.numPositions();
    const CandidateSet *prev =
        position >= 2 ? &sets_[position - 1] : nullptr;

    CandidateSet cand;
    const bool produced =
        buildCandidates(plan, position, prev, cand);
    if (!produced)
        return; // count accumulated directly

    sets_[position] = cand;

    const bool nested_here =
        plan.useNested && plan.countOnly && position + 2 == k;
    if (nested_here) {
        nestedTail(plan, cand);
    } else if (position + 1 < k || !plan.countOnly) {
        backend_.iterateStream(cand.handle, cand.keys.size(), 3);
        for (const Key v : cand.keys) {
            embedding_[position] = v;
            recurse(plan, position + 1);
        }
    } else {
        // Final level reached with a materialized set (no final op
        // was available to count): its size is the count.
        backend_.consumeStream(cand.handle);
        backend_.scalarOps(1);
        count_ += cand.keys.size();
    }

    if (cand.ownsHandle)
        backend_.streamFree(cand.handle);
    sets_[position] = CandidateSet{};
}

bool
PlanExecutor::buildCandidates(const MiningPlan &plan, unsigned position,
                              const CandidateSet *prev,
                              CandidateSet &out)
{
    const unsigned k = plan.numPositions();
    const LevelPlan &level = plan.levels[position - 1];
    const bool nested_covers_final = plan.useNested && plan.countOnly;
    const bool final_count = plan.countOnly && position + 1 == k &&
                             !nested_covers_final;
    const Key bv = boundValue(level);

    // ---- pending operation list ----
    struct PendingOp
    {
        SetOpKind kind;
        VertexId vertex;   // operand edge list (when !priorSet)
        bool priorSet;
    };
    std::vector<PendingOp> ops;

    streams::KeySpan base;
    BackendStream base_handle = noStream;
    bool base_owned = false;
    bool base_loaded = false;

    auto sliced_neighbors = [&](VertexId v) -> streams::KeySpan {
        auto full = graph_.neighbors(v);
        if (bv == noBound)
            return full;
        if (static_cast<Key>(v) == bv) {
            // Hardware shortcut: the CSR offset array (GFR2).
            backend_.scalarOps(1);
            return graph_.neighborsBelow(v);
        }
        // Generic slice: binary search for the bound.
        backend_.scalarOps(4);
        auto it = std::lower_bound(full.begin(), full.end(), bv);
        return full.subspan(0, static_cast<std::size_t>(
                                   it - full.begin()));
    };

    if (level.incremental) {
        if (!prev || prev->handle == noStream)
            panic("incremental level %u without a previous set",
                  position);
        base = prev->keys;
        base_handle = prev->handle;
        base_loaded = true;
        ops.push_back({SetOpKind::Intersect,
                       embedding_[position - 1], false});
    } else {
        const unsigned c0 = level.connect.front();
        base = sliced_neighbors(embedding_[c0]);
        base_handle = noStream; // loaded lazily if ops exist
        for (std::size_t i = 1; i < level.connect.size(); ++i)
            ops.push_back({SetOpKind::Intersect,
                           embedding_[level.connect[i]], false});
    }
    for (unsigned d : level.disconnect)
        ops.push_back({SetOpKind::Subtract, embedding_[d], false});

    std::vector<Key> prior_values;
    for (unsigned q : level.priorExclude)
        prior_values.push_back(embedding_[q]);
    std::sort(prior_values.begin(), prior_values.end());
    prior_values.erase(
        std::unique(prior_values.begin(), prior_values.end()),
        prior_values.end());
    if (!prior_values.empty())
        ops.push_back({SetOpKind::Subtract, 0, true});

    // ---- no ops: the sliced base IS the candidate set ----
    if (ops.empty()) {
        if (final_count) {
            backend_.scalarOps(2); // length from offsets
            count_ += base.size();
            return false;
        }
        const unsigned c0 = level.connect.front();
        out.keys = base;
        out.handle = loadNeighborStream(
            embedding_[c0], base,
            level.connect.front() + 1 < position ? 1 : 0);
        out.ownsHandle = true;
        return true;
    }

    // ---- load the base stream if it is an edge list ----
    if (!base_loaded) {
        const unsigned c0 = level.connect.front();
        const unsigned priority = c0 + 1 < position ? 1 : 0;
        base_handle =
            loadNeighborStream(embedding_[c0], base, priority);
        base_owned = true;
        base_loaded = true;
    }

    // ---- execute the chain ----
    streams::KeySpan cur = base;
    BackendStream cur_handle = base_handle;
    bool cur_owned = base_owned;
    std::vector<Key> *buf = &arena_[position];
    std::vector<Key> *tmp = &arenaTmp_[position];
    const Addr out_addr = candidateRegion + position * candidateStride;

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const PendingOp &op = ops[i];
        const bool last = i + 1 == ops.size();

        // Operand stream.
        streams::KeySpan operand;
        BackendStream operand_handle;
        if (op.priorSet) {
            operand = prior_values;
            operand_handle = backend_.streamLoad(
                priorSetRegion + position * 256,
                static_cast<std::uint32_t>(prior_values.size()), 0,
                operand);
        } else {
            // Slice the operand when the bound equals the operand
            // vertex itself (compiler uses the CSR offset array).
            streams::KeySpan span =
                bv != noBound && static_cast<Key>(op.vertex) == bv
                    ? graph_.neighborsBelow(op.vertex)
                    : graph_.neighbors(op.vertex);
            const unsigned priority =
                static_cast<Key>(op.vertex) ==
                        embedding_[position - 1]
                    ? 0
                    : 1;
            operand_handle =
                loadNeighborStream(op.vertex, span, priority);
            operand = span;
        }

        if (last && final_count) {
            std::uint64_t cnt;
            if (op.kind == SetOpKind::Intersect) {
                cnt = streams::runSetOpCount(SetOpKind::Intersect,
                                             cur, operand, bv)
                          .count;
                backend_.setOpCount(op.kind, cur_handle,
                                    operand_handle, cur, operand, bv,
                                    cnt);
            } else {
                // Counting rewrite (the compiler's algebraic
                // optimization): |A - B| below the bound equals
                // |A below bound| - |A & B below bound|, so the
                // expensive subtraction becomes a cheap intersection
                // count plus scalar arithmetic. Both substrates run
                // the same rewritten code.
                std::uint64_t below_a = cur.size();
                if (bv != noBound) {
                    auto it = std::lower_bound(cur.begin(), cur.end(),
                                               bv);
                    below_a = static_cast<std::uint64_t>(
                        it - cur.begin());
                    backend_.scalarOps(4); // binary search
                }
                const std::uint64_t inter =
                    streams::runSetOpCount(SetOpKind::Intersect, cur,
                                           operand, bv)
                        .count;
                backend_.setOpCount(SetOpKind::Intersect, cur_handle,
                                    operand_handle, cur, operand, bv,
                                    inter);
                backend_.scalarOps(2); // the subtraction + accumulate
                cnt = below_a - inter;
            }
            count_ += cnt;
            backend_.streamFree(operand_handle);
            if (cur_owned)
                backend_.streamFree(cur_handle);
            return false;
        }

        buf->clear();
        streams::runSetOp(op.kind, cur, operand, bv, buf);
        const BackendStream result_handle = backend_.setOp(
            op.kind, cur_handle, operand_handle, cur, operand, bv,
            *buf, out_addr);

        backend_.streamFree(operand_handle);
        if (cur_owned)
            backend_.streamFree(cur_handle);

        cur = *buf;
        cur_handle = result_handle;
        cur_owned = true;
        std::swap(buf, tmp);
    }

    // Keep the final result in arena_[position] so the span stays
    // valid across deeper recursion (buffers alternate; after the
    // swap, `tmp` points at the buffer that holds the result).
    if (tmp != &arena_[position])
        std::swap(arena_[position], arenaTmp_[position]);
    out.keys = cur.empty()
                   ? streams::KeySpan{}
                   : streams::KeySpan{arena_[position].data(),
                                      arena_[position].size()};
    out.handle = cur_handle;
    out.ownsHandle = cur_owned;
    return true;
}

void
PlanExecutor::nestedTail(const MiningPlan &plan,
                         const CandidateSet &set)
{
    (void)plan;
    if (set.keys.empty())
        return;

    // Build the group once; the backend decides the execution shape
    // (S_NESTINTER on nested-capable SparseCore designs, the explicit
    // per-element loop everywhere else via the ExecBackend default).
    std::vector<backend::NestedItem> items;
    items.reserve(set.keys.size());
    std::uint64_t total = 0;
    for (const Key v : set.keys) {
        auto below = graph_.neighborsBelow(v);
        const std::uint64_t cnt =
            streams::runSetOpCount(SetOpKind::Intersect, set.keys,
                                   below, static_cast<Key>(v))
                .count;
        items.push_back({graph_.vertexEntryAddr(v),
                         graph_.edgeListAddr(v), below,
                         static_cast<Key>(v), cnt});
        total += cnt;
    }
    backend_.nestedIntersect(set.handle, set.keys, items);
    count_ += total;
}

} // namespace sc::gpm
