/**
 * @file
 * Inclusion-Exclusion-Principle (IEP) counting — the GraphPi-style
 * software optimization the paper uses as its flexibility argument
 * (§1: FlexMiner's fixed exploration engine cannot adopt it, while
 * SparseCore "can easily benefit from it by implementing the
 * optimization in software").
 *
 * For vertex-induced three-chain counting the IEP identity is
 *     #chains = sum_v C(deg(v), 2) - 3 * #triangles:
 * every unordered neighbor pair of a center v forms either an induced
 * chain or a triangle, and each triangle is counted once per vertex.
 * The expensive per-edge subtraction of the direct plan collapses
 * into one pass of scalar arithmetic plus a nested-intersection
 * triangle count.
 */

#ifndef SPARSECORE_GPM_IEP_HH
#define SPARSECORE_GPM_IEP_HH

#include "backend/exec_backend.hh"
#include "graph/csr_graph.hh"
#include "gpm/executor.hh"

namespace sc::gpm {

/**
 * Count vertex-induced three-chains with the IEP rewrite.
 * Produces the same count as GpmApp::TC at a fraction of the work.
 */
GpmRunResult runThreeChainIep(const graph::CsrGraph &g,
                              backend::ExecBackend &backend,
                              unsigned root_stride = 1);

/**
 * 3-motif via IEP: triangles are counted directly (nested
 * intersection); chains come from the identity above. Returns
 * triangles + chains like GpmApp::TM.
 */
GpmRunResult runThreeMotifIep(const graph::CsrGraph &g,
                              backend::ExecBackend &backend,
                              unsigned root_stride = 1);

} // namespace sc::gpm

#endif // SPARSECORE_GPM_IEP_HH
