/**
 * @file
 * Plan executor: runs a MiningPlan over a CSR graph against any
 * ExecBackend. The enumeration is performed functionally exactly once
 * (producing the embedding count) while every stream load, set
 * operation, nested intersection and loop is reported to the backend
 * for timing. Backends without S_NESTINTER support get the explicit
 * per-element loop (the paper's TS/4CS/5CS variants and the CPU
 * baseline).
 */

#ifndef SPARSECORE_GPM_EXECUTOR_HH
#define SPARSECORE_GPM_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "backend/exec_backend.hh"
#include "graph/csr_graph.hh"
#include "gpm/plan.hh"

namespace sc::gpm {

/** Result of one mining run. */
struct GpmRunResult
{
    std::uint64_t embeddings = 0; ///< symmetry-broken embedding count
    Cycles cycles = 0;            ///< backend cycles
    sim::CycleBreakdown breakdown;
};

/** Executes plans against a backend. */
class PlanExecutor
{
  public:
    PlanExecutor(const graph::CsrGraph &g, backend::ExecBackend &b);

    /**
     * Root sampling: process every stride-th start vertex. Benchmarks
     * sample the largest graphs to bound simulation time (speedups
     * are cycle ratios, so identical sampling on every substrate
     * keeps them meaningful); tests always use stride 1.
     */
    void setRootStride(unsigned stride);

    /**
     * Root partitioning for multi-core runs: this executor processes
     * vertices offset, offset+stride, offset+2*stride, ... — the
     * interleaved split that balances the degree skew across cores.
     */
    void setRootRange(unsigned offset, unsigned stride);

    /** Run one plan end to end (begin/finish the backend). */
    GpmRunResult run(const MiningPlan &plan);

    /**
     * Run several plans as one application (e.g. 3-motif = triangle +
     * three-chain); per-plan counts appended to counts_out.
     */
    GpmRunResult runMany(const std::vector<MiningPlan> &plans,
                         std::vector<std::uint64_t> *counts_out = nullptr);

    /**
     * Run plans WITHOUT calling the backend's begin()/finish():
     * composable building block for hybrid algorithms (e.g. IEP
     * counting mixes a plan run with scalar arithmetic in a single
     * backend session). Cycles/breakdown in the result are zero; the
     * caller finishes the backend itself.
     */
    GpmRunResult
    runManyNoLifecycle(const std::vector<MiningPlan> &plans,
                       std::vector<std::uint64_t> *counts_out = nullptr);

  private:
    struct CandidateSet
    {
        streams::KeySpan keys;          ///< current candidates
        backend::BackendStream handle = backend::noStream;
        bool ownsHandle = false;        ///< executor must free it
    };

    /** Enumerate one plan without backend begin/finish. */
    std::uint64_t runPlan(const MiningPlan &plan);

    void recurse(const MiningPlan &plan, unsigned position);

    /**
     * Build the candidate set for `position` from the current
     * embedding; for the final counting level the last operation is a
     * count. Returns true when a candidate set was produced (false =>
     * the count was accumulated directly).
     */
    bool buildCandidates(const MiningPlan &plan, unsigned position,
                         const CandidateSet *prev, CandidateSet &out);

    /** Nested tail: S_NESTINTER over the given candidate set. */
    void nestedTail(const MiningPlan &plan, const CandidateSet &set);

    /** Effective upper bound of a level (runtime min), or noBound. */
    Key boundValue(const LevelPlan &level) const;

    /** Load a (possibly sliced) neighbor list as a backend stream. */
    backend::BackendStream loadNeighborStream(VertexId v,
                                              streams::KeySpan span,
                                              unsigned priority);

    const graph::CsrGraph &graph_;
    backend::ExecBackend &backend_;

    std::vector<VertexId> embedding_;
    std::vector<CandidateSet> sets_; ///< per position
    /** Per-level scratch buffers for intermediate op outputs. */
    std::vector<std::vector<Key>> arena_;
    std::vector<std::vector<Key>> arenaTmp_;
    std::uint64_t count_ = 0;
    unsigned rootStride_ = 1;
    unsigned rootOffset_ = 0;
};

} // namespace sc::gpm

#endif // SPARSECORE_GPM_EXECUTOR_HH
