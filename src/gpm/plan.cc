#include "gpm/plan.hh"

#include <sstream>

namespace sc::gpm {

std::string
MiningPlan::describe() const
{
    std::ostringstream os;
    os << "plan for " << pattern.name() << " ("
       << (vertexInduced ? "vertex" : "edge") << "-induced"
       << (useNested ? ", nested tail" : "") << ")\n";
    os << "for v0 in V:\n";
    std::string indent = "  ";
    for (unsigned l = 0; l < levels.size(); ++l) {
        const LevelPlan &lp = levels[l];
        os << indent << "C" << l + 1 << " = ";
        bool first = true;
        for (unsigned c : lp.connect) {
            os << (first ? "" : " & ") << "N(v" << c << ")";
            first = false;
        }
        for (unsigned d : lp.disconnect)
            os << " - N(v" << d << ")";
        for (unsigned e : lp.priorExclude)
            os << " - {v" << e << "}";
        if (!lp.bounds.empty()) {
            os << "  [< min(";
            for (std::size_t i = 0; i < lp.bounds.size(); ++i)
                os << (i ? "," : "") << "v" << lp.bounds[i];
            os << ")]";
        }
        if (lp.incremental)
            os << "  (incremental from C" << l << ")";
        os << "\n";
        const bool last = l + 1 == levels.size();
        if (last && countOnly) {
            os << indent << "count += |C" << l + 1 << "|";
            if (useNested && l > 0)
                os << "  via S_NESTINTER(C" << l << ")";
            os << "\n";
        } else {
            os << indent << "for v" << l + 1 << " in C" << l + 1
               << ":\n";
            indent += "  ";
        }
    }
    return os.str();
}

} // namespace sc::gpm
