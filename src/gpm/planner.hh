/**
 * @file
 * The GPM plan generator — the software half of the paper's compiler
 * (InHouseAutomine-equivalent). Takes a pattern plus an enumeration
 * order, derives symmetry-breaking restrictions from the automorphism
 * group, classifies connect/disconnect sets, detects incremental
 * candidate reuse, and decides nested-intersection applicability.
 */

#ifndef SPARSECORE_GPM_PLANNER_HH
#define SPARSECORE_GPM_PLANNER_HH

#include <vector>

#include "gpm/plan.hh"

namespace sc::gpm {

/**
 * Build a plan.
 * @param pattern the pattern to enumerate
 * @param order enumeration order (order[pos] = pattern vertex); every
 *        position after the first must be adjacent to an earlier one,
 *        and every symmetry restriction must point from an earlier to
 *        a later position (fatal() otherwise — pick a compatible
 *        order)
 * @param vertex_induced vertex-induced (subtract non-neighbors) or
 *        edge-induced semantics
 * @param use_nested lower the final counting level to S_NESTINTER on
 *        capable backends
 */
MiningPlan buildPlan(const Pattern &pattern, std::vector<unsigned> order,
                     bool vertex_induced, bool use_nested);

/** Natural order 0..k-1. */
std::vector<unsigned> identityOrder(unsigned k);

} // namespace sc::gpm

#endif // SPARSECORE_GPM_PLANNER_HH
