#include "gpm/isomorphism.hh"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/logging.hh"

namespace sc::gpm {

namespace {

/** Apply permutation perm to p: vertex v of p becomes perm[v]. */
Pattern
permute(const Pattern &p, const Permutation &perm)
{
    Pattern out(p.numVertices(), p.name());
    for (unsigned u = 0; u < p.numVertices(); ++u)
        for (unsigned v = u + 1; v < p.numVertices(); ++v)
            if (p.hasEdge(u, v))
                out.addEdge(perm[u], perm[v]);
    return out;
}

bool
sameAdjacency(const Pattern &a, const Pattern &b)
{
    if (a.numVertices() != b.numVertices())
        return false;
    for (unsigned v = 0; v < a.numVertices(); ++v)
        if (a.adjacency(v) != b.adjacency(v))
            return false;
    return true;
}

std::uint64_t
encode(const Pattern &p)
{
    std::uint64_t code = 0;
    for (unsigned v = 0; v < p.numVertices(); ++v)
        code = (code << 8) | p.adjacency(v);
    return code;
}

} // namespace

std::vector<Permutation>
automorphisms(const Pattern &p)
{
    const unsigned n = p.numVertices();
    Permutation perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    std::vector<Permutation> autos;
    do {
        if (sameAdjacency(permute(p, perm), p))
            autos.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return autos;
}

bool
isomorphic(const Pattern &a, const Pattern &b)
{
    if (a.numVertices() != b.numVertices() ||
        a.numEdges() != b.numEdges()) {
        return false;
    }
    const unsigned n = a.numVertices();
    Permutation perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    do {
        if (sameAdjacency(permute(a, perm), b))
            return true;
    } while (std::next_permutation(perm.begin(), perm.end()));
    return false;
}

std::uint64_t
canonicalCode(const Pattern &p)
{
    const unsigned n = p.numVertices();
    Permutation perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    std::uint64_t best = ~std::uint64_t{0};
    do {
        best = std::min(best, encode(permute(p, perm)));
    } while (std::next_permutation(perm.begin(), perm.end()));
    // Tag with the vertex count so codes of different sizes never
    // collide.
    return (static_cast<std::uint64_t>(n) << 56) | best;
}

std::vector<std::pair<unsigned, unsigned>>
symmetryRestrictions(const Pattern &p)
{
    // GraphPi-style first-difference pairs: for each non-identity
    // automorphism sigma, find the first position q with
    // sigma(q) != q and require v_q > v_sigma(q) (keeping the
    // lexicographically-GREATEST member of each orbit, which turns
    // every restriction into an upper bound on the later vertex —
    // the form the bounded stream ISA can exploit). Emitted as
    // (a, b) meaning v_a > v_b; a < b always holds because sigma
    // fixes all positions before its first difference.
    std::set<std::pair<unsigned, unsigned>> pairs;
    for (const auto &sigma : automorphisms(p)) {
        for (unsigned q = 0; q < p.numVertices(); ++q) {
            if (sigma[q] != q) {
                pairs.emplace(q, sigma[q]);
                break;
            }
        }
    }
    return {pairs.begin(), pairs.end()};
}

} // namespace sc::gpm
