/**
 * @file
 * Pattern graphs for GPM: small undirected graphs (<= 8 vertices)
 * stored as per-vertex adjacency bitmasks, with named factories for
 * the Table-3 application patterns.
 */

#ifndef SPARSECORE_GPM_PATTERN_HH
#define SPARSECORE_GPM_PATTERN_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"

namespace sc::gpm {

/** Maximum pattern size supported. */
constexpr unsigned maxPatternVertices = 8;

/** A small undirected pattern graph. */
class Pattern
{
  public:
    Pattern() = default;
    /** @param n vertex count; edges added via addEdge(). */
    explicit Pattern(unsigned n, std::string name = "pattern");

    void addEdge(unsigned u, unsigned v);
    bool hasEdge(unsigned u, unsigned v) const;

    unsigned numVertices() const { return n_; }
    unsigned numEdges() const;
    /** Adjacency bitmask of vertex v. */
    std::uint8_t adjacency(unsigned v) const { return adj_[v]; }
    unsigned degree(unsigned v) const;

    bool isConnected() const;

    const std::string &name() const { return name_; }

    // ---- named factories (Table 3 patterns) ----
    static Pattern triangle();
    /** Path on three vertices (the "three chain"). */
    static Pattern threeChain();
    static Pattern tailedTriangle();
    static Pattern clique(unsigned k);
    /** Path on k vertices. */
    static Pattern path(unsigned k);
    /** Star with k leaves (k+1 vertices). */
    static Pattern star(unsigned k);
    /** Cycle on k vertices. */
    static Pattern cycle(unsigned k);
    /** Diamond: K4 minus one edge. */
    static Pattern diamond();

  private:
    unsigned n_ = 0;
    std::array<std::uint8_t, maxPatternVertices> adj_{};
    std::string name_;
};

} // namespace sc::gpm

#endif // SPARSECORE_GPM_PATTERN_HH
