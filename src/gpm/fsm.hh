/**
 * @file
 * Frequent subgraph mining (FSM) with the minimum image-based (MNI)
 * support metric, on vertex-labeled graphs, for patterns with at most
 * three edges (edge, wedge, triangle, 3-star, 4-path) — the same
 * scope as the paper's §6.2 (which follows Peregrine).
 *
 * Candidate patterns are pruned anti-monotonically (a pattern is only
 * explored when its sub-edges are frequent). Triangle enumeration
 * uses stream intersections and 4-path enumeration uses stream
 * subtractions — the parts SparseCore accelerates; the MNI support
 * bookkeeping is scalar, which is why FSM sees the smallest speedups
 * (§6.3.2).
 */

#ifndef SPARSECORE_GPM_FSM_HH
#define SPARSECORE_GPM_FSM_HH

#include <cstdint>
#include <vector>

#include "backend/exec_backend.hh"
#include "graph/labeled_graph.hh"
#include "sim/core_model.hh"

namespace sc::gpm {

/** Outcome of one FSM run. */
struct FsmResult
{
    unsigned frequentEdges = 0;
    unsigned frequentWedges = 0;
    unsigned frequentTriangles = 0;
    unsigned frequentStars = 0;
    unsigned frequentPaths = 0;
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;

    unsigned
    totalFrequent() const
    {
        return frequentEdges + frequentWedges + frequentTriangles +
               frequentStars + frequentPaths;
    }
};

/**
 * Mine all frequent patterns with <= 3 edges.
 * @param min_support MNI support threshold (paper: 1K and 2K on mico)
 */
FsmResult runFsm(const graph::LabeledGraph &g,
                 backend::ExecBackend &backend,
                 std::uint64_t min_support);

} // namespace sc::gpm

#endif // SPARSECORE_GPM_FSM_HH
