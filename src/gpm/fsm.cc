#include "gpm/fsm.hh"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/logging.hh"
#include "streams/set_ops.hh"

namespace sc::gpm {

using backend::BackendStream;
using graph::Label;
using streams::SetOpKind;

namespace {

/** MNI bookkeeping for one labeled pattern: distinct graph vertices
 *  seen at each pattern position. */
struct MniSets
{
    std::array<std::unordered_set<VertexId>, 4> positions;
    unsigned used = 0;

    std::uint64_t
    support() const
    {
        std::uint64_t s = ~std::uint64_t{0};
        for (unsigned p = 0; p < used; ++p)
            s = std::min(
                s, static_cast<std::uint64_t>(positions[p].size()));
        return used ? s : 0;
    }
};

/** Pattern keys: small label tuples packed into 64 bits with a tag. */
std::uint64_t
edgeKey(Label a, Label b)
{
    if (a > b)
        std::swap(a, b);
    return (1ull << 60) | (static_cast<std::uint64_t>(a) << 16) | b;
}

std::uint64_t
wedgeKey(Label center, Label l1, Label l2)
{
    if (l1 > l2)
        std::swap(l1, l2);
    return (2ull << 60) | (static_cast<std::uint64_t>(center) << 32) |
           (static_cast<std::uint64_t>(l1) << 16) | l2;
}

std::uint64_t
triangleKey(Label a, Label b, Label c)
{
    Label l[3] = {a, b, c};
    std::sort(l, l + 3);
    return (3ull << 60) | (static_cast<std::uint64_t>(l[0]) << 32) |
           (static_cast<std::uint64_t>(l[1]) << 16) | l[2];
}

std::uint64_t
starKey(Label center, Label l1, Label l2, Label l3)
{
    Label l[3] = {l1, l2, l3};
    std::sort(l, l + 3);
    return (4ull << 60) | (static_cast<std::uint64_t>(center) << 48) |
           (static_cast<std::uint64_t>(l[0]) << 32) |
           (static_cast<std::uint64_t>(l[1]) << 16) | l[2];
}

std::uint64_t
pathKey(Label end0, Label mid0, Label mid1, Label end1)
{
    // Canonical orientation: smaller (mid, end) pair first.
    if (std::tie(mid0, end0) > std::tie(mid1, end1)) {
        std::swap(mid0, mid1);
        std::swap(end0, end1);
    }
    return (5ull << 60) | (static_cast<std::uint64_t>(end0) << 48) |
           (static_cast<std::uint64_t>(mid0) << 32) |
           (static_cast<std::uint64_t>(mid1) << 16) | end1;
}

} // namespace

FsmResult
runFsm(const graph::LabeledGraph &lg, backend::ExecBackend &backend,
       std::uint64_t min_support)
{
    const graph::CsrGraph &g = lg.graph();
    backend.begin();

    std::map<std::uint64_t, MniSets> tables;
    auto insert = [&](std::uint64_t key, unsigned pos, VertexId v,
                      unsigned used) {
        MniSets &t = tables[key];
        t.used = std::max(t.used, used);
        t.positions[pos].insert(v);
        backend.scalarOps(4); // hash + insert bookkeeping
    };

    // ---------------- phase 1: labeled edges ----------------
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        backend.scalarLoad(g.vertexEntryAddr(u));
        backend.scalarOps(2);
        auto above = g.neighborsAbove(u);
        backend.iterateStream(backend::noStream, above.size(), 2);
        for (VertexId v : above) {
            backend.scalarLoad(g.edgeListAddr(u));
            const std::uint64_t key = edgeKey(lg.label(u), lg.label(v));
            // Position 0 holds the smaller label's endpoint; with
            // equal labels both endpoints feed both positions.
            if (lg.label(u) == lg.label(v)) {
                insert(key, 0, u, 2);
                insert(key, 0, v, 2);
                insert(key, 1, u, 2);
                insert(key, 1, v, 2);
            } else if (lg.label(u) < lg.label(v)) {
                insert(key, 0, u, 2);
                insert(key, 1, v, 2);
            } else {
                insert(key, 0, v, 2);
                insert(key, 1, u, 2);
            }
        }
    }

    auto frequent = [&](std::uint64_t key) {
        auto it = tables.find(key);
        return it != tables.end() &&
               it->second.support() >= min_support;
    };
    auto edgeFrequent = [&](Label a, Label b) {
        return frequent(edgeKey(a, b));
    };

    FsmResult result;
    for (const auto &[key, t] : tables)
        if (t.support() >= min_support)
            ++result.frequentEdges;

    // ---------------- phase 2: wedges (2 edges) ----------------
    for (VertexId c = 0; c < g.numVertices(); ++c) {
        auto nbrs = g.neighbors(c);
        const Label lc = lg.label(c);
        backend.iterateStream(backend::noStream, nbrs.size(), 2);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            for (std::size_t j = 0; j < i; ++j) {
                backend.scalarOps(3);
                const VertexId v1 = nbrs[i], v2 = nbrs[j];
                const Label l1 = lg.label(v1), l2 = lg.label(v2);
                if (!edgeFrequent(lc, l1) || !edgeFrequent(lc, l2))
                    continue;
                const std::uint64_t key = wedgeKey(lc, l1, l2);
                insert(key, 0, c, 3);
                if (l1 == l2) {
                    insert(key, 1, v1, 3);
                    insert(key, 1, v2, 3);
                    insert(key, 2, v1, 3);
                    insert(key, 2, v2, 3);
                } else if (l1 < l2) {
                    insert(key, 1, v1, 3);
                    insert(key, 2, v2, 3);
                } else {
                    insert(key, 1, v2, 3);
                    insert(key, 2, v1, 3);
                }
            }
        }
    }

    // ---------------- phase 3: triangles (stream intersections) ----
    std::vector<Key> tri_buf;
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        auto below_u = g.neighborsBelow(u);
        if (below_u.empty())
            continue;
        const BackendStream hu = backend.streamLoad(
            g.edgeListAddr(u),
            static_cast<std::uint32_t>(below_u.size()), 1, below_u);
        backend.iterateStream(hu, below_u.size(), 3);
        for (VertexId v : below_u) {
            if (!edgeFrequent(lg.label(u), lg.label(v)))
                continue;
            auto below_v = g.neighborsBelow(v);
            const BackendStream hv = backend.streamLoad(
                g.edgeListAddr(v),
                static_cast<std::uint32_t>(below_v.size()), 0,
                below_v);
            tri_buf.clear();
            streams::runSetOp(SetOpKind::Intersect, below_u, below_v,
                              noBound, &tri_buf);
            const BackendStream hw = backend.setOp(
                SetOpKind::Intersect, hu, hv, below_u, below_v,
                noBound, tri_buf, 0x6f0000000ull);
            backend.iterateStream(hw, tri_buf.size(), 2);
            for (VertexId w : tri_buf) {
                const std::uint64_t key = triangleKey(
                    lg.label(u), lg.label(v), lg.label(w));
                // All three positions share the sorted label tuple;
                // insert each vertex at every position whose label
                // matches.
                Label sorted[3] = {lg.label(u), lg.label(v),
                                   lg.label(w)};
                std::sort(sorted, sorted + 3);
                for (VertexId x : {u, v, w})
                    for (unsigned p = 0; p < 3; ++p)
                        if (lg.label(x) == sorted[p])
                            insert(key, p, x, 3);
            }
            backend.streamFree(hw);
            backend.streamFree(hv);
        }
        backend.streamFree(hu);
    }

    // ---------------- phase 4: 3-stars ----------------
    std::map<Label, std::uint32_t> label_counts;
    for (VertexId c = 0; c < g.numVertices(); ++c) {
        auto nbrs = g.neighbors(c);
        if (nbrs.size() < 3)
            continue;
        const Label lc = lg.label(c);
        label_counts.clear();
        backend.iterateStream(backend::noStream, nbrs.size(), 3);
        for (VertexId v : nbrs)
            ++label_counts[lg.label(v)];
        // For each frequent-edge label multiset {a<=b<=c2} feasible
        // from the counts, credit the center and the leaves.
        std::vector<Label> labels;
        for (const auto &[l, cnt] : label_counts)
            if (edgeFrequent(lc, l))
                labels.push_back(l);
        for (std::size_t i = 0; i < labels.size(); ++i)
            for (std::size_t j = i; j < labels.size(); ++j)
                for (std::size_t k = j; k < labels.size(); ++k) {
                    backend.scalarOps(4);
                    const Label a = labels[i], b = labels[j],
                                c2 = labels[k];
                    std::map<Label, std::uint32_t> need;
                    ++need[a];
                    ++need[b];
                    ++need[c2];
                    bool ok = true;
                    for (const auto &[l, cnt] : need)
                        if (label_counts[l] < cnt)
                            ok = false;
                    if (!ok)
                        continue;
                    const std::uint64_t key = starKey(lc, a, b, c2);
                    insert(key, 0, c, 4);
                    for (VertexId v : nbrs) {
                        const Label lv = lg.label(v);
                        Label sorted[3] = {a, b, c2};
                        for (unsigned p = 0; p < 3; ++p)
                            if (lv == sorted[p])
                                insert(key, p + 1, v, 4);
                    }
                }
    }

    // ---------------- phase 5: 4-paths (stream subtractions) -------
    std::vector<Key> path_buf_a, path_buf_b;
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        auto above_u = g.neighborsAbove(u);
        for (VertexId v : above_u) {
            if (!edgeFrequent(lg.label(u), lg.label(v)))
                continue;
            // A = N(u) - {v}, B = N(v) - {u}: singleton subtractions.
            auto nu = g.neighbors(u);
            auto nv = g.neighbors(v);
            const BackendStream hu = backend.streamLoad(
                g.edgeListAddr(u),
                static_cast<std::uint32_t>(nu.size()), 0, nu);
            const BackendStream hv = backend.streamLoad(
                g.edgeListAddr(v),
                static_cast<std::uint32_t>(nv.size()), 0, nv);
            const Key single_v[1] = {v};
            const Key single_u[1] = {u};
            const BackendStream hsv = backend.streamLoad(
                0x6f8000000ull, 1, 0, streams::KeySpan{single_v, 1});
            const BackendStream hsu = backend.streamLoad(
                0x6f8000100ull, 1, 0, streams::KeySpan{single_u, 1});
            path_buf_a.clear();
            path_buf_b.clear();
            streams::runSetOp(SetOpKind::Subtract, nu,
                              streams::KeySpan{single_v, 1}, noBound,
                              &path_buf_a);
            streams::runSetOp(SetOpKind::Subtract, nv,
                              streams::KeySpan{single_u, 1}, noBound,
                              &path_buf_b);
            const BackendStream ha = backend.setOp(
                SetOpKind::Subtract, hu, hsv, nu,
                streams::KeySpan{single_v, 1}, noBound, path_buf_a,
                0x6f4000000ull);
            const BackendStream hb = backend.setOp(
                SetOpKind::Subtract, hv, hsu, nv,
                streams::KeySpan{single_u, 1}, noBound, path_buf_b,
                0x6f6000000ull);

            const Label lu = lg.label(u), lv = lg.label(v);
            // End w on the u side needs some x != w on the v side.
            backend.iterateStream(ha, path_buf_a.size(), 3);
            for (VertexId w : path_buf_a) {
                const bool completable =
                    path_buf_b.size() >= 2 ||
                    (path_buf_b.size() == 1 && path_buf_b[0] != w);
                if (!completable ||
                    !edgeFrequent(lg.label(w), lu)) {
                    continue;
                }
                // Determine w's end position from the canonical
                // orientation of (end0, mid0, mid1, end1).
                for (VertexId x : path_buf_b) {
                    if (x == w)
                        continue;
                    if (!edgeFrequent(lg.label(x), lv))
                        continue;
                    const std::uint64_t key = pathKey(
                        lg.label(w), lu, lv, lg.label(x));
                    // Positions: 0 = end0, 1 = mid0, 2 = mid1,
                    // 3 = end1 in canonical orientation.
                    const bool flipped =
                        std::make_pair(lv, lg.label(x)) <
                        std::make_pair(lu, lg.label(w));
                    insert(key, flipped ? 3 : 0, w, 4);
                    insert(key, flipped ? 2 : 1, u, 4);
                    insert(key, flipped ? 1 : 2, v, 4);
                    insert(key, flipped ? 0 : 3, x, 4);
                    break; // one witness is enough for w's MNI entry
                }
            }
            // Symmetric pass for the v side ends.
            backend.iterateStream(hb, path_buf_b.size(), 3);
            for (VertexId x : path_buf_b) {
                const bool completable =
                    path_buf_a.size() >= 2 ||
                    (path_buf_a.size() == 1 && path_buf_a[0] != x);
                if (!completable ||
                    !edgeFrequent(lg.label(x), lv)) {
                    continue;
                }
                for (VertexId w : path_buf_a) {
                    if (w == x)
                        continue;
                    if (!edgeFrequent(lg.label(w), lu))
                        continue;
                    const std::uint64_t key = pathKey(
                        lg.label(w), lu, lv, lg.label(x));
                    const bool flipped =
                        std::make_pair(lv, lg.label(x)) <
                        std::make_pair(lu, lg.label(w));
                    insert(key, flipped ? 0 : 3, x, 4);
                    break;
                }
            }

            backend.streamFree(ha);
            backend.streamFree(hb);
            backend.streamFree(hsu);
            backend.streamFree(hsv);
            backend.streamFree(hv);
            backend.streamFree(hu);
        }
    }

    // ---------------- tally ----------------
    for (const auto &[key, t] : tables) {
        if (t.support() < min_support)
            continue;
        switch (key >> 60) {
          case 2:
            ++result.frequentWedges;
            break;
          case 3:
            ++result.frequentTriangles;
            break;
          case 4:
            ++result.frequentStars;
            break;
          case 5:
            ++result.frequentPaths;
            break;
          default:
            break; // edges tallied above
        }
    }
    result.cycles = backend.finish();
    result.breakdown = backend.breakdown();
    return result;
}

} // namespace sc::gpm
