#include "kernels/spmspm.hh"

#include <vector>

#include "common/logging.hh"
#include "streams/set_ops.hh"

namespace sc::kernels {

using backend::BackendStream;
using tensor::SparseMatrix;
using tensor::Triplet;

namespace {

/** Synthetic accumulator-row region (outer/Gustavson outputs). */
constexpr Addr accRegion = 0x800000000ull;
constexpr Addr accRowStride = 0x40000ull;

Addr
accKeyAddr(std::uint32_t row)
{
    return accRegion + row * accRowStride;
}

Addr
accValAddr(std::uint32_t row)
{
    return accRegion + row * accRowStride + accRowStride / 2;
}

/** A growable functional (key,value) accumulator row. */
struct AccRow
{
    std::vector<Key> keys;
    std::vector<Value> vals;
};

/** Load a matrix row as a (key,value) backend stream. */
BackendStream
loadRow(const SparseMatrix &m, std::uint32_t r, unsigned priority,
        backend::ExecBackend &backend)
{
    return backend.streamLoadKv(m.rowKeyAddr(r), m.rowValAddr(r),
                                m.rowNnz(r), priority, m.rowKeys(r));
}

} // namespace

const char *
spmspmAlgorithmName(SpmspmAlgorithm algorithm)
{
    switch (algorithm) {
      case SpmspmAlgorithm::Inner:
        return "inner";
      case SpmspmAlgorithm::Outer:
        return "outer";
      case SpmspmAlgorithm::Gustavson:
        return "gustavson";
      default:
        panic("unknown spmspm algorithm");
    }
}

namespace {

TensorRunResult
innerProduct(const SparseMatrix &a, const SparseMatrix &b,
             backend::ExecBackend &backend, unsigned stride,
             std::vector<Triplet> *out)
{
    const SparseMatrix bt = b.transpose();
    TensorRunResult res;
    std::vector<std::uint32_t> ma, mb;

    for (std::uint32_t i = 0; i < a.rows(); i += stride) {
        if (a.rowNnz(i) == 0)
            continue;
        const BackendStream ha = loadRow(a, i, 1, backend);
        for (std::uint32_t j = 0; j < bt.rows(); ++j) {
            backend.scalarOps(3); // j-loop control
            if (bt.rowNnz(j) == 0)
                continue;
            const BackendStream hb = loadRow(bt, j, 1, backend);
            ma.clear();
            mb.clear();
            streams::SetOpResult work;
            const Value v = streams::valueIntersect(
                a.rowKeys(i), a.rowVals(i), bt.rowKeys(j),
                bt.rowVals(j), streams::ValueOp::Mac, &work, &ma,
                &mb);
            backend.valueIntersect(ha, hb, a.rowKeys(i),
                                   bt.rowKeys(j), a.rowValAddr(i),
                                   bt.rowValAddr(j), ma, mb);
            backend.streamFree(hb);
            res.valueOps += work.count;
            if (out && v != 0.0 && !ma.empty())
                out->push_back({i, j, v});
        }
        backend.streamFree(ha);
    }
    return res;
}

TensorRunResult
outerProduct(const SparseMatrix &a, const SparseMatrix &b,
             backend::ExecBackend &backend, unsigned stride,
             std::vector<Triplet> *out)
{
    const SparseMatrix at = a.transpose();
    TensorRunResult res;
    std::vector<AccRow> acc(a.rows());
    std::vector<Key> merged_keys;
    std::vector<Value> merged_vals;

    for (std::uint32_t k = 0; k < at.rows(); k += stride) {
        if (at.rowNnz(k) == 0 || k >= b.rows() || b.rowNnz(k) == 0)
            continue;
        const BackendStream hb = loadRow(b, k, 1, backend);
        auto acols = at.rowKeys(k); // rows i with A(i,k) != 0
        auto avals = at.rowVals(k);
        backend.iterateStream(backend::noStream, acols.size(), 3);
        for (std::size_t p = 0; p < acols.size(); ++p) {
            const std::uint32_t i = acols[p];
            const Value aik = avals[p];
            AccRow &row = acc[i];
            // The accumulator row lives in memory between updates
            // (outer product has no row reuse window): re-load it,
            // merge, and write back.
            const BackendStream hacc = backend.streamLoadKv(
                accKeyAddr(i), accValAddr(i),
                static_cast<std::uint32_t>(row.keys.size()), 0,
                row.keys);
            merged_keys.clear();
            merged_vals.clear();
            streams::valueMerge(row.keys, row.vals, b.rowKeys(k),
                                b.rowVals(k), 1.0, aik, merged_keys,
                                merged_vals);
            const BackendStream hout = backend.valueMerge(
                hacc, hb, row.keys, b.rowKeys(k), accValAddr(i),
                b.rowValAddr(k), merged_keys.size(), accKeyAddr(i));
            backend.streamFree(hacc);
            backend.streamFree(hout);
            row.keys = merged_keys;
            row.vals = merged_vals;
            res.valueOps += b.rowNnz(k);
        }
        backend.streamFree(hb);
    }

    if (out) {
        for (std::uint32_t i = 0; i < a.rows(); ++i)
            for (std::size_t p = 0; p < acc[i].keys.size(); ++p)
                if (acc[i].vals[p] != 0.0)
                    out->push_back(
                        {i, acc[i].keys[p], acc[i].vals[p]});
    }
    return res;
}

TensorRunResult
gustavson(const SparseMatrix &a, const SparseMatrix &b,
          backend::ExecBackend &backend, unsigned stride,
          std::vector<Triplet> *out)
{
    TensorRunResult res;
    AccRow acc;
    std::vector<Key> merged_keys;
    std::vector<Value> merged_vals;

    for (std::uint32_t i = 0; i < a.rows(); i += stride) {
        if (a.rowNnz(i) == 0)
            continue;
        acc.keys.clear();
        acc.vals.clear();
        auto akeys = a.rowKeys(i);
        auto avals = a.rowVals(i);
        // The accumulator stays hot across the k loop: a produced
        // stream chained through S_VMERGE (its values never re-cross
        // the load queue, hence the zero value base below).
        BackendStream hacc = backend.streamLoadKv(
            accKeyAddr(i % 64), accValAddr(i % 64), 0, 1, {});
        bool acc_in_memory = true;
        backend.iterateStream(backend::noStream, akeys.size(), 3);
        for (std::size_t p = 0; p < akeys.size(); ++p) {
            const Key k = akeys[p];
            const Value aik = avals[p];
            if (k >= b.rows() || b.rowNnz(k) == 0)
                continue;
            const BackendStream hb = loadRow(b, k, 1, backend);
            merged_keys.clear();
            merged_vals.clear();
            streams::valueMerge(acc.keys, acc.vals, b.rowKeys(k),
                                b.rowVals(k), 1.0, aik, merged_keys,
                                merged_vals);
            const BackendStream hout = backend.valueMerge(
                hacc, hb, acc.keys, b.rowKeys(k),
                acc_in_memory ? accValAddr(i % 64) : 0,
                b.rowValAddr(k), merged_keys.size(),
                accKeyAddr(i % 64));
            acc_in_memory = false;
            backend.streamFree(hb);
            backend.streamFree(hacc);
            hacc = hout;
            acc.keys = merged_keys;
            acc.vals = merged_vals;
            res.valueOps += b.rowNnz(k);
        }
        backend.consumeStream(hacc);
        backend.streamFree(hacc);
        if (out) {
            for (std::size_t p = 0; p < acc.keys.size(); ++p)
                if (acc.vals[p] != 0.0)
                    out->push_back({i, acc.keys[p], acc.vals[p]});
        }
    }
    return res;
}

} // namespace

TensorRunResult
runSpmspm(const SparseMatrix &a, const SparseMatrix &b,
          SpmspmAlgorithm algorithm, backend::ExecBackend &backend,
          unsigned stride, SparseMatrix *result)
{
    if (a.cols() != b.rows())
        fatal("spmspm shape mismatch: %ux%u * %ux%u", a.rows(),
              a.cols(), b.rows(), b.cols());
    if (stride == 0)
        fatal("stride must be positive");

    backend.begin();
    std::vector<Triplet> triplets;
    std::vector<Triplet> *out = result ? &triplets : nullptr;

    TensorRunResult res;
    switch (algorithm) {
      case SpmspmAlgorithm::Inner:
        res = innerProduct(a, b, backend, stride, out);
        break;
      case SpmspmAlgorithm::Outer:
        res = outerProduct(a, b, backend, stride, out);
        break;
      case SpmspmAlgorithm::Gustavson:
        res = gustavson(a, b, backend, stride, out);
        break;
    }
    res.cycles = backend.finish();
    res.breakdown = backend.breakdown();
    if (result)
        *result = SparseMatrix::fromTriplets(
            a.rows(), b.cols(), std::move(triplets), "spmspm");
    return res;
}

} // namespace sc::kernels
