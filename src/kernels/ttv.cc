#include "kernels/ttv.hh"

#include <numeric>

#include "common/logging.hh"
#include "streams/set_ops.hh"

namespace sc::kernels {

using backend::BackendStream;

TensorRunResult
runTtv(const tensor::CsfTensor &a, const std::vector<Value> &vec,
       backend::ExecBackend &backend, unsigned stride,
       tensor::SparseMatrix *result)
{
    if (vec.size() < a.dimK())
        fatal("TTV vector too short");
    if (stride == 0)
        fatal("stride must be positive");
    backend.begin();

    // The dense vector as a (key,value) stream: keys 0..dimK-1.
    std::vector<Key> vec_keys(a.dimK());
    std::iota(vec_keys.begin(), vec_keys.end(), Key{0});
    constexpr Addr vecKeyAddr = 0x900000000ull;
    constexpr Addr vecValAddr = 0x910000000ull;

    TensorRunResult res;
    std::vector<tensor::Triplet> out;
    std::vector<std::uint32_t> ma, mb;

    for (std::uint32_t s = 0; s < a.numSlices(); s += stride) {
        const std::uint32_t i = a.sliceRoot(s);
        auto fiber_js = a.sliceFiberKeys(s);
        backend.scalarLoad(0xa00000000ull + s * 8);
        backend.scalarOps(3);
        for (std::uint64_t f = a.fiberBegin(s); f < a.fiberEnd(s);
             ++f) {
            const Key j = fiber_js[f - a.fiberBegin(s)];
            auto ks = a.fiberKeys(f);
            auto vs = a.fiberVals(f);
            const BackendStream hf = backend.streamLoadKv(
                a.fiberKeyAddr(f), a.fiberValAddr(f),
                static_cast<std::uint32_t>(ks.size()), 0, ks);
            // The dense vector stream is reused by every fiber:
            // highest priority, lives in the scratchpad.
            const BackendStream hv = backend.streamLoadKv(
                vecKeyAddr, vecValAddr,
                static_cast<std::uint32_t>(vec_keys.size()), 1,
                vec_keys);
            ma.clear();
            mb.clear();
            streams::SetOpResult work;
            const Value z = streams::valueIntersect(
                ks, vs, vec_keys,
                streams::ValueSpan{vec.data(), a.dimK()},
                streams::ValueOp::Mac, &work, &ma, &mb);
            backend.denseValueIntersect(hf, hv, ks, vec_keys,
                                        a.fiberValAddr(f), vecValAddr,
                                        ma, mb);
            backend.streamFree(hv);
            backend.streamFree(hf);
            res.valueOps += work.count;
            if (result && z != 0.0)
                out.push_back({i, j, z});
        }
    }
    res.cycles = backend.finish();
    res.breakdown = backend.breakdown();
    if (result)
        *result = tensor::SparseMatrix::fromTriplets(
            a.dimI(), a.dimJ(), std::move(out), "ttv");
    return res;
}

} // namespace sc::kernels
