/**
 * @file
 * TACO-like kernel builder (§5.3): parses a tensor-algebra expression
 * in index notation and dispatches to the matching stream kernel.
 * Recognized forms:
 *     C(i,j)   = A(i,k) * B(k,j)    -> spmspm (algorithm selectable)
 *     Z(i,j)   = A(i,j,k) * b(k)    -> TTV
 *     Z(i,j,k) = A(i,j,l) * B(k,l)  -> TTM
 * This preserves the paper's user interface: the expression is the
 * program; the stream instructions are generated under the hood.
 */

#ifndef SPARSECORE_KERNELS_KERNEL_BUILDER_HH
#define SPARSECORE_KERNELS_KERNEL_BUILDER_HH

#include <string>

#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"

namespace sc::kernels {

/** Kernel kinds the builder can emit. */
enum class KernelKind : unsigned { Spmspm, Ttv, Ttm };

/** A parsed expression. */
struct ParsedKernel
{
    KernelKind kind;
    std::string output;          ///< output tensor name
    std::string inputA;          ///< first input name
    std::string inputB;          ///< second input name
    std::string contractedIndex; ///< the summed index variable
};

/**
 * Parse an index-notation expression; throws SimError on anything
 * outside the recognized forms.
 */
ParsedKernel parseKernel(const std::string &expression);

/** Operand bundle for runKernel (only the relevant fields are used
 *  per kernel kind). */
struct KernelInputs
{
    const tensor::SparseMatrix *matrixA = nullptr; ///< spmspm A
    const tensor::SparseMatrix *matrixB = nullptr; ///< spmspm/TTM B
    const tensor::CsfTensor *tensorA = nullptr;    ///< TTV/TTM A
    const std::vector<Value> *vectorB = nullptr;   ///< TTV b
};

/**
 * The TACO-like front door: parse the expression and run the
 * matching stream kernel on the backend.
 * @param algorithm dataflow for spmspm expressions (ignored by
 *        TTV/TTM)
 * @throws SimError when the expression needs operands that were not
 *         supplied
 */
TensorRunResult runKernel(const std::string &expression,
                          const KernelInputs &inputs,
                          backend::ExecBackend &backend,
                          SpmspmAlgorithm algorithm =
                              SpmspmAlgorithm::Gustavson,
                          unsigned stride = 1);

} // namespace sc::kernels

#endif // SPARSECORE_KERNELS_KERNEL_BUILDER_HH
