/**
 * @file
 * TTV: tensor-times-vector, Z(i,j) = sum_k A(i,j,k) * v(k) (§6.2).
 * Each sparse fiber is S_VINTER'ed against the dense vector viewed as
 * a (key,value) stream.
 */

#ifndef SPARSECORE_KERNELS_TTV_HH
#define SPARSECORE_KERNELS_TTV_HH

#include <vector>

#include "backend/exec_backend.hh"
#include "kernels/spmspm.hh"
#include "tensor/csf_tensor.hh"
#include "tensor/sparse_matrix.hh"

namespace sc::kernels {

/**
 * Run TTV.
 * @param stride process every stride-th slice
 * @param result optional functional output for validation
 */
TensorRunResult runTtv(const tensor::CsfTensor &a,
                       const std::vector<Value> &vec,
                       backend::ExecBackend &backend,
                       unsigned stride = 1,
                       tensor::SparseMatrix *result = nullptr);

} // namespace sc::kernels

#endif // SPARSECORE_KERNELS_TTV_HH
