#include "kernels/kernel_builder.hh"

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/logging.hh"

namespace sc::kernels {

namespace {

/** One tensor access: name + index variables. */
struct Access
{
    std::string name;
    std::vector<std::string> indices;
};

/** Parse "Name(i,j,k)" starting at pos; advances pos. */
Access
parseAccess(const std::string &s, std::size_t &pos)
{
    Access acc;
    while (pos < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[pos])) ||
            s[pos] == '_')) {
        acc.name.push_back(s[pos++]);
    }
    if (acc.name.empty() || pos >= s.size() || s[pos] != '(')
        throw SimError("kernel parse error: expected tensor access");
    ++pos; // '('
    std::string idx;
    while (pos < s.size() && s[pos] != ')') {
        if (s[pos] == ',') {
            if (idx.empty())
                throw SimError("kernel parse error: empty index");
            acc.indices.push_back(idx);
            idx.clear();
        } else if (!std::isspace(static_cast<unsigned char>(s[pos]))) {
            idx.push_back(s[pos]);
        }
        ++pos;
    }
    if (pos >= s.size())
        throw SimError("kernel parse error: unterminated access");
    ++pos; // ')'
    if (idx.empty())
        throw SimError("kernel parse error: empty index");
    acc.indices.push_back(idx);
    return acc;
}

std::string
stripSpaces(const std::string &s)
{
    std::string out;
    for (char c : s)
        if (!std::isspace(static_cast<unsigned char>(c)))
            out.push_back(c);
    return out;
}

} // namespace

ParsedKernel
parseKernel(const std::string &expression)
{
    const std::string s = stripSpaces(expression);
    std::size_t pos = 0;
    const Access out = parseAccess(s, pos);
    if (pos >= s.size() || s[pos] != '=')
        throw SimError("kernel parse error: expected '='");
    ++pos;
    const Access a = parseAccess(s, pos);
    if (pos >= s.size() || s[pos] != '*')
        throw SimError("kernel parse error: expected '*'");
    ++pos;
    const Access b = parseAccess(s, pos);
    if (pos != s.size())
        throw SimError("kernel parse error: trailing input");

    // The contracted index appears in both inputs but not the output.
    std::string contracted;
    for (const auto &idx : a.indices) {
        const bool in_b = std::find(b.indices.begin(), b.indices.end(),
                                    idx) != b.indices.end();
        const bool in_out =
            std::find(out.indices.begin(), out.indices.end(), idx) !=
            out.indices.end();
        if (in_b && !in_out) {
            if (!contracted.empty())
                throw SimError(
                    "kernel parse error: multiple contractions");
            contracted = idx;
        }
    }
    if (contracted.empty())
        throw SimError("kernel parse error: no contracted index");

    ParsedKernel parsed;
    parsed.output = out.name;
    parsed.inputA = a.name;
    parsed.inputB = b.name;
    parsed.contractedIndex = contracted;

    if (out.indices.size() == 2 && a.indices.size() == 2 &&
        b.indices.size() == 2) {
        parsed.kind = KernelKind::Spmspm;
    } else if (out.indices.size() == 2 && a.indices.size() == 3 &&
               b.indices.size() == 1) {
        parsed.kind = KernelKind::Ttv;
    } else if (out.indices.size() == 3 && a.indices.size() == 3 &&
               b.indices.size() == 2) {
        parsed.kind = KernelKind::Ttm;
    } else {
        throw SimError("kernel parse error: unrecognized kernel form");
    }
    return parsed;
}

TensorRunResult
runKernel(const std::string &expression, const KernelInputs &inputs,
          backend::ExecBackend &backend, SpmspmAlgorithm algorithm,
          unsigned stride)
{
    const ParsedKernel parsed = parseKernel(expression);
    switch (parsed.kind) {
      case KernelKind::Spmspm:
        if (!inputs.matrixA || !inputs.matrixB)
            throw SimError("spmspm expression needs matrixA/matrixB");
        return runSpmspm(*inputs.matrixA, *inputs.matrixB, algorithm,
                         backend, stride);
      case KernelKind::Ttv:
        if (!inputs.tensorA || !inputs.vectorB)
            throw SimError("TTV expression needs tensorA/vectorB");
        return runTtv(*inputs.tensorA, *inputs.vectorB, backend,
                      stride);
      case KernelKind::Ttm:
        if (!inputs.tensorA || !inputs.matrixB)
            throw SimError("TTM expression needs tensorA/matrixB");
        return runTtm(*inputs.tensorA, *inputs.matrixB, backend,
                      stride);
      default:
        throw SimError("unhandled kernel kind");
    }
}

} // namespace sc::kernels
