/**
 * @file
 * Sparse matrix-sparse matrix multiplication with the three §2.1
 * dataflows — inner-product (S_VINTER per output), outer-product and
 * Gustavson (S_VMERGE accumulation) — over any ExecBackend, mirroring
 * the TACO-generated stream kernels of §5.3/Fig. 4.
 */

#ifndef SPARSECORE_KERNELS_SPMSPM_HH
#define SPARSECORE_KERNELS_SPMSPM_HH

#include "backend/exec_backend.hh"
#include "sim/core_model.hh"
#include "tensor/sparse_matrix.hh"

namespace sc::kernels {

/** spmspm dataflow choice. */
enum class SpmspmAlgorithm : unsigned { Inner, Outer, Gustavson };

const char *spmspmAlgorithmName(SpmspmAlgorithm algorithm);

/** Outcome of one tensor kernel run. */
struct TensorRunResult
{
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;
    std::uint64_t valueOps = 0; ///< multiply-accumulates performed
};

/**
 * C = A * B with the chosen dataflow.
 * @param stride process every stride-th row (inner/Gustavson) or
 *        contraction column (outer); benchmarks sample huge inputs
 * @param result optional functional output for validation
 */
TensorRunResult runSpmspm(const tensor::SparseMatrix &a,
                          const tensor::SparseMatrix &b,
                          SpmspmAlgorithm algorithm,
                          backend::ExecBackend &backend,
                          unsigned stride = 1,
                          tensor::SparseMatrix *result = nullptr);

} // namespace sc::kernels

#endif // SPARSECORE_KERNELS_SPMSPM_HH
