/**
 * @file
 * TTM: tensor-times-matrix, Z(i,j,k) = sum_l A(i,j,l) * B(k,l)
 * (§6.2). Each sparse fiber is S_VINTER'ed against every row of B.
 */

#ifndef SPARSECORE_KERNELS_TTM_HH
#define SPARSECORE_KERNELS_TTM_HH

#include "backend/exec_backend.hh"
#include "kernels/spmspm.hh"
#include "tensor/csf_tensor.hh"
#include "tensor/sparse_matrix.hh"

namespace sc::kernels {

/**
 * Run TTM.
 * @param stride process every stride-th slice
 * @param result optional functional output for validation
 */
TensorRunResult runTtm(const tensor::CsfTensor &a,
                       const tensor::SparseMatrix &b,
                       backend::ExecBackend &backend,
                       unsigned stride = 1,
                       tensor::CsfTensor *result = nullptr);

} // namespace sc::kernels

#endif // SPARSECORE_KERNELS_TTM_HH
