#include "kernels/ttm.hh"

#include "common/logging.hh"
#include "streams/set_ops.hh"

namespace sc::kernels {

using backend::BackendStream;

TensorRunResult
runTtm(const tensor::CsfTensor &a, const tensor::SparseMatrix &b,
       backend::ExecBackend &backend, unsigned stride,
       tensor::CsfTensor *result)
{
    if (b.cols() != a.dimK())
        fatal("TTM shape mismatch: tensor k-dim %u vs matrix cols %u",
              a.dimK(), b.cols());
    if (stride == 0)
        fatal("stride must be positive");
    backend.begin();

    TensorRunResult res;
    std::vector<tensor::TensorEntry> out;
    std::vector<std::uint32_t> ma, mb;

    for (std::uint32_t s = 0; s < a.numSlices(); s += stride) {
        const std::uint32_t i = a.sliceRoot(s);
        auto fiber_js = a.sliceFiberKeys(s);
        backend.scalarLoad(0xa10000000ull + s * 8);
        backend.scalarOps(3);
        for (std::uint64_t f = a.fiberBegin(s); f < a.fiberEnd(s);
             ++f) {
            const Key j = fiber_js[f - a.fiberBegin(s)];
            auto ks = a.fiberKeys(f);
            auto vs = a.fiberVals(f);
            const BackendStream hf = backend.streamLoadKv(
                a.fiberKeyAddr(f), a.fiberValAddr(f),
                static_cast<std::uint32_t>(ks.size()), 1, ks);
            for (std::uint32_t k = 0; k < b.rows(); ++k) {
                backend.scalarOps(3);
                if (b.rowNnz(k) == 0)
                    continue;
                const BackendStream hb = backend.streamLoadKv(
                    b.rowKeyAddr(k), b.rowValAddr(k), b.rowNnz(k), 1,
                    b.rowKeys(k));
                ma.clear();
                mb.clear();
                streams::SetOpResult work;
                const Value z = streams::valueIntersect(
                    ks, vs, b.rowKeys(k), b.rowVals(k),
                    streams::ValueOp::Mac, &work, &ma, &mb);
                backend.valueIntersect(hf, hb, ks, b.rowKeys(k),
                                       a.fiberValAddr(f),
                                       b.rowValAddr(k), ma, mb);
                backend.streamFree(hb);
                res.valueOps += work.count;
                if (result && z != 0.0 && !ma.empty())
                    out.push_back({i, j, k, z});
            }
            backend.streamFree(hf);
        }
    }
    res.cycles = backend.finish();
    res.breakdown = backend.breakdown();
    if (result)
        *result = tensor::CsfTensor::fromEntries(
            a.dimI(), a.dimJ(), b.rows(), std::move(out), "ttm");
    return res;
}

} // namespace sc::kernels
