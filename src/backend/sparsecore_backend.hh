/**
 * @file
 * SparseCoreBackend: adapts the ExecBackend event stream onto the
 * cycle-level SparseCore engine (src/arch).
 */

#ifndef SPARSECORE_BACKEND_SPARSECORE_BACKEND_HH
#define SPARSECORE_BACKEND_SPARSECORE_BACKEND_HH

#include <memory>

#include "arch/engine.hh"
#include "backend/exec_backend.hh"

namespace sc::backend {

/** The SparseCore substrate. Final so the bytecode replay loop's
 *  per-backend instantiation devirtualizes every call. */
class SparseCoreBackend final : public ExecBackend
{
  public:
    explicit SparseCoreBackend(
        const arch::SparseCoreConfig &config = arch::SparseCoreConfig{});

    std::string name() const override { return "sparsecore"; }
    void begin() override;
    Cycles finish() override;
    sim::CycleBreakdown breakdown() const override;

    void scalarOps(std::uint64_t n) override;
    void scalarBranch(std::uint64_t pc, bool taken) override;
    void scalarLoad(Addr addr) override;

    BackendStream streamLoad(Addr key_addr, std::uint32_t length,
                             unsigned priority,
                             streams::KeySpan keys) override;
    BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                               std::uint32_t length, unsigned priority,
                               streams::KeySpan keys) override;
    void streamFree(BackendStream handle) override;

    BackendStream setOp(streams::SetOpKind kind, BackendStream a,
                        BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Key bound,
                        streams::KeySpan result, Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, BackendStream a,
                    BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(BackendStream a, BackendStream b,
                        streams::KeySpan ak, streams::KeySpan bk,
                        Addr a_val_base, Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    BackendStream valueMerge(BackendStream a, BackendStream b,
                             streams::KeySpan ak, streams::KeySpan bk,
                             Addr a_val_base, Addr b_val_base,
                             std::uint64_t result_len,
                             Addr out_addr) override;

    Caps
    caps() const override
    {
        Caps c;
        c.nested = engine_->config().nestedIntersection;
        c.vectorizedSetOps = true; // the SU's 16-wide window (Fig. 6)
        return c;
    }
    void nestedIntersect(BackendStream s, streams::KeySpan s_keys,
                         const std::vector<NestedItem> &elems) override;

    void consumeStream(BackendStream handle) override;
    void iterateStream(BackendStream handle, std::uint64_t n,
                       unsigned ops_per_element) override;

    arch::Engine &engine() { return *engine_; }
    const arch::Engine &engine() const { return *engine_; }

  private:
    arch::SparseCoreConfig config_;
    std::unique_ptr<arch::Engine> engine_;
};

} // namespace sc::backend

#endif // SPARSECORE_BACKEND_SPARSECORE_BACKEND_HH
