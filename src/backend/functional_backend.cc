#include "backend/functional_backend.hh"

namespace sc::backend {

FunctionalBackend::FunctionalBackend() = default;

void
FunctionalBackend::begin()
{
    next_ = 0;
    liveStreams_ = 0;
    stats_.reset();
    lengthHist_.reset();
}

BackendStream
FunctionalBackend::nextHandle()
{
    return next_++;
}

BackendStream
FunctionalBackend::streamLoad(Addr, std::uint32_t length, unsigned,
                              streams::KeySpan)
{
    ++stats_.counter("streamLoads");
    ++liveStreams_;
    lengthHist_.sample(length);
    return nextHandle();
}

BackendStream
FunctionalBackend::streamLoadKv(Addr, Addr, std::uint32_t length,
                                unsigned, streams::KeySpan)
{
    ++stats_.counter("streamLoadsKv");
    ++liveStreams_;
    lengthHist_.sample(length);
    return nextHandle();
}

void
FunctionalBackend::streamFree(BackendStream)
{
    ++stats_.counter("streamFrees");
    --liveStreams_;
}

BackendStream
FunctionalBackend::setOp(streams::SetOpKind kind, BackendStream,
                         BackendStream, streams::KeySpan ak,
                         streams::KeySpan bk, Key, streams::KeySpan,
                         Addr)
{
    ++stats_.counter(std::string("setOp.") + streams::setOpName(kind));
    stats_.counter("setOpElements") += ak.size() + bk.size();
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
    ++liveStreams_;
    return nextHandle();
}

void
FunctionalBackend::setOpCount(streams::SetOpKind kind, BackendStream,
                              BackendStream, streams::KeySpan ak,
                              streams::KeySpan bk, Key, std::uint64_t)
{
    ++stats_.counter(std::string("setOpCount.") +
                     streams::setOpName(kind));
    stats_.counter("setOpElements") += ak.size() + bk.size();
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
}

void
FunctionalBackend::valueIntersect(BackendStream, BackendStream,
                                  streams::KeySpan ak,
                                  streams::KeySpan bk, Addr, Addr,
                                  std::span<const std::uint32_t> match_a,
                                  std::span<const std::uint32_t>)
{
    ++stats_.counter("valueIntersects");
    stats_.counter("valueMatches") += match_a.size();
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
}

BackendStream
FunctionalBackend::valueMerge(BackendStream, BackendStream,
                              streams::KeySpan ak, streams::KeySpan bk,
                              Addr, Addr, std::uint64_t, Addr)
{
    ++stats_.counter("valueMerges");
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
    ++liveStreams_;
    return nextHandle();
}

void
FunctionalBackend::nestedIntersect(BackendStream, streams::KeySpan,
                                   const std::vector<NestedItem> &elems)
{
    ++stats_.counter("nestedIntersects");
    stats_.counter("nestedElements") += elems.size();
    for (const auto &elem : elems)
        lengthHist_.sample(elem.nested.size());
}

} // namespace sc::backend
