#include "backend/functional_backend.hh"

#include "trace/bytecode.hh"

namespace sc::backend {

static_assert(FunctionalBackend::numSetOpKinds ==
                  trace::EventProfile::numSetOpKinds,
              "profile and backend disagree on set-op kinds");

FunctionalBackend::FunctionalBackend()
    : streamLoads_(stats_.counter("streamLoads")),
      streamLoadsKv_(stats_.counter("streamLoadsKv")),
      streamFrees_(stats_.counter("streamFrees")),
      setOpElements_(stats_.counter("setOpElements")),
      valueIntersects_(stats_.counter("valueIntersects")),
      valueMatches_(stats_.counter("valueMatches")),
      valueMerges_(stats_.counter("valueMerges")),
      nestedIntersects_(stats_.counter("nestedIntersects")),
      nestedElements_(stats_.counter("nestedElements"))
{
    for (std::size_t k = 0; k < numSetOpKinds; ++k) {
        const char *name =
            streams::setOpName(static_cast<streams::SetOpKind>(k));
        setOps_[k] = &stats_.counter(std::string("setOp.") + name);
        setOpCounts_[k] =
            &stats_.counter(std::string("setOpCount.") + name);
    }
}

void
FunctionalBackend::begin()
{
    next_ = 0;
    liveStreams_ = 0;
    stats_.reset();
    lengthHist_.reset();
}

BackendStream
FunctionalBackend::nextHandle()
{
    return next_++;
}

BackendStream
FunctionalBackend::streamLoad(Addr, std::uint32_t length, unsigned,
                              streams::KeySpan)
{
    ++streamLoads_;
    ++liveStreams_;
    lengthHist_.sample(length);
    return nextHandle();
}

BackendStream
FunctionalBackend::streamLoadKv(Addr, Addr, std::uint32_t length,
                                unsigned, streams::KeySpan)
{
    ++streamLoadsKv_;
    ++liveStreams_;
    lengthHist_.sample(length);
    return nextHandle();
}

void
FunctionalBackend::streamFree(BackendStream)
{
    ++streamFrees_;
    --liveStreams_;
}

BackendStream
FunctionalBackend::setOp(streams::SetOpKind kind, BackendStream,
                         BackendStream, streams::KeySpan ak,
                         streams::KeySpan bk, Key, streams::KeySpan,
                         Addr)
{
    ++*setOps_[static_cast<std::size_t>(kind)];
    setOpElements_ += ak.size() + bk.size();
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
    ++liveStreams_;
    return nextHandle();
}

void
FunctionalBackend::setOpCount(streams::SetOpKind kind, BackendStream,
                              BackendStream, streams::KeySpan ak,
                              streams::KeySpan bk, Key, std::uint64_t)
{
    ++*setOpCounts_[static_cast<std::size_t>(kind)];
    setOpElements_ += ak.size() + bk.size();
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
}

void
FunctionalBackend::valueIntersect(BackendStream, BackendStream,
                                  streams::KeySpan ak,
                                  streams::KeySpan bk, Addr, Addr,
                                  std::span<const std::uint32_t> match_a,
                                  std::span<const std::uint32_t>)
{
    ++valueIntersects_;
    valueMatches_ += match_a.size();
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
}

BackendStream
FunctionalBackend::valueMerge(BackendStream, BackendStream,
                              streams::KeySpan ak, streams::KeySpan bk,
                              Addr, Addr, std::uint64_t, Addr)
{
    ++valueMerges_;
    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
    ++liveStreams_;
    return nextHandle();
}

void
FunctionalBackend::applyProfile(const trace::EventProfile &p)
{
    streamLoads_ += p.streamLoads;
    streamLoadsKv_ += p.streamLoadsKv;
    streamFrees_ += p.streamFrees;
    for (std::size_t k = 0; k < numSetOpKinds; ++k) {
        *setOps_[k] += p.setOps[k];
        *setOpCounts_[k] += p.setOpCounts[k];
    }
    setOpElements_ += p.setOpElements;
    valueIntersects_ += p.valueIntersects;
    valueMatches_ += p.valueMatches;
    valueMerges_ += p.valueMerges;
    nestedIntersects_ += p.nestedGroups;
    nestedElements_ += p.nestedElements;
    for (const auto &[length, occurrences] : p.lengthSamples)
        lengthHist_.sample(length, occurrences);
    liveStreams_ += p.liveStreamDelta;
    next_ += static_cast<BackendStream>(p.streamsCreated);
}

void
FunctionalBackend::nestedIntersect(BackendStream, streams::KeySpan,
                                   const std::vector<NestedItem> &elems)
{
    ++nestedIntersects_;
    nestedElements_ += elems.size();
    for (const auto &elem : elems)
        lengthHist_.sample(elem.nested.size());
}

} // namespace sc::backend
