/**
 * @file
 * FunctionalBackend: timeless substrate that only records structural
 * statistics (operation counts, total set-op work, stream-length
 * histogram). Used by tests as the golden-count reference and by the
 * Fig. 14 stream-length analysis.
 */

#ifndef SPARSECORE_BACKEND_FUNCTIONAL_BACKEND_HH
#define SPARSECORE_BACKEND_FUNCTIONAL_BACKEND_HH

#include "backend/exec_backend.hh"
#include "common/stats.hh"
#include "streams/simd/kernel_table.hh"

namespace sc::trace {
struct EventProfile;
} // namespace sc::trace

namespace sc::backend {

/** Structure-only backend. Final so the bytecode replay loop's
 *  per-backend instantiation devirtualizes every call. */
class FunctionalBackend final : public ExecBackend
{
  public:
    static constexpr std::size_t numSetOpKinds = 3;

    FunctionalBackend();

    std::string name() const override { return "functional"; }
    void begin() override;
    Cycles finish() override { return 0; }
    sim::CycleBreakdown breakdown() const override { return {}; }

    BackendStream streamLoad(Addr key_addr, std::uint32_t length,
                             unsigned priority,
                             streams::KeySpan keys) override;
    BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                               std::uint32_t length, unsigned priority,
                               streams::KeySpan keys) override;
    void streamFree(BackendStream handle) override;

    BackendStream setOp(streams::SetOpKind kind, BackendStream a,
                        BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Key bound,
                        streams::KeySpan result, Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, BackendStream a,
                    BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(BackendStream a, BackendStream b,
                        streams::KeySpan ak, streams::KeySpan bk,
                        Addr a_val_base, Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    BackendStream valueMerge(BackendStream a, BackendStream b,
                             streams::KeySpan ak, streams::KeySpan bk,
                             Addr a_val_base, Addr b_val_base,
                             std::uint64_t result_len,
                             Addr out_addr) override;

    Caps
    caps() const override
    {
        Caps c;
        c.nested = true;
        // The functional path executes on the host's active SIMD
        // kernel table (streams/simd) when one beats scalar.
        c.vectorizedSetOps =
            streams::activeKernels().level != streams::KernelLevel::Scalar;
        return c;
    }
    void nestedIntersect(BackendStream s, streams::KeySpan s_keys,
                         const std::vector<NestedItem> &elems) override;

    /**
     * Apply a compiled program's aggregate profile in one shot —
     * exactly the state every hook of a per-event replay would leave
     * (this backend is stateless across events: each hook is counter
     * bumps plus order-independent histogram samples), at
     * O(distinct lengths) instead of O(events). The bytecode replay
     * path (trace::replayCompiled) uses this instead of walking.
     */
    void applyProfile(const trace::EventProfile &profile);

    const StatSet &stats() const { return stats_; }
    const Histogram &streamLengthHist() const { return lengthHist_; }
    /** Live streams (loads minus frees), for leak checks in tests. */
    std::int64_t liveStreams() const { return liveStreams_; }

  private:
    BackendStream nextHandle();

    BackendStream next_ = 0;
    std::int64_t liveStreams_ = 0;
    StatSet stats_{"functional"};
    Histogram lengthHist_{4, 512};

    // Hot counters resolved once in the constructor instead of a
    // string-keyed map lookup (plus a heap-allocated key for the
    // per-kind names) on every event. StatSet::reset() zeroes values
    // in place without erasing entries, so the references stay valid
    // across begin().
    Counter &streamLoads_;
    Counter &streamLoadsKv_;
    Counter &streamFrees_;
    Counter &setOpElements_;
    Counter &valueIntersects_;
    Counter &valueMatches_;
    Counter &valueMerges_;
    Counter &nestedIntersects_;
    Counter &nestedElements_;
    Counter *setOps_[numSetOpKinds];
    Counter *setOpCounts_[numSetOpKinds];
};

} // namespace sc::backend

#endif // SPARSECORE_BACKEND_FUNCTIONAL_BACKEND_HH
