/**
 * @file
 * FunctionalBackend: timeless substrate that only records structural
 * statistics (operation counts, total set-op work, stream-length
 * histogram). Used by tests as the golden-count reference and by the
 * Fig. 14 stream-length analysis.
 */

#ifndef SPARSECORE_BACKEND_FUNCTIONAL_BACKEND_HH
#define SPARSECORE_BACKEND_FUNCTIONAL_BACKEND_HH

#include "backend/exec_backend.hh"
#include "common/stats.hh"
#include "streams/simd/kernel_table.hh"

namespace sc::backend {

/** Structure-only backend. */
class FunctionalBackend : public ExecBackend
{
  public:
    FunctionalBackend();

    std::string name() const override { return "functional"; }
    void begin() override;
    Cycles finish() override { return 0; }
    sim::CycleBreakdown breakdown() const override { return {}; }

    BackendStream streamLoad(Addr key_addr, std::uint32_t length,
                             unsigned priority,
                             streams::KeySpan keys) override;
    BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                               std::uint32_t length, unsigned priority,
                               streams::KeySpan keys) override;
    void streamFree(BackendStream handle) override;

    BackendStream setOp(streams::SetOpKind kind, BackendStream a,
                        BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Key bound,
                        streams::KeySpan result, Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, BackendStream a,
                    BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(BackendStream a, BackendStream b,
                        streams::KeySpan ak, streams::KeySpan bk,
                        Addr a_val_base, Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    BackendStream valueMerge(BackendStream a, BackendStream b,
                             streams::KeySpan ak, streams::KeySpan bk,
                             Addr a_val_base, Addr b_val_base,
                             std::uint64_t result_len,
                             Addr out_addr) override;

    Caps
    caps() const override
    {
        Caps c;
        c.nested = true;
        // The functional path executes on the host's active SIMD
        // kernel table (streams/simd) when one beats scalar.
        c.vectorizedSetOps =
            streams::activeKernels().level != streams::KernelLevel::Scalar;
        return c;
    }
    void nestedIntersect(BackendStream s, streams::KeySpan s_keys,
                         const std::vector<NestedItem> &elems) override;

    const StatSet &stats() const { return stats_; }
    const Histogram &streamLengthHist() const { return lengthHist_; }
    /** Live streams (loads minus frees), for leak checks in tests. */
    std::int64_t liveStreams() const { return liveStreams_; }

  private:
    BackendStream nextHandle();

    BackendStream next_ = 0;
    std::int64_t liveStreams_ = 0;
    StatSet stats_{"functional"};
    Histogram lengthHist_{4, 512};
};

} // namespace sc::backend

#endif // SPARSECORE_BACKEND_FUNCTIONAL_BACKEND_HH
