/**
 * @file
 * ExecBackend: the substrate interface that algorithm code (GPM plan
 * executor, tensor kernels) drives.
 *
 * Algorithms execute functionally exactly once per backend and report
 * every dynamic event — stream loads/frees, set operations with their
 * operand spans, value computations, nested intersections, scalar
 * loop work. Each backend turns the event stream into time:
 *  - FunctionalBackend: no time, structural statistics only,
 *  - CpuBackend: the scalar merge-loop baseline (Fig. 4a) on the OOO
 *    core model (InHouseAutomine on CPU),
 *  - SparseCoreBackend: the stream-ISA engine (src/arch),
 *  - FlexMinerBackend (src/baselines): the cmap-based accelerator.
 *
 * This mirrors the paper's methodology: the same algorithm runs on
 * every substrate; only the execution model differs.
 */

#ifndef SPARSECORE_BACKEND_EXEC_BACKEND_HH
#define SPARSECORE_BACKEND_EXEC_BACKEND_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/core_model.hh"
#include "streams/set_ops.hh"

namespace sc::backend {

/** Opaque per-backend stream identifier. */
using BackendStream = std::uint32_t;
constexpr BackendStream noStream = ~BackendStream{0};

/** One nested-intersection element (backend-neutral mirror of
 *  arch::NestedElem). */
struct NestedItem
{
    Addr infoAddr;  ///< CSR vertex-array entry address
    Addr keyAddr;   ///< nested edge list base address
    streams::KeySpan nested; ///< nested edge list keys (pre-bounded)
    Key bound;      ///< intersection upper bound (element value)
    std::uint64_t count = 0; ///< functional intersection count
};

/** The substrate interface. */
class ExecBackend
{
  public:
    virtual ~ExecBackend() = default;

    virtual std::string name() const = 0;

    /** Reset per-run state before an algorithm starts. */
    virtual void begin() {}
    /** Drain outstanding work; returns total cycles. */
    virtual Cycles finish() = 0;
    /** Cycle breakdown in the Fig. 9/10 categories. */
    virtual sim::CycleBreakdown breakdown() const = 0;

    // ---------------- scalar side ----------------
    virtual void scalarOps(std::uint64_t n) { (void)n; }
    virtual void
    scalarBranch(std::uint64_t pc, bool taken)
    {
        (void)pc;
        (void)taken;
    }
    virtual void scalarLoad(Addr addr) { (void)addr; }

    // ---------------- stream lifecycle ----------------
    /** S_READ equivalent. @param keys the stream's key data */
    virtual BackendStream streamLoad(Addr key_addr, std::uint32_t length,
                                     unsigned priority,
                                     streams::KeySpan keys) = 0;
    /** S_VREAD equivalent. */
    virtual BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                                       std::uint32_t length,
                                       unsigned priority,
                                       streams::KeySpan keys) = 0;
    /** S_FREE equivalent. */
    virtual void streamFree(BackendStream handle) = 0;

    // ---------------- set operations ----------------
    /**
     * S_INTER/S_SUB/S_MERGE producing a stream.
     * @param result the functionally computed output keys
     * @param out_addr synthetic address of the output buffer
     */
    virtual BackendStream setOp(streams::SetOpKind kind, BackendStream a,
                                BackendStream b, streams::KeySpan ak,
                                streams::KeySpan bk, Key bound,
                                streams::KeySpan result,
                                Addr out_addr) = 0;

    /** Counting variant (.C). @param count the functional result */
    virtual void setOpCount(streams::SetOpKind kind, BackendStream a,
                            BackendStream b, streams::KeySpan ak,
                            streams::KeySpan bk, Key bound,
                            std::uint64_t count) = 0;

    // ---------------- value operations ----------------
    /** S_VINTER: matched positions drive value-address generation. */
    virtual void
    valueIntersect(BackendStream a, BackendStream b, streams::KeySpan ak,
                   streams::KeySpan bk, Addr a_val_base, Addr b_val_base,
                   std::span<const std::uint32_t> match_a,
                   std::span<const std::uint32_t> match_b) = 0;

    /**
     * S_VINTER where operand B is a DENSE vector viewed as a
     * (key,value) stream (TTV). The default forwards to
     * valueIntersect; the CPU backend overrides it with TACO's
     * direct-gather loop (a CPU never merge-walks a dense operand).
     */
    virtual void
    denseValueIntersect(BackendStream a, BackendStream b,
                        streams::KeySpan ak, streams::KeySpan bk,
                        Addr a_val_base, Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b)
    {
        valueIntersect(a, b, ak, bk, a_val_base, b_val_base, match_a,
                       match_b);
    }

    /** S_VMERGE producing a (key,value) stream. */
    virtual BackendStream valueMerge(BackendStream a, BackendStream b,
                                     streams::KeySpan ak,
                                     streams::KeySpan bk, Addr a_val_base,
                                     Addr b_val_base,
                                     std::uint64_t result_len,
                                     Addr out_addr) = 0;

    // ---------------- capabilities ----------------
    /**
     * Substrate capability flags, declared in one place instead of
     * one boolean probe per feature. Defaults describe the minimal
     * substrate: every backend must implement the (key,value)
     * operations (they are pure virtual), nested intersection and
     * vectorized set-ops are opt-in.
     */
    struct Caps
    {
        bool nested = false;   ///< implements S_NESTINTER natively
        bool keyValue = true;  ///< (key,value) streams + S_VINTER
        bool valueMerge = true; ///< S_VMERGE materialization
        /** Set operations ride wide comparators (the SU's 16-wide
         *  window, or the host SIMD kernel table on functional
         *  substrates) rather than a scalar merge loop. */
        bool vectorizedSetOps = false;
    };

    virtual Caps caps() const { return Caps{}; }

    /** @deprecated probe caps().nested instead. */
    [[deprecated("use caps().nested")]] bool
    supportsNested() const
    {
        return caps().nested;
    }

    // ---------------- nested intersection ----------------
    /**
     * S_NESTINTER over stream s. The default implementation lowers
     * the group to the explicit per-element loop (iterate + load +
     * setOpCount + free + accumulate), so algorithm code and trace
     * replay issue one uniform call and the substrate decides the
     * execution shape.
     */
    virtual void nestedIntersect(BackendStream s, streams::KeySpan s_keys,
                                 const std::vector<NestedItem> &elems);

    // ---------------- control consumption ----------------
    /** Core consumes the stream's result (control dependence). */
    virtual void consumeStream(BackendStream handle) { (void)handle; }
    /** Core iterates n elements of a stream (loop body overhead). */
    virtual void
    iterateStream(BackendStream handle, std::uint64_t n,
                  unsigned ops_per_element = 2)
    {
        (void)handle;
        (void)n;
        (void)ops_per_element;
    }
};

} // namespace sc::backend

#endif // SPARSECORE_BACKEND_EXEC_BACKEND_HH
