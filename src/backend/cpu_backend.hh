/**
 * @file
 * CpuBackend: the CPU baseline (InHouseAutomine / TACO scalar code on
 * a commodity OOO core).
 *
 * Set operations execute as the Fig. 4(a) dual-pointer merge loop:
 * each step costs compare/advance ALU work, one or two data-dependent
 * branches resolved by a real predictor (the Fig. 9 "Mispred."
 * cycles), and element loads through the L1/L2/L3 hierarchy (the
 * "Cache" cycles). Nested intersection lowers to an explicit loop
 * with per-iteration control overhead.
 */

#ifndef SPARSECORE_BACKEND_CPU_BACKEND_HH
#define SPARSECORE_BACKEND_CPU_BACKEND_HH

#include <memory>
#include <vector>

#include "backend/exec_backend.hh"
#include "sim/core_model.hh"

namespace sc::backend {

/** Tunable costs of the scalar merge loop. */
struct CpuCostParams
{
    /** ALU ops per merge-loop step (compare, select, increment). */
    unsigned opsPerStep = 3;
    /** ALU ops per produced output element (store + pointer). */
    unsigned opsPerOutput = 2;
    /** ALU ops per loop iteration of control code. */
    unsigned opsPerLoopIter = 4;
    /** Extra ops to set up a stream pointer/length pair. */
    unsigned opsPerStreamSetup = 2;
};

/** The CPU baseline backend. Final so the bytecode replay loop's
 *  per-backend instantiation devirtualizes every call. */
class CpuBackend final : public ExecBackend
{
  public:
    explicit CpuBackend(const sim::CoreParams &core = sim::CoreParams{},
                        const sim::MemParams &mem = sim::MemParams{},
                        const CpuCostParams &costs = CpuCostParams{});

    std::string name() const override { return "cpu"; }
    void begin() override;
    Cycles finish() override;
    sim::CycleBreakdown breakdown() const override;

    void scalarOps(std::uint64_t n) override;
    void scalarBranch(std::uint64_t pc, bool taken) override;
    void scalarLoad(Addr addr) override;

    BackendStream streamLoad(Addr key_addr, std::uint32_t length,
                             unsigned priority,
                             streams::KeySpan keys) override;
    BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                               std::uint32_t length, unsigned priority,
                               streams::KeySpan keys) override;
    void streamFree(BackendStream handle) override;

    BackendStream setOp(streams::SetOpKind kind, BackendStream a,
                        BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Key bound,
                        streams::KeySpan result, Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, BackendStream a,
                    BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(BackendStream a, BackendStream b,
                        streams::KeySpan ak, streams::KeySpan bk,
                        Addr a_val_base, Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    void denseValueIntersect(
        BackendStream a, BackendStream b, streams::KeySpan ak,
        streams::KeySpan bk, Addr a_val_base, Addr b_val_base,
        std::span<const std::uint32_t> match_a,
        std::span<const std::uint32_t> match_b) override;
    BackendStream valueMerge(BackendStream a, BackendStream b,
                             streams::KeySpan ak, streams::KeySpan bk,
                             Addr a_val_base, Addr b_val_base,
                             std::uint64_t result_len,
                             Addr out_addr) override;

    /** The modeled CPU is the scalar merge-loop baseline (Fig. 4a):
     *  no nested instruction, no wide comparators. Its timing comes
     *  from the scalar step visitor, never the host kernel table, so
     *  host SIMD can't move a cycle here. */
    Caps caps() const override { return Caps{}; }

    void consumeStream(BackendStream handle) override;
    void iterateStream(BackendStream handle, std::uint64_t n,
                       unsigned ops_per_element) override;

    sim::CoreModel &core() { return *core_; }

  private:
    struct StreamRec
    {
        Addr keyAddr = 0;
        Addr valAddr = 0;
        std::uint32_t length = 0;
    };

    /**
     * Run the scalar merge loop over two operands, charging per-step
     * costs; returns nothing (time accrues in the core model).
     */
    void mergeLoop(streams::SetOpKind kind, const StreamRec &ra,
                   const StreamRec &rb, streams::KeySpan ak,
                   streams::KeySpan bk, Key bound, Addr out_addr,
                   bool producing);

    StreamRec &rec(BackendStream handle);

    std::unique_ptr<sim::CoreModel> core_;
    CpuCostParams costs_;
    std::vector<StreamRec> streams_;
};

} // namespace sc::backend

#endif // SPARSECORE_BACKEND_CPU_BACKEND_HH
