#include "backend/sparsecore_backend.hh"

namespace sc::backend {

SparseCoreBackend::SparseCoreBackend(const arch::SparseCoreConfig &config)
    : config_(config), engine_(std::make_unique<arch::Engine>(config))
{
}

void
SparseCoreBackend::begin()
{
    engine_ = std::make_unique<arch::Engine>(config_);
}

Cycles
SparseCoreBackend::finish()
{
    return engine_->finish();
}

sim::CycleBreakdown
SparseCoreBackend::breakdown() const
{
    return engine_->breakdown();
}

void
SparseCoreBackend::scalarOps(std::uint64_t n)
{
    engine_->scalarOps(n);
}

void
SparseCoreBackend::scalarBranch(std::uint64_t pc, bool taken)
{
    engine_->scalarBranch(pc, taken);
}

void
SparseCoreBackend::scalarLoad(Addr addr)
{
    engine_->scalarLoad(addr);
}

BackendStream
SparseCoreBackend::streamLoad(Addr key_addr, std::uint32_t length,
                              unsigned priority, streams::KeySpan keys)
{
    return engine_->streamRead(key_addr, length, priority, keys);
}

BackendStream
SparseCoreBackend::streamLoadKv(Addr key_addr, Addr val_addr,
                                std::uint32_t length, unsigned priority,
                                streams::KeySpan keys)
{
    return engine_->streamReadKv(key_addr, val_addr, length, priority,
                                 keys);
}

void
SparseCoreBackend::streamFree(BackendStream handle)
{
    engine_->streamFree(handle);
}

BackendStream
SparseCoreBackend::setOp(streams::SetOpKind kind, BackendStream a,
                         BackendStream b, streams::KeySpan ak,
                         streams::KeySpan bk, Key bound,
                         streams::KeySpan result, Addr)
{
    return engine_->setOp(kind, a, b, ak, bk, bound, result.size());
}

void
SparseCoreBackend::setOpCount(streams::SetOpKind kind, BackendStream a,
                              BackendStream b, streams::KeySpan ak,
                              streams::KeySpan bk, Key bound,
                              std::uint64_t)
{
    engine_->setOpCount(kind, a, b, ak, bk, bound);
}

void
SparseCoreBackend::valueIntersect(BackendStream a, BackendStream b,
                                  streams::KeySpan ak,
                                  streams::KeySpan bk, Addr a_val_base,
                                  Addr b_val_base,
                                  std::span<const std::uint32_t> match_a,
                                  std::span<const std::uint32_t> match_b)
{
    std::vector<Addr> addrs_a(match_a.size()), addrs_b(match_b.size());
    for (std::size_t i = 0; i < match_a.size(); ++i)
        addrs_a[i] = a_val_base + match_a[i] * sizeof(Value);
    for (std::size_t i = 0; i < match_b.size(); ++i)
        addrs_b[i] = b_val_base + match_b[i] * sizeof(Value);
    engine_->valueIntersect(a, b, ak, bk, addrs_a, addrs_b);
}

BackendStream
SparseCoreBackend::valueMerge(BackendStream a, BackendStream b,
                              streams::KeySpan ak, streams::KeySpan bk,
                              Addr a_val_base, Addr b_val_base,
                              std::uint64_t result_len, Addr)
{
    return engine_->valueMerge(a, b, ak, bk, a_val_base, b_val_base,
                               result_len);
}

void
SparseCoreBackend::nestedIntersect(BackendStream s,
                                   streams::KeySpan s_keys,
                                   const std::vector<NestedItem> &elems)
{
    if (!caps().nested) {
        // Design without S_NESTINTER (TS/4CS/5CS): run the lowered
        // per-element loop.
        ExecBackend::nestedIntersect(s, s_keys, elems);
        return;
    }
    std::vector<arch::NestedElem> arch_elems;
    arch_elems.reserve(elems.size());
    for (const auto &elem : elems)
        arch_elems.push_back(
            {elem.infoAddr, elem.keyAddr, elem.nested, elem.bound});
    engine_->nestedIntersect(s, s_keys, arch_elems);
    scalarOps(1); // copy acc_reg to the destination
}

void
SparseCoreBackend::consumeStream(BackendStream handle)
{
    engine_->waitFor(handle);
}

void
SparseCoreBackend::iterateStream(BackendStream handle, std::uint64_t n,
                                 unsigned ops_per_element)
{
    engine_->fetchLoop(handle, n, ops_per_element);
}

} // namespace sc::backend
