#include "backend/cpu_backend.hh"

#include "common/logging.hh"

namespace sc::backend {

using sim::CycleClass;
using streams::SetOpKind;
using streams::StepOutcome;

namespace {

/** Synthetic branch pc per static branch site. */
constexpr std::uint64_t pcMatchBranch = 0x40;
constexpr std::uint64_t pcAdvanceBranch = 0x44;
constexpr std::uint64_t pcLoopBranch = 0x48;

} // namespace

CpuBackend::CpuBackend(const sim::CoreParams &core,
                       const sim::MemParams &mem,
                       const CpuCostParams &costs)
    : core_(std::make_unique<sim::CoreModel>(core, mem)), costs_(costs)
{
}

void
CpuBackend::begin()
{
    core_->reset();
    streams_.clear();
}

Cycles
CpuBackend::finish()
{
    return core_->cycles();
}

sim::CycleBreakdown
CpuBackend::breakdown() const
{
    return core_->breakdown();
}

void
CpuBackend::scalarOps(std::uint64_t n)
{
    core_->executeOps(n);
}

void
CpuBackend::scalarBranch(std::uint64_t pc, bool taken)
{
    core_->executeBranch(pc, taken);
}

void
CpuBackend::scalarLoad(Addr addr)
{
    core_->load(addr);
}

CpuBackend::StreamRec &
CpuBackend::rec(BackendStream handle)
{
    if (handle >= streams_.size())
        panic("invalid CPU backend stream handle %u", handle);
    return streams_[handle];
}

BackendStream
CpuBackend::streamLoad(Addr key_addr, std::uint32_t length, unsigned,
                       streams::KeySpan)
{
    core_->executeOps(costs_.opsPerStreamSetup);
    streams_.push_back({key_addr, 0, length});
    return static_cast<BackendStream>(streams_.size() - 1);
}

BackendStream
CpuBackend::streamLoadKv(Addr key_addr, Addr val_addr,
                         std::uint32_t length, unsigned,
                         streams::KeySpan)
{
    core_->executeOps(costs_.opsPerStreamSetup);
    streams_.push_back({key_addr, val_addr, length});
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
CpuBackend::streamFree(BackendStream handle)
{
    rec(handle); // validity check; frees are free on a CPU
}

void
CpuBackend::mergeLoop(SetOpKind kind, const StreamRec &ra,
                      const StreamRec &rb, streams::KeySpan ak,
                      streams::KeySpan bk, Key bound, Addr out_addr,
                      bool producing)
{
    const CycleClass cls = CycleClass::Intersection;
    std::uint64_t out_index = 0;

    // Optimized baselines gallop when the operands are severely
    // skewed: iterate the short side, binary-search the long side.
    // (TACO and hand-tuned mining codes both do this.)
    if (kind == SetOpKind::Intersect && !producing &&
        !ak.empty() && !bk.empty()) {
        const std::size_t shorter = std::min(ak.size(), bk.size());
        const std::size_t longer = std::max(ak.size(), bk.size());
        if (longer >= 32 * shorter) {
            const StreamRec &rshort =
                ak.size() <= bk.size() ? ra : rb;
            unsigned search_steps = 1;
            while ((1ull << search_steps) < longer)
                ++search_steps;
            for (std::size_t i = 0; i < shorter; ++i) {
                core_->load(rshort.keyAddr + i * sizeof(Key), cls);
                // Binary search: data-dependent branches + loads.
                core_->executeOps(2 * search_steps, cls);
                core_->loadOverlapped(
                    (ak.size() <= bk.size() ? rb : ra).keyAddr +
                        (i * 2654435761u) % (longer * sizeof(Key)),
                    2, cls);
                core_->executeBranch(pcMatchBranch, i % 3 == 0, cls);
            }
            return;
        }
    }

    // Initial element loads.
    if (!ak.empty())
        core_->load(ra.keyAddr, cls);
    if (!bk.empty())
        core_->load(rb.keyAddr, cls);

    std::size_t ia = 0, ib = 0;
    auto on_step = [&](StepOutcome outcome) {
        core_->executeOps(costs_.opsPerStep, cls);
        // Branch structure of the Fig. 4(a) loop:
        //   if (cmp == 0) ... else if (cmp < 0) ... else ...
        const bool match = outcome == StepOutcome::Match;
        core_->executeBranch(pcMatchBranch, match, cls);
        if (!match) {
            core_->executeBranch(pcAdvanceBranch,
                                 outcome == StepOutcome::AdvanceA, cls);
        }
        // Element loads on pointer advance; sequential accesses hit
        // L1 after the first line.
        if (match || outcome == StepOutcome::AdvanceA) {
            ++ia;
            if (ia < ak.size())
                core_->load(ra.keyAddr + ia * sizeof(Key), cls);
        }
        if (match || outcome == StepOutcome::AdvanceB) {
            ++ib;
            if (ib < bk.size())
                core_->load(rb.keyAddr + ib * sizeof(Key), cls);
        }
        // Output handling.
        const bool emits =
            (kind == SetOpKind::Intersect && match) ||
            (kind == SetOpKind::Subtract &&
             outcome == StepOutcome::AdvanceA) ||
            kind == SetOpKind::Merge;
        if (emits) {
            core_->executeOps(costs_.opsPerOutput, cls);
            if (producing && out_addr != 0)
                core_->load(out_addr + out_index * sizeof(Key), cls);
            ++out_index;
        }
        // The loop-closing bounds check fuses with the advance
        // branches in compiled code; charge its ALU work only.
        core_->executeOps(1, cls);
    };

    // Deliberately the scalar reference templates, NOT runSetOp():
    // this walk IS the modeled CPU — every visitor step drives the
    // branch predictor and per-step ALU charges, so it must stay
    // scalar no matter which host kernel level is active.
    switch (kind) {
      case SetOpKind::Intersect:
        streams::intersect(ak, bk, bound, nullptr, on_step);
        break;
      case SetOpKind::Subtract:
        streams::subtract(ak, bk, bound, nullptr, on_step);
        break;
      case SetOpKind::Merge:
        streams::merge(ak, bk, nullptr, on_step);
        break;
    }
    // Loop exit branch (not taken).
    core_->executeBranch(pcLoopBranch, false, cls);
}

BackendStream
CpuBackend::setOp(SetOpKind kind, BackendStream a, BackendStream b,
                  streams::KeySpan ak, streams::KeySpan bk, Key bound,
                  streams::KeySpan result, Addr out_addr)
{
    mergeLoop(kind, rec(a), rec(b), ak, bk, bound, out_addr, true);
    streams_.push_back(
        {out_addr, 0, static_cast<std::uint32_t>(result.size())});
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
CpuBackend::setOpCount(SetOpKind kind, BackendStream a, BackendStream b,
                       streams::KeySpan ak, streams::KeySpan bk,
                       Key bound, std::uint64_t)
{
    mergeLoop(kind, rec(a), rec(b), ak, bk, bound, 0, false);
}

void
CpuBackend::valueIntersect(BackendStream a, BackendStream b,
                           streams::KeySpan ak, streams::KeySpan bk,
                           Addr a_val_base, Addr b_val_base,
                           std::span<const std::uint32_t> match_a,
                           std::span<const std::uint32_t> match_b)
{
    mergeLoop(SetOpKind::Intersect, rec(a), rec(b), ak, bk, noBound, 0,
              false);
    // Per match: two value loads plus a fused multiply-accumulate.
    const CycleClass cls = CycleClass::Intersection;
    for (std::size_t i = 0; i < match_a.size(); ++i) {
        core_->load(a_val_base + match_a[i] * sizeof(Value), cls);
        core_->load(b_val_base + match_b[i] * sizeof(Value), cls);
        core_->executeOps(1, cls);
    }
}

void
CpuBackend::denseValueIntersect(BackendStream a, BackendStream,
                                streams::KeySpan ak, streams::KeySpan,
                                Addr a_val_base, Addr b_val_base,
                                std::span<const std::uint32_t> match_a,
                                std::span<const std::uint32_t> match_b)
{
    // TACO's dense-operand kernel: iterate the sparse fiber and
    // gather v[key] directly — no merge walk, no data-dependent
    // branches.
    const CycleClass cls = CycleClass::Intersection;
    const StreamRec &ra = rec(a);
    for (std::size_t i = 0; i < match_a.size(); ++i) {
        core_->load(ra.keyAddr + match_a[i] * sizeof(Key), cls);
        core_->load(a_val_base + match_a[i] * sizeof(Value), cls);
        core_->loadOverlapped(
            b_val_base + match_b[i] * sizeof(Value), 4, cls);
        core_->executeOps(3, cls); // addr gen + FMA + loop
    }
    (void)ak;
}

BackendStream
CpuBackend::valueMerge(BackendStream a, BackendStream b,
                       streams::KeySpan ak, streams::KeySpan bk,
                       Addr a_val_base, Addr b_val_base,
                       std::uint64_t result_len, Addr out_addr)
{
    // TACO-generated CPU code implements merge-class accumulation
    // with a dense WORKSPACE, not a list merge: each update gathers
    // the B value, scatters into the workspace slot indexed by the
    // key, and appends newly-touched keys to the nonzero list. No
    // data-dependent branches, so this is far faster than the naive
    // Fig. 4(c) loop — exactly why the paper's merge-class speedups
    // are modest.
    (void)a;
    (void)a_val_base;
    const CycleClass cls = CycleClass::Intersection;
    const StreamRec &rb = rec(b);
    for (std::size_t i = 0; i < bk.size(); ++i) {
        core_->load(rb.keyAddr + i * sizeof(Key), cls);  // B key
        core_->load(b_val_base + i * sizeof(Value), cls); // B value
        // Workspace slot, indexed by the key: the scatters are
        // independent, so their misses overlap in the OOO window.
        core_->loadOverlapped(out_addr + bk[i] * sizeof(Value), 4,
                              cls);
        core_->executeOps(3, cls); // addr gen + FMA + occupancy flag
    }
    // Newly-touched keys append to the output index list.
    const std::uint64_t fresh =
        result_len > ak.size() ? result_len - ak.size() : 0;
    core_->executeOps(2 * fresh, cls);
    streams_.push_back(
        {out_addr, 0, static_cast<std::uint32_t>(result_len)});
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
CpuBackend::consumeStream(BackendStream handle)
{
    if (handle != noStream)
        rec(handle); // in-order model: results are already visible
}

void
CpuBackend::iterateStream(BackendStream handle, std::uint64_t n,
                          unsigned ops_per_element)
{
    // noStream: a plain counted loop with no element loads.
    const Addr key_addr =
        handle == noStream ? 0 : rec(handle).keyAddr;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (key_addr != 0)
            core_->load(key_addr + i * sizeof(Key));
        core_->executeOps(ops_per_element);
        core_->executeBranch(pcLoopBranch + handle % 7, i + 1 < n);
    }
    core_->executeOps(costs_.opsPerLoopIter);
}

} // namespace sc::backend
