#include "backend/exec_backend.hh"

namespace sc::backend {

void
ExecBackend::nestedIntersect(BackendStream s, streams::KeySpan s_keys,
                             const std::vector<NestedItem> &elems)
{
    // Lowered form: the explicit loop (TS/4CS/5CS and the CPU path).
    iterateStream(s, s_keys.size(), 3);
    for (const NestedItem &elem : elems) {
        const BackendStream h = streamLoad(
            elem.keyAddr,
            static_cast<std::uint32_t>(elem.nested.size()), 0,
            elem.nested);
        setOpCount(streams::SetOpKind::Intersect, s, h, s_keys,
                   elem.nested, elem.bound, elem.count);
        streamFree(h);
        scalarOps(1); // accumulate
    }
}

} // namespace sc::backend
