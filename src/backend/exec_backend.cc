#include "backend/exec_backend.hh"

#include "common/logging.hh"

namespace sc::backend {

void
ExecBackend::nestedIntersect(BackendStream s, streams::KeySpan s_keys,
                             const std::vector<NestedItem> &elems)
{
    (void)s;
    (void)s_keys;
    (void)elems;
    panic("backend '%s' does not implement nested intersection; the "
          "plan executor must lower it to an explicit loop",
          name().c_str());
}

} // namespace sc::backend
