#include "baselines/tensor_accels.hh"

#include <algorithm>

#include "common/logging.hh"
#include "streams/set_ops.hh"

namespace sc::baselines {

using tensor::SparseMatrix;

AccelCost
extensorSpmspm(const SparseMatrix &a, const SparseMatrix &b,
               unsigned comparator_width, unsigned row_stride)
{
    if (a.cols() != b.rows())
        fatal("spmspm shape mismatch");
    if (row_stride == 0)
        fatal("row stride must be positive");
    const SparseMatrix bt = b.transpose();

    AccelCost cost;
    Cycles compute = 0;
    std::uint64_t streamed = 0;
    for (std::uint32_t i = 0; i < a.rows(); i += row_stride) {
        auto arow = a.rowKeys(i);
        if (arow.empty())
            continue;
        streamed += arow.size();
        for (std::uint32_t j = 0; j < bt.rows(); ++j) {
            auto bcol = bt.rowKeys(j);
            if (bcol.empty())
                continue;
            const auto su = streams::suCost(
                arow, bcol, streams::SetOpKind::Intersect, noBound,
                comparator_width);
            compute += su.cycles;
            streamed += su.bConsumed;
            cost.elementsTouched += su.aConsumed + su.bConsumed;
        }
    }
    // DRAM->LLB streaming: 16 bytes (key+value pair) per element at
    // 64 B/cycle, overlapped with compute.
    const Cycles stream_cycles = streamed * 16 / 64;
    cost.cycles = std::max(compute, stream_cycles);
    return cost;
}

AccelCost
outerspaceSpmspm(const SparseMatrix &a, const SparseMatrix &b,
                 unsigned col_stride)
{
    if (a.cols() != b.rows())
        fatal("spmspm shape mismatch");
    if (col_stride == 0)
        fatal("col stride must be positive");
    const SparseMatrix at = a.transpose();

    AccelCost cost;
    std::uint64_t multiplies = 0;
    std::uint64_t partials = 0;
    for (std::uint32_t k = 0; k < at.rows(); k += col_stride) {
        const std::uint64_t ca = at.rowNnz(k);
        const std::uint64_t rb =
            k < b.rows() ? b.rowNnz(k) : 0;
        multiplies += ca * rb;
        partials += ca * rb;
    }
    // Multiply phase: 4 SIMD MACs/cycle. Merge phase: linear pass
    // over the partial products at 2 elements/cycle, latency hidden
    // by the scratchpad (§6.9.2).
    cost.cycles = multiplies / 4 + partials / 2;
    cost.elementsTouched = multiplies;
    return cost;
}

AccelCost
gammaSpmspm(const SparseMatrix &a, const SparseMatrix &b,
            unsigned row_stride)
{
    if (a.cols() != b.rows())
        fatal("spmspm shape mismatch");
    if (row_stride == 0)
        fatal("row stride must be positive");

    AccelCost cost;
    std::uint64_t fetched = 0;
    for (std::uint32_t i = 0; i < a.rows(); i += row_stride) {
        auto arow = a.rowKeys(i);
        for (Key k : arow)
            fetched += b.rowNnz(k);
        fetched += arow.size();
    }
    // FiberCache always hits; the PE consumes one element per cycle.
    cost.cycles = fetched;
    cost.elementsTouched = fetched;
    return cost;
}

} // namespace sc::baselines
