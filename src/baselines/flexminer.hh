/**
 * @file
 * FlexMiner model (§2.3/§6.1): a pattern-aware GPM accelerator whose
 * PEs replace stream intersection with cmap (connectivity-map)
 * probing. Modeled as an ExecBackend so it runs the same algorithm as
 * SparseCore (the paper stresses both implement identical
 * algorithms): a set operation builds the cmap of one operand once
 * per outer-loop subtree (build reuse tracked by operand address) and
 * probes each element of the other operand at one probe per cycle.
 * Graph data moves through a PE-local buffer plus the 4 MB shared
 * cache. The hardware exploration engine walks the tree itself, so
 * per-iteration control costs almost nothing — but every comparison
 * is a serial probe, which is where SparseCore's 16-wide parallel
 * comparison wins its ~2.7x.
 */

#ifndef SPARSECORE_BASELINES_FLEXMINER_HH
#define SPARSECORE_BASELINES_FLEXMINER_HH

#include <memory>
#include <vector>

#include "backend/exec_backend.hh"
#include "sim/mem_hierarchy.hh"

namespace sc::baselines {

/** FlexMiner PE parameters. */
struct FlexMinerParams
{
    /** cmap insertions per cycle during the build phase. */
    unsigned buildPerCycle = 1;
    /** probes per cycle. */
    unsigned probesPerCycle = 1;
    /** hardware tree-walk cost per candidate element (cycles). */
    double walkCostPerElement = 0.5;
    /** shared on-chip cache (4 MB in the paper). */
    std::uint64_t sharedCacheBytes = 4 * 1024 * 1024;
};

/** The FlexMiner backend. */
class FlexMinerBackend : public backend::ExecBackend
{
  public:
    explicit FlexMinerBackend(
        const FlexMinerParams &params = FlexMinerParams{});

    std::string name() const override { return "flexminer"; }
    void begin() override;
    Cycles finish() override { return cycles_; }
    sim::CycleBreakdown breakdown() const override;

    void scalarOps(std::uint64_t n) override;
    void scalarBranch(std::uint64_t pc, bool taken) override;
    void scalarLoad(Addr addr) override;

    backend::BackendStream streamLoad(Addr key_addr,
                                      std::uint32_t length,
                                      unsigned priority,
                                      streams::KeySpan keys) override;
    backend::BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                                        std::uint32_t length,
                                        unsigned priority,
                                        streams::KeySpan keys) override;
    void streamFree(backend::BackendStream handle) override;

    backend::BackendStream setOp(streams::SetOpKind kind,
                                 backend::BackendStream a,
                                 backend::BackendStream b,
                                 streams::KeySpan ak,
                                 streams::KeySpan bk, Key bound,
                                 streams::KeySpan result,
                                 Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, backend::BackendStream a,
                    backend::BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(backend::BackendStream a,
                        backend::BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Addr a_val_base,
                        Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    backend::BackendStream valueMerge(backend::BackendStream a,
                                      backend::BackendStream b,
                                      streams::KeySpan ak,
                                      streams::KeySpan bk,
                                      Addr a_val_base, Addr b_val_base,
                                      std::uint64_t result_len,
                                      Addr out_addr) override;

    void iterateStream(backend::BackendStream handle, std::uint64_t n,
                       unsigned ops_per_element) override;

  private:
    struct StreamRec
    {
        Addr addr;
        std::uint32_t length;
    };

    /** Fetch a stream's lines through the PE cache hierarchy. */
    Cycles fetchStream(Addr addr, std::uint64_t keys);

    /** Charge a cmap-based set operation. */
    void cmapOp(streams::KeySpan build_side, Addr build_addr,
                streams::KeySpan probe_side, Addr probe_addr,
                Key bound);

    FlexMinerParams params_;
    std::unique_ptr<sim::MemHierarchy> mem_;
    std::vector<StreamRec> streams_;
    Cycles cycles_ = 0;
    Cycles memCycles_ = 0;
    Addr builtCmapAddr_ = 0; ///< cmap reuse across the subtree
};

} // namespace sc::baselines

#endif // SPARSECORE_BASELINES_FLEXMINER_HH
