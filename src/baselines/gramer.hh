/**
 * @file
 * GRAMER model (§2.3/§6.3.1): a locality-aware, pattern-oblivious GPM
 * accelerator. It explores ALL connected size-k subgraphs (no
 * symmetry breaking, no pattern-guided pruning) and runs an expensive
 * isomorphism check per candidate, which is why the paper finds it
 * slower than even the CPU baseline.
 *
 * The model counts the candidate space from the graph's structure
 * (extension counts per BFS level) and charges per-candidate queue
 * management, extension and isomorphism-check costs through a
 * priority-based memory model (GRAMER pins the hottest vertices
 * on-chip).
 */

#ifndef SPARSECORE_BASELINES_GRAMER_HH
#define SPARSECORE_BASELINES_GRAMER_HH

#include <cstdint>

#include "graph/csr_graph.hh"
#include "sim/core_model.hh"

namespace sc::baselines {

/** GRAMER parameters. */
struct GramerParams
{
    /** Cycles per candidate for queue push/pop + bookkeeping. */
    Cycles queueCost = 8;
    /** Cycles per isomorphism-check vertex-pair comparison. */
    Cycles isoCheckCostPerPair = 2;
    /** On-chip priority buffer (pins the hottest vertices). */
    std::uint64_t priorityBufferBytes = 512 * 1024;
    /** Cycles per off-chip edge-list element. */
    double offChipCostPerElement = 2.0;
    /** Cycles per on-chip edge-list element. */
    double onChipCostPerElement = 0.25;
};

/** Result of a GRAMER estimate. */
struct GramerResult
{
    Cycles cycles = 0;
    double candidateSubgraphs = 0; ///< explored candidate count
};

/**
 * Estimate GRAMER's cycles for mining all patterns of `k` vertices.
 * The candidate space is computed exactly for k = 3 (wedge+triangle
 * extensions) and by degree-weighted extension for k = 4, 5.
 */
GramerResult estimateGramer(const graph::CsrGraph &g, unsigned k,
                            const GramerParams &params = GramerParams{});

} // namespace sc::baselines

#endif // SPARSECORE_BASELINES_GRAMER_HH
