/**
 * @file
 * TrieJax model (§2.3/§6.3.1): a Worst-Case-Optimal-Join accelerator
 * that treats the graph as a database table.
 *
 * Modeled as an ExecBackend driven by the same symmetry-broken
 * algorithm, with the paper's two handicaps applied:
 *  - no symmetry-breaking support: every operation's work is
 *    multiplied by the pattern's automorphism count (6/24/120 for
 *    triangle/4-clique/5-clique) and bounds are ignored,
 *  - O(log N) LUB binary search per edge-list lookup instead of the
 *    O(1) CSR access,
 * plus the Partial-Join-Result (PJR) cache, which only holds entries
 * up to 1 KB (256 vertices) — exactly the high-degree lists GPM hits
 * most, so those always miss (the paper's criticism).
 */

#ifndef SPARSECORE_BASELINES_TRIEJAX_HH
#define SPARSECORE_BASELINES_TRIEJAX_HH

#include <memory>
#include <vector>

#include "backend/exec_backend.hh"
#include "sim/mem_hierarchy.hh"

namespace sc::baselines {

/** TrieJax parameters. */
struct TrieJaxParams
{
    /** PJR entry size limit in keys (1 KB = 256 four-byte keys). */
    std::uint32_t pjrEntryKeys = 256;
    /** PJR capacity in bytes. */
    std::uint64_t pjrBytes = 512 * 1024;
    /** Cycles per binary-search probe step. */
    Cycles searchStepCost = 2;
    /** Merge-join throughput (elements per cycle). */
    unsigned joinPerCycle = 1;
};

/** The TrieJax backend. */
class TrieJaxBackend : public backend::ExecBackend
{
  public:
    /**
     * @param redundancy automorphism count of the mined pattern (the
     *        factor by which TrieJax over-enumerates without symmetry
     *        breaking)
     * @param table_rows number of rows in the relation (graph edges),
     *        sets the LUB binary-search depth
     */
    TrieJaxBackend(unsigned redundancy, std::uint64_t table_rows,
                   const TrieJaxParams &params = TrieJaxParams{});

    std::string name() const override { return "triejax"; }
    void begin() override;
    Cycles finish() override { return cycles_; }
    sim::CycleBreakdown breakdown() const override;

    backend::BackendStream streamLoad(Addr key_addr,
                                      std::uint32_t length,
                                      unsigned priority,
                                      streams::KeySpan keys) override;
    backend::BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                                        std::uint32_t length,
                                        unsigned priority,
                                        streams::KeySpan keys) override;
    void streamFree(backend::BackendStream handle) override;

    backend::BackendStream setOp(streams::SetOpKind kind,
                                 backend::BackendStream a,
                                 backend::BackendStream b,
                                 streams::KeySpan ak,
                                 streams::KeySpan bk, Key bound,
                                 streams::KeySpan result,
                                 Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, backend::BackendStream a,
                    backend::BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(backend::BackendStream a,
                        backend::BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Addr a_val_base,
                        Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    backend::BackendStream valueMerge(backend::BackendStream a,
                                      backend::BackendStream b,
                                      streams::KeySpan ak,
                                      streams::KeySpan bk,
                                      Addr a_val_base, Addr b_val_base,
                                      std::uint64_t result_len,
                                      Addr out_addr) override;

    void iterateStream(backend::BackendStream handle, std::uint64_t n,
                       unsigned ops_per_element) override;

  private:
    /** Charge one operand traversal with LUB search + PJR lookup. */
    void joinOp(streams::KeySpan ak, Addr a_addr, streams::KeySpan bk,
                Addr b_addr);

    /** PJR lookup: returns per-element access cost. */
    Cycles pjrAccess(Addr addr, std::uint64_t keys);

    unsigned redundancy_;
    Cycles lubSearchCost_;
    TrieJaxParams params_;
    std::unique_ptr<sim::MemHierarchy> mem_;
    std::vector<Addr> streams_;
    Cycles cycles_ = 0;
    Cycles memCycles_ = 0;
};

} // namespace sc::baselines

#endif // SPARSECORE_BASELINES_TRIEJAX_HH
