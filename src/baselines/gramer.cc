#include "baselines/gramer.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace sc::baselines {

GramerResult
estimateGramer(const graph::CsrGraph &g, unsigned k,
               const GramerParams &params)
{
    if (k < 2 || k > 5)
        fatal("GRAMER model supports pattern sizes 2..5, got %u", k);

    const VertexId n = g.numVertices();

    // Hot-vertex coverage: GRAMER pins the highest-degree vertices'
    // edge lists in its priority buffer. Compute the fraction of
    // edge-slot traffic they cover.
    std::vector<std::uint32_t> degrees(n);
    for (VertexId v = 0; v < n; ++v)
        degrees[v] = g.degree(v);
    std::vector<std::uint32_t> sorted = degrees;
    std::sort(sorted.begin(), sorted.end(),
              std::greater<std::uint32_t>());
    const std::uint64_t capacity_keys =
        params.priorityBufferBytes / sizeof(Key);
    std::uint64_t pinned = 0, pinned_slots = 0;
    for (std::uint32_t d : sorted) {
        if (pinned + d > capacity_keys)
            break;
        pinned += d;
        pinned_slots += d;
    }
    const double hot_fraction =
        g.numEdgeSlots()
            ? static_cast<double>(pinned_slots) /
                  static_cast<double>(g.numEdgeSlots())
            : 0.0;
    // Access traffic is degree-squared weighted toward hot vertices;
    // approximate the on-chip hit fraction as sqrt-boosted coverage.
    const double hit_fraction =
        std::min(0.95, hot_fraction > 0.0
                           ? std::sqrt(hot_fraction)
                           : 0.0);
    const double per_element_cost =
        hit_fraction * params.onChipCostPerElement +
        (1.0 - hit_fraction) * params.offChipCostPerElement;

    // Candidate space: pattern-oblivious BFS extension.
    //   level-2 candidates: every directed edge (2|E|)
    //   level-3 candidates: every edge extended by every neighbor of
    //                       either endpoint: sum over edges of
    //                       (d_u + d_v - 2)
    //   level-4/5: each level-(k-1) candidate extends by the average
    //              boundary degree (degree-weighted mean, since
    //              high-degree vertices appear in proportionally more
    //              subgraphs).
    double candidates = static_cast<double>(g.numEdgeSlots());
    double extensions3 = 0;
    for (VertexId v = 0; v < n; ++v) {
        const double d = g.degree(v);
        extensions3 += d * (d - 1); // wedges centered at v (ordered)
    }
    extensions3 += static_cast<double>(g.numEdgeSlots()); // triangles
    double total_work_elements =
        static_cast<double>(g.numEdgeSlots());
    double level_candidates = extensions3;
    candidates += extensions3;

    // Degree-weighted mean degree (the expected degree of a vertex
    // reached by following an edge).
    double sum_d = 0, sum_d2 = 0;
    for (VertexId v = 0; v < n; ++v) {
        const double d = g.degree(v);
        sum_d += d;
        sum_d2 += d * d;
    }
    const double weighted_degree = sum_d > 0 ? sum_d2 / sum_d : 0.0;

    for (unsigned level = 4; level <= k; ++level) {
        total_work_elements += level_candidates * weighted_degree;
        level_candidates *= weighted_degree * 0.5;
        candidates += level_candidates;
    }
    if (k == 3)
        total_work_elements += extensions3;

    // Per-candidate costs: queue management + isomorphism check
    // against all patterns of size k (k^2 pair comparisons each, ~2
    // patterns at k=3, 6 at k=4, 21 at k=5).
    const double patterns_at[6] = {0, 0, 1, 2, 6, 21};
    const double iso_cost = static_cast<double>(k) * k *
                            params.isoCheckCostPerPair *
                            patterns_at[k];

    GramerResult result;
    result.candidateSubgraphs = candidates;
    result.cycles = static_cast<Cycles>(
        candidates * (params.queueCost + iso_cost) +
        total_work_elements * per_element_cost);
    return result;
}

} // namespace sc::baselines
