#include "baselines/triejax.hh"

#include <cmath>

#include "common/logging.hh"

namespace sc::baselines {

using backend::BackendStream;

TrieJaxBackend::TrieJaxBackend(unsigned redundancy,
                               std::uint64_t table_rows,
                               const TrieJaxParams &params)
    : redundancy_(redundancy), params_(params)
{
    if (redundancy == 0)
        fatal("TrieJax redundancy factor must be positive");
    const double bits =
        std::log2(static_cast<double>(std::max<std::uint64_t>(
            2, table_rows)));
    lubSearchCost_ = static_cast<Cycles>(
        std::ceil(bits) * params.searchStepCost);

    // PJR cache stands in for the on-chip hierarchy: small L1-like
    // PJR, a modest L2, then memory.
    sim::MemParams mem;
    mem.l1 = {"pjr", params.pjrBytes, 8, 64};
    mem.l2 = {"tj_l2", 2 * 1024 * 1024, 8, 64};
    mem.l3 = {"tj_l3", 4 * 1024 * 1024, 16, 64};
    mem.l1Latency = 2;
    mem.l2Latency = 14;
    mem.l3Latency = 20;
    mem.memLatency = 120;
    mem_ = std::make_unique<sim::MemHierarchy>(mem);
}

void
TrieJaxBackend::begin()
{
    cycles_ = 0;
    memCycles_ = 0;
    streams_.clear();
    mem_->resetStats();
}

sim::CycleBreakdown
TrieJaxBackend::breakdown() const
{
    sim::CycleBreakdown bd;
    bd[sim::CycleClass::Cache] = memCycles_;
    bd[sim::CycleClass::Intersection] =
        cycles_ > memCycles_ ? cycles_ - memCycles_ : 0;
    return bd;
}

BackendStream
TrieJaxBackend::streamLoad(Addr key_addr, std::uint32_t, unsigned,
                           streams::KeySpan)
{
    // Locating the trie node for an edge list costs an LUB binary
    // search on the relation, once per enumerated ordering.
    cycles_ += lubSearchCost_ * redundancy_;
    streams_.push_back(key_addr);
    return static_cast<BackendStream>(streams_.size() - 1);
}

BackendStream
TrieJaxBackend::streamLoadKv(Addr key_addr, Addr, std::uint32_t,
                             unsigned, streams::KeySpan)
{
    return streamLoad(key_addr, 0, 0, {});
}

void
TrieJaxBackend::streamFree(BackendStream)
{
}

Cycles
TrieJaxBackend::pjrAccess(Addr addr, std::uint64_t keys)
{
    if (keys == 0)
        return 0;
    // Entries above the PJR limit are never cached (deallocated on
    // insert): every line comes from beyond the PJR.
    const unsigned line = mem_->params().l1.lineBytes;
    const Addr last = addr + (keys - 1) * sizeof(Key);
    Cycles total = 0;
    if (keys > params_.pjrEntryKeys) {
        for (Addr a = addr / line; a <= last / line; ++a)
            total += mem_->l2Access(a * line);
        // Sequential fetches overlap 4-wide.
        return total / 4;
    }
    for (Addr a = addr / line; a <= last / line; ++a)
        total += mem_->l1Access(a * line);
    return total / 4;
}

void
TrieJaxBackend::joinOp(streams::KeySpan ak, Addr a_addr,
                       streams::KeySpan bk, Addr b_addr)
{
    // Without symmetry breaking TrieJax enumerates every automorphic
    // ordering and cannot use bounds, so the FULL operand lengths are
    // joined, redundancy_ times.
    const std::uint64_t join_steps = ak.size() + bk.size();
    const Cycles mem_cost =
        pjrAccess(a_addr, ak.size()) + pjrAccess(b_addr, bk.size());
    const Cycles compute =
        (join_steps + params_.joinPerCycle - 1) / params_.joinPerCycle;
    cycles_ += redundancy_ * (compute + mem_cost);
    memCycles_ += redundancy_ * mem_cost;
}

BackendStream
TrieJaxBackend::setOp(streams::SetOpKind, BackendStream a,
                      BackendStream b, streams::KeySpan ak,
                      streams::KeySpan bk, Key, streams::KeySpan result,
                      Addr out_addr)
{
    joinOp(ak, streams_.at(a), bk, streams_.at(b));
    (void)result;
    streams_.push_back(out_addr);
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
TrieJaxBackend::setOpCount(streams::SetOpKind, BackendStream a,
                           BackendStream b, streams::KeySpan ak,
                           streams::KeySpan bk, Key, std::uint64_t)
{
    joinOp(ak, streams_.at(a), bk, streams_.at(b));
}

void
TrieJaxBackend::valueIntersect(BackendStream a, BackendStream b,
                               streams::KeySpan ak, streams::KeySpan bk,
                               Addr, Addr,
                               std::span<const std::uint32_t> match_a,
                               std::span<const std::uint32_t>)
{
    joinOp(ak, streams_.at(a), bk, streams_.at(b));
    cycles_ += match_a.size();
}

BackendStream
TrieJaxBackend::valueMerge(BackendStream a, BackendStream b,
                           streams::KeySpan ak, streams::KeySpan bk,
                           Addr, Addr, std::uint64_t, Addr out_addr)
{
    joinOp(ak, streams_.at(a), bk, streams_.at(b));
    streams_.push_back(out_addr);
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
TrieJaxBackend::iterateStream(BackendStream, std::uint64_t n, unsigned)
{
    // Each extension performs an LUB lookup per enumerated ordering.
    cycles_ += redundancy_ * n;
}

} // namespace sc::baselines
