#include "baselines/flexminer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sc::baselines {

using backend::BackendStream;
using streams::SetOpKind;

FlexMinerBackend::FlexMinerBackend(const FlexMinerParams &params)
    : params_(params)
{
    // PE-local buffer + 4 MB shared cache + (pass-through) L3.
    sim::MemParams mem;
    mem.l1 = {"pe_buf", 64 * 1024, 8, 64};
    mem.l2 = {"shared", params.sharedCacheBytes, 16, 64};
    mem.l3 = {"shadow", 2 * params.sharedCacheBytes, 16, 64};
    mem.l1Latency = 2;
    mem.l2Latency = 16;
    mem.l3Latency = 18;
    mem.memLatency = 120;
    mem_ = std::make_unique<sim::MemHierarchy>(mem);
}

void
FlexMinerBackend::begin()
{
    cycles_ = 0;
    memCycles_ = 0;
    streams_.clear();
    builtCmapAddr_ = 0;
    mem_->resetStats();
}

sim::CycleBreakdown
FlexMinerBackend::breakdown() const
{
    sim::CycleBreakdown bd;
    bd[sim::CycleClass::Cache] = memCycles_;
    bd[sim::CycleClass::Intersection] =
        cycles_ > memCycles_ ? cycles_ - memCycles_ : 0;
    return bd;
}

void
FlexMinerBackend::scalarOps(std::uint64_t n)
{
    // Hardware FSM: control is deeply pipelined.
    cycles_ += n / 8;
}

void
FlexMinerBackend::scalarBranch(std::uint64_t, bool)
{
    // No speculative core: decisions are part of the pipeline.
}

void
FlexMinerBackend::scalarLoad(Addr addr)
{
    const Cycles latency = mem_->l1Access(addr);
    // Hardware prefetching hides most of it.
    cycles_ += latency / 8;
    memCycles_ += latency / 8;
}

Cycles
FlexMinerBackend::fetchStream(Addr addr, std::uint64_t keys)
{
    if (keys == 0)
        return 0;
    const unsigned line = mem_->params().l2.lineBytes;
    Cycles total = 0;
    const Addr last = addr + (keys - 1) * sizeof(Key);
    for (Addr a = addr / line; a <= last / line; ++a)
        total = std::max(total, mem_->l1Access(a * line));
    // Line fetches pipeline; only the leading latency is exposed.
    return total;
}

BackendStream
FlexMinerBackend::streamLoad(Addr key_addr, std::uint32_t length,
                             unsigned, streams::KeySpan)
{
    streams_.push_back({key_addr, length});
    return static_cast<BackendStream>(streams_.size() - 1);
}

BackendStream
FlexMinerBackend::streamLoadKv(Addr key_addr, Addr, std::uint32_t length,
                               unsigned, streams::KeySpan)
{
    streams_.push_back({key_addr, length});
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
FlexMinerBackend::streamFree(BackendStream)
{
}

void
FlexMinerBackend::cmapOp(streams::KeySpan build_side, Addr build_addr,
                         streams::KeySpan probe_side, Addr probe_addr,
                         Key bound)
{
    // Build phase, amortized across the subtree: FlexMiner constructs
    // the cmap of the anchor vertex's neighbor list once and reuses
    // it while the anchor is fixed.
    if (build_addr == 0 || build_addr != builtCmapAddr_) {
        const Cycles fetch = fetchStream(build_addr, build_side.size());
        cycles_ += fetch;
        memCycles_ += fetch;
        cycles_ +=
            (build_side.size() + params_.buildPerCycle - 1) /
            params_.buildPerCycle;
        builtCmapAddr_ = build_addr;
    }
    // Probe phase: one element per cycle, early-terminated at the
    // bound (probe side is sorted).
    std::uint64_t probes = probe_side.size();
    if (bound != noBound) {
        auto it = std::lower_bound(probe_side.begin(),
                                   probe_side.end(), bound);
        probes = static_cast<std::uint64_t>(it - probe_side.begin());
    }
    const Cycles fetch = fetchStream(probe_addr, probes);
    // Probing overlaps with fetching; the slower of the two governs.
    const Cycles probe_cycles =
        (probes + params_.probesPerCycle - 1) / params_.probesPerCycle;
    if (fetch > probe_cycles) {
        cycles_ += fetch;
        memCycles_ += fetch - probe_cycles;
    } else {
        cycles_ += probe_cycles;
    }
}

BackendStream
FlexMinerBackend::setOp(SetOpKind, BackendStream a, BackendStream b,
                        streams::KeySpan ak, streams::KeySpan bk,
                        Key bound, streams::KeySpan result, Addr out_addr)
{
    // The cmap is built from the anchor (reused) operand — the plan
    // executor always passes the loop-invariant set first — and the
    // varying operand probes it.
    const StreamRec &ra = streams_.at(a);
    const StreamRec &rb = streams_.at(b);
    cmapOp(ak, ra.addr, bk, rb.addr, bound);
    // A stream produced at this address invalidates any cmap that was
    // built from the previous contents of the buffer.
    if (out_addr == builtCmapAddr_)
        builtCmapAddr_ = 0;
    streams_.push_back(
        {out_addr, static_cast<std::uint32_t>(result.size())});
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
FlexMinerBackend::setOpCount(SetOpKind, BackendStream a, BackendStream b,
                             streams::KeySpan ak, streams::KeySpan bk,
                             Key bound, std::uint64_t)
{
    const StreamRec &ra = streams_.at(a);
    const StreamRec &rb = streams_.at(b);
    cmapOp(ak, ra.addr, bk, rb.addr, bound);
}

void
FlexMinerBackend::valueIntersect(BackendStream a, BackendStream b,
                                 streams::KeySpan ak, streams::KeySpan bk,
                                 Addr, Addr,
                                 std::span<const std::uint32_t> match_a,
                                 std::span<const std::uint32_t>)
{
    // FlexMiner targets GPM; value computation falls back to probe +
    // serial MAC.
    setOpCount(SetOpKind::Intersect, a, b, ak, bk, noBound, 0);
    cycles_ += match_a.size();
}

BackendStream
FlexMinerBackend::valueMerge(BackendStream a, BackendStream b,
                             streams::KeySpan ak, streams::KeySpan bk,
                             Addr, Addr, std::uint64_t result_len,
                             Addr out_addr)
{
    (void)a;
    (void)b;
    cycles_ += ak.size() + bk.size() + result_len;
    streams_.push_back(
        {out_addr, static_cast<std::uint32_t>(result_len)});
    return static_cast<BackendStream>(streams_.size() - 1);
}

void
FlexMinerBackend::iterateStream(BackendStream, std::uint64_t n,
                                unsigned)
{
    cycles_ += static_cast<Cycles>(
        static_cast<double>(n) * params_.walkCostPerElement);
}

} // namespace sc::baselines
