/**
 * @file
 * GPU model (§6.5): an analytical backend for pattern enumeration on
 * a Tesla-K40m-class GPU, calibrated with the utilization figures the
 * paper profiles — ~4.4% warp utilization (branch divergence and
 * ragged per-thread loop lengths) and ~13% global-memory-bandwidth
 * utilization (scattered edge-list accesses).
 *
 * The backend consumes the same event stream as the other substrates
 * and converts scalar merge-loop steps into GPU time, normalized to
 * SparseCore's 1 GHz clock. The "without symmetry breaking" variant
 * multiplies enumeration work by the pattern's automorphism count
 * but runs with less divergence per step.
 */

#ifndef SPARSECORE_BASELINES_GPU_MODEL_HH
#define SPARSECORE_BASELINES_GPU_MODEL_HH

#include "backend/exec_backend.hh"

namespace sc::baselines {

/** GPU model parameters (Tesla K40m unless noted). */
struct GpuParams
{
    unsigned cudaCores = 2880;
    double clockGhz = 0.745;          ///< vs SparseCore's 1 GHz
    double warpUtilization = 0.044;   ///< paper-profiled
    double memBandwidthGBs = 288.0;
    double memUtilization = 0.13;     ///< paper-profiled
    /** Lane-instructions per merge-loop step (the branchy inner
     *  loop plus per-thread enumeration-stack management). */
    double laneInstrPerStep = 40.0;
    /** Divergence serialization factor with symmetry breaking:
     *  ragged loop bounds fully serialize the 32-wide warp. */
    double divergenceFactor = 32.0;
    /** Divergence factor without symmetry breaking (fewer branches,
     *  more uniform loops). */
    double divergenceFactorNoBreaking = 20.0;
};

/** The GPU backend. */
class GpuBackend : public backend::ExecBackend
{
  public:
    /**
     * @param symmetry_breaking include the v_i < v_j restrictions
     * @param redundancy automorphism count of the mined pattern (the
     *        extra work when symmetry breaking is off)
     */
    GpuBackend(bool symmetry_breaking, unsigned redundancy,
               const GpuParams &params = GpuParams{});

    std::string name() const override { return "gpu"; }
    void begin() override;
    Cycles finish() override;
    sim::CycleBreakdown breakdown() const override;

    void scalarOps(std::uint64_t n) override;
    void scalarBranch(std::uint64_t pc, bool taken) override;
    void scalarLoad(Addr addr) override;

    backend::BackendStream streamLoad(Addr key_addr,
                                      std::uint32_t length,
                                      unsigned priority,
                                      streams::KeySpan keys) override;
    backend::BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                                        std::uint32_t length,
                                        unsigned priority,
                                        streams::KeySpan keys) override;
    void streamFree(backend::BackendStream handle) override;

    backend::BackendStream setOp(streams::SetOpKind kind,
                                 backend::BackendStream a,
                                 backend::BackendStream b,
                                 streams::KeySpan ak,
                                 streams::KeySpan bk, Key bound,
                                 streams::KeySpan result,
                                 Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, backend::BackendStream a,
                    backend::BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(backend::BackendStream a,
                        backend::BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Addr a_val_base,
                        Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    backend::BackendStream valueMerge(backend::BackendStream a,
                                      backend::BackendStream b,
                                      streams::KeySpan ak,
                                      streams::KeySpan bk,
                                      Addr a_val_base, Addr b_val_base,
                                      std::uint64_t result_len,
                                      Addr out_addr) override;

    void iterateStream(backend::BackendStream handle, std::uint64_t n,
                       unsigned ops_per_element) override;

  private:
    void chargeSetOp(streams::KeySpan ak, streams::KeySpan bk,
                     Key bound);

    bool symmetryBreaking_;
    unsigned redundancy_;
    GpuParams params_;
    backend::BackendStream next_ = 0;
    double laneInstructions_ = 0; ///< total lane-instructions
    double bytesMoved_ = 0;       ///< total global-memory bytes
};

} // namespace sc::baselines

#endif // SPARSECORE_BASELINES_GPU_MODEL_HH
