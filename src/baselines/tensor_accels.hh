/**
 * @file
 * Tensor accelerator models for Fig. 16 (§6.9.2): ExTensor
 * (inner-product with hierarchical intersection), OuterSPACE
 * (outer-product with scratchpad-hidden latency), and Gamma
 * (Gustavson with an always-hit FiberCache and a one-element-per-
 * cycle PE) — each modeled per the paper's own simplifications, with
 * a single compute unit for the fair single-SU comparison.
 */

#ifndef SPARSECORE_BASELINES_TENSOR_ACCELS_HH
#define SPARSECORE_BASELINES_TENSOR_ACCELS_HH

#include "common/types.hh"
#include "tensor/sparse_matrix.hh"

namespace sc::baselines {

/** Cost of one spmspm on an accelerator model. */
struct AccelCost
{
    Cycles cycles = 0;
    std::uint64_t elementsTouched = 0;
};

/**
 * ExTensor: inner-product dataflow. One PE with a parallel comparator
 * array (same width as an SU, for fairness) performs every row(A) x
 * col(B) intersection back to back; DRAM->LLB streaming overlaps with
 * compute and only shows when it exceeds the comparator time.
 */
AccelCost extensorSpmspm(const tensor::SparseMatrix &a,
                         const tensor::SparseMatrix &b,
                         unsigned comparator_width = 16,
                         unsigned row_stride = 1);

/**
 * OuterSPACE: outer-product dataflow. The multiply phase streams
 * col(A,k) x row(B,k) partial products through the PE's SIMD MAC
 * lanes (4/cycle); the merge phase is a linear pass over the partial
 * products at 2 elements/cycle with scratchpad-hidden latency
 * (§6.9.2: allocation and fetch latencies are hidden).
 */
AccelCost outerspaceSpmspm(const tensor::SparseMatrix &a,
                           const tensor::SparseMatrix &b,
                           unsigned col_stride = 1);

/**
 * Gamma: Gustavson dataflow. The FiberCache always hits (the paper's
 * simplification); the PE consumes one fetched element per cycle
 * across all scaled B-row merges.
 */
AccelCost gammaSpmspm(const tensor::SparseMatrix &a,
                      const tensor::SparseMatrix &b,
                      unsigned row_stride = 1);

} // namespace sc::baselines

#endif // SPARSECORE_BASELINES_TENSOR_ACCELS_HH
