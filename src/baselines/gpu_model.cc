#include "baselines/gpu_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sc::baselines {

using backend::BackendStream;

GpuBackend::GpuBackend(bool symmetry_breaking, unsigned redundancy,
                       const GpuParams &params)
    : symmetryBreaking_(symmetry_breaking), redundancy_(redundancy),
      params_(params)
{
    if (redundancy == 0)
        fatal("GPU model redundancy must be positive");
}

void
GpuBackend::begin()
{
    next_ = 0;
    laneInstructions_ = 0;
    bytesMoved_ = 0;
}

Cycles
GpuBackend::finish()
{
    // Effective lane throughput (lane-instructions per GPU cycle).
    const double lanes =
        params_.cudaCores * params_.warpUtilization;
    const double divergence = symmetryBreaking_
                                  ? params_.divergenceFactor
                                  : params_.divergenceFactorNoBreaking;
    const double compute_gpu_cycles =
        laneInstructions_ * divergence / std::max(1.0, lanes);
    // Memory time: effective bandwidth in bytes per GPU cycle.
    const double bytes_per_cycle = params_.memBandwidthGBs *
                                   params_.memUtilization /
                                   params_.clockGhz;
    const double mem_gpu_cycles =
        bytesMoved_ / std::max(1.0, bytes_per_cycle);
    const double gpu_cycles =
        std::max(compute_gpu_cycles, mem_gpu_cycles);
    // Normalize to the SparseCore 1 GHz clock.
    return static_cast<Cycles>(gpu_cycles / params_.clockGhz);
}

sim::CycleBreakdown
GpuBackend::breakdown() const
{
    sim::CycleBreakdown bd;
    bd[sim::CycleClass::Intersection] =
        const_cast<GpuBackend *>(this)->finish();
    return bd;
}

void
GpuBackend::scalarOps(std::uint64_t n)
{
    laneInstructions_ += static_cast<double>(n * redundancy_);
}

void
GpuBackend::scalarBranch(std::uint64_t, bool)
{
    laneInstructions_ += redundancy_;
}

void
GpuBackend::scalarLoad(Addr)
{
    laneInstructions_ += redundancy_;
    bytesMoved_ += 32.0 * redundancy_; // uncoalesced sector fetch
}

BackendStream
GpuBackend::streamLoad(Addr, std::uint32_t, unsigned, streams::KeySpan)
{
    laneInstructions_ += 4.0 * redundancy_;
    return next_++;
}

BackendStream
GpuBackend::streamLoadKv(Addr, Addr, std::uint32_t, unsigned,
                         streams::KeySpan)
{
    return streamLoad(0, 0, 0, {});
}

void
GpuBackend::streamFree(BackendStream)
{
}

void
GpuBackend::chargeSetOp(streams::KeySpan ak, streams::KeySpan bk,
                        Key bound)
{
    // Steps of the scalar merge loop each thread runs.
    std::uint64_t la = ak.size(), lb = bk.size();
    if (symmetryBreaking_ && bound != noBound) {
        la = static_cast<std::uint64_t>(
            std::lower_bound(ak.begin(), ak.end(), bound) -
            ak.begin());
        lb = static_cast<std::uint64_t>(
            std::lower_bound(bk.begin(), bk.end(), bound) -
            bk.begin());
    }
    const double steps =
        static_cast<double>(la + lb) *
        (symmetryBreaking_ ? 1.0 : redundancy_);
    laneInstructions_ += steps * params_.laneInstrPerStep;
    bytesMoved_ += static_cast<double>(la + lb) * sizeof(Key) *
                   (symmetryBreaking_ ? 1.0 : redundancy_);
}

BackendStream
GpuBackend::setOp(streams::SetOpKind, BackendStream, BackendStream,
                  streams::KeySpan ak, streams::KeySpan bk, Key bound,
                  streams::KeySpan, Addr)
{
    chargeSetOp(ak, bk, bound);
    return next_++;
}

void
GpuBackend::setOpCount(streams::SetOpKind, BackendStream, BackendStream,
                       streams::KeySpan ak, streams::KeySpan bk,
                       Key bound, std::uint64_t)
{
    chargeSetOp(ak, bk, bound);
}

void
GpuBackend::valueIntersect(BackendStream, BackendStream,
                           streams::KeySpan ak, streams::KeySpan bk,
                           Addr, Addr,
                           std::span<const std::uint32_t> match_a,
                           std::span<const std::uint32_t>)
{
    chargeSetOp(ak, bk, noBound);
    laneInstructions_ += 2.0 * match_a.size();
    bytesMoved_ += 16.0 * match_a.size();
}

BackendStream
GpuBackend::valueMerge(BackendStream, BackendStream, streams::KeySpan ak,
                       streams::KeySpan bk, Addr, Addr,
                       std::uint64_t result_len, Addr)
{
    chargeSetOp(ak, bk, noBound);
    laneInstructions_ += 2.0 * result_len;
    bytesMoved_ += 12.0 * result_len;
    return next_++;
}

void
GpuBackend::iterateStream(BackendStream, std::uint64_t n, unsigned ops)
{
    laneInstructions_ +=
        static_cast<double>(n) * ops *
        (symmetryBreaking_ ? 1.0 : redundancy_);
}

} // namespace sc::baselines
