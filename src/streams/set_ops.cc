#include "streams/set_ops.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sc::streams {

namespace {

/**
 * Length ratio above which the longer operand's pointer advances by
 * galloping (exponential search + binary search) instead of one
 * element per step. The fast paths below are exact-cost rewrites:
 * they reproduce the reference two-pointer / windowed-skip results
 * bit for bit, only faster on the host.
 */
constexpr std::size_t gallopRatio = 32;

/** First index >= from with s[index] >= target (exponential probe,
 *  then binary search — O(log distance) instead of O(distance)). */
std::size_t
gallopLowerBound(KeySpan s, std::size_t from, Key target)
{
    std::size_t step = 1;
    std::size_t lo = from;
    while (lo + step < s.size() && s[lo + step] < target) {
        lo += step;
        step <<= 1;
    }
    const std::size_t hi = std::min(s.size(), lo + step + 1);
    auto it = std::lower_bound(s.begin() + lo, s.begin() + hi, target);
    return static_cast<std::size_t>(it - s.begin());
}

} // namespace

const char *
setOpName(SetOpKind kind)
{
    switch (kind) {
      case SetOpKind::Intersect:
        return "intersect";
      case SetOpKind::Subtract:
        return "subtract";
      case SetOpKind::Merge:
        return "merge";
      default:
        panic("unknown set-op kind %u", static_cast<unsigned>(kind));
    }
}

const char *
valueOpName(ValueOp op)
{
    switch (op) {
      case ValueOp::Mac:
        return "MAC";
      case ValueOp::MaxAcc:
        return "MAX";
      case ValueOp::MinAcc:
        return "MIN";
      default:
        panic("unknown value op %u", static_cast<unsigned>(op));
    }
}

Value
valueIntersect(KeySpan ak, ValueSpan av, KeySpan bk, ValueSpan bv,
               ValueOp op, SetOpResult *work,
               std::vector<std::uint32_t> *match_pos_a,
               std::vector<std::uint32_t> *match_pos_b)
{
    if (ak.size() != av.size() || bk.size() != bv.size())
        panic("key/value stream length mismatch");

    Value acc = 0.0;
    bool first = true;
    std::size_t i = 0, j = 0;
    SetOpResult res;
    while (i < ak.size() && j < bk.size()) {
        // Galloping fast path for skewed operands: advancing the long
        // side's pointer to the first key >= the short side's head is
        // exactly what the two-pointer loop does one AdvanceA/AdvanceB
        // step at a time, so charging one step per skipped element
        // keeps the modeled cost (and every output) identical.
        if (ak[i] != bk[j]) {
            if (ak[i] < bk[j] &&
                ak.size() - i >= gallopRatio * (bk.size() - j)) {
                const std::size_t ni = gallopLowerBound(ak, i, bk[j]);
                res.steps += ni - i;
                i = ni;
                continue;
            }
            if (bk[j] < ak[i] &&
                bk.size() - j >= gallopRatio * (ak.size() - i)) {
                const std::size_t nj = gallopLowerBound(bk, j, ak[i]);
                res.steps += nj - j;
                j = nj;
                continue;
            }
        }
        ++res.steps;
        if (ak[i] == bk[j]) {
            if (match_pos_a)
                match_pos_a->push_back(static_cast<std::uint32_t>(i));
            if (match_pos_b)
                match_pos_b->push_back(static_cast<std::uint32_t>(j));
            const Value product = av[i] * bv[j];
            switch (op) {
              case ValueOp::Mac:
                acc += product;
                break;
              case ValueOp::MaxAcc:
                acc = first ? product : std::max(acc, product);
                break;
              case ValueOp::MinAcc:
                acc = first ? product : std::min(acc, product);
                break;
            }
            first = false;
            ++res.count;
            ++i;
            ++j;
        } else if (ak[i] < bk[j]) {
            ++i;
        } else {
            ++j;
        }
    }
    res.aConsumed = i;
    res.bConsumed = j;
    if (work)
        *work = res;
    return acc;
}

SetOpResult
valueMerge(KeySpan ak, ValueSpan av, KeySpan bk, ValueSpan bv,
           Value scale_a, Value scale_b, std::vector<Key> &out_keys,
           std::vector<Value> &out_vals)
{
    if (ak.size() != av.size() || bk.size() != bv.size())
        panic("key/value stream length mismatch");

    SetOpResult res;
    std::size_t i = 0, j = 0;
    while (i < ak.size() && j < bk.size()) {
        ++res.steps;
        if (ak[i] == bk[j]) {
            out_keys.push_back(ak[i]);
            out_vals.push_back(av[i] * scale_a + bv[j] * scale_b);
            ++i;
            ++j;
        } else if (ak[i] < bk[j]) {
            out_keys.push_back(ak[i]);
            out_vals.push_back(av[i] * scale_a);
            ++i;
        } else {
            out_keys.push_back(bk[j]);
            out_vals.push_back(bv[j] * scale_b);
            ++j;
        }
        ++res.count;
    }
    for (; i < ak.size(); ++i) {
        out_keys.push_back(ak[i]);
        out_vals.push_back(av[i] * scale_a);
        ++res.count;
    }
    for (; j < bk.size(); ++j) {
        out_keys.push_back(bk[j]);
        out_vals.push_back(bv[j] * scale_b);
        ++res.count;
    }
    res.aConsumed = ak.size();
    res.bConsumed = bk.size();
    return res;
}

SuCost
suCost(KeySpan a, KeySpan b, SetOpKind kind, Key bound, unsigned width)
{
    if (width == 0)
        panic("SU comparator window must be positive");

    Cycles cycles = 0;
    std::size_t i = 0, j = 0;

    while (i < a.size() && j < b.size()) {
        const Key ka = a[i], kb = b[j];
        if (kind != SetOpKind::Merge && (ka >= bound || kb >= bound))
            break;
        // Galloping fast path for skewed remainders. While the long
        // side catches up to the short side's head, the reference
        // loop advances that one pointer by at most `width` per cycle
        // and nothing can break mid-skip (every skipped key is below
        // the other head, which itself is below the bound), so the
        // whole phase costs exactly ceil(distance / width) cycles.
        if (ka != kb) {
            if (ka < kb &&
                a.size() - i >= gallopRatio * (b.size() - j)) {
                const std::size_t t = gallopLowerBound(a, i, kb);
                cycles += (t - i + width - 1) / width;
                i = t;
                continue;
            }
            if (kb < ka &&
                b.size() - j >= gallopRatio * (a.size() - i)) {
                const std::size_t t = gallopLowerBound(b, j, ka);
                cycles += (t - j + width - 1) / width;
                j = t;
                continue;
            }
        }
        ++cycles;
        if (ka == kb) {
            // A match retires one element of each stream this cycle.
            ++i;
            ++j;
            continue;
        }
        // Parallel comparison: the head of each stream is compared
        // against a window of the other; the pointer of the smaller
        // side skips to the first element >= the other head, bounded
        // by the window width (Fig. 6).
        if (ka < kb) {
            const std::size_t limit = std::min(a.size(), i + width);
            auto it = std::lower_bound(a.begin() + i,
                                       a.begin() + limit, kb);
            i = static_cast<std::size_t>(it - a.begin());
        } else {
            const std::size_t limit = std::min(b.size(), j + width);
            auto it = std::lower_bound(b.begin() + j,
                                       b.begin() + limit, ka);
            j = static_cast<std::size_t>(it - b.begin());
        }
    }

    if (kind == SetOpKind::Merge) {
        // Tail copy streams out at `width` elements per cycle.
        const std::size_t left = (a.size() - i) + (b.size() - j);
        cycles += (left + width - 1) / width;
        i = a.size();
        j = b.size();
    } else if (kind == SetOpKind::Subtract) {
        // Remaining elements of A below the bound stream to the output
        // at `width` per cycle; keys are sorted, so the count is a
        // binary search away.
        const std::size_t stop = static_cast<std::size_t>(
            std::lower_bound(a.begin() + i, a.end(), bound) -
            a.begin());
        cycles += (stop - i + width - 1) / width;
        i = stop;
    }
    return SuCost{cycles, i, j};
}

Cycles
suCycles(KeySpan a, KeySpan b, SetOpKind kind, Key bound, unsigned width)
{
    return suCost(a, b, kind, bound, width).cycles;
}

} // namespace sc::streams
