/**
 * @file
 * Runtime-dispatched host kernels for the stream set operations.
 *
 * The paper's Stream Units win by comparing keys 16 at a time
 * (§4.2, Fig. 6). The simulator's *functional* hot path — every
 * intersection/subtraction/merge the GPM executor, the stream-ISA
 * interpreter and the tensor kernels evaluate — mirrors that idea on
 * the host: a KernelTable holds one implementation per operation and
 * is selected once per process from CPUID (AVX2 > SSE4 > scalar),
 * overridable with SC_FORCE_KERNEL=scalar|sse|avx2|auto or a
 * ScopedKernelOverride.
 *
 * Invariant (enforced by tests/kernel_table_test.cc): every kernel
 * level returns bit-identical outputs AND bit-identical SetOpResult
 * work summaries (count/steps/aConsumed/bConsumed). Simulated cycles
 * are computed from operand spans by the cost models
 * (streams::suCost, CpuBackend's merge loop) which never touch this
 * table, so kernel choice moves host wall-clock only — never a
 * single simulated cycle (DESIGN.md §10).
 */

#ifndef SPARSECORE_STREAMS_SIMD_KERNEL_TABLE_HH
#define SPARSECORE_STREAMS_SIMD_KERNEL_TABLE_HH

#include <optional>
#include <string_view>
#include <vector>

#include "streams/set_ops.hh"

namespace sc::streams {

/** Host instruction-set tier of a kernel implementation. */
enum class KernelLevel : unsigned { Scalar = 0, Sse = 1, Avx2 = 2 };

const char *kernelLevelName(KernelLevel level);

/** "scalar"|"sse"|"avx2" -> level; anything else -> nullopt. */
std::optional<KernelLevel> parseKernelLevel(std::string_view name);

/**
 * One implementation of each stream set operation. Function pointers
 * (not virtuals): the table is resolved once and the indirect call
 * is the only per-op overhead.
 */
struct KernelTable
{
    /** Materializing or counting (out == nullptr) bounded set op. */
    using SetOpFn = SetOpResult (*)(KeySpan a, KeySpan b, Key bound,
                                    std::vector<Key> *out);
    /** Merge has no upper bound (S_MERGE takes no R3 operand). */
    using MergeFn = SetOpResult (*)(KeySpan a, KeySpan b,
                                    std::vector<Key> *out);

    KernelLevel level = KernelLevel::Scalar;
    SetOpFn intersect = nullptr;
    SetOpFn subtract = nullptr;
    MergeFn merge = nullptr;
};

/**
 * The table in effect for this call: an active ScopedKernelOverride
 * if present, else the process default (SC_FORCE_KERNEL or the best
 * level the CPU supports, resolved once on first use).
 */
const KernelTable &activeKernels();

/** True when `level` is both compiled in and supported by this CPU. */
bool kernelLevelAvailable(KernelLevel level);

/** All available levels, ascending (always contains Scalar). */
std::vector<KernelLevel> availableKernelLevels();

/** Table for an explicit level; fatal() if unavailable. */
const KernelTable &kernelsFor(KernelLevel level);

/**
 * RAII process-global kernel override (tests, RunOptions, parallel
 * mining). Nests; restores the previous override on destruction.
 * The override is process-wide so host pool threads executing a
 * parallel run observe it too — do not run two overridden workloads
 * with different levels concurrently.
 */
class ScopedKernelOverride
{
  public:
    explicit ScopedKernelOverride(KernelLevel level);
    ~ScopedKernelOverride();
    ScopedKernelOverride(const ScopedKernelOverride &) = delete;
    ScopedKernelOverride &operator=(const ScopedKernelOverride &) = delete;

  private:
    const KernelTable *prev_;
};

namespace simd {
/** Per-level tables (scalar always; SSE/AVX2 when compiled in). */
const KernelTable &scalarKernelTable();
#if defined(SPARSECORE_HAVE_X86_KERNELS)
const KernelTable &sseKernelTable();
const KernelTable &avx2KernelTable();
#endif
} // namespace simd

} // namespace sc::streams

#endif // SPARSECORE_STREAMS_SIMD_KERNEL_TABLE_HH
