/**
 * @file
 * SSE4 (4-wide) set-operation kernels: the same block-compare /
 * left-pack / closed-form-finalize structure as avx2_kernels.cc at
 * NEON width — 4 keys per block, 16 key pairs per iteration, lane
 * rotation via _mm_shuffle_epi32 and packing via _mm_shuffle_epi8.
 * See avx2_kernels.cc for the algorithmic commentary; this file only
 * notes where the 128-bit forms differ.
 *
 * Compiled with -msse4.1; entered only after
 * __builtin_cpu_supports("sse4.1") (kernel_table.cc).
 */

#include <smmintrin.h>

#include <bit>

#include "streams/simd/kernel_table.hh"
#include "streams/simd/simd_util.hh"

namespace sc::streams::simd {

namespace {

constexpr std::size_t laneWidth = 4;

/** 4-bit mask of A lanes whose key occurs anywhere in the B block. */
inline unsigned
blockMatchMask(__m128i va, __m128i vb)
{
    const __m128i r1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
    const __m128i r2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
    const __m128i r3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
    const __m128i m = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi32(va, vb), _mm_cmpeq_epi32(va, r1)),
        _mm_or_si128(_mm_cmpeq_epi32(va, r2), _mm_cmpeq_epi32(va, r3)));
    return static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(m)));
}

/** Left-pack the masked lanes of va to dst; returns advanced dst. */
inline Key *
emitLanes(__m128i va, unsigned mask, Key *dst)
{
    const __m128i shuf = _mm_load_si128(
        reinterpret_cast<const __m128i *>(sseEmitTable.bytes[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(dst),
                     _mm_shuffle_epi8(va, shuf));
    return dst + std::popcount(mask);
}

SetOpResult
sseIntersect(KeySpan a, KeySpan b, Key bound, std::vector<Key> *out)
{
    const std::size_t la = trimToBound(a, bound);
    const std::size_t lb = trimToBound(b, bound);
    if (la == 0 || lb == 0)
        return finishIntersect(a, la, b, lb, 0);
    if (skewed(la, lb) || skewed(lb, la))
        return skewIntersect(a, la, b, lb, out);

    std::size_t base = 0;
    Key *dst = nullptr;
    if (out) {
        base = out->size();
        out->resize(base + std::min(la, lb) + laneWidth);
        dst = out->data() + base;
    }

    std::uint64_t count = 0;
    std::size_t i = 0, j = 0;
    while (i + laneWidth <= la && j + laneWidth <= lb) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a.data() + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b.data() + j));
        const unsigned mask = blockMatchMask(va, vb);
        if (dst)
            dst = emitLanes(va, mask, dst);
        count += std::popcount(mask);
        const Key amax = a[i + laneWidth - 1];
        const Key bmax = b[j + laneWidth - 1];
        if (amax <= bmax)
            i += laneWidth;
        if (bmax <= amax)
            j += laneWidth;
    }
    while (i < la && j < lb) {
        const Key ka = a[i], kb = b[j];
        if (ka == kb) {
            if (dst)
                *dst++ = ka;
            ++count;
            ++i;
            ++j;
        } else if (ka < kb) {
            ++i;
        } else {
            ++j;
        }
    }
    if (out)
        out->resize(base + count);
    return finishIntersect(a, la, b, lb, count);
}

SetOpResult
sseSubtract(KeySpan a, KeySpan b, Key bound, std::vector<Key> *out)
{
    const std::size_t la = trimToBound(a, bound);
    if (!out) {
        const std::uint64_t matches =
            sseIntersect(a.first(la), b, noBound, nullptr).count;
        return finishSubtract(a, la, b, la - matches);
    }
    if (la == 0)
        return finishSubtract(a, 0, b, 0);
    if (skewed(b.size(), la))
        return skewSubtractLongB(a, la, b, out);
    if (b.empty() || skewed(la, b.size()))
        return skewSubtractLongA(a, la, b, out);

    const std::size_t base = out->size();
    out->resize(base + la + laneWidth);
    Key *dst = out->data() + base;

    unsigned pending = 0;
    std::size_t i = 0, j = 0;
    while (i + laneWidth <= la && j + laneWidth <= b.size()) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a.data() + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b.data() + j));
        pending |= blockMatchMask(va, vb);
        const Key amax = a[i + laneWidth - 1];
        const Key bmax = b[j + laneWidth - 1];
        if (amax <= bmax) {
            dst = emitLanes(va, ~pending & 0xfu, dst);
            i += laneWidth;
            pending = 0;
        }
        if (bmax <= amax)
            j += laneWidth;
    }
    const std::size_t block = i;
    while (i < la) {
        const Key ka = a[i];
        if (i - block < laneWidth && (pending >> (i - block)) & 1u) {
            ++i;
            continue;
        }
        while (j < b.size() && b[j] < ka)
            ++j;
        if (j < b.size() && b[j] == ka) {
            ++i;
            ++j;
        } else {
            *dst++ = ka;
            ++i;
        }
    }
    const auto count =
        static_cast<std::uint64_t>(dst - (out->data() + base));
    out->resize(base + count);
    return finishSubtract(a, la, b, count);
}

SetOpResult
sseMerge(KeySpan a, KeySpan b, std::vector<Key> *out)
{
    if (out)
        return mergeMaterialize(a, b, out);
    const std::uint64_t matches =
        sseIntersect(a, b, noBound, nullptr).count;
    return finishMerge(a, b, matches);
}

} // namespace

const KernelTable &
sseKernelTable()
{
    static const KernelTable table{KernelLevel::Sse, &sseIntersect,
                                   &sseSubtract, &sseMerge};
    return table;
}

} // namespace sc::streams::simd
