/**
 * @file
 * Kernel registry: one-time CPUID resolution, SC_FORCE_KERNEL
 * parsing, scoped overrides, and the runSetOp/runSetOpCount dispatch
 * entry points that streams/set_ops.hh declares.
 */

#include "streams/simd/kernel_table.hh"

#include <atomic>
#include <cstdlib>

#include "common/config.hh"
#include "common/logging.hh"
#include "streams/setindex/hybrid.hh"

namespace sc::streams {

namespace {

/** Table for a level, or nullptr when it is not compiled in / not
 *  supported by this CPU. */
const KernelTable *
tableFor(KernelLevel level)
{
    switch (level) {
      case KernelLevel::Scalar:
        return &simd::scalarKernelTable();
      case KernelLevel::Sse:
#if defined(SPARSECORE_HAVE_X86_KERNELS)
        if (__builtin_cpu_supports("sse4.1"))
            return &simd::sseKernelTable();
#endif
        return nullptr;
      case KernelLevel::Avx2:
#if defined(SPARSECORE_HAVE_X86_KERNELS)
        if (__builtin_cpu_supports("avx2"))
            return &simd::avx2KernelTable();
#endif
        return nullptr;
    }
    return nullptr;
}

const KernelTable *
bestAvailable()
{
    if (const KernelTable *t = tableFor(KernelLevel::Avx2))
        return t;
    if (const KernelTable *t = tableFor(KernelLevel::Sse))
        return t;
    return &simd::scalarKernelTable();
}

/** Process default: SC_FORCE_KERNEL (via the common/config loader,
 *  which warns and falls back to auto on unknown values) if usable,
 *  else CPUID. */
const KernelTable *
resolveDefault()
{
    const std::string &forced = config().forceKernel;
    if (forced == "auto")
        return bestAvailable();
    const auto level = parseKernelLevel(forced);
    if (!level)
        return bestAvailable();
    if (const KernelTable *t = tableFor(*level))
        return t;
    const KernelTable *best = bestAvailable();
    warn("SC_FORCE_KERNEL=%s unavailable on this host/build; "
         "falling back to %s",
         forced.c_str(), kernelLevelName(best->level));
    return best;
}

std::atomic<const KernelTable *> g_default{nullptr};
std::atomic<const KernelTable *> g_override{nullptr};

} // namespace

const char *
kernelLevelName(KernelLevel level)
{
    switch (level) {
      case KernelLevel::Scalar:
        return "scalar";
      case KernelLevel::Sse:
        return "sse";
      case KernelLevel::Avx2:
        return "avx2";
      default:
        panic("unknown kernel level %u", static_cast<unsigned>(level));
    }
}

std::optional<KernelLevel>
parseKernelLevel(std::string_view name)
{
    if (name == "scalar")
        return KernelLevel::Scalar;
    if (name == "sse")
        return KernelLevel::Sse;
    if (name == "avx2")
        return KernelLevel::Avx2;
    return std::nullopt;
}

const KernelTable &
activeKernels()
{
    if (const KernelTable *o = g_override.load(std::memory_order_acquire))
        return *o;
    const KernelTable *t = g_default.load(std::memory_order_acquire);
    if (!t) {
        // Benign race: resolveDefault() is deterministic, so
        // concurrent first calls store the same pointer.
        t = resolveDefault();
        g_default.store(t, std::memory_order_release);
    }
    return *t;
}

bool
kernelLevelAvailable(KernelLevel level)
{
    return tableFor(level) != nullptr;
}

std::vector<KernelLevel>
availableKernelLevels()
{
    std::vector<KernelLevel> levels;
    for (const KernelLevel level :
         {KernelLevel::Scalar, KernelLevel::Sse, KernelLevel::Avx2})
        if (kernelLevelAvailable(level))
            levels.push_back(level);
    return levels;
}

const KernelTable &
kernelsFor(KernelLevel level)
{
    const KernelTable *t = tableFor(level);
    if (!t)
        fatal("kernel level '%s' is not available on this host/build",
              kernelLevelName(level));
    return *t;
}

ScopedKernelOverride::ScopedKernelOverride(KernelLevel level)
    : prev_(g_override.exchange(&kernelsFor(level),
                                std::memory_order_acq_rel))
{
}

ScopedKernelOverride::~ScopedKernelOverride()
{
    g_override.store(prev_, std::memory_order_release);
}

SetOpResult
runSetOp(SetOpKind kind, KeySpan a, KeySpan b, Key bound,
         std::vector<Key> *out)
{
    // Hybrid-format fast path: operands that resolve to registered
    // adjacency lists with bitmap chunks run the setindex kernels
    // (bit-identical outputs and SetOpResult; DESIGN.md §11).
    if (setindex::indexedDispatchPossible(a, b)) {
        SetOpResult res;
        if (setindex::tryRunIndexed(kind, a, b, bound, out, res))
            return res;
    }
    const KernelTable &t = activeKernels();
    switch (kind) {
      case SetOpKind::Intersect:
        return t.intersect(a, b, bound, out);
      case SetOpKind::Subtract:
        return t.subtract(a, b, bound, out);
      case SetOpKind::Merge:
        return t.merge(a, b, out);
      default:
        panic("unknown set-op kind %u", static_cast<unsigned>(kind));
    }
}

SetOpResult
runSetOpCount(SetOpKind kind, KeySpan a, KeySpan b, Key bound)
{
    // The .C forms are the same dispatch with no output buffer — a
    // counting instruction can never diverge from its materializing
    // twin because there is no separate counting code path to drift.
    return runSetOp(kind, a, b, bound, nullptr);
}

} // namespace sc::streams
