/**
 * @file
 * Portable scalar kernel table: thin trampolines onto the reference
 * two-pointer templates in streams/set_ops.hh. SC_FORCE_KERNEL=scalar
 * therefore reproduces the exact pre-registry host behavior, and
 * every other level is property-tested against this one.
 */

#include "streams/simd/kernel_table.hh"

namespace sc::streams::simd {

namespace {

SetOpResult
scalarIntersect(KeySpan a, KeySpan b, Key bound, std::vector<Key> *out)
{
    return streams::intersect(a, b, bound, out);
}

SetOpResult
scalarSubtract(KeySpan a, KeySpan b, Key bound, std::vector<Key> *out)
{
    return streams::subtract(a, b, bound, out);
}

SetOpResult
scalarMerge(KeySpan a, KeySpan b, std::vector<Key> *out)
{
    return streams::merge(a, b, out);
}

} // namespace

const KernelTable &
scalarKernelTable()
{
    static const KernelTable table{KernelLevel::Scalar, &scalarIntersect,
                                   &scalarSubtract, &scalarMerge};
    return table;
}

} // namespace sc::streams::simd
