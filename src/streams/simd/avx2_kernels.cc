/**
 * @file
 * AVX2 (8-wide) set-operation kernels — the host-side analogue of
 * the SU's 16-wide parallel comparator (§4.2, Fig. 6). Each step
 * compares an 8-key block of A against all 8 rotations of an 8-key
 * block of B (64 key pairs per iteration), left-packs the matched
 * lanes with a permute-table store, and advances whichever block's
 * maximum is not ahead. Heavily skewed operands take the galloping
 * path instead, and results are finalized with the closed-form
 * scalar-reference endpoint math (simd_util.hh), so the returned
 * SetOpResult is bit-identical to the scalar kernel's.
 *
 * This translation unit is compiled with -mavx2 and only ever
 * entered after __builtin_cpu_supports("avx2") (kernel_table.cc).
 */

#include <immintrin.h>

#include <bit>

#include "streams/simd/kernel_table.hh"
#include "streams/simd/simd_util.hh"

namespace sc::streams::simd {

namespace {

constexpr std::size_t laneWidth = 8;

/** 8-bit mask of A lanes whose key occurs anywhere in the B block. */
inline unsigned
blockMatchMask(__m256i va, __m256i vb)
{
    // Rotate B one lane at a time; eight compares pair every A lane
    // with every B lane. Equality compares are sign-agnostic, so
    // unsigned keys need no bias.
    const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    __m256i m = _mm256_cmpeq_epi32(va, vb);
    __m256i rb = vb;
    for (int r = 1; r < static_cast<int>(laneWidth); ++r) {
        rb = _mm256_permutevar8x32_epi32(rb, rotate1);
        m = _mm256_or_si256(m, _mm256_cmpeq_epi32(va, rb));
    }
    return static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(m)));
}

/** Left-pack the masked lanes of va to dst; returns advanced dst. */
inline Key *
emitLanes(__m256i va, unsigned mask, Key *dst)
{
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i *>(avx2EmitTable.idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst),
                        _mm256_permutevar8x32_epi32(va, perm));
    return dst + std::popcount(mask);
}

SetOpResult
avx2Intersect(KeySpan a, KeySpan b, Key bound, std::vector<Key> *out)
{
    const std::size_t la = trimToBound(a, bound);
    const std::size_t lb = trimToBound(b, bound);
    if (la == 0 || lb == 0)
        return finishIntersect(a, la, b, lb, 0);
    if (skewed(la, lb) || skewed(lb, la))
        return skewIntersect(a, la, b, lb, out);

    std::size_t base = 0;
    Key *dst = nullptr;
    if (out) {
        // Slack for the full-width packed store of the last block.
        base = out->size();
        out->resize(base + std::min(la, lb) + laneWidth);
        dst = out->data() + base;
    }

    std::uint64_t count = 0;
    std::size_t i = 0, j = 0;
    while (i + laneWidth <= la && j + laneWidth <= lb) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.data() + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.data() + j));
        const unsigned mask = blockMatchMask(va, vb);
        if (dst)
            dst = emitLanes(va, mask, dst);
        count += std::popcount(mask);
        // Keys are duplicate-free, so a block pair can never match
        // twice: advancing on max comparison loses no pair, and the
        // emitted keys stay globally sorted.
        const Key amax = a[i + laneWidth - 1];
        const Key bmax = b[j + laneWidth - 1];
        if (amax <= bmax)
            i += laneWidth;
        if (bmax <= amax)
            j += laneWidth;
    }
    // Sub-block remainder: plain two-pointer walk. Lanes already
    // matched above cannot re-match — their partner key was unique.
    while (i < la && j < lb) {
        const Key ka = a[i], kb = b[j];
        if (ka == kb) {
            if (dst)
                *dst++ = ka;
            ++count;
            ++i;
            ++j;
        } else if (ka < kb) {
            ++i;
        } else {
            ++j;
        }
    }
    if (out)
        out->resize(base + count);
    return finishIntersect(a, la, b, lb, count);
}

SetOpResult
avx2Subtract(KeySpan a, KeySpan b, Key bound, std::vector<Key> *out)
{
    const std::size_t la = trimToBound(a, bound);
    if (!out) {
        // |A - B| below the bound = |A'| - |A' ∩ B|; reuse the
        // intersect kernel so the counting form shares every fast
        // path.
        const std::uint64_t matches =
            avx2Intersect(a.first(la), b, noBound, nullptr).count;
        return finishSubtract(a, la, b, la - matches);
    }
    if (la == 0)
        return finishSubtract(a, 0, b, 0);
    if (skewed(b.size(), la))
        return skewSubtractLongB(a, la, b, out);
    if (b.empty() || skewed(la, b.size()))
        return skewSubtractLongA(a, la, b, out);

    const std::size_t base = out->size();
    out->resize(base + la + laneWidth);
    Key *dst = out->data() + base;

    // `pending` accumulates the match mask of the CURRENT A block
    // across successive B blocks; the block's survivors are emitted
    // only once it can no longer match (amax <= bmax: every later B
    // key exceeds amax).
    unsigned pending = 0;
    std::size_t i = 0, j = 0;
    while (i + laneWidth <= la && j + laneWidth <= b.size()) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a.data() + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b.data() + j));
        pending |= blockMatchMask(va, vb);
        const Key amax = a[i + laneWidth - 1];
        const Key bmax = b[j + laneWidth - 1];
        if (amax <= bmax) {
            dst = emitLanes(va, ~pending & 0xffu, dst);
            i += laneWidth;
            pending = 0;
        }
        if (bmax <= amax)
            j += laneWidth;
    }
    // Remainder. The undecided A block (lanes [i, i+8) when the loop
    // exited for lack of B keys) carries its pending bits: matched
    // lanes must be dropped here, not re-emitted.
    const std::size_t block = i;
    while (i < la) {
        const Key ka = a[i];
        if (i - block < laneWidth && (pending >> (i - block)) & 1u) {
            ++i;
            continue;
        }
        while (j < b.size() && b[j] < ka)
            ++j;
        if (j < b.size() && b[j] == ka) {
            ++i;
            ++j;
        } else {
            *dst++ = ka;
            ++i;
        }
    }
    const auto count =
        static_cast<std::uint64_t>(dst - (out->data() + base));
    out->resize(base + count);
    return finishSubtract(a, la, b, count);
}

SetOpResult
avx2Merge(KeySpan a, KeySpan b, std::vector<Key> *out)
{
    if (out)
        return mergeMaterialize(a, b, out);
    const std::uint64_t matches =
        avx2Intersect(a, b, noBound, nullptr).count;
    return finishMerge(a, b, matches);
}

} // namespace

const KernelTable &
avx2KernelTable()
{
    static const KernelTable table{KernelLevel::Avx2, &avx2Intersect,
                                   &avx2Subtract, &avx2Merge};
    return table;
}

} // namespace sc::streams::simd
