/**
 * @file
 * Shared machinery for the SSE/AVX2 set-operation kernels: bound
 * trimming, closed-form reconstruction of the scalar reference
 * loop's SetOpResult, skew (galloping) fast paths, and the compacted
 * -store emit tables. Everything here is portable scalar code; the
 * intrinsics live in sse_kernels.cc / avx2_kernels.cc.
 *
 * Why closed forms: a block kernel does not walk the scalar loop, so
 * it cannot count steps or final pointer positions directly — and a
 * blocked walk ends at different positions than the scalar walk. The
 * reference endpoints are, however, fully determined by the operand
 * spans (strictly sorted, duplicate-free keys):
 *
 *  - Trimming. The scalar loop never consumes an element >= the
 *    bound, so intersect(a, b, bound) behaves exactly like
 *    intersect(a', b', noBound) with x' = x[0 .. lower_bound(x,
 *    bound)); for subtract only A is trimmed (B may advance past the
 *    bound chasing A's head — but A's head is < bound, so those B
 *    advances are reproduced by the untrimmed closed form below).
 *
 *  - Intersect endpoints on trimmed spans (la, lb > 0): the loop
 *    stops when one side exhausts. If a[la-1] == b[lb-1] both
 *    exhaust: (la, lb). If a[la-1] < b[lb-1], A exhausts first (B's
 *    last element can only be consumed by a match or by an A head
 *    greater than it, neither exists), and B stops at the first
 *    element > a[la-1]: j = lower_bound(b, a[la-1]) plus one if that
 *    element matched. Symmetric otherwise.
 *
 *  - Step counts. Each step consumes exactly one element (AdvanceA/
 *    AdvanceB) or two (Match), so intersect/merge-main-loop steps =
 *    i + j - matches. Subtract emits on AdvanceA without consuming
 *    B, consumes both on Match and one B on AdvanceB: steps = count
 *    + j_final, with i_final = la always and j_final = #b <= a[la-1]
 *    counting the matched partner.
 *
 * tests/kernel_table_test.cc checks these identities field-by-field
 * against the scalar templates on randomized streams.
 */

#ifndef SPARSECORE_STREAMS_SIMD_SIMD_UTIL_HH
#define SPARSECORE_STREAMS_SIMD_SIMD_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "streams/set_ops.hh"

namespace sc::streams::simd {

/** Skew ratio above which galloping beats block comparison (same
 *  threshold the exact-cost fast paths in set_ops.cc use). */
constexpr std::size_t simdGallopRatio = 32;

inline bool
skewed(std::size_t longer, std::size_t shorter)
{
    return longer >= simdGallopRatio * shorter;
}

/** Number of elements of s below the (exclusive) bound. */
inline std::size_t
trimToBound(KeySpan s, Key bound)
{
    if (s.empty() || s.back() < bound)
        return s.size();
    return static_cast<std::size_t>(
        std::lower_bound(s.begin(), s.end(), bound) - s.begin());
}

/** First index >= from with s[index] >= target (exponential probe +
 *  binary search). */
inline std::size_t
gallopFrom(KeySpan s, std::size_t from, Key target)
{
    std::size_t step = 1;
    std::size_t lo = from;
    while (lo + step < s.size() && s[lo + step] < target) {
        lo += step;
        step <<= 1;
    }
    const std::size_t hi = std::min(s.size(), lo + step + 1);
    auto it = std::lower_bound(s.begin() + lo, s.begin() + hi, target);
    return static_cast<std::size_t>(it - s.begin());
}

/** Final (i, j) of the scalar two-pointer loop over trimmed spans. */
struct LoopEnd
{
    std::size_t i = 0, j = 0;
};

inline LoopEnd
intersectLoopEnd(KeySpan a, std::size_t la, KeySpan b, std::size_t lb)
{
    if (la == 0 || lb == 0)
        return {0, 0};
    const Key alast = a[la - 1], blast = b[lb - 1];
    if (alast == blast)
        return {la, lb};
    if (alast < blast) {
        std::size_t j = static_cast<std::size_t>(
            std::lower_bound(b.begin(), b.begin() + lb, alast) -
            b.begin());
        if (j < lb && b[j] == alast)
            ++j;
        return {la, j};
    }
    std::size_t i = static_cast<std::size_t>(
        std::lower_bound(a.begin(), a.begin() + la, blast) - a.begin());
    if (i < la && a[i] == blast)
        ++i;
    return {i, lb};
}

/** Final j of the scalar subtract loop (i always ends at la). */
inline std::size_t
subtractLoopEndB(KeySpan a, std::size_t la, KeySpan b)
{
    if (la == 0)
        return 0;
    const Key alast = a[la - 1];
    std::size_t j = static_cast<std::size_t>(
        std::lower_bound(b.begin(), b.end(), alast) - b.begin());
    if (j < b.size() && b[j] == alast)
        ++j;
    return j;
}

/** Reference-identical SetOpResult from a kernel's match count. */
inline SetOpResult
finishIntersect(KeySpan a, std::size_t la, KeySpan b, std::size_t lb,
                std::uint64_t count)
{
    const LoopEnd e = intersectLoopEnd(a, la, b, lb);
    SetOpResult res;
    res.count = count;
    res.steps = e.i + e.j - count;
    res.aConsumed = e.i;
    res.bConsumed = e.j;
    return res;
}

inline SetOpResult
finishSubtract(KeySpan a, std::size_t la, KeySpan b, std::uint64_t count)
{
    SetOpResult res;
    res.count = count;
    res.aConsumed = la;
    res.bConsumed = subtractLoopEndB(a, la, b);
    res.steps = count + res.bConsumed;
    return res;
}

inline SetOpResult
finishMerge(KeySpan a, KeySpan b, std::uint64_t matches)
{
    const LoopEnd e = intersectLoopEnd(a, a.size(), b, b.size());
    SetOpResult res;
    res.count = a.size() + b.size() - matches;
    res.steps = e.i + e.j - matches; // tail copies take no loop steps
    res.aConsumed = a.size();
    res.bConsumed = b.size();
    return res;
}

/**
 * Galloping intersection for heavily skewed trimmed operands: walk
 * the short side, gallop the long side. Output-identical to the
 * reference; O(short * log long) instead of O(long).
 */
inline SetOpResult
skewIntersect(KeySpan a, std::size_t la, KeySpan b, std::size_t lb,
              std::vector<Key> *out)
{
    const bool aLong = la >= lb;
    const KeySpan longSide = aLong ? a.first(la) : b.first(lb);
    const KeySpan shortSide = aLong ? b.first(lb) : a.first(la);
    std::uint64_t count = 0;
    std::size_t pos = 0;
    for (const Key k : shortSide) {
        pos = gallopFrom(longSide, pos, k);
        if (pos >= longSide.size())
            break;
        if (longSide[pos] == k) {
            if (out)
                out->push_back(k);
            ++count;
            ++pos;
        }
    }
    return finishIntersect(a, la, b, lb, count);
}

/** Subtract fast path when B dwarfs the trimmed A: membership-test
 *  each A element by galloping through B. */
inline SetOpResult
skewSubtractLongB(KeySpan a, std::size_t la, KeySpan b,
                  std::vector<Key> *out)
{
    const std::size_t base = out->size();
    out->resize(base + la);
    Key *dst = out->data() + base;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < la; ++i) {
        pos = gallopFrom(b, pos, a[i]);
        if (pos < b.size() && b[pos] == a[i])
            ++pos;
        else
            *dst++ = a[i];
    }
    const auto count =
        static_cast<std::uint64_t>(dst - (out->data() + base));
    out->resize(base + count);
    return finishSubtract(a, la, b, count);
}

/** Subtract fast path when the trimmed A dwarfs B (or B is empty):
 *  bulk-copy the A segments between B's (few) hit positions. */
inline SetOpResult
skewSubtractLongA(KeySpan a, std::size_t la, KeySpan b,
                  std::vector<Key> *out)
{
    const std::size_t base = out->size();
    out->resize(base + la);
    Key *dst = out->data() + base;
    std::size_t start = 0;
    for (const Key k : b) {
        if (start >= la)
            break;
        const std::size_t pos = gallopFrom(a.first(la), start, k);
        dst = std::copy(a.begin() + start, a.begin() + pos, dst);
        start = (pos < la && a[pos] == k) ? pos + 1 : pos;
    }
    dst = std::copy(a.begin() + start, a.begin() + la, dst);
    const auto count =
        static_cast<std::uint64_t>(dst - (out->data() + base));
    out->resize(base + count);
    return finishSubtract(a, la, b, count);
}

/**
 * Materializing merge shared by the SIMD levels: the reference
 * two-pointer core with raw-pointer stores plus bulk tail copies.
 * Merge emits every input element, so it is store-bound and gains
 * little from wide compares; the .C form is where SIMD pays off
 * (count = |A| + |B| - |A ∩ B| via the level's intersect kernel).
 */
inline SetOpResult
mergeMaterialize(KeySpan a, KeySpan b, std::vector<Key> *out)
{
    SetOpResult res;
    const std::size_t base = out->size();
    out->resize(base + a.size() + b.size());
    Key *dst = out->data() + base;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        ++res.steps;
        const Key ka = a[i], kb = b[j];
        if (ka == kb) {
            *dst++ = ka;
            ++i;
            ++j;
        } else if (ka < kb) {
            *dst++ = ka;
            ++i;
        } else {
            *dst++ = kb;
            ++j;
        }
    }
    dst = std::copy(a.begin() + i, a.end(), dst);
    dst = std::copy(b.begin() + j, b.end(), dst);
    res.count = static_cast<std::uint64_t>(dst - (out->data() + base));
    res.aConsumed = a.size();
    res.bConsumed = b.size();
    out->resize(base + res.count);
    return res;
}

/** AVX2 compaction table: entry m lists the set-bit lanes of the
 *  8-bit mask m in ascending order (zero-padded), feeding
 *  _mm256_permutevar8x32_epi32 to left-pack matched keys. */
struct Avx2EmitTable
{
    alignas(32) std::uint32_t idx[256][8];
};

constexpr Avx2EmitTable
makeAvx2EmitTable()
{
    Avx2EmitTable t{};
    for (unsigned m = 0; m < 256; ++m) {
        unsigned n = 0;
        for (unsigned lane = 0; lane < 8; ++lane)
            if (m & (1u << lane))
                t.idx[m][n++] = lane;
    }
    return t;
}

inline constexpr Avx2EmitTable avx2EmitTable = makeAvx2EmitTable();

/** SSE compaction table for _mm_shuffle_epi8: entry m packs the
 *  4-byte groups of the mask's set lanes; 0x80 zeroes the rest. */
struct SseEmitTable
{
    alignas(16) std::uint8_t bytes[16][16];
};

constexpr SseEmitTable
makeSseEmitTable()
{
    SseEmitTable t{};
    for (unsigned m = 0; m < 16; ++m) {
        unsigned n = 0;
        for (unsigned lane = 0; lane < 4; ++lane) {
            if (!(m & (1u << lane)))
                continue;
            for (unsigned byte = 0; byte < 4; ++byte)
                t.bytes[m][n * 4 + byte] =
                    static_cast<std::uint8_t>(lane * 4 + byte);
            ++n;
        }
        for (unsigned k = n * 4; k < 16; ++k)
            t.bytes[m][k] = 0x80;
    }
    return t;
}

inline constexpr SseEmitTable sseEmitTable = makeSseEmitTable();

} // namespace sc::streams::simd

#endif // SPARSECORE_STREAMS_SIMD_SIMD_UTIL_HH
