/**
 * @file
 * Sorted-stream set operations: intersection, subtraction, merge, and
 * their (key,value) variants — the primitives behind S_INTER/S_SUB/
 * S_MERGE/S_VINTER/S_VMERGE (§3.3).
 *
 * Each operation supports the paper's upper-bound early termination
 * (operand R3): for intersection/subtraction, computation stops once
 * every remaining output element would be >= the bound.
 *
 * Two cost views are produced:
 *  - scalar steps + per-step advance outcomes (drives the CPU
 *    baseline's branch predictor and Fig. 9's mispredict cycles), and
 *  - SU parallel-comparison cycles under the Fig. 6 model (16-wide
 *    window, both pointers may skip up to the window per cycle),
 *    computed by suCycles().
 */

#ifndef SPARSECORE_STREAMS_SET_OPS_HH
#define SPARSECORE_STREAMS_SET_OPS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace sc::streams {

using KeySpan = std::span<const Key>;
using ValueSpan = std::span<const Value>;

/** The three set-operation kinds of the stream ISA. */
enum class SetOpKind : unsigned { Intersect, Subtract, Merge };

const char *setOpName(SetOpKind kind);

/** Per-step outcome of the scalar dual-pointer loop. */
enum class StepOutcome : std::uint8_t { Match, AdvanceA, AdvanceB };

/** Work summary of one set operation. */
struct SetOpResult
{
    std::uint64_t count = 0;     ///< output length
    std::uint64_t steps = 0;     ///< scalar loop iterations
    std::uint64_t aConsumed = 0; ///< elements read from operand A
    std::uint64_t bConsumed = 0; ///< elements read from operand B
};

/** A no-op step visitor (keeps the hot path branch-free). */
struct NullVisitor
{
    void operator()(StepOutcome) const {}
};

/**
 * Intersection of two sorted key streams with optional upper bound.
 * @param a,b sorted operands
 * @param bound exclusive upper bound on output keys (noBound = none)
 * @param out optional output vector (appended); null for .C variants
 * @param vis called once per scalar loop step with its outcome
 */
template <typename Visitor = NullVisitor>
SetOpResult
intersect(KeySpan a, KeySpan b, Key bound = noBound,
          std::vector<Key> *out = nullptr, Visitor &&vis = Visitor{})
{
    SetOpResult res;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        const Key ka = a[i], kb = b[j];
        // Every future match is >= max(ka, kb): once either side
        // reaches the bound nothing below it can still be produced.
        if (ka >= bound || kb >= bound)
            break;
        ++res.steps;
        if (ka == kb) {
            vis(StepOutcome::Match);
            if (out)
                out->push_back(ka);
            ++res.count;
            ++i;
            ++j;
        } else if (ka < kb) {
            vis(StepOutcome::AdvanceA);
            ++i;
        } else {
            vis(StepOutcome::AdvanceB);
            ++j;
        }
    }
    res.aConsumed = i;
    res.bConsumed = j;
    return res;
}

/**
 * Subtraction a - b (keys of a absent from b), optional upper bound on
 * output keys.
 */
template <typename Visitor = NullVisitor>
SetOpResult
subtract(KeySpan a, KeySpan b, Key bound = noBound,
         std::vector<Key> *out = nullptr, Visitor &&vis = Visitor{})
{
    SetOpResult res;
    std::size_t i = 0, j = 0;
    while (i < a.size()) {
        const Key ka = a[i];
        if (ka >= bound)
            break;
        if (j >= b.size() || ka < b[j]) {
            ++res.steps;
            vis(StepOutcome::AdvanceA);
            if (out)
                out->push_back(ka);
            ++res.count;
            ++i;
        } else if (ka == b[j]) {
            ++res.steps;
            vis(StepOutcome::Match);
            ++i;
            ++j;
        } else {
            ++res.steps;
            vis(StepOutcome::AdvanceB);
            ++j;
        }
    }
    res.aConsumed = i;
    res.bConsumed = j;
    return res;
}

/** Merge (set union) of two sorted key streams. */
template <typename Visitor = NullVisitor>
SetOpResult
merge(KeySpan a, KeySpan b, std::vector<Key> *out = nullptr,
      Visitor &&vis = Visitor{})
{
    SetOpResult res;
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        ++res.steps;
        const Key ka = a[i], kb = b[j];
        Key k;
        if (ka == kb) {
            vis(StepOutcome::Match);
            k = ka;
            ++i;
            ++j;
        } else if (ka < kb) {
            vis(StepOutcome::AdvanceA);
            k = ka;
            ++i;
        } else {
            vis(StepOutcome::AdvanceB);
            k = kb;
            ++j;
        }
        if (out)
            out->push_back(k);
        ++res.count;
    }
    // Tail copy of the survivor (§3.4 Gustavson tail handling).
    for (; i < a.size(); ++i) {
        if (out)
            out->push_back(a[i]);
        ++res.count;
    }
    for (; j < b.size(); ++j) {
        if (out)
            out->push_back(b[j]);
        ++res.count;
    }
    res.aConsumed = a.size();
    res.bConsumed = b.size();
    return res;
}

/** Value-combination operators of S_VINTER's IMM field. */
enum class ValueOp : unsigned { Mac, MaxAcc, MinAcc };

const char *valueOpName(ValueOp op);

/**
 * S_VINTER semantics: intersect keys, combine matching values, and
 * accumulate (sum of products for Mac; running max/min otherwise).
 * When one operand's remainder is >= 32x the other's, the long side
 * advances by galloping search; the returned value, work summary and
 * match positions are identical to the two-pointer reference.
 * @param match_pos_a optional matched element positions in stream A
 *        (drives VA_gen value-address generation in the SVPU model)
 * @param match_pos_b same for stream B
 */
Value valueIntersect(KeySpan ak, ValueSpan av, KeySpan bk, ValueSpan bv,
                     ValueOp op, SetOpResult *work = nullptr,
                     std::vector<std::uint32_t> *match_pos_a = nullptr,
                     std::vector<std::uint32_t> *match_pos_b = nullptr);

/**
 * S_VMERGE semantics: merged keys; each output value is
 * scale_a*av + scale_b*bv with missing operands contributing zero.
 */
SetOpResult valueMerge(KeySpan ak, ValueSpan av, KeySpan bk, ValueSpan bv,
                       Value scale_a, Value scale_b,
                       std::vector<Key> &out_keys,
                       std::vector<Value> &out_vals);

/** SU execution cost of one set operation (see suCost()). */
struct SuCost
{
    Cycles cycles = 0;           ///< comparator cycles
    std::uint64_t aConsumed = 0; ///< elements transferred from A
    std::uint64_t bConsumed = 0; ///< elements transferred from B
};

/**
 * Cycle count and data volume of one set operation on a Stream Unit
 * under the Fig. 6 parallel-comparison model.
 *
 * Each cycle the head of each stream is compared against a window of
 * the other stream; a pointer may skip up to `width` elements per
 * cycle. Intersection emits at most one result per cycle; subtraction
 * and merge may emit several.
 *
 * Host-side fast paths (identical returned costs, faster to compute):
 * heavily skewed remainders (>= 32x) advance by galloping search and
 * charge ceil(distance/width) cycles analytically, and the Subtract
 * tail below the bound is counted with one binary search.
 *
 * @param width SU comparator window (the paper's buffer is 16)
 */
SuCost suCost(KeySpan a, KeySpan b, SetOpKind kind, Key bound = noBound,
              unsigned width = 16);

/** Convenience wrapper returning only the cycle count. */
Cycles suCycles(KeySpan a, KeySpan b, SetOpKind kind, Key bound = noBound,
                unsigned width = 16);

// ---------------- dispatched host kernels ----------------
// The templates above are the scalar REFERENCE (and the per-step
// visitor source for the CPU cost model). Functional hot paths go
// through these entry points instead, which route to the process's
// active kernel table (streams/simd/kernel_table.hh): AVX2 / SSE4 /
// scalar, CPUID-selected, SC_FORCE_KERNEL-overridable. All levels
// return bit-identical SetOpResults and outputs; only host
// wall-clock changes. Defined in streams/simd/kernel_table.cc.

/** One set operation via the active kernel table (Merge ignores the
 *  bound). @param out optional output vector (appended). */
SetOpResult runSetOp(SetOpKind kind, KeySpan a, KeySpan b,
                     Key bound = noBound, std::vector<Key> *out = nullptr);

/** Counting (.C) form — the same dispatch with no output buffer, so
 *  counts can never diverge from the materializing results. */
SetOpResult runSetOpCount(SetOpKind kind, KeySpan a, KeySpan b,
                          Key bound = noBound);

} // namespace sc::streams

#endif // SPARSECORE_STREAMS_SET_OPS_HH
