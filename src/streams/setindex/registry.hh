/**
 * @file
 * Process-global registry mapping live CSR edge-array pointer ranges
 * to their StreamSetIndex.
 *
 * This is what lets gpm/executor, gpm/fsm and isa/interpreter pick
 * formats per-operand with ZERO call-site changes: they already pass
 * spans that point straight into a graph's edge array (neighbors /
 * neighborsAbove / neighborsBelow / lower_bound prefixes), so
 * runSetOp can recover (graph index, owning vertex, sub-span) from
 * the span's data pointer alone. Intermediate buffers (arena vectors,
 * produced interpreter streams, tensor arrays) simply miss.
 *
 * Lifetime: registration is tied to each owning CsrGraph object
 * (register in the constructor, unregister in the destructor,
 * re-register on copy, transfer on move). A range is always
 * unregistered BEFORE its vector is freed, so a lookup can never
 * match a stale entry against a recycled allocation: any snapshot
 * that contains a range also predates that memory being reused.
 *
 * Concurrency: writers (graph construction/destruction, cold)
 * serialize on a mutex and publish a fresh immutable snapshot with a
 * version bump; readers (every runSetOp, hot) keep a thread-local
 * shared_ptr to the snapshot and refresh it only when the version
 * moved — steady-state lookups are lock-free and TSan-clean.
 */

#ifndef SPARSECORE_STREAMS_SETINDEX_REGISTRY_HH
#define SPARSECORE_STREAMS_SETINDEX_REGISTRY_HH

#include <cstddef>
#include <memory>

#include "streams/set_ops.hh"
#include "streams/setindex/set_index.hh"

namespace sc::streams::setindex {

/** Register `owner`'s edge array [edges, edges+numEdgeSlots) with its
 *  row offsets (size numVertices+1) and index. No-op when index is
 *  null or the array is empty. Replaces any previous registration of
 *  the same owner. */
void registerGraphIndex(const void *owner, const Key *edges,
                        std::size_t numEdgeSlots,
                        const std::uint64_t *offsets,
                        std::size_t numVertices,
                        std::shared_ptr<const StreamSetIndex> index);

/** Remove `owner`'s registration (no-op when absent). */
void unregisterGraphIndex(const void *owner);

/** Fast gate for the dispatch hot path: true when no graph has a
 *  registered index (single relaxed atomic load). */
bool registryEmpty();

/** A span resolved to a slice of one registered adjacency list. */
struct ResolvedSpan
{
    const StreamSetIndex *index = nullptr;
    VertexId vertex = 0;
    /** Span covers all of N(vertex) (not a strict sub-slice). */
    bool fullList = false;
};

/**
 * Resolve an operand span to the adjacency list containing it.
 * Returns false when the span is empty, no registered range contains
 * it, or it straddles a row boundary (never the case for spans the
 * executors produce, but heap buffers that happen to sit inside a
 * registered range could).
 */
bool resolveSpan(KeySpan span, ResolvedSpan &out);

/** Number of registered graphs (tests). */
std::size_t registrySize();

} // namespace sc::streams::setindex

#endif // SPARSECORE_STREAMS_SETINDEX_REGISTRY_HH
