#include "streams/setindex/hybrid.hh"

#include <bit>

#include "streams/simd/simd_util.hh"

namespace sc::streams::setindex {

namespace {

using BitmapView = StreamSetIndex::BitmapView;

/** One operand resolved against the registry; `bm` is valid only when
 *  the list has a bitmap usable under the active policy. */
struct Operand
{
    ResolvedSpan rs;
    BitmapView bm;
};

Operand
resolveOperand(KeySpan s, IndexPolicy policy)
{
    Operand op;
    if (!resolveSpan(s, op.rs))
        return op;
    const BitmapView bm = op.rs.index->bitmap(op.rs.vertex);
    if (!bm.valid())
        return op;
    if (policy == IndexPolicy::Auto && !bm.autoTier)
        return op;
    op.bm = bm;
    return op;
}

/**
 * Gallop-probe intersection count: walk iter[0..li), test membership
 * in the probed slice probed[0..lp) with one perm[] + word load each.
 * The probed bitmap covers ALL of N(v); because `probed` is a
 * contiguous slice of that sorted duplicate-free list, membership in
 * the slice is exactly (bitmap hit && probed.front() <= k <=
 * probed[lp-1]), so the range clamp doubles as the sub-span
 * restriction. Keys below the probed range are skipped by one gallop,
 * keys above it end the walk.
 */
std::uint64_t
probeIntersect(KeySpan iter, std::size_t li, KeySpan probed,
               std::size_t lp, const StreamSetIndex &idx,
               const BitmapView &bm, std::vector<Key> *out)
{
    if (li == 0 || lp == 0)
        return 0;
    const Key lo = probed.front(), hi = probed[lp - 1];
    std::size_t i = iter.front() < lo
                        ? simd::gallopFrom(iter.first(li), 0, lo)
                        : 0;
    std::uint64_t count = 0;
    for (; i < li; ++i) {
        const Key k = iter[i];
        if (k > hi)
            break;
        if (idx.contains(bm, k)) {
            if (out)
                out->push_back(k);
            ++count;
        }
    }
    return count;
}

/** Probe-side subtract count: emit each a[0..la) key that is NOT in
 *  the probed slice b (b must be non-empty; the bound only trims A —
 *  B membership is checked against the whole slice, matching the
 *  scalar loop). */
std::uint64_t
probeSubtract(KeySpan a, std::size_t la, KeySpan b,
              const StreamSetIndex &idx, const BitmapView &bm,
              std::vector<Key> *out)
{
    const Key lo = b.front(), hi = b.back();
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < la; ++i) {
        const Key k = a[i];
        if (!(k >= lo && k <= hi && idx.contains(bm, k))) {
            if (out)
                out->push_back(k);
            ++count;
        }
    }
    return count;
}

// Bitmap x bitmap word kernels (full lists of the same index only, so
// both chunks live in one rank space). Plain uint64 loops: 64 keys
// per AND/ANDNOT/OR + popcount, and -O2 auto-vectorizes them.

/** |X & Y| over the overlapping word range. */
std::uint64_t
wordAndCount(const BitmapView &x, const BitmapView &y)
{
    const std::uint32_t lo = std::max(x.firstWord, y.firstWord);
    const std::uint32_t hi = std::min(x.firstWord + x.numWords,
                                      y.firstWord + y.numWords);
    std::uint64_t count = 0;
    for (std::uint32_t w = lo; w < hi; ++w)
        count += static_cast<unsigned>(
            std::popcount(x.words[w - x.firstWord] &
                          y.words[w - y.firstWord]));
    return count;
}

/** |X & ~Y| over X's word range (Y contributes zeros outside its
 *  own). */
std::uint64_t
wordAndNotCount(const BitmapView &x, const BitmapView &y)
{
    std::uint64_t count = 0;
    for (std::uint32_t w = x.firstWord; w < x.firstWord + x.numWords;
         ++w) {
        const std::uint64_t xv = x.words[w - x.firstWord];
        const std::uint64_t yv =
            (w >= y.firstWord && w - y.firstWord < y.numWords)
                ? y.words[w - y.firstWord]
                : 0;
        count += static_cast<unsigned>(std::popcount(xv & ~yv));
    }
    return count;
}

/** |X | Y| over the union word range. */
std::uint64_t
wordOrCount(const BitmapView &x, const BitmapView &y)
{
    const std::uint32_t lo = std::min(x.firstWord, y.firstWord);
    const std::uint32_t hi = std::max(x.firstWord + x.numWords,
                                      y.firstWord + y.numWords);
    std::uint64_t count = 0;
    for (std::uint32_t w = lo; w < hi; ++w) {
        const std::uint64_t xv =
            (w >= x.firstWord && w - x.firstWord < x.numWords)
                ? x.words[w - x.firstWord]
                : 0;
        const std::uint64_t yv =
            (w >= y.firstWord && w - y.firstWord < y.numWords)
                ? y.words[w - y.firstWord]
                : 0;
        count += static_cast<unsigned>(std::popcount(xv | yv));
    }
    return count;
}

/** Auto-policy probe threshold: a word probe costs ~3x an array
 *  kernel's per-element work, so probing the bitmap side only pays
 *  once it is at least this many times longer than the iterated side
 *  — at lower skew the array kernels' O(la+lb) SIMD compares are
 *  cheaper; far above the simd gallop ratio (32x) the paths converge
 *  again, but the probe keeps a constant-factor edge. Set by the
 *  kernel_microbench density x skew sweep (BENCH_setindex.json):
 *  skew-1 cells lose, skew >= 8 cells win ~2x. */
constexpr std::size_t autoProbeSkew = 4;

/**
 * Which side to probe: 0 = neither, 1 = probe A's bitmap (iterate b),
 * 2 = probe B's bitmap (iterate a). Probe work is O(iterated side),
 * so Auto only probes when the probed (bitmap) side is at least
 * autoProbeSkew times the iterated side — near-balanced operands stay
 * on the array kernels, which process both sides at SIMD rates. The
 * forced Bitmap policy probes whenever any bitmap exists (A/B stress
 * legs).
 */
int
chooseProbeSide(IndexPolicy policy, const Operand &oa, const Operand &ob,
                std::size_t la, std::size_t lb)
{
    const bool can_a = oa.bm.valid(), can_b = ob.bm.valid();
    if (policy == IndexPolicy::Auto) {
        if (can_b && lb >= autoProbeSkew * la)
            return 2;
        if (can_a && la >= autoProbeSkew * lb)
            return 1;
        return 0;
    }
    if (can_b && (!can_a || lb >= la))
        return 2;
    return can_a ? 1 : 0;
}

/** Word-kernel gate for Auto: the chunks must pack at least two list
 *  keys per 64-bit word (rank density >= 1/32). At the auto-tier
 *  floor (one key per word) the word loop touches as many words as
 *  the array kernel touches keys and loses to SIMD compares — the
 *  sweep's skew-1 density-1/64 cell. Forced Bitmap runs it anyway. */
bool
wordKernelPays(IndexPolicy policy, const Operand &oa, const Operand &ob,
               std::size_t la, std::size_t lb)
{
    if (policy != IndexPolicy::Auto)
        return true;
    return 2ull * oa.bm.numWords <= la && 2ull * ob.bm.numWords <= lb;
}

} // namespace

bool
tryRunIndexed(SetOpKind kind, KeySpan a, KeySpan b, Key bound,
              std::vector<Key> *out, SetOpResult &res)
{
    const IndexPolicy policy = activeIndexPolicy();
    if (policy == IndexPolicy::ArrayOnly)
        return false;
    const Operand oa = resolveOperand(a, policy);
    const Operand ob = resolveOperand(b, policy);
    if (!oa.bm.valid() && !ob.bm.valid())
        return false;
    const bool same_index = oa.bm.valid() && ob.bm.valid() &&
                            oa.rs.index == ob.rs.index;

    switch (kind) {
      case SetOpKind::Intersect: {
        const std::size_t la = simd::trimToBound(a, bound);
        const std::size_t lb = simd::trimToBound(b, bound);
        // bitmap x bitmap: counting over full untrimmed lists (a
        // truncating bound is an original-ID prefix, which the
        // order-destroying relabel cannot express as a word mask).
        if (!out && same_index && oa.rs.fullList && ob.rs.fullList &&
            la == a.size() && lb == b.size() &&
            wordKernelPays(policy, oa, ob, la, lb)) {
            res = simd::finishIntersect(a, la, b, lb,
                                        wordAndCount(oa.bm, ob.bm));
            return true;
        }
        // array x bitmap gallop-probe.
        const int side = chooseProbeSide(policy, oa, ob, la, lb);
        std::uint64_t count;
        if (side == 2)
            count = probeIntersect(a, la, b, lb, *ob.rs.index, ob.bm,
                                   out);
        else if (side == 1)
            count = probeIntersect(b, lb, a, la, *oa.rs.index, oa.bm,
                                   out);
        else
            return false;
        res = simd::finishIntersect(a, la, b, lb, count);
        return true;
      }

      case SetOpKind::Subtract: {
        if (!ob.bm.valid())
            return false; // must iterate A; only B's bitmap helps
        const std::size_t la = simd::trimToBound(a, bound);
        if (!out && same_index && oa.rs.fullList && ob.rs.fullList &&
            la == a.size() &&
            wordKernelPays(policy, oa, ob, a.size(), b.size())) {
            res = simd::finishSubtract(a, la, b,
                                       wordAndNotCount(oa.bm, ob.bm));
            return true;
        }
        // Probing costs O(la) regardless of |b|; it pays only when b
        // (the probed side) dwarfs a — same threshold as intersect.
        if (policy == IndexPolicy::Auto &&
            b.size() < autoProbeSkew * a.size())
            return false;
        const std::uint64_t count =
            probeSubtract(a, la, b, *ob.rs.index, ob.bm, out);
        res = simd::finishSubtract(a, la, b, count);
        return true;
      }

      case SetOpKind::Merge: {
        // Materializing merge emits every input element — store-bound,
        // no format can skip work. Counting collapses to closed forms
        // from one matches/union count.
        if (out)
            return false;
        if (same_index && oa.rs.fullList && ob.rs.fullList &&
            wordKernelPays(policy, oa, ob, a.size(), b.size())) {
            const std::uint64_t united = wordOrCount(oa.bm, ob.bm);
            res = simd::finishMerge(a, b,
                                    a.size() + b.size() - united);
            return true;
        }
        const int side =
            chooseProbeSide(policy, oa, ob, a.size(), b.size());
        std::uint64_t matches;
        if (side == 2)
            matches = probeIntersect(a, a.size(), b, b.size(),
                                     *ob.rs.index, ob.bm, nullptr);
        else if (side == 1)
            matches = probeIntersect(b, b.size(), a, a.size(),
                                     *oa.rs.index, oa.bm, nullptr);
        else
            return false;
        res = simd::finishMerge(a, b, matches);
        return true;
      }
    }
    return false;
}

} // namespace sc::streams::setindex
