#include "streams/setindex/registry.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

namespace sc::streams::setindex {

namespace {

struct Entry
{
    const Key *begin = nullptr;
    const Key *end = nullptr;
    const std::uint64_t *offsets = nullptr;
    std::size_t numVertices = 0;
    const void *owner = nullptr;
    std::shared_ptr<const StreamSetIndex> index;
};

using Snapshot = std::vector<Entry>;

std::mutex g_mu;
Snapshot g_entries;                          // master, sorted by begin
std::shared_ptr<const Snapshot> g_snapshot;  // published copy (under g_mu)
std::uint64_t g_snapshot_version = 0;        // version of g_snapshot
std::atomic<std::uint64_t> g_version{0};     // cheap change detector
std::atomic<std::size_t> g_count{0};

/** Thread-local snapshot cache: refreshed only when g_version moved,
 *  so steady-state lookups take no lock. The shared_ptr keeps every
 *  Entry's index alive while this thread still uses the snapshot. */
struct TlsCache
{
    std::uint64_t version = ~std::uint64_t{0};
    std::shared_ptr<const Snapshot> snap;
};
thread_local TlsCache t_cache;

void
publishLocked()
{
    g_snapshot = std::make_shared<const Snapshot>(g_entries);
    ++g_snapshot_version;
    g_count.store(g_entries.size(), std::memory_order_relaxed);
    g_version.store(g_snapshot_version, std::memory_order_release);
}

const Snapshot &
currentSnapshot()
{
    const std::uint64_t v = g_version.load(std::memory_order_acquire);
    if (t_cache.version != v || !t_cache.snap) {
        std::lock_guard<std::mutex> lock(g_mu);
        t_cache.snap = g_snapshot;
        t_cache.version = g_snapshot_version;
    }
    static const Snapshot empty;
    return t_cache.snap ? *t_cache.snap : empty;
}

} // namespace

void
registerGraphIndex(const void *owner, const Key *edges,
                   std::size_t numEdgeSlots, const std::uint64_t *offsets,
                   std::size_t numVertices,
                   std::shared_ptr<const StreamSetIndex> index)
{
    if (!index || !edges || numEdgeSlots == 0)
        return;
    std::lock_guard<std::mutex> lock(g_mu);
    std::erase_if(g_entries,
                  [owner](const Entry &e) { return e.owner == owner; });
    Entry e;
    e.begin = edges;
    e.end = edges + numEdgeSlots;
    e.offsets = offsets;
    e.numVertices = numVertices;
    e.owner = owner;
    e.index = std::move(index);
    g_entries.insert(std::upper_bound(g_entries.begin(), g_entries.end(),
                                      e,
                                      [](const Entry &x, const Entry &y) {
                                          return x.begin < y.begin;
                                      }),
                     std::move(e));
    publishLocked();
}

void
unregisterGraphIndex(const void *owner)
{
    std::lock_guard<std::mutex> lock(g_mu);
    const std::size_t erased = std::erase_if(
        g_entries, [owner](const Entry &e) { return e.owner == owner; });
    if (erased)
        publishLocked();
}

bool
registryEmpty()
{
    return g_count.load(std::memory_order_relaxed) == 0;
}

std::size_t
registrySize()
{
    std::lock_guard<std::mutex> lock(g_mu);
    return g_entries.size();
}

bool
resolveSpan(KeySpan span, ResolvedSpan &out)
{
    if (span.empty())
        return false;
    const Snapshot &snap = currentSnapshot();
    if (snap.empty())
        return false;
    const Key *p = span.data();
    // Last entry with begin <= p.
    auto it = std::upper_bound(snap.begin(), snap.end(), p,
                               [](const Key *q, const Entry &e) {
                                   return q < e.begin;
                               });
    if (it == snap.begin())
        return false;
    const Entry &e = *std::prev(it);
    if (p + span.size() > e.end)
        return false;
    // Locate the row: v with offsets[v] <= off < offsets[v+1].
    const auto off = static_cast<std::uint64_t>(p - e.begin);
    const std::uint64_t *o = e.offsets;
    const auto v = static_cast<std::size_t>(
        std::upper_bound(o, o + e.numVertices + 1, off) - o - 1);
    if (v >= e.numVertices)
        return false;
    // Spans never straddle rows (they are N(v) slices), but a heap
    // buffer living inside the registered range could — reject it.
    if (off + span.size() > o[v + 1])
        return false;
    out.index = e.index.get();
    out.vertex = static_cast<VertexId>(v);
    out.fullList = off == o[v] && off + span.size() == o[v + 1];
    return true;
}

} // namespace sc::streams::setindex
