/**
 * @file
 * Format-selection policy for the hybrid stream set index.
 *
 * Mirrors the kernel-level machinery in streams/simd/kernel_table.hh:
 * the process default comes from SC_FORCE_SETINDEX (auto|array|
 * bitmap, resolved once on first use), an RAII ScopedIndexPolicyOverride
 * wins over the default, and RunOptions/HostOptions carry an optional
 * per-run override that the Machine facade applies the same way it
 * applies RunOptions::kernel.
 *
 * Like the kernel level, the index policy moves host wall-clock only:
 * every policy produces bit-identical outputs and SetOpResult work
 * summaries, so simulated cycles never change (DESIGN.md §11,
 * enforced by tests/set_index_test.cc).
 */

#ifndef SPARSECORE_STREAMS_SETINDEX_POLICY_HH
#define SPARSECORE_STREAMS_SETINDEX_POLICY_HH

#include <optional>
#include <string_view>

namespace sc::streams::setindex {

/**
 * Which adjacency-list representation runSetOp may pick per operand.
 *  - Auto: bitmap kernels when the operand's list passed the dense
 *    build threshold AND the probe-side heuristic says they pay off.
 *  - ArrayOnly: bypass the index entirely (PR 3 behavior).
 *  - Bitmap: use bitmap kernels whenever a bitmap exists for an
 *    operand (including the sparser forced-tier bitmaps) — the A/B
 *    stress policy for SC_FORCE_SETINDEX=bitmap test legs.
 */
enum class IndexPolicy : unsigned { Auto = 0, ArrayOnly = 1, Bitmap = 2 };

const char *indexPolicyName(IndexPolicy policy);

/** "auto"|"array"|"bitmap" -> policy; anything else -> nullopt. */
std::optional<IndexPolicy> parseIndexPolicy(std::string_view name);

/**
 * Policy in effect for this call: an active ScopedIndexPolicyOverride
 * if present, else the process default (SC_FORCE_SETINDEX or Auto,
 * resolved once on first use).
 */
IndexPolicy activeIndexPolicy();

/**
 * RAII process-global policy override (tests, RunOptions, parallel
 * mining). Nests; restores the previous override on destruction.
 * Process-wide for the same reason ScopedKernelOverride is: host pool
 * threads executing a parallel run must observe it too.
 */
class ScopedIndexPolicyOverride
{
  public:
    explicit ScopedIndexPolicyOverride(IndexPolicy policy);
    ~ScopedIndexPolicyOverride();
    ScopedIndexPolicyOverride(const ScopedIndexPolicyOverride &) = delete;
    ScopedIndexPolicyOverride &
    operator=(const ScopedIndexPolicyOverride &) = delete;

  private:
    int prev_;
};

} // namespace sc::streams::setindex

#endif // SPARSECORE_STREAMS_SETINDEX_POLICY_HH
