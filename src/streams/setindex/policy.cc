#include "streams/setindex/policy.hh"

#include <atomic>
#include <cstdlib>

#include "common/config.hh"
#include "common/logging.hh"

namespace sc::streams::setindex {

namespace {

/** Process default from SC_FORCE_SETINDEX via the common/config
 *  loader (which warns and falls back to auto on unknown values). */
IndexPolicy
resolveDefault()
{
    return parseIndexPolicy(config().forceSetindex)
        .value_or(IndexPolicy::Auto);
}

// -1 = unresolved / no override; otherwise an IndexPolicy value.
std::atomic<int> g_default{-1};
std::atomic<int> g_override{-1};

} // namespace

const char *
indexPolicyName(IndexPolicy policy)
{
    switch (policy) {
      case IndexPolicy::Auto:
        return "auto";
      case IndexPolicy::ArrayOnly:
        return "array";
      case IndexPolicy::Bitmap:
        return "bitmap";
      default:
        panic("unknown index policy %u",
              static_cast<unsigned>(policy));
    }
}

std::optional<IndexPolicy>
parseIndexPolicy(std::string_view name)
{
    if (name == "auto")
        return IndexPolicy::Auto;
    if (name == "array")
        return IndexPolicy::ArrayOnly;
    if (name == "bitmap")
        return IndexPolicy::Bitmap;
    return std::nullopt;
}

IndexPolicy
activeIndexPolicy()
{
    const int o = g_override.load(std::memory_order_acquire);
    if (o >= 0)
        return static_cast<IndexPolicy>(o);
    int d = g_default.load(std::memory_order_acquire);
    if (d < 0) {
        // Benign race: resolveDefault() is deterministic, so
        // concurrent first calls store the same value.
        d = static_cast<int>(resolveDefault());
        g_default.store(d, std::memory_order_release);
    }
    return static_cast<IndexPolicy>(d);
}

ScopedIndexPolicyOverride::ScopedIndexPolicyOverride(IndexPolicy policy)
    : prev_(g_override.exchange(static_cast<int>(policy),
                                std::memory_order_acq_rel))
{
}

ScopedIndexPolicyOverride::~ScopedIndexPolicyOverride()
{
    g_override.store(prev_, std::memory_order_release);
}

} // namespace sc::streams::setindex
