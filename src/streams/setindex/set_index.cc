#include "streams/setindex/set_index.hh"

#include <algorithm>
#include <utility>

namespace sc::streams::setindex {

std::shared_ptr<const StreamSetIndex>
StreamSetIndex::build(const std::vector<std::uint64_t> &offsets,
                      const std::vector<Key> &edges, Params params)
{
    if (offsets.size() < 2 || edges.empty())
        return nullptr;
    const std::size_t n = offsets.size() - 1;
    // The permutation is defined over vertex ids only; a key outside
    // [0, n) (possible in hand-built synthetic CSR arrays) would have
    // no rank, so such graphs run array-only.
    for (const Key k : edges)
        if (k >= n)
            return nullptr;

    std::shared_ptr<StreamSetIndex> idx(new StreamSetIndex);
    idx->params_ = params;

    // Degree-descending relabel via counting sort (stable: equal
    // degrees keep ascending id order, so the permutation is
    // deterministic for a given graph).
    std::uint32_t max_degree = 0;
    for (std::size_t v = 0; v < n; ++v)
        max_degree = std::max(
            max_degree,
            static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]));
    std::vector<std::uint32_t> bucket_start(max_degree + 2, 0);
    for (std::size_t v = 0; v < n; ++v)
        ++bucket_start[max_degree -
                       static_cast<std::uint32_t>(offsets[v + 1] -
                                                  offsets[v])];
    std::uint32_t running = 0;
    for (std::uint32_t d = 0; d <= max_degree + 1u; ++d) {
        const std::uint32_t c = bucket_start[d];
        bucket_start[d] = running;
        running += c;
    }
    idx->perm_.resize(n);
    idx->inv_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        const std::uint32_t inv_degree =
            max_degree - static_cast<std::uint32_t>(offsets[v + 1] -
                                                    offsets[v]);
        const std::uint32_t r = bucket_start[inv_degree]++;
        idx->perm_[v] = r;
        idx->inv_[r] = static_cast<Key>(v);
    }

    // Adaptive bitmap chunks: a list qualifies when its rank range
    // fits the per-key word budget. Degree-descending ranks make the
    // neighbor ranks of dense lists cluster near 0, which is what
    // shrinks (firstWord, numWords) enough to pass.
    idx->lists_.resize(n);
    for (std::size_t v = 0; v < n; ++v) {
        const std::uint64_t lo = offsets[v], hi = offsets[v + 1];
        const auto degree = static_cast<std::uint32_t>(hi - lo);
        if (degree < params.minBitmapDegree)
            continue;
        std::uint32_t min_rank = idx->perm_[edges[lo]];
        std::uint32_t max_rank = min_rank;
        for (std::uint64_t e = lo + 1; e < hi; ++e) {
            const std::uint32_t r = idx->perm_[edges[e]];
            min_rank = std::min(min_rank, r);
            max_rank = std::max(max_rank, r);
        }
        const std::uint32_t first_word = min_rank >> 6;
        const std::uint32_t num_words = (max_rank >> 6) - first_word + 1;
        if (num_words > static_cast<std::uint64_t>(degree) *
                            params.maxWordsPerKey)
            continue;
        ListMeta &m = idx->lists_[v];
        m.wordOff = idx->words_.size();
        m.firstWord = first_word;
        m.numWords = num_words;
        m.autoTier = num_words <= static_cast<std::uint64_t>(degree) *
                                      params.autoWordsPerKey;
        idx->words_.resize(m.wordOff + num_words, 0);
        std::uint64_t *w = idx->words_.data() + m.wordOff;
        for (std::uint64_t e = lo; e < hi; ++e) {
            const std::uint32_t r = idx->perm_[edges[e]];
            w[(r >> 6) - first_word] |= std::uint64_t{1} << (r & 63);
        }
        ++idx->numBitmaps_;
        if (m.autoTier)
            ++idx->numAutoBitmaps_;
    }
    return idx;
}

void
StreamSetIndex::relabel(KeySpan keys, ValueSpan values,
                        std::vector<Key> &outKeys,
                        std::vector<Value> &outValues) const
{
    std::vector<std::pair<Key, Value>> kv(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        kv[i] = {static_cast<Key>(perm_[keys[i]]),
                 values.empty() ? Value{} : values[i]};
    std::sort(kv.begin(), kv.end(),
              [](const auto &x, const auto &y) { return x.first < y.first; });
    outKeys.resize(kv.size());
    outValues.resize(values.empty() ? 0 : kv.size());
    for (std::size_t i = 0; i < kv.size(); ++i) {
        outKeys[i] = kv[i].first;
        if (!values.empty())
            outValues[i] = kv[i].second;
    }
}

void
StreamSetIndex::restore(KeySpan rankKeys, ValueSpan values,
                        std::vector<Key> &outKeys,
                        std::vector<Value> &outValues) const
{
    std::vector<std::pair<Key, Value>> kv(rankKeys.size());
    for (std::size_t i = 0; i < rankKeys.size(); ++i)
        kv[i] = {inv_[rankKeys[i]],
                 values.empty() ? Value{} : values[i]};
    std::sort(kv.begin(), kv.end(),
              [](const auto &x, const auto &y) { return x.first < y.first; });
    outKeys.resize(kv.size());
    outValues.resize(values.empty() ? 0 : kv.size());
    for (std::size_t i = 0; i < kv.size(); ++i) {
        outKeys[i] = kv[i].first;
        if (!values.empty())
            outValues[i] = kv[i].second;
    }
}

} // namespace sc::streams::setindex
