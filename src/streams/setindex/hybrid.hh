/**
 * @file
 * Hybrid-format set-op kernels: array x bitmap gallop-probe and
 * bitmap x bitmap word kernels, dispatched per-operand from
 * streams::runSetOp via tryRunIndexed().
 *
 * Every kernel here returns outputs in ORIGINAL key order and
 * reconstructs the scalar reference loop's SetOpResult in closed form
 * (streams/simd/simd_util.hh finishIntersect/finishSubtract/
 * finishMerge on the original spans), exactly like the SIMD array
 * kernels — so the suCost / CpuBackend cost models and golden-trace
 * replay are untouched by format choice.
 */

#ifndef SPARSECORE_STREAMS_SETINDEX_HYBRID_HH
#define SPARSECORE_STREAMS_SETINDEX_HYBRID_HH

#include <algorithm>
#include <vector>

#include "streams/set_ops.hh"
#include "streams/setindex/policy.hh"
#include "streams/setindex/registry.hh"

namespace sc::streams::setindex {

/** Operands below this size never consult the registry: no bitmap can
 *  exist for them (Params::minBitmapDegree) and the array kernels win
 *  outright. Keeps the runSetOp fast path one size compare + one
 *  relaxed atomic load for tiny ops. */
constexpr std::size_t minIndexedKeys = 8;

/** Under Auto, ops whose LONGER operand is below this skip the index
 *  without even resolving the registry: span resolution plus bound
 *  trimming costs on the order of 100ns, which a bitmap kernel can
 *  only win back when the op is at least a few hundred elements. The
 *  forced Bitmap policy ignores this so the stress test legs exercise
 *  the hybrid kernels on small operands too. Tuned by the
 *  kernel_microbench workload leg (BENCH_setindex.json). */
constexpr std::size_t autoMinIndexedKeys = 256;

/** Cheap gate inlined into runSetOp: worth calling tryRunIndexed()? */
inline bool
indexedDispatchPossible(KeySpan a, KeySpan b)
{
    const std::size_t longer = std::max(a.size(), b.size());
    if (longer < minIndexedKeys)
        return false;
    if (registryEmpty())
        return false;
    const IndexPolicy policy = activeIndexPolicy();
    if (policy == IndexPolicy::ArrayOnly)
        return false;
    return policy != IndexPolicy::Auto || longer >= autoMinIndexedKeys;
}

/**
 * Attempt the op with hybrid-format kernels. Returns true (and fills
 * `res`, appending to `out` when materializing) when an indexed
 * format handled it; false falls back to the array kernel table.
 * Bit-identical to the array path in outputs and SetOpResult.
 */
bool tryRunIndexed(SetOpKind kind, KeySpan a, KeySpan b, Key bound,
                   std::vector<Key> *out, SetOpResult &res);

} // namespace sc::streams::setindex

#endif // SPARSECORE_STREAMS_SETINDEX_HYBRID_HH
