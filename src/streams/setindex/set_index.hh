/**
 * @file
 * Per-graph hybrid bitmap/array stream set index.
 *
 * The sorted-array kernels of PR 3 squeezed the array representation;
 * the remaining multiplier for dense neighborhoods is the
 * representation itself: membership of a key in a high-degree
 * adjacency list is one word test in a bitmap, and whole-list
 * intersection counts collapse to word-AND + popcount.
 *
 * A plain per-list bitmap over original vertex IDs would span the
 * whole ID range (density ~ degree/|V|), so almost no list would be
 * dense enough to afford one. StreamSetIndex therefore relabels
 * vertices by DESCENDING DEGREE once at CsrGraph build time: hubs —
 * exactly the vertices that populate high-degree neighborhoods —
 * cluster near rank 0, so a dense list's rank range collapses and its
 * bitmap chunk (64-bit words covering [firstWord, firstWord+numWords)
 * of rank space) becomes small and dense. The permutation lives ONLY
 * inside the index: the graph's CSR arrays, every emitted key, and
 * every SetOpResult stay in original IDs, bit-identical to the
 * array-only path (the inverse permutation is never applied to user
 * data — probes map each queried original key through perm once).
 *
 * Lists are stored adaptively: every list keeps the graph's sorted
 * array (it IS the CSR edge array); lists with degree >=
 * Params::minBitmapDegree additionally get a bitmap chunk when the
 * chunk is at most Params::{auto,max}WordsPerKey words per key. The
 * auto tier (1 word/key, i.e. rank-range density >= 1/64) is what
 * IndexPolicy::Auto uses; the forced tier (maxWordsPerKey) exists so
 * SC_FORCE_SETINDEX=bitmap exercises bitmap kernels on sparser lists
 * too. The thresholds are justified by the bench/kernel_microbench
 * density x skew sweep (BENCH_setindex.json).
 *
 * Cost-model contract: the index is a HOST-side acceleration
 * structure. suCost and CpuBackend never see it, and every hybrid
 * kernel reconstructs the scalar reference loop's SetOpResult in
 * closed form (streams/simd/simd_util.hh), so simulated cycles and
 * golden traces are invariant under the index policy (DESIGN.md §11).
 */

#ifndef SPARSECORE_STREAMS_SETINDEX_SET_INDEX_HH
#define SPARSECORE_STREAMS_SETINDEX_SET_INDEX_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hh"
#include "streams/set_ops.hh"

namespace sc::streams::setindex {

/** Build thresholds for StreamSetIndex (see the file comment for the
 *  rationale; namespace-scope so it can default-initialize build()'s
 *  parameter). */
struct IndexParams
{
    /** Lists shorter than this never get a bitmap — a handful of
     *  key compares beats even one perm[] + word probe. */
    std::uint32_t minBitmapDegree = 8;
    /** Auto-tier chunk budget: words <= degree * this (1 word per
     *  key = rank-range density >= 1/64). */
    std::uint32_t autoWordsPerKey = 1;
    /** Forced-tier chunk budget for IndexPolicy::Bitmap. */
    std::uint32_t maxWordsPerKey = 4;
};

/** Degree-ordered relabeling + adaptive per-list bitmap chunks for
 *  one CSR graph. Immutable after build(); shared by graph copies. */
class StreamSetIndex
{
  public:
    using Params = IndexParams;

    /** One list's bitmap chunk over rank space; words[i] covers ranks
     *  [(firstWord+i)*64, (firstWord+i)*64+64). Invalid (words ==
     *  nullptr) when the list is array-only. */
    struct BitmapView
    {
        const std::uint64_t *words = nullptr;
        std::uint32_t firstWord = 0;
        std::uint32_t numWords = 0;
        /** Dense enough for IndexPolicy::Auto (not just forced). */
        bool autoTier = false;

        bool valid() const { return words != nullptr; }
    };

    /**
     * Build the index for a CSR graph. Returns nullptr when the graph
     * is empty or any edge key is not a vertex id (synthetic CSR
     * arrays used by benches may embed out-of-range keys; such graphs
     * simply run array-only).
     */
    static std::shared_ptr<const StreamSetIndex>
    build(const std::vector<std::uint64_t> &offsets,
          const std::vector<Key> &edges, Params params = Params{});

    VertexId
    numVertices() const
    {
        return static_cast<VertexId>(perm_.size());
    }

    /** Degree-descending rank of original vertex id v. */
    std::uint32_t rank(Key v) const { return perm_[v]; }
    /** Original vertex id at rank r (inverse permutation). */
    Key originalId(std::uint32_t r) const { return inv_[r]; }

    std::span<const std::uint32_t> perm() const { return perm_; }
    std::span<const Key> inverse() const { return inv_; }

    /** Bitmap chunk of N(v) (invalid view when array-only). */
    BitmapView
    bitmap(VertexId v) const
    {
        const ListMeta &m = lists_[v];
        if (m.numWords == 0)
            return {};
        return {words_.data() + m.wordOff, m.firstWord, m.numWords,
                m.autoTier};
    }

    /** One-word membership probe: is original key k in the list the
     *  view describes? */
    bool
    contains(const BitmapView &bm, Key k) const
    {
        if (k >= perm_.size())
            return false;
        const std::uint32_t r = perm_[k];
        const std::uint32_t w = r >> 6;
        if (w < bm.firstWord || w - bm.firstWord >= bm.numWords)
            return false;
        return (bm.words[w - bm.firstWord] >> (r & 63)) & 1u;
    }

    // ---- stats (benches, DESIGN.md numbers, tests) ----
    std::uint64_t numBitmaps() const { return numBitmaps_; }
    std::uint64_t numAutoBitmaps() const { return numAutoBitmaps_; }
    std::uint64_t bitmapWords() const { return words_.size(); }
    const Params &params() const { return params_; }

    // ---- (key,value) relabel/restore round trip ----
    // S_VINTER/S_VMERGE streams can be carried through rank space and
    // back without loss: relabel() maps keys through perm and re-sorts
    // (values follow their keys), restore() maps back through inv and
    // re-sorts. Both permutations are bijective over [0, numVertices),
    // so restore(relabel(s)) == s bit-identically for any (key,value)
    // stream whose keys are vertex ids (tests/set_index_test.cc).

    /** Map a sorted original-id (key,value) stream into rank space.
     *  `values` may be empty (key-only stream). */
    void relabel(KeySpan keys, ValueSpan values, std::vector<Key> &outKeys,
                 std::vector<Value> &outValues) const;

    /** Inverse of relabel(): rank-space stream back to sorted
     *  original ids. */
    void restore(KeySpan rankKeys, ValueSpan values,
                 std::vector<Key> &outKeys,
                 std::vector<Value> &outValues) const;

  private:
    StreamSetIndex() = default;

    struct ListMeta
    {
        std::uint64_t wordOff = 0;
        std::uint32_t firstWord = 0;
        std::uint32_t numWords = 0; ///< 0 = array-only
        bool autoTier = false;
    };

    std::vector<std::uint32_t> perm_; ///< original id -> rank
    std::vector<Key> inv_;            ///< rank -> original id
    std::vector<std::uint64_t> words_;
    std::vector<ListMeta> lists_;
    std::uint64_t numBitmaps_ = 0;
    std::uint64_t numAutoBitmaps_ = 0;
    Params params_;
};

} // namespace sc::streams::setindex

#endif // SPARSECORE_STREAMS_SETINDEX_SET_INDEX_HH
