#include "api/jobspec.hh"

#include <algorithm>
#include <limits>

#include "api/artifact_store.hh"
#include "common/logging.hh"
#include "graph/datasets.hh"
#include "graph/io.hh"
#include "tensor/tensor_datasets.hh"
#include "tensor/tensor_gen.hh"

namespace sc::api {

namespace {

/** Non-owning shared_ptr for process-stable registry references. */
template <typename T>
std::shared_ptr<const T>
unowned(const T &value)
{
    return std::shared_ptr<const T>(&value, [](const T *) {});
}

constexpr std::uint64_t kMaxStride = 1'000'000'000;

const std::vector<gpm::GpmApp> &
jobApps()
{
    static const std::vector<gpm::GpmApp> apps = {
        gpm::GpmApp::T,   gpm::GpmApp::TS,  gpm::GpmApp::TC,
        gpm::GpmApp::TT,  gpm::GpmApp::TM,  gpm::GpmApp::C4,
        gpm::GpmApp::C4S, gpm::GpmApp::C5,  gpm::GpmApp::C5S,
        gpm::GpmApp::M4};
    return apps;
}

std::string
joinChoices(const std::vector<std::string> &choices)
{
    std::string out;
    for (const std::string &c : choices) {
        if (!out.empty())
            out += '|';
        out += c;
    }
    return out;
}

void
diag(std::vector<JobDiag> &errors, std::string field,
     std::string message)
{
    errors.push_back({std::move(field), std::move(message)});
}

} // namespace

JsonValue
JobDiag::toJsonValue() const
{
    JsonValue out = JsonValue::object();
    out.set("field", JsonValue::str(field));
    out.set("message", JsonValue::str(message));
    return out;
}

const char *
jobModeName(JobMode mode)
{
    return mode == JobMode::Run ? "run" : "compare";
}

const char *
substrateName(Substrate substrate)
{
    return substrate == Substrate::Cpu ? "cpu" : "sparsecore";
}

const char *
workloadName(RunRequest::Workload workload)
{
    switch (workload) {
      case RunRequest::Workload::Gpm:
        return "gpm";
      case RunRequest::Workload::Fsm:
        return "fsm";
      case RunRequest::Workload::Spmspm:
        return "spmspm";
      case RunRequest::Workload::Ttv:
        return "ttv";
      case RunRequest::Workload::Ttm:
        return "ttm";
    }
    return "unknown";
}

arch::SparseCoreConfig
JobSpec::archConfig() const
{
    arch::SparseCoreConfig cfg;
    if (numSus)
        cfg.numSus = *numSus;
    if (suWindow)
        cfg.suWindow = *suWindow;
    if (bandwidth)
        cfg.aggregateBandwidth = *bandwidth;
    if (nested)
        cfg.nestedIntersection = *nested;
    return cfg;
}

JsonValue
JobSpec::toJsonValue() const
{
    JsonValue out = JsonValue::object();
    out.set("version", JsonValue::number(kSchemaVersion));
    if (!id.empty())
        out.set("id", JsonValue::str(id));
    if (priority != 0)
        out.set("priority",
                JsonValue::number(std::uint64_t(priority)));
    out.set("workload", JsonValue::str(workloadName(workload)));
    if (mode != JobMode::Compare)
        out.set("mode", JsonValue::str(jobModeName(mode)));
    if (mode == JobMode::Run)
        out.set("substrate", JsonValue::str(substrateName(substrate)));
    if (!dataset.empty())
        out.set("dataset", JsonValue::str(dataset));
    if (!graphFile.empty())
        out.set("graph_file", JsonValue::str(graphFile));
    if (!datasetB.empty())
        out.set("dataset_b", JsonValue::str(datasetB));
    if (workload == RunRequest::Workload::Gpm)
        out.set("app", JsonValue::str(gpm::gpmAppName(app)));
    if (workload == RunRequest::Workload::Fsm) {
        out.set("min_support", JsonValue::number(minSupport));
        if (numLabels != 8)
            out.set("num_labels",
                    JsonValue::number(std::uint64_t{numLabels}));
    }
    if (workload == RunRequest::Workload::Spmspm)
        out.set("algorithm",
                JsonValue::str(
                    kernels::spmspmAlgorithmName(algorithm)));

    if (numSus || suWindow || bandwidth || nested) {
        JsonValue arch = JsonValue::object();
        if (numSus)
            arch.set("sus", JsonValue::number(std::uint64_t{*numSus}));
        if (suWindow)
            arch.set("window",
                     JsonValue::number(std::uint64_t{*suWindow}));
        if (bandwidth)
            arch.set("bandwidth",
                     JsonValue::number(std::uint64_t{*bandwidth}));
        if (nested)
            arch.set("nested", JsonValue::boolean(*nested));
        out.set("arch", std::move(arch));
    }

    JsonValue opts = JsonValue::object();
    if (options.stride != 1)
        opts.set("stride",
                 JsonValue::number(std::uint64_t{options.stride}));
    if (options.rootStride != 1)
        opts.set("root_stride",
                 JsonValue::number(std::uint64_t{options.rootStride}));
    if (options.hostThreads != 0)
        opts.set("host_threads",
                 JsonValue::number(
                     std::uint64_t{options.hostThreads}));
    if (options.kernel)
        opts.set("kernel", JsonValue::str(streams::kernelLevelName(
                               *options.kernel)));
    if (options.indexPolicy)
        opts.set("index_policy",
                 JsonValue::str(streams::setindex::indexPolicyName(
                     *options.indexPolicy)));
    if (options.verify)
        opts.set("verify", JsonValue::boolean(*options.verify));
    if (options.replayMode != trace::ReplayMode::Auto)
        opts.set("replay", JsonValue::str(trace::replayModeName(
                               options.replayMode)));
    if (options.artifactCache)
        opts.set("artifact_cache",
                 JsonValue::boolean(*options.artifactCache));
    if (!opts.members().empty())
        out.set("options", std::move(opts));
    return out;
}

std::string
JobSpec::toJson() const
{
    return toJsonValue().dump();
}

namespace {

/** Field-level parse helpers: each returns false and records a
 *  JobDiag on a type/value mismatch. */
class FieldReader
{
  public:
    FieldReader(std::vector<JobDiag> &errors, std::string path)
        : errors_(errors), path_(std::move(path))
    {
    }

    std::string
    fieldPath(const std::string &name) const
    {
        return path_.empty() ? name : path_ + "." + name;
    }

    bool
    readString(const std::string &name, const JsonValue &v,
               std::string &out)
    {
        if (!v.isString()) {
            diag(errors_, fieldPath(name), "expected a string");
            return false;
        }
        out = v.asString();
        return true;
    }

    bool
    readBool(const std::string &name, const JsonValue &v, bool &out)
    {
        if (!v.isBool()) {
            diag(errors_, fieldPath(name),
                 "expected a boolean (true/false)");
            return false;
        }
        out = v.asBool();
        return true;
    }

    bool
    readUint(const std::string &name, const JsonValue &v,
             std::uint64_t &out, std::uint64_t min, std::uint64_t max)
    {
        if (!v.isNumber() || !v.isInteger() ||
            (v.kind() == JsonValue::Kind::Int && v.asInt() < 0)) {
            diag(errors_, fieldPath(name),
                 "expected a non-negative integer");
            return false;
        }
        const std::uint64_t u = v.asUint();
        if (u < min || u > max) {
            diag(errors_, fieldPath(name),
                 strprintf("out of range (expected %llu..%llu, got "
                           "%llu)",
                           static_cast<unsigned long long>(min),
                           static_cast<unsigned long long>(max),
                           static_cast<unsigned long long>(u)));
            return false;
        }
        out = u;
        return true;
    }

    /** Match a string field against a closed set of choices. */
    bool
    readChoice(const std::string &name, const JsonValue &v,
               const std::vector<std::string> &choices,
               std::string &out)
    {
        if (!v.isString()) {
            diag(errors_, fieldPath(name),
                 "expected a string (one of " + joinChoices(choices) +
                     ")");
            return false;
        }
        if (std::find(choices.begin(), choices.end(), v.asString()) ==
            choices.end()) {
            diag(errors_, fieldPath(name),
                 "unknown value '" + v.asString() + "' (expected " +
                     joinChoices(choices) + ")");
            return false;
        }
        out = v.asString();
        return true;
    }

  private:
    std::vector<JobDiag> &errors_;
    std::string path_;
};

void
parseOptionsObject(const JsonValue &obj, RunOptions &options,
                   std::vector<JobDiag> &errors)
{
    FieldReader reader(errors, "options");
    for (const auto &[name, value] : obj.members()) {
        std::uint64_t u = 0;
        std::string s;
        bool b = false;
        if (name == "stride") {
            if (reader.readUint(name, value, u, 1, kMaxStride))
                options.stride = static_cast<unsigned>(u);
        } else if (name == "root_stride") {
            if (reader.readUint(name, value, u, 1, kMaxStride))
                options.rootStride = static_cast<unsigned>(u);
        } else if (name == "host_threads") {
            if (reader.readUint(name, value, u, 0, 1024))
                options.hostThreads = static_cast<unsigned>(u);
        } else if (name == "kernel") {
            if (reader.readChoice(name, value,
                                  {"auto", "scalar", "sse", "avx2"},
                                  s) &&
                s != "auto")
                options.kernel = streams::parseKernelLevel(s);
        } else if (name == "index_policy") {
            if (reader.readChoice(name, value,
                                  {"auto", "array", "bitmap"}, s))
                options.indexPolicy =
                    streams::setindex::parseIndexPolicy(s);
        } else if (name == "verify") {
            if (reader.readBool(name, value, b))
                options.verify = b;
        } else if (name == "replay") {
            if (reader.readChoice(name, value,
                                  {"auto", "event", "bytecode"}, s)) {
                if (s == "event")
                    options.replayMode = trace::ReplayMode::Event;
                else if (s == "bytecode")
                    options.replayMode = trace::ReplayMode::Bytecode;
            }
        } else if (name == "artifact_cache") {
            if (reader.readBool(name, value, b))
                options.artifactCache = b;
        } else {
            diag(errors, reader.fieldPath(name),
                 "unknown field (options accepts stride, root_stride, "
                 "host_threads, kernel, index_policy, verify, replay, "
                 "artifact_cache)");
        }
    }
}

void
parseArchObject(const JsonValue &obj, JobSpec &spec,
                std::vector<JobDiag> &errors)
{
    FieldReader reader(errors, "arch");
    for (const auto &[name, value] : obj.members()) {
        std::uint64_t u = 0;
        bool b = false;
        if (name == "sus") {
            if (reader.readUint(name, value, u, 1, 64))
                spec.numSus = static_cast<unsigned>(u);
        } else if (name == "window") {
            if (reader.readUint(name, value, u, 1, 1024))
                spec.suWindow = static_cast<unsigned>(u);
        } else if (name == "bandwidth") {
            if (reader.readUint(name, value, u, 1, 65536))
                spec.bandwidth = static_cast<unsigned>(u);
        } else if (name == "nested") {
            if (reader.readBool(name, value, b))
                spec.nested = b;
        } else {
            diag(errors, reader.fieldPath(name),
                 "unknown field (arch accepts sus, window, bandwidth, "
                 "nested)");
        }
    }
}

} // namespace

JobSpecParse
parseJobSpec(std::string_view json_text)
{
    JobSpecParse out;
    const JsonParseResult parsed = parseJson(json_text);
    if (!parsed.ok()) {
        diag(out.errors, "", parsed.describe());
        return out;
    }
    const JsonValue &root = *parsed.value;
    if (!root.isObject()) {
        diag(out.errors, "", "job description must be a JSON object");
        return out;
    }

    JobSpec spec;
    std::vector<JobDiag> &errors = out.errors;
    FieldReader reader(errors, "");

    bool have_version = false;
    bool have_workload = false;
    bool saw_workload = false;
    bool have_mode = false;
    bool have_substrate = false;
    // Fields whose applicability depends on the workload: remember
    // which were present, check once the workload is known.
    std::vector<std::string> present;

    for (const auto &[name, value] : root.members()) {
        std::uint64_t u = 0;
        std::string s;
        if (name == "version") {
            have_version = true;
            if (!value.isNumber() || !value.isInteger()) {
                diag(errors, name, "expected an integer");
            } else if (value.asInt() != JobSpec::kSchemaVersion) {
                diag(errors, name,
                     strprintf("unsupported schema version %lld "
                               "(this build speaks version %lld)",
                               static_cast<long long>(value.asInt()),
                               static_cast<long long>(
                                   JobSpec::kSchemaVersion)));
            }
        } else if (name == "id") {
            reader.readString(name, value, spec.id);
        } else if (name == "priority") {
            if (reader.readUint(name, value, u, 0, 100))
                spec.priority = static_cast<int>(u);
        } else if (name == "workload") {
            saw_workload = true;
            if (reader.readChoice(
                    name, value,
                    {"gpm", "fsm", "spmspm", "ttv", "ttm"}, s)) {
                have_workload = true;
                if (s == "gpm")
                    spec.workload = RunRequest::Workload::Gpm;
                else if (s == "fsm")
                    spec.workload = RunRequest::Workload::Fsm;
                else if (s == "spmspm")
                    spec.workload = RunRequest::Workload::Spmspm;
                else if (s == "ttv")
                    spec.workload = RunRequest::Workload::Ttv;
                else
                    spec.workload = RunRequest::Workload::Ttm;
            }
        } else if (name == "mode") {
            if (reader.readChoice(name, value, {"run", "compare"},
                                  s)) {
                have_mode = true;
                spec.mode =
                    s == "run" ? JobMode::Run : JobMode::Compare;
            }
        } else if (name == "substrate") {
            if (reader.readChoice(name, value, {"cpu", "sparsecore"},
                                  s)) {
                have_substrate = true;
                spec.substrate = s == "cpu" ? Substrate::Cpu
                                            : Substrate::SparseCore;
            }
        } else if (name == "dataset") {
            reader.readString(name, value, spec.dataset);
        } else if (name == "graph_file") {
            present.push_back(name);
            reader.readString(name, value, spec.graphFile);
        } else if (name == "dataset_b") {
            present.push_back(name);
            reader.readString(name, value, spec.datasetB);
        } else if (name == "app") {
            present.push_back(name);
            if (value.isString()) {
                bool found = false;
                for (const gpm::GpmApp app : jobApps()) {
                    if (value.asString() == gpm::gpmAppName(app)) {
                        spec.app = app;
                        found = true;
                        break;
                    }
                }
                if (!found) {
                    std::vector<std::string> names;
                    names.reserve(jobApps().size());
                    for (const gpm::GpmApp app : jobApps())
                        names.emplace_back(gpm::gpmAppName(app));
                    diag(errors, name,
                         "unknown app '" + value.asString() +
                             "' (expected " + joinChoices(names) +
                             ")");
                }
            } else {
                diag(errors, name, "expected a string");
            }
        } else if (name == "min_support") {
            present.push_back(name);
            if (reader.readUint(name, value, u, 1,
                                std::numeric_limits<
                                    std::uint32_t>::max()))
                spec.minSupport = u;
        } else if (name == "num_labels") {
            present.push_back(name);
            if (reader.readUint(name, value, u, 1, 64))
                spec.numLabels = static_cast<std::uint32_t>(u);
        } else if (name == "algorithm") {
            present.push_back(name);
            if (reader.readChoice(name, value,
                                  {"inner", "outer", "gustavson"},
                                  s)) {
                if (s == "inner")
                    spec.algorithm = kernels::SpmspmAlgorithm::Inner;
                else if (s == "outer")
                    spec.algorithm = kernels::SpmspmAlgorithm::Outer;
                else
                    spec.algorithm =
                        kernels::SpmspmAlgorithm::Gustavson;
            }
        } else if (name == "arch") {
            if (value.isObject())
                parseArchObject(value, spec, errors);
            else
                diag(errors, name, "expected an object");
        } else if (name == "options") {
            if (value.isObject())
                parseOptionsObject(value, spec.options, errors);
            else
                diag(errors, name, "expected an object");
        } else {
            diag(errors, name,
                 "unknown field (see DESIGN.md §15 for the v1 "
                 "schema)");
        }
    }

    if (!have_version)
        diag(errors, "version",
             strprintf("missing (this build speaks version %lld)",
                       static_cast<long long>(
                           JobSpec::kSchemaVersion)));
    if (!saw_workload)
        diag(errors, "workload",
             "missing (expected gpm|fsm|spmspm|ttv|ttm)");

    if (have_substrate && (!have_mode || spec.mode != JobMode::Run))
        diag(errors, "substrate",
             "only valid when mode is 'run' (compare always times "
             "both substrates)");

    // Workload applicability of the optional fields.
    if (have_workload) {
        const auto applicable = [&](const std::string &field)
            -> std::optional<RunRequest::Workload> {
            if (field == "graph_file")
                return RunRequest::Workload::Gpm;
            if (field == "app")
                return RunRequest::Workload::Gpm;
            if (field == "min_support" || field == "num_labels")
                return RunRequest::Workload::Fsm;
            if (field == "dataset_b" || field == "algorithm")
                return RunRequest::Workload::Spmspm;
            return std::nullopt;
        };
        for (const std::string &field : present) {
            const auto only = applicable(field);
            if (only && *only != spec.workload)
                diag(errors, field,
                     strprintf("only valid for workload '%s' (job "
                               "says '%s')",
                               workloadName(*only),
                               workloadName(spec.workload)));
        }
    }

    if (errors.empty()) {
        auto more = validateJobSpec(spec);
        errors.insert(errors.end(), more.begin(), more.end());
    }
    if (errors.empty())
        out.spec = std::move(spec);
    return out;
}

std::vector<JobDiag>
validateJobSpec(const JobSpec &spec)
{
    std::vector<JobDiag> errors;
    switch (spec.workload) {
      case RunRequest::Workload::Gpm:
        if (spec.dataset.empty() && spec.graphFile.empty())
            diag(errors, "dataset",
                 "gpm job needs a 'dataset' registry key or a "
                 "'graph_file' path");
        if (!spec.dataset.empty() && !spec.graphFile.empty())
            diag(errors, "dataset",
                 "'dataset' and 'graph_file' are mutually exclusive");
        break;
      case RunRequest::Workload::Fsm:
        if (spec.dataset.empty())
            diag(errors, "dataset",
                 "fsm job needs a 'dataset' registry key");
        if (spec.minSupport < 1)
            diag(errors, "min_support", "must be >= 1");
        break;
      case RunRequest::Workload::Spmspm:
      case RunRequest::Workload::Ttv:
      case RunRequest::Workload::Ttm:
        if (spec.dataset.empty())
            diag(errors, "dataset",
                 strprintf("%s job needs a 'dataset' registry key",
                           workloadName(spec.workload)));
        break;
    }
    if (spec.options.stride < 1 || spec.options.stride > kMaxStride)
        diag(errors, "options.stride",
             strprintf("out of range (expected 1..%llu)",
                       static_cast<unsigned long long>(kMaxStride)));
    if (spec.options.rootStride < 1 ||
        spec.options.rootStride > kMaxStride)
        diag(errors, "options.root_stride",
             strprintf("out of range (expected 1..%llu)",
                       static_cast<unsigned long long>(kMaxStride)));
    if (spec.options.hostThreads > 1024)
        diag(errors, "options.host_threads",
             "out of range (expected 0..1024)");
    if (spec.priority < 0 || spec.priority > 100)
        diag(errors, "priority", "out of range (expected 0..100)");
    return errors;
}

namespace {

bool
knownGraphKey(const std::string &key)
{
    for (const auto &ds : graph::graphDatasets())
        if (ds.key == key)
            return true;
    return false;
}

std::string
graphKeyChoices()
{
    std::vector<std::string> keys;
    for (const auto &ds : graph::graphDatasets())
        keys.push_back(ds.key);
    return joinChoices(keys);
}

bool
knownMatrixKey(const std::string &key)
{
    for (const auto &ds : tensor::matrixDatasets())
        if (ds.key == key)
            return true;
    return false;
}

std::string
matrixKeyChoices()
{
    std::vector<std::string> keys;
    for (const auto &ds : tensor::matrixDatasets())
        keys.push_back(ds.key);
    return joinChoices(keys);
}

bool
knownTensorKey(const std::string &key)
{
    for (const auto &ds : tensor::tensorDatasets())
        if (ds.key == key)
            return true;
    return false;
}

std::string
tensorKeyChoices()
{
    std::vector<std::string> keys;
    for (const auto &ds : tensor::tensorDatasets())
        keys.push_back(ds.key);
    return joinChoices(keys);
}

} // namespace

JobResolve
resolveJob(const JobSpec &spec)
{
    JobResolve out;
    out.errors = validateJobSpec(spec);
    if (!out.errors.empty())
        return out;

    ResolvedJob job;
    job.spec = spec;
    job.config = spec.archConfig();
    std::vector<JobDiag> &errors = out.errors;

    switch (spec.workload) {
      case RunRequest::Workload::Gpm: {
        if (!spec.graphFile.empty()) {
            try {
                job.graph = std::make_shared<const graph::CsrGraph>(
                    graph::loadEdgeListFile(spec.graphFile));
            } catch (const SimError &e) {
                diag(errors, "graph_file", e.what());
                return out;
            }
        } else if (!knownGraphKey(spec.dataset)) {
            diag(errors, "dataset",
                 "unknown graph dataset '" + spec.dataset +
                     "' (expected " + graphKeyChoices() + ")");
            return out;
        } else {
            job.graph = graph::loadGraphShared(spec.dataset);
        }
        job.request = RunRequest::gpm(spec.app, *job.graph,
                                      spec.options);
        break;
      }
      case RunRequest::Workload::Fsm: {
        if (!knownGraphKey(spec.dataset)) {
            diag(errors, "dataset",
                 "unknown graph dataset '" + spec.dataset +
                     "' (expected " + graphKeyChoices() + ")");
            return out;
        }
        job.labeledGraph =
            graph::loadLabeledGraphShared(spec.dataset,
                                          spec.numLabels);
        job.request = RunRequest::fsm(*job.labeledGraph,
                                      spec.minSupport, spec.options);
        break;
      }
      case RunRequest::Workload::Spmspm: {
        if (!knownMatrixKey(spec.dataset)) {
            diag(errors, "dataset",
                 "unknown matrix dataset '" + spec.dataset +
                     "' (expected " + matrixKeyChoices() + ")");
            return out;
        }
        const std::string b_key =
            spec.datasetB.empty() ? spec.dataset : spec.datasetB;
        if (!knownMatrixKey(b_key)) {
            diag(errors, "dataset_b",
                 "unknown matrix dataset '" + b_key + "' (expected " +
                     matrixKeyChoices() + ")");
            return out;
        }
        job.matrixA = unowned(tensor::loadMatrix(spec.dataset));
        job.matrixB = unowned(tensor::loadMatrix(b_key));
        if (job.matrixA->cols() != job.matrixB->rows()) {
            diag(errors, "dataset_b",
                 strprintf("dimension mismatch: A is %ux%u but B is "
                           "%ux%u",
                           job.matrixA->rows(), job.matrixA->cols(),
                           job.matrixB->rows(),
                           job.matrixB->cols()));
            return out;
        }
        job.request = RunRequest::spmspm(*job.matrixA, *job.matrixB,
                                         spec.algorithm,
                                         spec.options);
        break;
      }
      case RunRequest::Workload::Ttv: {
        if (!knownTensorKey(spec.dataset)) {
            diag(errors, "dataset",
                 "unknown tensor dataset '" + spec.dataset +
                     "' (expected " + tensorKeyChoices() + ")");
            return out;
        }
        const tensor::CsfTensor &t = tensor::loadTensor(spec.dataset);
        job.tensor = unowned(t);
        // The dense operand is generated deterministically from the
        // tensor's k-dimension (the fig15 convention) so a TTV job is
        // a pure function of its spec.
        job.vector = std::make_shared<const std::vector<Value>>(
            tensor::generateVector(t.dimK(), 0x77));
        job.request =
            RunRequest::ttv(*job.tensor, *job.vector, spec.options);
        break;
      }
      case RunRequest::Workload::Ttm: {
        if (!knownTensorKey(spec.dataset)) {
            diag(errors, "dataset",
                 "unknown tensor dataset '" + spec.dataset +
                     "' (expected " + tensorKeyChoices() + ")");
            return out;
        }
        const tensor::CsfTensor &t = tensor::loadTensor(spec.dataset);
        job.tensor = unowned(t);
        // Deterministic B operand with the tensor's k-dim columns
        // (the fig15 convention).
        job.matrixB =
            std::make_shared<const tensor::SparseMatrix>(
                tensor::generateMatrix(
                    64, t.dimK(), 16 * t.dimK(),
                    tensor::MatrixStructure::Uniform, 0x78, "B"));
        job.request =
            RunRequest::ttm(*job.tensor, *job.matrixB, spec.options);
        break;
      }
    }

    // Dataset-affinity key = the store trace key this job will hit
    // (mirrors Machine's routing: gpm/fsm go through the store, the
    // tensor workloads don't, and a disabled cache shares nothing).
    if (ArtifactStore::resolveEnabled(spec.options.artifactCache)) {
        switch (spec.workload) {
          case RunRequest::Workload::Gpm:
            job.affinityKey = ArtifactStore::gpmTraceKey(
                spec.app, *job.graph, spec.options.rootStride);
            break;
          case RunRequest::Workload::Fsm:
            job.affinityKey = ArtifactStore::fsmTraceKey(
                *job.labeledGraph, spec.minSupport);
            break;
          default:
            break;
        }
    }

    out.job = std::move(job);
    return out;
}

} // namespace sc::api
