/**
 * @file
 * Result/report types of the public API: cycle counts, breakdowns and
 * speedups with text formatting.
 */

#ifndef SPARSECORE_API_REPORT_HH
#define SPARSECORE_API_REPORT_HH

#include <cstdint>
#include <string>

#include "api/run.hh"
#include "common/json.hh"
#include "sim/core_model.hh"

namespace sc::api {

/** One substrate's result for a workload. */
struct SubstrateResult
{
    std::string substrate;
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;
};

/** A two-substrate comparison (e.g. SparseCore vs CPU). */
struct Comparison
{
    std::uint64_t functionalResult = 0; ///< count / checksum
    SubstrateResult baseline;
    SubstrateResult accelerated;
    TraceStats trace; ///< zeroed when the run was not trace-driven

    double
    speedup() const
    {
        return accelerated.cycles
                   ? static_cast<double>(baseline.cycles) /
                         static_cast<double>(accelerated.cycles)
                   : 0.0;
    }

    /** Multi-line human-readable report. */
    std::string str() const;
};

/** Render a breakdown as "Cache 12.3% | Mispred. 8.4% | ...". */
std::string breakdownStr(const sim::CycleBreakdown &breakdown);

/**
 * The one JSON shape for results — used verbatim by the server, the
 * CLI's --json mode and the bench reports, so the three never drift
 * (they used to be three slightly-different printf formats).
 * Breakdowns emit absolute per-class cycles keyed by class name;
 * TraceStats timing fields are seconds.
 */
JsonValue jsonValue(const sim::CycleBreakdown &breakdown);
JsonValue jsonValue(const TraceStats &trace);
JsonValue jsonValue(const SubstrateResult &result);
JsonValue jsonValue(const RunResult &result);
JsonValue jsonValue(const Comparison &comparison);

} // namespace sc::api

#endif // SPARSECORE_API_REPORT_HH
