/**
 * @file
 * Result/report types of the public API: cycle counts, breakdowns and
 * speedups with text formatting.
 */

#ifndef SPARSECORE_API_REPORT_HH
#define SPARSECORE_API_REPORT_HH

#include <cstdint>
#include <string>

#include "sim/core_model.hh"

namespace sc::api {

/** One substrate's result for a workload. */
struct SubstrateResult
{
    std::string substrate;
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;
};

/** A two-substrate comparison (e.g. SparseCore vs CPU). */
struct Comparison
{
    std::uint64_t functionalResult = 0; ///< count / checksum
    SubstrateResult baseline;
    SubstrateResult accelerated;

    double
    speedup() const
    {
        return accelerated.cycles
                   ? static_cast<double>(baseline.cycles) /
                         static_cast<double>(accelerated.cycles)
                   : 0.0;
    }

    /** Multi-line human-readable report. */
    std::string str() const;
};

/** Render a breakdown as "Cache 12.3% | Mispred. 8.4% | ...". */
std::string breakdownStr(const sim::CycleBreakdown &breakdown);

} // namespace sc::api

#endif // SPARSECORE_API_REPORT_HH
