/**
 * @file
 * Result/report types of the public API: cycle counts, breakdowns and
 * speedups with text formatting.
 */

#ifndef SPARSECORE_API_REPORT_HH
#define SPARSECORE_API_REPORT_HH

#include <cstdint>
#include <string>

#include "sim/core_model.hh"

namespace sc::api {

/** One substrate's result for a workload. */
struct SubstrateResult
{
    std::string substrate;
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;
};

/**
 * Capture/replay statistics of a trace-driven comparison: the
 * workload ran functionally once (capture) and each substrate was
 * timed by replaying the shared trace.
 */
struct TraceStats
{
    std::size_t events = 0;     ///< captured events
    std::size_t arenaBytes = 0; ///< interned key-arena bytes
    /** Compiled bytecode program bytes (0 when replayMode=event). */
    std::size_t bytecodeBytes = 0;
    /** Replay engine used: "event" or "bytecode". */
    std::string replayMode;
    /** The trace came out of the ArtifactStore warm: the functional
     *  capture run was skipped entirely. */
    bool traceCacheHit = false;
    /** The compiled program came out of the store warm: the
     *  trace->bytecode compile was skipped. */
    bool bytecodeCacheHit = false;
    double captureSeconds = 0;  ///< host wall-clock of the capture run
    /** Host wall-clock of the trace -> bytecode compile (0 when
     *  replayMode=event); paid once, amortized over both replays. */
    double compileSeconds = 0;
    double replaySeconds = 0;   ///< host wall-clock of both replays
};

/** A two-substrate comparison (e.g. SparseCore vs CPU). */
struct Comparison
{
    std::uint64_t functionalResult = 0; ///< count / checksum
    SubstrateResult baseline;
    SubstrateResult accelerated;
    TraceStats trace; ///< zeroed when the run was not trace-driven

    double
    speedup() const
    {
        return accelerated.cycles
                   ? static_cast<double>(baseline.cycles) /
                         static_cast<double>(accelerated.cycles)
                   : 0.0;
    }

    /** Multi-line human-readable report. */
    std::string str() const;
};

/** Render a breakdown as "Cache 12.3% | Mispred. 8.4% | ...". */
std::string breakdownStr(const sim::CycleBreakdown &breakdown);

} // namespace sc::api

#endif // SPARSECORE_API_REPORT_HH
