#include "api/job_queue.hh"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "analysis/diagnostics.hh"
#include "common/logging.hh"

namespace sc::api {

namespace {

double
secondsBetween(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** Percentile over a sample vector (nearest-rank; 0 when empty). */
double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0;
    const std::size_t rank = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(
                                         samples.size())));
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(rank),
                     samples.end());
    return samples[rank];
}

} // namespace

JsonValue
JobReport::toJsonValue(bool include_timing) const
{
    JsonValue out = JsonValue::object();
    out.set("id", JsonValue::str(id));
    out.set("ok", JsonValue::boolean(ok));
    out.set("workload",
            JsonValue::str(workloadName(spec.workload)));
    out.set("mode", JsonValue::str(jobModeName(spec.mode)));
    if (!spec.dataset.empty())
        out.set("dataset", JsonValue::str(spec.dataset));
    if (!errors.empty()) {
        JsonValue errs = JsonValue::array();
        for (const JobDiag &e : errors)
            errs.push(e.toJsonValue());
        out.set("errors", std::move(errs));
    }
    if (run) {
        JsonValue r = jsonValue(*run);
        if (!include_timing)
            r.remove("trace");
        out.set("run", std::move(r));
    }
    if (comparison) {
        JsonValue c = jsonValue(*comparison);
        if (!include_timing)
            c.remove("trace");
        out.set("compare", std::move(c));
    }
    if (include_timing) {
        out.set("queue_seconds", JsonValue::number(queueSeconds));
        out.set("exec_seconds", JsonValue::number(execSeconds));
    }
    return out;
}

std::string
JobQueueStats::str() const
{
    std::ostringstream os;
    os << "jobs: " << submitted << " submitted | " << rejected
       << " rejected | " << completed << " completed | " << failed
       << " failed";
    os << " | " << jobsPerSecond << " jobs/s";
    os << " | latency p50 " << p50LatencySeconds * 1e3 << " ms, p99 "
       << p99LatencySeconds * 1e3 << " ms";
    os << " | store: traces " << traceHits << " hits / "
       << traceMisses << " misses, programs " << programHits
       << " hits / " << programMisses << " misses";
    return os.str();
}

JsonValue
JobQueueStats::toJsonValue() const
{
    JsonValue out = JsonValue::object();
    out.set("submitted", JsonValue::number(submitted));
    out.set("rejected", JsonValue::number(rejected));
    out.set("completed", JsonValue::number(completed));
    out.set("failed", JsonValue::number(failed));
    out.set("wall_seconds", JsonValue::number(wallSeconds));
    out.set("jobs_per_second", JsonValue::number(jobsPerSecond));
    out.set("p50_latency_seconds",
            JsonValue::number(p50LatencySeconds));
    out.set("p99_latency_seconds",
            JsonValue::number(p99LatencySeconds));
    JsonValue store = JsonValue::object();
    store.set("trace_hits", JsonValue::number(traceHits));
    store.set("trace_misses", JsonValue::number(traceMisses));
    store.set("program_hits", JsonValue::number(programHits));
    store.set("program_misses", JsonValue::number(programMisses));
    out.set("artifact_store", std::move(store));
    return out;
}

JobQueue::JobQueue(unsigned workers)
    : start_(std::chrono::steady_clock::now()),
      store_before_(ArtifactStore::global().stats())
{
    if (workers)
        own_pool_.emplace(workers);
}

JobQueue::~JobQueue()
{
    drain();
}

std::future<JobReport>
JobQueue::reject(JobReport &&report)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        ++rejected_;
    }
    std::promise<JobReport> done;
    auto future = done.get_future();
    done.set_value(std::move(report));
    return future;
}

std::future<JobReport>
JobQueue::submit(JobSpec spec)
{
    const auto admitted = std::chrono::steady_clock::now();

    JobReport report;
    report.id = spec.id;
    report.spec = spec;

    // Admission: resolve dataset references now, on the submitter's
    // thread — a bad reference fails this job before it costs a pool
    // slot, and the resolved shared_ptrs pin the data for the task.
    JobResolve resolved = resolveJob(spec);
    if (!resolved.ok()) {
        report.errors = std::move(resolved.errors);
        return reject(std::move(report));
    }

    auto job = std::make_shared<ResolvedJob>(std::move(*resolved.job));
    auto done = std::make_shared<std::promise<JobReport>>();
    auto future = done->get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        ++pending_;
    }
    pool().submit([this, job, done, admitted] {
        execute(job, done, admitted);
    });
    return future;
}

std::future<JobReport>
JobQueue::submitJson(std::string_view json_text)
{
    JobSpecParse parsed = parseJobSpec(json_text);
    if (!parsed.ok()) {
        JobReport report;
        report.errors = std::move(parsed.errors);
        return reject(std::move(report));
    }
    return submit(std::move(*parsed.spec));
}

void
JobQueue::execute(const std::shared_ptr<ResolvedJob> &job,
                  const std::shared_ptr<std::promise<JobReport>> &done,
                  std::chrono::steady_clock::time_point admitted)
{
    const auto started = std::chrono::steady_clock::now();

    JobReport report;
    report.id = job->spec.id;
    report.spec = job->spec;
    report.queueSeconds = secondsBetween(admitted, started);

    // An exception escaping a ThreadPool task is fatal; everything a
    // job can throw (SimError from fatal(), VerifyError, bad_alloc)
    // must land in the report instead — one broken job must not take
    // down the batch.
    try {
        Machine machine(job->config);
        if (job->spec.mode == JobMode::Run)
            report.run = machine.run(job->request,
                                     job->spec.substrate);
        else
            report.comparison = machine.compare(job->request);
        report.ok = true;
    } catch (const analysis::VerifyError &e) {
        report.errors.push_back(
            {"", std::string("verifier: ") + e.what()});
    } catch (const std::exception &e) {
        report.errors.push_back({"", e.what()});
    }

    const auto finished = std::chrono::steady_clock::now();
    report.execSeconds = secondsBetween(started, finished);
    recordFinished(report, secondsBetween(admitted, finished));
    done->set_value(std::move(report));
}

void
JobQueue::recordFinished(const JobReport &report, double latency)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (report.ok)
        ++completed_;
    else
        ++failed_;
    latencies_.push_back(latency);
    if (--pending_ == 0)
        idle_.notify_all();
}

void
JobQueue::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
}

JobQueueStats
JobQueue::stats() const
{
    JobQueueStats out;
    std::vector<double> latencies;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.submitted = submitted_;
        out.rejected = rejected_;
        out.completed = completed_;
        out.failed = failed_;
        latencies = latencies_;
    }
    out.wallSeconds =
        secondsBetween(start_, std::chrono::steady_clock::now());
    const std::uint64_t finished = out.completed + out.failed;
    out.jobsPerSecond = out.wallSeconds > 0
                            ? static_cast<double>(finished) /
                                  out.wallSeconds
                            : 0;
    out.p50LatencySeconds = percentile(latencies, 0.50);
    out.p99LatencySeconds = percentile(latencies, 0.99);

    const ArtifactStoreStats now = ArtifactStore::global().stats();
    out.traceHits = now.traces.hits - store_before_.traces.hits;
    out.traceMisses = now.traces.misses - store_before_.traces.misses;
    out.programHits = now.programs.hits - store_before_.programs.hits;
    out.programMisses =
        now.programs.misses - store_before_.programs.misses;
    return out;
}

} // namespace sc::api
