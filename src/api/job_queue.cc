#include "api/job_queue.hh"

#include <algorithm>
#include <exception>
#include <sstream>
#include <utility>

#include "analysis/diagnostics.hh"
#include "common/config.hh"
#include "common/logging.hh"

namespace sc::api {

namespace {

double
secondsBetween(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** Percentile over a sample vector (nearest-rank; 0 when empty). */
double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0;
    const std::size_t rank = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(
                                         samples.size())));
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(rank),
                     samples.end());
    return samples[rank];
}

/** Concurrent-execution cap for the scheduler: how many jobs the
 *  queue's pool can actually run at once. */
unsigned
schedSlots(unsigned workers)
{
    if (workers == 0)
        return std::max(1u, ThreadPool::global().numWorkers());
    if (workers == 1)
        return 1; // inline at submit(): strictly sequential
    return workers;
}

} // namespace

JsonValue
JobReport::toJsonValue(bool include_timing) const
{
    JsonValue out = JsonValue::object();
    out.set("id", JsonValue::str(id));
    out.set("ok", JsonValue::boolean(ok));
    out.set("workload",
            JsonValue::str(workloadName(spec.workload)));
    out.set("mode", JsonValue::str(jobModeName(spec.mode)));
    if (!spec.dataset.empty())
        out.set("dataset", JsonValue::str(spec.dataset));
    if (!errors.empty()) {
        JsonValue errs = JsonValue::array();
        for (const JobDiag &e : errors)
            errs.push(e.toJsonValue());
        out.set("errors", std::move(errs));
    }
    if (run) {
        JsonValue r = jsonValue(*run);
        if (!include_timing)
            r.remove("trace");
        out.set("run", std::move(r));
    }
    if (comparison) {
        JsonValue c = jsonValue(*comparison);
        if (!include_timing)
            c.remove("trace");
        out.set("compare", std::move(c));
    }
    if (include_timing) {
        out.set("queue_seconds", JsonValue::number(queueSeconds));
        out.set("exec_seconds", JsonValue::number(execSeconds));
    }
    return out;
}

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      rng_(0x9e3779b97f4a7c15ULL)
{
}

void
LatencyReservoir::record(double seconds)
{
    ++seen_;
    if (samples_.size() < capacity_) {
        samples_.push_back(seconds);
        return;
    }
    // Algorithm R: replace a random slot with probability
    // capacity/seen, so every observation is retained with equal
    // probability. Deterministic xorshift64 — percentiles of a
    // given stream are reproducible.
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    const std::uint64_t slot = rng_ % seen_;
    if (slot < capacity_)
        samples_[static_cast<std::size_t>(slot)] = seconds;
}

std::string
JobQueueStats::str() const
{
    std::ostringstream os;
    os << "jobs: " << submitted << " submitted | " << rejected
       << " rejected | " << completed << " completed | " << failed
       << " failed";
    if (cancelled)
        os << " | " << cancelled << " cancelled";
    os << " | " << jobsPerSecond << " jobs/s";
    os << " | latency p50 " << p50LatencySeconds * 1e3 << " ms, p99 "
       << p99LatencySeconds * 1e3 << " ms";
    os << " | store: traces " << traceHits << " hits / "
       << traceMisses << " misses, programs " << programHits
       << " hits / " << programMisses << " misses";
    os << " | verify: " << verifyChecked << " checked, "
       << verifyRejected << " program / " << pressureRejected
       << " pressure rejects, " << verdictHits
       << " re-checks skipped";
    os << " | sched " << schedPolicyName(scheduler.policy) << ": "
       << scheduler.warmers << " warmers, " << scheduler.convoyAvoided
       << " convoys avoided, " << traceWaits + programWaits
       << " store waits";
    return os.str();
}

JsonValue
JobQueueStats::toJsonValue() const
{
    JsonValue out = JsonValue::object();
    out.set("submitted", JsonValue::number(submitted));
    out.set("rejected", JsonValue::number(rejected));
    out.set("completed", JsonValue::number(completed));
    out.set("failed", JsonValue::number(failed));
    out.set("cancelled", JsonValue::number(cancelled));
    out.set("wall_seconds", JsonValue::number(wallSeconds));
    out.set("jobs_per_second", JsonValue::number(jobsPerSecond));
    out.set("p50_latency_seconds",
            JsonValue::number(p50LatencySeconds));
    out.set("p99_latency_seconds",
            JsonValue::number(p99LatencySeconds));
    JsonValue store = JsonValue::object();
    store.set("trace_hits", JsonValue::number(traceHits));
    store.set("trace_misses", JsonValue::number(traceMisses));
    store.set("program_hits", JsonValue::number(programHits));
    store.set("program_misses", JsonValue::number(programMisses));
    store.set("trace_waits", JsonValue::number(traceWaits));
    store.set("program_waits", JsonValue::number(programWaits));
    store.set("verdict_hits", JsonValue::number(verdictHits));
    store.set("verdict_misses", JsonValue::number(verdictMisses));
    out.set("artifact_store", std::move(store));
    JsonValue verify = JsonValue::object();
    verify.set("checked", JsonValue::number(verifyChecked));
    verify.set("program_rejected",
               JsonValue::number(verifyRejected));
    verify.set("pressure_rejected",
               JsonValue::number(pressureRejected));
    out.set("verify", std::move(verify));
    JsonValue sched = JsonValue::object();
    sched.set("policy",
              JsonValue::str(schedPolicyName(scheduler.policy)));
    sched.set("inflight", JsonValue::number(scheduler.inflight));
    sched.set("parked", JsonValue::number(scheduler.parked));
    sched.set("waiting_for_slot",
              JsonValue::number(scheduler.waitingForSlot));
    sched.set("warmers", JsonValue::number(scheduler.warmers));
    sched.set("convoy_avoided",
              JsonValue::number(scheduler.convoyAvoided));
    sched.set("cancelled", JsonValue::number(scheduler.cancelled));
    JsonValue lanes = JsonValue::array();
    for (const auto &[dataset, jobs] : scheduler.laneJobs) {
        JsonValue lane = JsonValue::object();
        lane.set("dataset", JsonValue::str(dataset));
        lane.set("jobs", JsonValue::number(jobs));
        lanes.push(std::move(lane));
    }
    sched.set("lanes", std::move(lanes));
    out.set("scheduler", std::move(sched));
    return out;
}

SchedPolicy
JobQueue::defaultPolicy()
{
    // The loader rejected anything but fifo|affinity at startup.
    const auto parsed = parseSchedPolicy(config().jobSched);
    return parsed ? *parsed : SchedPolicy::Affinity;
}

JobQueue::JobQueue(unsigned workers, std::optional<SchedPolicy> policy)
    : start_(std::chrono::steady_clock::now()),
      store_before_(ArtifactStore::global().stats()),
      sched_(policy ? *policy : defaultPolicy(), schedSlots(workers))
{
    // workers here means *concurrent executors*: a dedicated pool of
    // N >= 2 spawns N worker threads (ThreadPool counts the caller,
    // which never executes queue jobs, so size up by one).
    if (workers == 1)
        own_pool_.emplace(1);
    else if (workers >= 2)
        own_pool_.emplace(workers + 1);
}

JobQueue::~JobQueue()
{
    drain();
}

std::future<JobReport>
JobQueue::reject(JobReport &&report)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        ++rejected_;
    }
    std::promise<JobReport> done;
    auto future = done.get_future();
    done.set_value(std::move(report));
    return future;
}

std::future<JobReport>
JobQueue::submit(JobSpec spec)
{
    const auto admitted = std::chrono::steady_clock::now();

    JobReport report;
    report.id = spec.id;
    report.spec = spec;

    // Admission: resolve dataset references now, on the submitter's
    // thread — a bad reference fails this job before it costs a pool
    // slot, and the resolved shared_ptrs pin the data for the task.
    JobResolve resolved = resolveJob(spec);
    if (!resolved.ok()) {
        report.errors = std::move(resolved.errors);
        return reject(std::move(report));
    }

    // Admission-time verification, for jobs whose trace is already
    // resident in the store (a warm dataset): the cached verdict and
    // pressure summary are cheap to consult here, so a program that
    // breaks the stream-lifetime contract — or exceeds the arch
    // limits the job itself declared — is rejected with structured
    // JobDiags before it costs a scheduler slot. Cold jobs verify at
    // execution exactly as before (the trace does not exist yet), and
    // jobs that declare no arch limits are never pressure-rejected.
    if (!resolved.job->affinityKey.empty()) {
        ArtifactStore &store = ArtifactStore::global();
        if (const auto cached =
                store.peekTrace(resolved.job->affinityKey)) {
            const arch::SparseCoreConfig &cfg = resolved.job->config;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++verifyChecked_;
            }
            if (spec.options.verify.value_or(
                    analysis::verifyByDefault())) {
                const auto verdict =
                    store.verdict(resolved.job->affinityKey,
                                  cached->trace, cfg.numStreamRegs);
                if (verdict->hasErrors()) {
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++verifyRejected_;
                    }
                    report.errors.push_back(
                        {"program", verdict->format()});
                    return reject(std::move(report));
                }
            }
            if (spec.numSus) {
                const auto summary = store.summary(
                    resolved.job->affinityKey, cached->trace, cfg);
                if (summary->maxPressure > *spec.numSus) {
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        ++pressureRejected_;
                    }
                    report.errors.push_back(
                        {"arch.sus",
                         strprintf("peak live-stream pressure %u "
                                   "(first at event %llu) exceeds the "
                                   "declared arch.sus budget of %u",
                                   summary->maxPressure,
                                   static_cast<unsigned long long>(
                                       summary->maxPressurePc),
                                   *spec.numSus)});
                    return reject(std::move(report));
                }
            }
        }
    }

    Pending pending;
    pending.job =
        std::make_shared<ResolvedJob>(std::move(*resolved.job));
    pending.done = std::make_shared<std::promise<JobReport>>();
    pending.admitted = admitted;
    auto future = pending.done->get_future();

    std::uint64_t seq = 0;
    bool dispatch_now = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        ++pending_;
        seq = nextSeq_++;
        dispatch_now =
            sched_.admit(seq, pending.job->affinityKey,
                         pending.job->spec.priority, admitted);
        if (!dispatch_now)
            held_.emplace(seq, std::move(pending));
    }
    if (dispatch_now)
        dispatch(seq, std::move(pending));
    return future;
}

std::future<JobReport>
JobQueue::submitJson(std::string_view json_text)
{
    JobSpecParse parsed = parseJobSpec(json_text);
    if (!parsed.ok()) {
        JobReport report;
        report.errors = std::move(parsed.errors);
        return reject(std::move(report));
    }
    return submit(std::move(*parsed.spec));
}

void
JobQueue::dispatch(std::uint64_t seq, Pending &&pending)
{
    // Never called with mutex_ held: a size-1 pool runs the task —
    // and the whole job — inline right here.
    pool().submit([this, seq, pending = std::move(pending)] {
        execute(seq, pending);
    });
}

void
JobQueue::execute(std::uint64_t seq, const Pending &pending)
{
    const auto started = std::chrono::steady_clock::now();
    const ResolvedJob &job = *pending.job;

    JobReport report;
    report.id = job.spec.id;
    report.spec = job.spec;
    report.queueSeconds = secondsBetween(pending.admitted, started);

    // An exception escaping a ThreadPool task is fatal; everything a
    // job can throw (SimError from fatal(), VerifyError, bad_alloc)
    // must land in the report instead — one broken job must not take
    // down the batch.
    try {
        Machine machine(job.config);
        if (job.spec.mode == JobMode::Run)
            report.run = machine.run(job.request, job.spec.substrate);
        else
            report.comparison = machine.compare(job.request);
        report.ok = true;
    } catch (const analysis::VerifyError &e) {
        report.errors.push_back(
            {"", std::string("verifier: ") + e.what()});
    } catch (const std::exception &e) {
        report.errors.push_back({"", e.what()});
    }

    const auto finished = std::chrono::steady_clock::now();
    report.execSeconds = secondsBetween(started, finished);

    // Tell the scheduler this slot is free; it hands back the jobs to
    // dispatch next (a completed warmer releases its parked lane).
    std::vector<std::pair<std::uint64_t, Pending>> next;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (report.ok)
            ++completed_;
        else
            ++failed_;
        latencies_.record(secondsBetween(pending.admitted, finished));
        for (const std::uint64_t s : sched_.onComplete(seq, finished)) {
            const auto it = held_.find(s);
            if (it == held_.end())
                continue; // cancelled between decisions: impossible
                          // today (both run under mutex_), belt only
            next.emplace_back(s, std::move(it->second));
            held_.erase(it);
        }
    }
    pending.done->set_value(std::move(report));
    for (auto &[s, p] : next)
        dispatch(s, std::move(p));
    // Count this job done only after its future is satisfied, so a
    // returning drain() means every future is ready, not just every
    // execution finished.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0)
            idle_.notify_all();
    }
}

std::size_t
JobQueue::cancel(const std::string &id)
{
    std::vector<Pending> dropped;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = held_.begin(); it != held_.end();) {
            if (it->second.job->spec.id == id &&
                sched_.cancel(it->first)) {
                dropped.push_back(std::move(it->second));
                it = held_.erase(it);
            } else {
                ++it;
            }
        }
        cancelled_ += dropped.size();
    }
    for (Pending &pending : dropped) {
        JobReport report;
        report.id = pending.job->spec.id;
        report.spec = pending.job->spec;
        report.errors.push_back(
            {"", "cancelled by JobQueue::cancel()"});
        pending.done->set_value(std::move(report));
    }
    if (!dropped.empty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_ -= dropped.size();
        if (pending_ == 0)
            idle_.notify_all();
    }
    return dropped.size();
}

void
JobQueue::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return pending_ == 0; });
}

JobQueueStats
JobQueue::stats() const
{
    JobQueueStats out;
    std::vector<double> latencies;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.submitted = submitted_;
        out.rejected = rejected_;
        out.completed = completed_;
        out.failed = failed_;
        out.cancelled = cancelled_;
        out.verifyChecked = verifyChecked_;
        out.verifyRejected = verifyRejected_;
        out.pressureRejected = pressureRejected_;
        out.scheduler = sched_.stats();
        latencies = latencies_.samples();
    }
    out.wallSeconds =
        secondsBetween(start_, std::chrono::steady_clock::now());
    const std::uint64_t finished = out.completed + out.failed;
    out.jobsPerSecond = out.wallSeconds > 0
                            ? static_cast<double>(finished) /
                                  out.wallSeconds
                            : 0;
    out.p50LatencySeconds = percentile(latencies, 0.50);
    out.p99LatencySeconds = percentile(latencies, 0.99);

    const ArtifactStoreStats now = ArtifactStore::global().stats();
    out.traceHits = now.traces.hits - store_before_.traces.hits;
    out.traceMisses = now.traces.misses - store_before_.traces.misses;
    out.programHits = now.programs.hits - store_before_.programs.hits;
    out.programMisses =
        now.programs.misses - store_before_.programs.misses;
    out.traceWaits = now.traces.inflightWaits -
                     store_before_.traces.inflightWaits;
    out.programWaits = now.programs.inflightWaits -
                       store_before_.programs.inflightWaits;
    out.verdictHits = now.verdicts.hits - store_before_.verdicts.hits;
    out.verdictMisses =
        now.verdicts.misses - store_before_.verdicts.misses;
    return out;
}

} // namespace sc::api
