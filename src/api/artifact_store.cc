#include "api/artifact_store.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "analysis/trace_check.hh"
#include "arch/config.hh"
#include "common/config.hh"
#include "common/logging.hh"

namespace sc::api {

namespace {

std::size_t
cachedTraceBytes(const ArtifactStore::CachedTrace &cached)
{
    return cached.trace.memoryBytes() + sizeof(cached.functionalResult);
}

std::size_t
programBytes(const trace::BytecodeProgram &program)
{
    return program.memoryBytes();
}

std::size_t
verdictBytes(const analysis::VerifyReport &report)
{
    std::size_t bytes = sizeof(report);
    for (const analysis::Diagnostic &d : report.diagnostics)
        bytes += sizeof(d) + d.message.size();
    return bytes;
}

std::size_t
summaryBytes(const analysis::ProgramSummary &summary)
{
    return sizeof(summary) +
           summary.profile.size() * sizeof(analysis::PressurePoint);
}

void
appendCounters(std::ostringstream &os, const char *name,
               const CacheStats &stats)
{
    os << name << " " << stats.hits << " hits / " << stats.misses
       << " misses";
    if (stats.evictions)
        os << " / " << stats.evictions << " evicted";
}

} // namespace

std::string
ArtifactStoreStats::str() const
{
    std::ostringstream os;
    os << "artifact store: ";
    appendCounters(os, "graphs", graphs);
    os << " | ";
    appendCounters(os, "traces", traces);
    os << " | ";
    appendCounters(os, "programs", programs);
    os << " | ";
    appendCounters(os, "verdicts", verdicts);
    os << " | resident "
       << (graphs.bytes + labeledGraphs.bytes + traces.bytes +
           programs.bytes + verdicts.bytes)
       << " bytes";
    return os.str();
}

ArtifactStore::ArtifactStore(std::size_t capacity_bytes)
    : traces_(capacity_bytes, cachedTraceBytes),
      programs_(capacity_bytes, programBytes),
      verdicts_(capacity_bytes, verdictBytes),
      summaries_(capacity_bytes, summaryBytes)
{
}

ArtifactStore &
ArtifactStore::global()
{
    static ArtifactStore store;
    return store;
}

bool
ArtifactStore::enabledByDefault()
{
    // SC_ARTIFACT_CACHE, validated by the common/config loader.
    return config().artifactCache;
}

bool
ArtifactStore::resolveEnabled(std::optional<bool> override_)
{
    return override_.value_or(enabledByDefault());
}

std::size_t
ArtifactStore::defaultCapacityBytes()
{
    // SC_ARTIFACT_CACHE_BYTES, validated by the common/config loader.
    return config().artifactCacheBytes;
}

std::shared_ptr<const ArtifactStore::CachedTrace>
ArtifactStore::trace(const std::string &key, const CaptureFn &capture)
{
    return traces_.getOrBuild(key, [&] {
        auto cached = std::make_shared<CachedTrace>();
        trace::TraceRecorder recorder;
        cached->functionalResult = capture(recorder);
        cached->trace = recorder.takeTrace();
        return std::shared_ptr<const CachedTrace>(std::move(cached));
    });
}

std::shared_ptr<const trace::BytecodeProgram>
ArtifactStore::program(const std::string &trace_key,
                       const trace::Trace &tr,
                       std::optional<bool> verify, bool *compiled)
{
    bool built = false;
    auto program = programs_.getOrBuild(programKey(trace_key), [&] {
        built = true;
        if (verify.value_or(analysis::verifyByDefault())) {
            const auto report =
                verdict(trace_key, tr, isa::numStreamRegs);
            if (report->hasErrors())
                throw analysis::VerifyError(report->format());
        }
        return std::make_shared<const trace::BytecodeProgram>(
            trace::compileTrace(tr));
    });
    if (compiled)
        *compiled = built;
    return program;
}

std::shared_ptr<const analysis::VerifyReport>
ArtifactStore::verdict(const std::string &trace_key,
                       const trace::Trace &tr, unsigned capacity)
{
    return verdicts_.getOrBuild(verdictKey(trace_key, capacity), [&] {
        analysis::StreamLifetimeChecker::Options options;
        options.maxLiveStreams = capacity;
        return std::make_shared<const analysis::VerifyReport>(
            analysis::verifyTrace(tr, options));
    });
}

std::shared_ptr<const analysis::ProgramSummary>
ArtifactStore::summary(const std::string &trace_key,
                       const trace::Trace &tr,
                       const arch::SparseCoreConfig &config)
{
    return summaries_.getOrBuild(summaryKey(trace_key, config), [&] {
        return std::make_shared<const analysis::ProgramSummary>(
            analysis::summarizeTrace(tr, config));
    });
}

std::shared_ptr<const ArtifactStore::CachedTrace>
ArtifactStore::peekTrace(const std::string &key)
{
    return traces_.peek(key);
}

std::shared_ptr<const graph::CsrGraph>
ArtifactStore::graph(const std::string &dataset_key) const
{
    return graph::loadGraphShared(dataset_key);
}

std::shared_ptr<const graph::LabeledGraph>
ArtifactStore::labeledGraph(const std::string &dataset_key,
                            std::uint32_t num_labels) const
{
    return graph::loadLabeledGraphShared(dataset_key, num_labels);
}

ArtifactStoreStats
ArtifactStore::stats() const
{
    ArtifactStoreStats stats;
    stats.graphs = graph::graphCacheStats();
    stats.labeledGraphs = graph::labeledGraphCacheStats();
    stats.traces = traces_.stats();
    stats.programs = programs_.stats();
    stats.verdicts = verdicts_.stats();
    return stats;
}

void
ArtifactStore::clear()
{
    traces_.clear();
    programs_.clear();
    verdicts_.clear();
    summaries_.clear();
}

std::string
ArtifactStore::gpmTraceKey(gpm::GpmApp app, const graph::CsrGraph &g,
                           unsigned root_stride)
{
    std::ostringstream os;
    os << "gpm/" << gpm::gpmAppName(app) << "/g" << std::hex
       << g.fingerprint() << std::dec << "/s" << root_stride << "/tr"
       << trace::traceFormatVersion;
    return os.str();
}

std::string
ArtifactStore::gpmChunkTraceKey(gpm::GpmApp app,
                                const graph::CsrGraph &g,
                                unsigned root_stride, unsigned chunk,
                                unsigned num_chunks)
{
    std::ostringstream os;
    os << "gpm/" << gpm::gpmAppName(app) << "/g" << std::hex
       << g.fingerprint() << std::dec << "/s" << root_stride << "/c"
       << chunk << "of" << num_chunks << "/tr"
       << trace::traceFormatVersion;
    return os.str();
}

std::string
ArtifactStore::fsmTraceKey(const graph::LabeledGraph &g,
                           std::uint64_t min_support)
{
    std::ostringstream os;
    os << "fsm/lg" << std::hex << g.fingerprint() << std::dec
       << "/sup" << min_support << "/tr"
       << trace::traceFormatVersion;
    return os.str();
}

std::string
ArtifactStore::programKey(const std::string &trace_key, bool fused)
{
    std::ostringstream os;
    os << trace_key << "/scbc" << trace::bytecodeFormatVersion;
    if (fused)
        os << "f";
    return os.str();
}

std::string
ArtifactStore::verdictKey(const std::string &trace_key,
                          unsigned capacity)
{
    std::ostringstream os;
    os << trace_key << "/vfy" << capacity;
    return os.str();
}

std::string
ArtifactStore::summaryKey(const std::string &trace_key,
                          const arch::SparseCoreConfig &config)
{
    // Only the arch fields the cost model reads (JobSpec's arch
    // overrides) key the summary; pressure is config-independent.
    std::ostringstream os;
    os << trace_key << "/sum/su" << config.numSus << "w"
       << config.suWindow << "bw" << config.aggregateBandwidth
       << (config.nestedIntersection ? "n1" : "n0");
    return os.str();
}

} // namespace sc::api
