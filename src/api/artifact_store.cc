#include "api/artifact_store.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "analysis/trace_check.hh"
#include "common/logging.hh"

namespace sc::api {

namespace {

std::size_t
cachedTraceBytes(const ArtifactStore::CachedTrace &cached)
{
    return cached.trace.memoryBytes() + sizeof(cached.functionalResult);
}

std::size_t
programBytes(const trace::BytecodeProgram &program)
{
    return program.memoryBytes();
}

void
appendCounters(std::ostringstream &os, const char *name,
               const CacheStats &stats)
{
    os << name << " " << stats.hits << " hits / " << stats.misses
       << " misses";
    if (stats.evictions)
        os << " / " << stats.evictions << " evicted";
}

} // namespace

std::string
ArtifactStoreStats::str() const
{
    std::ostringstream os;
    os << "artifact store: ";
    appendCounters(os, "graphs", graphs);
    os << " | ";
    appendCounters(os, "traces", traces);
    os << " | ";
    appendCounters(os, "programs", programs);
    os << " | resident "
       << (graphs.bytes + labeledGraphs.bytes + traces.bytes +
           programs.bytes)
       << " bytes";
    return os.str();
}

ArtifactStore::ArtifactStore(std::size_t capacity_bytes)
    : traces_(capacity_bytes, cachedTraceBytes),
      programs_(capacity_bytes, programBytes)
{
}

ArtifactStore &
ArtifactStore::global()
{
    static ArtifactStore store;
    return store;
}

bool
ArtifactStore::enabledByDefault()
{
    static const bool enabled = [] {
        const char *env = std::getenv("SC_ARTIFACT_CACHE");
        if (!env || !*env)
            return true;
        if (!std::strcmp(env, "on") || !std::strcmp(env, "1"))
            return true;
        if (!std::strcmp(env, "off") || !std::strcmp(env, "0"))
            return false;
        fatal("SC_ARTIFACT_CACHE must be off|on|0|1, got '%s'", env);
    }();
    return enabled;
}

bool
ArtifactStore::resolveEnabled(std::optional<bool> override_)
{
    return override_.value_or(enabledByDefault());
}

std::size_t
ArtifactStore::defaultCapacityBytes()
{
    static const std::size_t capacity = [] {
        const char *env = std::getenv("SC_ARTIFACT_CACHE_BYTES");
        if (!env || !*env)
            return std::size_t{1} << 30; // 1 GiB per cache
        char *end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        if (end == env || *end)
            fatal("SC_ARTIFACT_CACHE_BYTES must be a byte count, "
                  "got '%s'",
                  env);
        return static_cast<std::size_t>(v);
    }();
    return capacity;
}

std::shared_ptr<const ArtifactStore::CachedTrace>
ArtifactStore::trace(const std::string &key, const CaptureFn &capture)
{
    return traces_.getOrBuild(key, [&] {
        auto cached = std::make_shared<CachedTrace>();
        trace::TraceRecorder recorder;
        cached->functionalResult = capture(recorder);
        cached->trace = recorder.takeTrace();
        return std::shared_ptr<const CachedTrace>(std::move(cached));
    });
}

std::shared_ptr<const trace::BytecodeProgram>
ArtifactStore::program(const std::string &trace_key,
                       const trace::Trace &tr,
                       std::optional<bool> verify)
{
    return programs_.getOrBuild(programKey(trace_key), [&] {
        if (verify.value_or(analysis::verifyByDefault())) {
            const analysis::VerifyReport report =
                analysis::verifyTrace(tr);
            if (report.hasErrors())
                throw analysis::VerifyError(report.format());
        }
        return std::make_shared<const trace::BytecodeProgram>(
            trace::compileTrace(tr));
    });
}

std::shared_ptr<const graph::CsrGraph>
ArtifactStore::graph(const std::string &dataset_key) const
{
    return graph::loadGraphShared(dataset_key);
}

std::shared_ptr<const graph::LabeledGraph>
ArtifactStore::labeledGraph(const std::string &dataset_key,
                            std::uint32_t num_labels) const
{
    return graph::loadLabeledGraphShared(dataset_key, num_labels);
}

ArtifactStoreStats
ArtifactStore::stats() const
{
    ArtifactStoreStats stats;
    stats.graphs = graph::graphCacheStats();
    stats.labeledGraphs = graph::labeledGraphCacheStats();
    stats.traces = traces_.stats();
    stats.programs = programs_.stats();
    return stats;
}

void
ArtifactStore::clear()
{
    traces_.clear();
    programs_.clear();
}

std::string
ArtifactStore::gpmTraceKey(gpm::GpmApp app, const graph::CsrGraph &g,
                           unsigned root_stride)
{
    std::ostringstream os;
    os << "gpm/" << gpm::gpmAppName(app) << "/g" << std::hex
       << g.fingerprint() << std::dec << "/s" << root_stride << "/tr"
       << trace::traceFormatVersion;
    return os.str();
}

std::string
ArtifactStore::gpmChunkTraceKey(gpm::GpmApp app,
                                const graph::CsrGraph &g,
                                unsigned root_stride, unsigned chunk,
                                unsigned num_chunks)
{
    std::ostringstream os;
    os << "gpm/" << gpm::gpmAppName(app) << "/g" << std::hex
       << g.fingerprint() << std::dec << "/s" << root_stride << "/c"
       << chunk << "of" << num_chunks << "/tr"
       << trace::traceFormatVersion;
    return os.str();
}

std::string
ArtifactStore::fsmTraceKey(const graph::LabeledGraph &g,
                           std::uint64_t min_support)
{
    std::ostringstream os;
    os << "fsm/lg" << std::hex << g.fingerprint() << std::dec
       << "/sup" << min_support << "/tr"
       << trace::traceFormatVersion;
    return os.str();
}

std::string
ArtifactStore::programKey(const std::string &trace_key, bool fused)
{
    std::ostringstream os;
    os << trace_key << "/scbc" << trace::bytecodeFormatVersion;
    if (fused)
        os << "f";
    return os.str();
}

} // namespace sc::api
