#include "api/machine.hh"

#include <chrono>
#include <optional>

#include "analysis/trace_check.hh"
#include "analysis/verifying_backend.hh"
#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "gpm/executor.hh"
#include "trace/compile.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

namespace sc::api {

namespace {

void
validate(const RunRequest &req)
{
    switch (req.workload) {
      case RunRequest::Workload::Gpm:
        if (!req.graph)
            fatal("GPM request needs a graph");
        break;
      case RunRequest::Workload::Fsm:
        if (!req.labeledGraph)
            fatal("FSM request needs a labeled graph");
        break;
      case RunRequest::Workload::Spmspm:
        if (!req.matrixA || !req.matrixB)
            fatal("spmspm request needs both matrices");
        break;
      case RunRequest::Workload::Ttv:
        if (!req.tensor || !req.vector)
            fatal("TTV request needs a tensor and a dense vector");
        break;
      case RunRequest::Workload::Ttm:
        if (!req.tensor || !req.matrixB)
            fatal("TTM request needs a tensor and a matrix");
        break;
    }
    if (req.options.stride == 0 || req.options.rootStride == 0)
        fatal("strides must be positive");
}

/** Run the request's workload against one backend. Works for timing
 *  backends and the TraceRecorder alike — the capture leg of
 *  compare() is the same code path as run(). */
RunResult
executeOn(const RunRequest &req, backend::ExecBackend &be)
{
    RunResult out;
    switch (req.workload) {
      case RunRequest::Workload::Gpm: {
        gpm::PlanExecutor executor(*req.graph, be);
        executor.setRootStride(req.options.rootStride);
        const auto r = executor.runMany(gpm::gpmAppPlans(req.app));
        out = {r.embeddings, r.cycles, r.breakdown};
        break;
      }
      case RunRequest::Workload::Fsm: {
        const auto r =
            gpm::runFsm(*req.labeledGraph, be, req.minSupport);
        out = {r.totalFrequent(), r.cycles, r.breakdown};
        break;
      }
      case RunRequest::Workload::Spmspm: {
        const auto r = kernels::runSpmspm(
            *req.matrixA, *req.matrixB, req.algorithm, be,
            req.options.stride, req.spmspmResult);
        out = {r.valueOps, r.cycles, r.breakdown};
        break;
      }
      case RunRequest::Workload::Ttv: {
        const auto r = kernels::runTtv(*req.tensor, *req.vector, be,
                                       req.options.stride);
        out = {r.valueOps, r.cycles, r.breakdown};
        break;
      }
      case RunRequest::Workload::Ttm: {
        const auto r = kernels::runTtm(*req.tensor, *req.matrixB, be,
                                       req.options.stride);
        out = {r.valueOps, r.cycles, r.breakdown};
        break;
      }
    }
    return out;
}

double
secondsBetween(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/**
 * The capture-once/replay-twice comparison core: the workload runs
 * functionally against a TraceRecorder once; the captured trace is
 * then replayed onto the CPU baseline and SparseCore concurrently on
 * `pool`. In Bytecode mode (the default) the trace is compiled once
 * and both substrates replay the shared program through the
 * devirtualized loops. The timing is bit-identical to running the
 * workload directly on each backend and identical across replay
 * modes (see tests/trace_test.cc).
 */
template <typename CaptureFn>
Comparison
compareViaTrace(const arch::SparseCoreConfig &config, ThreadPool &pool,
                const RunOptions &options, CaptureFn &&capture)
{
    Comparison cmp;
    const auto t0 = std::chrono::steady_clock::now();
    trace::TraceRecorder recorder;
    cmp.functionalResult = capture(recorder);
    const trace::Trace tr = recorder.takeTrace();
    const auto t1 = std::chrono::steady_clock::now();

    const trace::ReplayMode mode =
        trace::resolveReplayMode(options.replayMode);
    cmp.trace.replayMode = trace::replayModeName(mode);

    trace::ReplayResult cpu, sc;
    auto t2 = t1;
    if (mode == trace::ReplayMode::Bytecode) {
        // Verify the trace once up front (the compile preserves event
        // order), compile once, replay the shared program twice.
        if (options.verify.value_or(analysis::verifyByDefault())) {
            const analysis::VerifyReport report =
                analysis::verifyTrace(tr);
            if (report.hasErrors())
                throw analysis::VerifyError(report.format());
        }
        const trace::BytecodeProgram bc = trace::compileTrace(tr);
        t2 = std::chrono::steady_clock::now();
        cmp.trace.bytecodeBytes = bc.codeBytes();
        cmp.trace.compileSeconds = secondsBetween(t1, t2);
        parallelInvoke(
            pool,
            [&] {
                backend::CpuBackend be(config.core, config.mem);
                cpu = trace::replayCompiled(bc, be, /*verify=*/false);
            },
            [&] {
                backend::SparseCoreBackend be(config);
                sc = trace::replayCompiled(bc, be, /*verify=*/false);
            });
    } else {
        parallelInvoke(
            pool,
            [&] {
                backend::CpuBackend be(config.core, config.mem);
                cpu = trace::replay(tr, be, options.verify,
                                    trace::ReplayMode::Event);
            },
            [&] {
                backend::SparseCoreBackend be(config);
                sc = trace::replay(tr, be, options.verify,
                                   trace::ReplayMode::Event);
            });
    }
    const auto t3 = std::chrono::steady_clock::now();

    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    cmp.trace.events = tr.numEvents();
    cmp.trace.arenaBytes = tr.arenaBytes();
    cmp.trace.captureSeconds = secondsBetween(t0, t1);
    cmp.trace.replaySeconds = secondsBetween(t2, t3);
    return cmp;
}

} // namespace

Machine::Machine(const arch::SparseCoreConfig &config) : config_(config)
{
}

RunResult
Machine::run(const RunRequest &request, Substrate substrate) const
{
    validate(request);
    std::optional<streams::ScopedKernelOverride> forced;
    if (request.options.kernel)
        forced.emplace(*request.options.kernel);
    std::optional<streams::setindex::ScopedIndexPolicyOverride>
        forced_index;
    if (request.options.indexPolicy)
        forced_index.emplace(*request.options.indexPolicy);

    // Wrap the backend in the stream-lifetime checker when asked (or
    // by default in debug builds). The wrapper forwards every call
    // unchanged, so verified and unverified runs report the same
    // cycles — it only adds VerifyError on contract violations.
    const bool verify =
        request.options.verify.value_or(analysis::verifyByDefault());
    if (substrate == Substrate::Cpu) {
        backend::CpuBackend be(config_.core, config_.mem);
        if (!verify)
            return executeOn(request, be);
        analysis::VerifyingBackend vbe(be);
        return executeOn(request, vbe);
    }
    backend::SparseCoreBackend be(config_);
    if (!verify)
        return executeOn(request, be);
    analysis::VerifyingBackend vbe(be);
    return executeOn(request, vbe);
}

Comparison
Machine::compare(const RunRequest &request) const
{
    validate(request);
    std::optional<streams::ScopedKernelOverride> forced;
    if (request.options.kernel)
        forced.emplace(*request.options.kernel);
    std::optional<streams::setindex::ScopedIndexPolicyOverride>
        forced_index;
    if (request.options.indexPolicy)
        forced_index.emplace(*request.options.indexPolicy);

    std::optional<ThreadPool> local;
    if (request.options.hostThreads)
        local.emplace(request.options.hostThreads);
    ThreadPool &pool = local ? *local : ThreadPool::global();

    return compareViaTrace(config_, pool, request.options,
                           [&](trace::TraceRecorder &rec) {
                               return executeOn(request, rec)
                                   .functionalResult;
                           });
}

// ------------- deprecated positional-arg shims -------------
// Thin adapters onto run()/compare(); exercised by
// tests/api_shim_test.cc until the next major cleanup removes them.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

gpm::GpmRunResult
Machine::mineSparseCore(gpm::GpmApp app, const graph::CsrGraph &g,
                        unsigned root_stride) const
{
    RunOptions options;
    options.rootStride = root_stride;
    const RunResult r =
        run(RunRequest::gpm(app, g, options), Substrate::SparseCore);
    return {r.functionalResult, r.cycles, r.breakdown};
}

gpm::GpmRunResult
Machine::mineCpu(gpm::GpmApp app, const graph::CsrGraph &g,
                 unsigned root_stride) const
{
    RunOptions options;
    options.rootStride = root_stride;
    const RunResult r =
        run(RunRequest::gpm(app, g, options), Substrate::Cpu);
    return {r.functionalResult, r.cycles, r.breakdown};
}

Comparison
Machine::compareGpm(gpm::GpmApp app, const graph::CsrGraph &g,
                    unsigned root_stride) const
{
    RunOptions options;
    options.rootStride = root_stride;
    return compare(RunRequest::gpm(app, g, options));
}

Comparison
Machine::compareFsm(const graph::LabeledGraph &g,
                    std::uint64_t min_support) const
{
    return compare(RunRequest::fsm(g, min_support));
}

namespace {

kernels::TensorRunResult
toTensorResult(const RunResult &r)
{
    kernels::TensorRunResult out;
    out.cycles = r.cycles;
    out.breakdown = r.breakdown;
    out.valueOps = r.functionalResult;
    return out;
}

} // namespace

kernels::TensorRunResult
Machine::spmspmSparseCore(const tensor::SparseMatrix &a,
                          const tensor::SparseMatrix &b,
                          kernels::SpmspmAlgorithm algorithm,
                          unsigned stride,
                          tensor::SparseMatrix *result) const
{
    RunOptions options;
    options.stride = stride;
    return toTensorResult(
        run(RunRequest::spmspm(a, b, algorithm, options, result),
            Substrate::SparseCore));
}

kernels::TensorRunResult
Machine::spmspmCpu(const tensor::SparseMatrix &a,
                   const tensor::SparseMatrix &b,
                   kernels::SpmspmAlgorithm algorithm, unsigned stride,
                   tensor::SparseMatrix *result) const
{
    RunOptions options;
    options.stride = stride;
    return toTensorResult(
        run(RunRequest::spmspm(a, b, algorithm, options, result),
            Substrate::Cpu));
}

Comparison
Machine::compareSpmspm(const tensor::SparseMatrix &a,
                       const tensor::SparseMatrix &b,
                       kernels::SpmspmAlgorithm algorithm,
                       unsigned stride) const
{
    RunOptions options;
    options.stride = stride;
    return compare(RunRequest::spmspm(a, b, algorithm, options));
}

Comparison
Machine::compareTtv(const tensor::CsfTensor &a,
                    const std::vector<Value> &vec, unsigned stride) const
{
    RunOptions options;
    options.stride = stride;
    return compare(RunRequest::ttv(a, vec, options));
}

Comparison
Machine::compareTtm(const tensor::CsfTensor &a,
                    const tensor::SparseMatrix &b, unsigned stride) const
{
    RunOptions options;
    options.stride = stride;
    return compare(RunRequest::ttm(a, b, options));
}

#pragma GCC diagnostic pop

} // namespace sc::api
