#include "api/machine.hh"

#include <chrono>

#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/parallel_for.hh"
#include "gpm/executor.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

namespace sc::api {

namespace {

/**
 * Run the baseline and accelerated legs of a comparison concurrently
 * on the host pool. Each leg owns its backend, so results are
 * identical to running them back to back.
 */
template <typename FnA, typename FnB>
void
runBothSubstrates(FnA &&baseline, FnB &&accelerated)
{
    parallelInvoke(ThreadPool::global(),
                   std::forward<FnA>(baseline),
                   std::forward<FnB>(accelerated));
}

double
secondsBetween(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/**
 * The capture-once/replay-twice comparison core: `capture` runs the
 * workload functionally against a TraceRecorder and returns the
 * functional result; the captured trace is then replayed onto the
 * CPU baseline and SparseCore concurrently. One functional execution
 * serves both substrates — the timing is bit-identical to running
 * the workload directly on each backend (see tests/trace_test.cc).
 */
template <typename CaptureFn>
Comparison
compareViaTrace(const arch::SparseCoreConfig &config, CaptureFn &&capture)
{
    Comparison cmp;
    const auto t0 = std::chrono::steady_clock::now();
    trace::TraceRecorder recorder;
    cmp.functionalResult = capture(recorder);
    const trace::Trace tr = recorder.takeTrace();
    const auto t1 = std::chrono::steady_clock::now();

    trace::ReplayResult cpu, sc;
    runBothSubstrates(
        [&] {
            backend::CpuBackend be(config.core, config.mem);
            cpu = trace::replay(tr, be);
        },
        [&] {
            backend::SparseCoreBackend be(config);
            sc = trace::replay(tr, be);
        });
    const auto t2 = std::chrono::steady_clock::now();

    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    cmp.trace.events = tr.numEvents();
    cmp.trace.arenaBytes = tr.arenaBytes();
    cmp.trace.captureSeconds = secondsBetween(t0, t1);
    cmp.trace.replaySeconds = secondsBetween(t1, t2);
    return cmp;
}

} // namespace

Machine::Machine(const arch::SparseCoreConfig &config) : config_(config)
{
}

gpm::GpmRunResult
Machine::mineSparseCore(gpm::GpmApp app, const graph::CsrGraph &g,
                        unsigned root_stride) const
{
    backend::SparseCoreBackend be(config_);
    gpm::PlanExecutor executor(g, be);
    executor.setRootStride(root_stride);
    return executor.runMany(gpm::gpmAppPlans(app));
}

gpm::GpmRunResult
Machine::mineCpu(gpm::GpmApp app, const graph::CsrGraph &g,
                 unsigned root_stride) const
{
    backend::CpuBackend be(config_.core, config_.mem);
    gpm::PlanExecutor executor(g, be);
    executor.setRootStride(root_stride);
    return executor.runMany(gpm::gpmAppPlans(app));
}

Comparison
Machine::compareGpm(gpm::GpmApp app, const graph::CsrGraph &g,
                    unsigned root_stride) const
{
    return compareViaTrace(config_, [&](trace::TraceRecorder &rec) {
        gpm::PlanExecutor executor(g, rec);
        executor.setRootStride(root_stride);
        return executor.runMany(gpm::gpmAppPlans(app)).embeddings;
    });
}

Comparison
Machine::compareFsm(const graph::LabeledGraph &g,
                    std::uint64_t min_support) const
{
    return compareViaTrace(config_, [&](trace::TraceRecorder &rec) {
        return gpm::runFsm(g, rec, min_support).totalFrequent();
    });
}

kernels::TensorRunResult
Machine::spmspmSparseCore(const tensor::SparseMatrix &a,
                          const tensor::SparseMatrix &b,
                          kernels::SpmspmAlgorithm algorithm,
                          unsigned stride,
                          tensor::SparseMatrix *result) const
{
    backend::SparseCoreBackend be(config_);
    return kernels::runSpmspm(a, b, algorithm, be, stride, result);
}

kernels::TensorRunResult
Machine::spmspmCpu(const tensor::SparseMatrix &a,
                   const tensor::SparseMatrix &b,
                   kernels::SpmspmAlgorithm algorithm, unsigned stride,
                   tensor::SparseMatrix *result) const
{
    backend::CpuBackend be(config_.core, config_.mem);
    return kernels::runSpmspm(a, b, algorithm, be, stride, result);
}

Comparison
Machine::compareSpmspm(const tensor::SparseMatrix &a,
                       const tensor::SparseMatrix &b,
                       kernels::SpmspmAlgorithm algorithm,
                       unsigned stride) const
{
    return compareViaTrace(config_, [&](trace::TraceRecorder &rec) {
        return kernels::runSpmspm(a, b, algorithm, rec, stride)
            .valueOps;
    });
}

Comparison
Machine::compareTtv(const tensor::CsfTensor &a,
                    const std::vector<Value> &vec, unsigned stride) const
{
    return compareViaTrace(config_, [&](trace::TraceRecorder &rec) {
        return kernels::runTtv(a, vec, rec, stride).valueOps;
    });
}

Comparison
Machine::compareTtm(const tensor::CsfTensor &a,
                    const tensor::SparseMatrix &b, unsigned stride) const
{
    return compareViaTrace(config_, [&](trace::TraceRecorder &rec) {
        return kernels::runTtm(a, b, rec, stride).valueOps;
    });
}

} // namespace sc::api
