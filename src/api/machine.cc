#include "api/machine.hh"

#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/parallel_for.hh"
#include "gpm/executor.hh"

namespace sc::api {

namespace {

/**
 * Run the baseline and accelerated legs of a comparison concurrently
 * on the host pool. Each leg owns its backend, so results are
 * identical to running them back to back.
 */
template <typename FnA, typename FnB>
void
runBothSubstrates(FnA &&baseline, FnB &&accelerated)
{
    parallelInvoke(ThreadPool::global(),
                   std::forward<FnA>(baseline),
                   std::forward<FnB>(accelerated));
}

} // namespace

Machine::Machine(const arch::SparseCoreConfig &config) : config_(config)
{
}

gpm::GpmRunResult
Machine::mineSparseCore(gpm::GpmApp app, const graph::CsrGraph &g,
                        unsigned root_stride) const
{
    backend::SparseCoreBackend be(config_);
    gpm::PlanExecutor executor(g, be);
    executor.setRootStride(root_stride);
    return executor.runMany(gpm::gpmAppPlans(app));
}

gpm::GpmRunResult
Machine::mineCpu(gpm::GpmApp app, const graph::CsrGraph &g,
                 unsigned root_stride) const
{
    backend::CpuBackend be(config_.core, config_.mem);
    gpm::PlanExecutor executor(g, be);
    executor.setRootStride(root_stride);
    return executor.runMany(gpm::gpmAppPlans(app));
}

Comparison
Machine::compareGpm(gpm::GpmApp app, const graph::CsrGraph &g,
                    unsigned root_stride) const
{
    gpm::GpmRunResult cpu, sc;
    runBothSubstrates(
        [&] { cpu = mineCpu(app, g, root_stride); },
        [&] { sc = mineSparseCore(app, g, root_stride); });
    if (cpu.embeddings != sc.embeddings)
        panic("substrates disagree on the embedding count: "
              "%llu (cpu) vs %llu (sparsecore)",
              static_cast<unsigned long long>(cpu.embeddings),
              static_cast<unsigned long long>(sc.embeddings));
    Comparison cmp;
    cmp.functionalResult = sc.embeddings;
    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    return cmp;
}

Comparison
Machine::compareFsm(const graph::LabeledGraph &g,
                    std::uint64_t min_support) const
{
    gpm::FsmResult cpu, sc;
    runBothSubstrates(
        [&] {
            backend::CpuBackend be(config_.core, config_.mem);
            cpu = gpm::runFsm(g, be, min_support);
        },
        [&] {
            backend::SparseCoreBackend be(config_);
            sc = gpm::runFsm(g, be, min_support);
        });
    if (cpu.totalFrequent() != sc.totalFrequent())
        panic("substrates disagree on FSM results");
    Comparison cmp;
    cmp.functionalResult = sc.totalFrequent();
    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    return cmp;
}

kernels::TensorRunResult
Machine::spmspmSparseCore(const tensor::SparseMatrix &a,
                          const tensor::SparseMatrix &b,
                          kernels::SpmspmAlgorithm algorithm,
                          unsigned stride,
                          tensor::SparseMatrix *result) const
{
    backend::SparseCoreBackend be(config_);
    return kernels::runSpmspm(a, b, algorithm, be, stride, result);
}

kernels::TensorRunResult
Machine::spmspmCpu(const tensor::SparseMatrix &a,
                   const tensor::SparseMatrix &b,
                   kernels::SpmspmAlgorithm algorithm, unsigned stride,
                   tensor::SparseMatrix *result) const
{
    backend::CpuBackend be(config_.core, config_.mem);
    return kernels::runSpmspm(a, b, algorithm, be, stride, result);
}

Comparison
Machine::compareSpmspm(const tensor::SparseMatrix &a,
                       const tensor::SparseMatrix &b,
                       kernels::SpmspmAlgorithm algorithm,
                       unsigned stride) const
{
    kernels::TensorRunResult cpu, sc;
    runBothSubstrates(
        [&] { cpu = spmspmCpu(a, b, algorithm, stride); },
        [&] { sc = spmspmSparseCore(a, b, algorithm, stride); });
    Comparison cmp;
    cmp.functionalResult = sc.valueOps;
    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    return cmp;
}

Comparison
Machine::compareTtv(const tensor::CsfTensor &a,
                    const std::vector<Value> &vec, unsigned stride) const
{
    kernels::TensorRunResult cpu, sc;
    runBothSubstrates(
        [&] {
            backend::CpuBackend be(config_.core, config_.mem);
            cpu = kernels::runTtv(a, vec, be, stride);
        },
        [&] {
            backend::SparseCoreBackend be(config_);
            sc = kernels::runTtv(a, vec, be, stride);
        });
    Comparison cmp;
    cmp.functionalResult = sc.valueOps;
    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    return cmp;
}

Comparison
Machine::compareTtm(const tensor::CsfTensor &a,
                    const tensor::SparseMatrix &b, unsigned stride) const
{
    kernels::TensorRunResult cpu, sc;
    runBothSubstrates(
        [&] {
            backend::CpuBackend be(config_.core, config_.mem);
            cpu = kernels::runTtm(a, b, be, stride);
        },
        [&] {
            backend::SparseCoreBackend be(config_);
            sc = kernels::runTtm(a, b, be, stride);
        });
    Comparison cmp;
    cmp.functionalResult = sc.valueOps;
    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    return cmp;
}

} // namespace sc::api
