#include "api/machine.hh"

#include <chrono>
#include <optional>
#include <string>

#include "analysis/trace_check.hh"
#include "analysis/verifying_backend.hh"
#include "api/artifact_store.hh"
#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "gpm/executor.hh"
#include "gpm/fsm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"
#include "trace/compile.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

namespace sc::api {

namespace {

void
validate(const RunRequest &req)
{
    switch (req.workload) {
      case RunRequest::Workload::Gpm:
        if (!req.graph)
            fatal("GPM request needs a graph");
        break;
      case RunRequest::Workload::Fsm:
        if (!req.labeledGraph)
            fatal("FSM request needs a labeled graph");
        break;
      case RunRequest::Workload::Spmspm:
        if (!req.matrixA || !req.matrixB)
            fatal("spmspm request needs both matrices");
        break;
      case RunRequest::Workload::Ttv:
        if (!req.tensor || !req.vector)
            fatal("TTV request needs a tensor and a dense vector");
        break;
      case RunRequest::Workload::Ttm:
        if (!req.tensor || !req.matrixB)
            fatal("TTM request needs a tensor and a matrix");
        break;
    }
    if (req.options.stride == 0 || req.options.rootStride == 0)
        fatal("strides must be positive");
}

/** Run the request's workload against one backend. Works for timing
 *  backends and the TraceRecorder alike — the capture leg of
 *  compare() is the same code path as run(). */
RunResult
executeOn(const RunRequest &req, backend::ExecBackend &be)
{
    RunResult out;
    switch (req.workload) {
      case RunRequest::Workload::Gpm: {
        gpm::PlanExecutor executor(*req.graph, be);
        executor.setRootStride(req.options.rootStride);
        const auto r = executor.runMany(gpm::gpmAppPlans(req.app));
        out.functionalResult = r.embeddings;
        out.cycles = r.cycles;
        out.breakdown = r.breakdown;
        break;
      }
      case RunRequest::Workload::Fsm: {
        const auto r =
            gpm::runFsm(*req.labeledGraph, be, req.minSupport);
        out.functionalResult = r.totalFrequent();
        out.cycles = r.cycles;
        out.breakdown = r.breakdown;
        break;
      }
      case RunRequest::Workload::Spmspm: {
        const auto r = kernels::runSpmspm(
            *req.matrixA, *req.matrixB, req.algorithm, be,
            req.options.stride, req.spmspmResult);
        out.functionalResult = r.valueOps;
        out.cycles = r.cycles;
        out.breakdown = r.breakdown;
        break;
      }
      case RunRequest::Workload::Ttv: {
        const auto r = kernels::runTtv(*req.tensor, *req.vector, be,
                                       req.options.stride);
        out.functionalResult = r.valueOps;
        out.cycles = r.cycles;
        out.breakdown = r.breakdown;
        break;
      }
      case RunRequest::Workload::Ttm: {
        const auto r = kernels::runTtm(*req.tensor, *req.matrixB, be,
                                       req.options.stride);
        out.functionalResult = r.valueOps;
        out.cycles = r.cycles;
        out.breakdown = r.breakdown;
        break;
      }
    }
    return out;
}

/**
 * ArtifactStore key for the request, or "" when the workload is not
 * content-keyed. GPM and FSM datasets carry content fingerprints, so
 * their captures are pure functions of the key; the tensor workloads
 * stay uncached for now (each bench point runs them once, and spmspm
 * may materialize a caller-owned result matrix the cache could not
 * replay).
 */
std::string
traceKeyFor(const RunRequest &req)
{
    switch (req.workload) {
      case RunRequest::Workload::Gpm:
        return ArtifactStore::gpmTraceKey(req.app, *req.graph,
                                          req.options.rootStride);
      case RunRequest::Workload::Fsm:
        return ArtifactStore::fsmTraceKey(*req.labeledGraph,
                                          req.minSupport);
      default:
        return {};
    }
}

/** Capture the request's trace into the store (or reuse it).
 *  `cache_hit` reports whether *this call* skipped the capture —
 *  detected by a flag the capture lambda sets, which is race-free
 *  under concurrent callers (the builder runs at most once),
 *  unlike sampling the store's aggregate miss counters. */
std::shared_ptr<const ArtifactStore::CachedTrace>
storeTrace(const RunRequest &req, const std::string &key,
           bool *cache_hit)
{
    ArtifactStore &store = ArtifactStore::global();
    bool captured = false;
    auto cached =
        store.trace(key, [&](trace::TraceRecorder &recorder) {
            captured = true;
            return executeOn(req, recorder).functionalResult;
        });
    if (cache_hit)
        *cache_hit = !captured;
    return cached;
}

double
secondsBetween(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/** Store-backed verification for Event-mode replays: recall (or
 *  compute exactly once) the trace's verified bit and throw the same
 *  VerifyError trace::replay would. Callers then replay with
 *  verify=false; the verdict is settled entirely before any timing
 *  backend starts, so cycles are bit-identical either way. */
void
verifyViaStore(const std::string &key, const trace::Trace &tr,
               std::optional<bool> verify)
{
    if (!verify.value_or(analysis::verifyByDefault()))
        return;
    const auto report =
        ArtifactStore::global().verdict(key, tr, isa::numStreamRegs);
    if (report->hasErrors())
        throw analysis::VerifyError(report->format());
}

/**
 * The capture-once/replay-twice comparison core: the workload runs
 * functionally against a TraceRecorder once; the captured trace is
 * then replayed onto the CPU baseline and SparseCore concurrently on
 * `pool`. In Bytecode mode (the default) the trace is compiled once
 * and both substrates replay the shared program through the
 * devirtualized loops. The timing is bit-identical to running the
 * workload directly on each backend and identical across replay
 * modes (see tests/trace_test.cc).
 */
template <typename CaptureFn>
Comparison
compareViaTrace(const arch::SparseCoreConfig &config, ThreadPool &pool,
                const RunOptions &options, CaptureFn &&capture)
{
    Comparison cmp;
    const auto t0 = std::chrono::steady_clock::now();
    trace::TraceRecorder recorder;
    cmp.functionalResult = capture(recorder);
    const trace::Trace tr = recorder.takeTrace();
    const auto t1 = std::chrono::steady_clock::now();

    const trace::ReplayMode mode =
        trace::resolveReplayMode(options.replayMode);
    cmp.trace.replayMode = trace::replayModeName(mode);

    trace::ReplayResult cpu, sc;
    auto t2 = t1;
    if (mode == trace::ReplayMode::Bytecode) {
        // Verify the trace once up front (the compile preserves event
        // order), compile once, replay the shared program twice.
        if (options.verify.value_or(analysis::verifyByDefault())) {
            const analysis::VerifyReport report =
                analysis::verifyTrace(tr);
            if (report.hasErrors())
                throw analysis::VerifyError(report.format());
        }
        const trace::BytecodeProgram bc = trace::compileTrace(tr);
        t2 = std::chrono::steady_clock::now();
        cmp.trace.bytecodeBytes = bc.codeBytes();
        cmp.trace.compileSeconds = secondsBetween(t1, t2);
        parallelInvoke(
            pool,
            [&] {
                backend::CpuBackend be(config.core, config.mem);
                cpu = trace::replayCompiled(bc, be, /*verify=*/false);
            },
            [&] {
                backend::SparseCoreBackend be(config);
                sc = trace::replayCompiled(bc, be, /*verify=*/false);
            });
    } else {
        parallelInvoke(
            pool,
            [&] {
                backend::CpuBackend be(config.core, config.mem);
                cpu = trace::replay(tr, be, options.verify,
                                    trace::ReplayMode::Event);
            },
            [&] {
                backend::SparseCoreBackend be(config);
                sc = trace::replay(tr, be, options.verify,
                                   trace::ReplayMode::Event);
            });
    }
    const auto t3 = std::chrono::steady_clock::now();

    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    cmp.trace.events = tr.numEvents();
    cmp.trace.arenaBytes = tr.arenaBytes();
    cmp.trace.captureSeconds = secondsBetween(t0, t1);
    cmp.trace.replaySeconds = secondsBetween(t2, t3);
    return cmp;
}

/**
 * The store-backed comparison core: the trace (and in Bytecode mode
 * the compiled program) comes out of the shared ArtifactStore, so a
 * sweep of compare() calls over one (app, dataset) captures and
 * compiles exactly once. Issues the identical replay calls as
 * compareViaTrace — cycles are bit-identical either way.
 */
Comparison
compareViaStore(const arch::SparseCoreConfig &config, ThreadPool &pool,
                const RunOptions &options, const RunRequest &req,
                const std::string &key)
{
    Comparison cmp;
    const auto t0 = std::chrono::steady_clock::now();
    const auto cached = storeTrace(req, key, &cmp.trace.traceCacheHit);
    cmp.functionalResult = cached->functionalResult;
    const trace::Trace &tr = cached->trace;
    const auto t1 = std::chrono::steady_clock::now();

    const trace::ReplayMode mode =
        trace::resolveReplayMode(options.replayMode);
    cmp.trace.replayMode = trace::replayModeName(mode);

    trace::ReplayResult cpu, sc;
    auto t2 = t1;
    if (mode == trace::ReplayMode::Bytecode) {
        bool compiled = false;
        const auto bc = ArtifactStore::global().program(
            key, tr, options.verify, &compiled);
        cmp.trace.bytecodeCacheHit = !compiled;
        t2 = std::chrono::steady_clock::now();
        cmp.trace.bytecodeBytes = bc->codeBytes();
        cmp.trace.compileSeconds =
            cmp.trace.bytecodeCacheHit ? 0 : secondsBetween(t1, t2);
        parallelInvoke(
            pool,
            [&] {
                backend::CpuBackend be(config.core, config.mem);
                cpu = trace::replayCompiled(*bc, be, /*verify=*/false);
            },
            [&] {
                backend::SparseCoreBackend be(config);
                sc = trace::replayCompiled(*bc, be, /*verify=*/false);
            });
    } else {
        verifyViaStore(key, tr, options.verify);
        parallelInvoke(
            pool,
            [&] {
                backend::CpuBackend be(config.core, config.mem);
                cpu = trace::replay(tr, be, /*verify=*/false,
                                    trace::ReplayMode::Event);
            },
            [&] {
                backend::SparseCoreBackend be(config);
                sc = trace::replay(tr, be, /*verify=*/false,
                                   trace::ReplayMode::Event);
            });
    }
    const auto t3 = std::chrono::steady_clock::now();

    cmp.baseline = {"cpu", cpu.cycles, cpu.breakdown};
    cmp.accelerated = {"sparsecore", sc.cycles, sc.breakdown};
    cmp.trace.events = tr.numEvents();
    cmp.trace.arenaBytes = tr.arenaBytes();
    cmp.trace.captureSeconds =
        cmp.trace.traceCacheHit ? 0 : secondsBetween(t0, t1);
    cmp.trace.replaySeconds = secondsBetween(t2, t3);
    return cmp;
}

} // namespace

Machine::Machine(const arch::SparseCoreConfig &config) : config_(config)
{
}

RunResult
Machine::run(const RunRequest &request, Substrate substrate) const
{
    validate(request);
    std::optional<streams::ScopedKernelOverride> forced;
    if (request.options.kernel)
        forced.emplace(*request.options.kernel);
    std::optional<streams::setindex::ScopedIndexPolicyOverride>
        forced_index;
    if (request.options.indexPolicy)
        forced_index.emplace(*request.options.indexPolicy);

    const bool verify =
        request.options.verify.value_or(analysis::verifyByDefault());

    // Store-backed path: capture (or reuse) the content-keyed trace
    // and replay it onto the requested substrate — a warm run skips
    // the functional enumeration and the compile. Replay is
    // bit-identical to direct execution (the PR-2 invariant), so this
    // only moves host wall-clock. Trace-level verification replaces
    // the live VerifyingBackend wrapper here: both run the same
    // stream-lifetime rules over the same call sequence.
    const std::string key =
        ArtifactStore::resolveEnabled(request.options.artifactCache)
            ? traceKeyFor(request)
            : std::string{};
    if (!key.empty()) {
        RunResult out;
        const auto t0 = std::chrono::steady_clock::now();
        const auto cached =
            storeTrace(request, key, &out.trace.traceCacheHit);
        const trace::Trace &tr = cached->trace;
        const auto t1 = std::chrono::steady_clock::now();
        const trace::ReplayMode mode =
            trace::resolveReplayMode(request.options.replayMode);
        out.trace.replayMode = trace::replayModeName(mode);
        out.trace.events = tr.numEvents();
        out.trace.arenaBytes = tr.arenaBytes();
        out.trace.captureSeconds = out.trace.traceCacheHit
                                       ? 0
                                       : secondsBetween(t0, t1);
        trace::ReplayResult rep;
        auto t2 = t1;
        if (mode == trace::ReplayMode::Bytecode) {
            bool compiled = false;
            const auto bc = ArtifactStore::global().program(
                key, tr, request.options.verify, &compiled);
            out.trace.bytecodeCacheHit = !compiled;
            t2 = std::chrono::steady_clock::now();
            out.trace.bytecodeBytes = bc->codeBytes();
            out.trace.compileSeconds =
                compiled ? secondsBetween(t1, t2) : 0;
            if (substrate == Substrate::Cpu) {
                backend::CpuBackend be(config_.core, config_.mem);
                rep = trace::replayCompiled(*bc, be, false);
            } else {
                backend::SparseCoreBackend be(config_);
                rep = trace::replayCompiled(*bc, be, false);
            }
        } else if (substrate == Substrate::Cpu) {
            verifyViaStore(key, tr, request.options.verify);
            backend::CpuBackend be(config_.core, config_.mem);
            rep = trace::replay(tr, be, /*verify=*/false,
                                trace::ReplayMode::Event);
        } else {
            verifyViaStore(key, tr, request.options.verify);
            backend::SparseCoreBackend be(config_);
            rep = trace::replay(tr, be, /*verify=*/false,
                                trace::ReplayMode::Event);
        }
        out.trace.replaySeconds = secondsBetween(
            t2, std::chrono::steady_clock::now());
        out.functionalResult = cached->functionalResult;
        out.cycles = rep.cycles;
        out.breakdown = rep.breakdown;
        return out;
    }

    // Cold path: execute directly on the timing backend, optionally
    // wrapped in the stream-lifetime checker. The wrapper forwards
    // every call unchanged, so verified and unverified runs report
    // the same cycles — it only adds VerifyError on contract
    // violations.
    if (substrate == Substrate::Cpu) {
        backend::CpuBackend be(config_.core, config_.mem);
        if (!verify)
            return executeOn(request, be);
        analysis::VerifyingBackend vbe(be);
        return executeOn(request, vbe);
    }
    backend::SparseCoreBackend be(config_);
    if (!verify)
        return executeOn(request, be);
    analysis::VerifyingBackend vbe(be);
    return executeOn(request, vbe);
}

Comparison
Machine::compare(const RunRequest &request) const
{
    validate(request);
    std::optional<streams::ScopedKernelOverride> forced;
    if (request.options.kernel)
        forced.emplace(*request.options.kernel);
    std::optional<streams::setindex::ScopedIndexPolicyOverride>
        forced_index;
    if (request.options.indexPolicy)
        forced_index.emplace(*request.options.indexPolicy);

    std::optional<ThreadPool> local;
    if (request.options.hostThreads)
        local.emplace(request.options.hostThreads);
    ThreadPool &pool = local ? *local : ThreadPool::global();

    const std::string key =
        ArtifactStore::resolveEnabled(request.options.artifactCache)
            ? traceKeyFor(request)
            : std::string{};
    if (!key.empty())
        return compareViaStore(config_, pool, request.options, request,
                               key);

    return compareViaTrace(config_, pool, request.options,
                           [&](trace::TraceRecorder &rec) {
                               return executeOn(request, rec)
                                   .functionalResult;
                           });
}

} // namespace sc::api
