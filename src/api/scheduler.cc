#include "api/scheduler.hh"

#include <algorithm>

namespace sc::api {

const char *
schedPolicyName(SchedPolicy policy)
{
    return policy == SchedPolicy::Fifo ? "fifo" : "affinity";
}

std::optional<SchedPolicy>
parseSchedPolicy(std::string_view name)
{
    if (name == "fifo")
        return SchedPolicy::Fifo;
    if (name == "affinity")
        return SchedPolicy::Affinity;
    return std::nullopt;
}

JobScheduler::JobScheduler(SchedPolicy policy, unsigned slots,
                           double aging_seconds)
    : policy_(policy), slots_(std::max(1u, slots)),
      agingSeconds_(aging_seconds)
{
}

void
JobScheduler::dispatchLocked(const Held &held)
{
    if (!held.lane.empty()) {
        Lane &lane = lanes_[held.lane];
        if (lane.temp == Lane::Temp::Cold) {
            // First job of a cold lane: it becomes the designated
            // warmer — the one job allowed to pay the capture +
            // compile cost for this dataset.
            lane.temp = Lane::Temp::Warming;
            lane.warmer = held.seq;
            ++warmers_;
        }
    }
    dispatched_.emplace(held.seq, held.lane);
}

int
JobScheduler::effectivePriority(const Held &held, TimePoint now) const
{
    int priority = held.priority;
    if (agingSeconds_ > 0) {
        const double waited =
            std::chrono::duration<double>(now - held.enqueued).count();
        if (waited > 0)
            priority += static_cast<int>(waited / agingSeconds_);
    }
    return priority;
}

bool
JobScheduler::admit(std::uint64_t seq, const std::string &affinity,
                    int priority, TimePoint now)
{
    if (!affinity.empty())
        ++lanes_[affinity].jobs;

    if (policy_ == SchedPolicy::Fifo) {
        // The PR-8 baseline: straight to the pool, no cap, no lanes.
        dispatched_.emplace(seq, affinity);
        return true;
    }

    const Held held{seq, priority, now, affinity};
    if (!affinity.empty()) {
        Lane &lane = lanes_[affinity];
        if (lane.temp == Lane::Temp::Warming) {
            // A sibling is already producing this lane's artifacts;
            // piling in would only stack workers on the store's
            // in-flight dedup. Park until the lane is warm.
            lane.parked.push_back(held);
            ++convoyAvoided_;
            return false;
        }
    }
    if (dispatched_.size() < slots_) {
        dispatchLocked(held);
        return true;
    }
    ready_.push_back(held);
    return false;
}

std::vector<std::uint64_t>
JobScheduler::onComplete(std::uint64_t seq, TimePoint now)
{
    std::vector<std::uint64_t> dispatch;
    const auto it = dispatched_.find(seq);
    if (it == dispatched_.end())
        return dispatch; // unknown seq: nothing to do
    const std::string lane_key = it->second;
    dispatched_.erase(it);
    if (policy_ == SchedPolicy::Fifo)
        return dispatch;

    if (!lane_key.empty()) {
        Lane &lane = lanes_[lane_key];
        if (lane.temp == Lane::Temp::Warming && lane.warmer == seq) {
            // The warmer landed the trace + program (or failed; its
            // siblings would fail identically, so release them
            // either way). The lane stays warm for its lifetime —
            // artifacts are content-keyed and the store pins in-use
            // entries, so a re-cold lane only costs one redundant
            // capture, deduped by the store itself.
            lane.temp = Lane::Temp::Warm;
            for (Held &held : lane.parked)
                ready_.push_back(std::move(held));
            lane.parked.clear();
        }
    }

    while (dispatched_.size() < slots_ && !ready_.empty()) {
        // Pop the best ready job: highest effective priority (the
        // spec's lane plus one lane per aging quantum held), ties by
        // submission order.
        std::size_t best = 0;
        int best_priority = effectivePriority(ready_[0], now);
        for (std::size_t i = 1; i < ready_.size(); ++i) {
            const int p = effectivePriority(ready_[i], now);
            if (p > best_priority ||
                (p == best_priority &&
                 ready_[i].seq < ready_[best].seq)) {
                best = i;
                best_priority = p;
            }
        }
        Held held = std::move(ready_[best]);
        ready_.erase(ready_.begin() +
                     static_cast<std::ptrdiff_t>(best));

        if (!held.lane.empty()) {
            Lane &lane = lanes_[held.lane];
            if (lane.temp == Lane::Temp::Warming) {
                // Another ready job just became this lane's warmer
                // while this one waited for a slot: park it instead
                // of duplicating the cold work.
                lane.parked.push_back(std::move(held));
                ++convoyAvoided_;
                continue;
            }
        }
        dispatchLocked(held);
        dispatch.push_back(held.seq);
    }
    return dispatch;
}

bool
JobScheduler::cancel(std::uint64_t seq)
{
    const auto drop = [seq](std::vector<Held> &held) {
        const auto it = std::find_if(
            held.begin(), held.end(),
            [seq](const Held &h) { return h.seq == seq; });
        if (it == held.end())
            return false;
        held.erase(it);
        return true;
    };
    if (drop(ready_)) {
        ++cancelled_;
        return true;
    }
    for (auto &[key, lane] : lanes_) {
        if (drop(lane.parked)) {
            ++cancelled_;
            return true;
        }
    }
    return false;
}

SchedulerStats
JobScheduler::stats() const
{
    SchedulerStats out;
    out.policy = policy_;
    out.inflight = dispatched_.size();
    out.waitingForSlot = ready_.size();
    out.warmers = warmers_;
    out.convoyAvoided = convoyAvoided_;
    out.cancelled = cancelled_;
    for (const auto &[key, lane] : lanes_) {
        out.parked += lane.parked.size();
        out.laneJobs.emplace_back(key, lane.jobs);
    }
    std::sort(out.laneJobs.begin(), out.laneJobs.end());
    return out;
}

} // namespace sc::api
