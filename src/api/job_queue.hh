/**
 * @file
 * api::JobQueue — the batched, multi-tenant job runtime on top of
 * Machine.
 *
 * Submitters hand in JobSpecs (or raw JSON job descriptions) and get
 * std::futures of per-job JobReports back; execution is asynchronous
 * on the existing work-stealing ThreadPool. Every job routes through
 * the process-wide ArtifactStore, so a batch of jobs naming one
 * dataset captures the trace and compiles the bytecode exactly once
 * — the rest of the batch replays warm artifacts (the queue-level
 * stats expose the hit counts).
 *
 * Dispatch order is decided by a pluggable JobScheduler
 * (api/scheduler.hh; SchedPolicy::Affinity by default, SC_JOB_SCHED
 * or the constructor select): affinity scheduling parks jobs whose
 * dataset artifacts are being produced by a sibling (the lane's
 * designated warmer) instead of stacking pool workers on the store's
 * in-flight dedup, spreads distinct datasets across workers so cold
 * captures overlap with warm replays, honors JobSpec::priority with
 * starvation-free aging, and supports cancel(id) for jobs the
 * scheduler still holds.
 *
 * Admission is synchronous and strict: the spec is validated and its
 * dataset references resolved against the registries on the
 * submitter's thread. A malformed or unresolvable job comes back as
 * an already-satisfied future carrying structured JobDiags — it
 * never reaches the pool and never aborts the batch. Execution
 * errors (verifier violations, internal errors) are likewise caught
 * and reported per job; ThreadPool::submit would make an escaping
 * exception fatal, so the task wrapper must never leak one.
 *
 * Determinism: simulated cycles and functional results of a job are
 * bit-identical to a sequential Machine::run / compare of the same
 * spec, regardless of scheduling policy, queue width, priorities or
 * artifact sharing (the PR-2/PR-7/PR-8 replay invariants). Only host
 * wall-clock moves. A JobQueue with workers=1 additionally executes
 * jobs in submission order on the submitting thread (a size-1 pool
 * runs submitted tasks inline), which the check.sh smoke leg uses to
 * pin deterministic store hit counts.
 */

#ifndef SPARSECORE_API_JOB_QUEUE_HH
#define SPARSECORE_API_JOB_QUEUE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/artifact_store.hh"
#include "api/jobspec.hh"
#include "api/machine.hh"
#include "api/scheduler.hh"
#include "common/thread_pool.hh"

namespace sc::api {

/** Outcome of one job: a result or structured diagnostics. */
struct JobReport
{
    std::string id;  ///< echoed from the spec (may be empty)
    JobSpec spec;    ///< the spec as admitted
    bool ok = false; ///< result present, no errors

    /** Admission (parse/validate/resolve) or execution errors. */
    std::vector<JobDiag> errors;

    /** mode=Run result (exactly one of run/comparison is set). */
    std::optional<RunResult> run;
    /** mode=Compare result. */
    std::optional<Comparison> comparison;

    double queueSeconds = 0; ///< admission -> execution start
    double execSeconds = 0;  ///< execution start -> completion

    /**
     * The one JSON shape for job outcomes (the server's jsonl lines).
     * `include_timing` = false omits host wall-clock and cache-hit
     * fields so reports are byte-diffable across queue widths,
     * scheduling policies and warm/cold stores — everything left is
     * deterministic.
     */
    JsonValue toJsonValue(bool include_timing = true) const;
};

/**
 * Fixed-capacity uniform sample of a latency stream (Vitter's
 * algorithm R with a deterministic xorshift generator), so a
 * long-running server's percentile tracking stays O(capacity) in
 * memory instead of growing with every finished job. Nearest-rank
 * p50/p99 over the reservoir converge on the stream's percentiles.
 * Not thread-safe: the owner serializes record() under its mutex.
 */
class LatencyReservoir
{
  public:
    explicit LatencyReservoir(std::size_t capacity = 4096);

    void record(double seconds);

    /** Latencies observed (recorded, not necessarily retained). */
    std::uint64_t count() const { return seen_; }
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::size_t capacity_;
    std::vector<double> samples_;
    std::uint64_t seen_ = 0;
    std::uint64_t rng_;
};

/** Queue-level statistics (see str()/toJsonValue()). */
struct JobQueueStats
{
    std::uint64_t submitted = 0; ///< submit() calls
    std::uint64_t rejected = 0;  ///< failed admission
    std::uint64_t completed = 0; ///< executed OK
    std::uint64_t failed = 0;    ///< executed with errors
    std::uint64_t cancelled = 0; ///< held jobs cancelled
    double wallSeconds = 0;      ///< queue lifetime so far
    double jobsPerSecond = 0;    ///< completed+failed per wall second
    /** Latency = admission to completion, over finished jobs
     *  (nearest-rank over a bounded uniform reservoir). */
    double p50LatencySeconds = 0;
    double p99LatencySeconds = 0;
    /** ArtifactStore counter deltas over the queue's lifetime. */
    std::uint64_t traceHits = 0;
    std::uint64_t traceMisses = 0;
    std::uint64_t programHits = 0;
    std::uint64_t programMisses = 0;
    /** Store in-flight dedup waits: a pool worker blocked on a build
     *  another thread was already running — exactly the convoy the
     *  affinity policy exists to avoid (it parks instead). */
    std::uint64_t traceWaits = 0;
    std::uint64_t programWaits = 0;
    /** Verified-bit cache deltas: verdictHits = re-checks skipped. */
    std::uint64_t verdictHits = 0;
    std::uint64_t verdictMisses = 0;
    /** Admission-time verification (warm-trace jobs only):
     *  verifyChecked counts jobs whose resident trace was checked at
     *  submit(); verifyRejected / pressureRejected split the
     *  rejections between lifetime-rule failures ("program") and
     *  declared-arch-limit pressure overflows ("arch.sus"). */
    std::uint64_t verifyChecked = 0;
    std::uint64_t verifyRejected = 0;
    std::uint64_t pressureRejected = 0;
    /** Scheduler observability (policy, parked/warmer/convoy
     *  counters, per-dataset batch sizes). */
    SchedulerStats scheduler;

    std::string str() const;
    JsonValue toJsonValue() const;
};

/**
 * The batched job runtime. Thread-safe: any number of submitter
 * threads may call submit()/cancel()/stats() concurrently. The
 * destructor drains (waits for every admitted job — running, parked
 * or waiting for a slot — to finish).
 */
class JobQueue
{
  public:
    /**
     * @param workers 0 = execute on the shared global ThreadPool;
     *        1 = inline at submit(), in order; N >= 2 = a dedicated
     *        pool of N worker threads for this queue.
     * @param policy scheduling policy; nullopt = SC_JOB_SCHED
     *        (default affinity).
     */
    explicit JobQueue(unsigned workers = 0,
                      std::optional<SchedPolicy> policy = std::nullopt);
    ~JobQueue();

    JobQueue(const JobQueue &) = delete;
    JobQueue &operator=(const JobQueue &) = delete;

    /** The policy this queue schedules with. */
    SchedPolicy policy() const { return sched_.policy(); }

    /** SC_JOB_SCHED (validated by the config loader; default
     *  affinity). */
    static SchedPolicy defaultPolicy();

    /**
     * Admit one job: validate + resolve now, execute asynchronously.
     * The future always yields a JobReport — admission failures are
     * already-satisfied futures with JobDiags, execution errors are
     * caught into the report. Never throws on bad input.
     */
    std::future<JobReport> submit(JobSpec spec);

    /** Parse a JSON job description, then submit. */
    std::future<JobReport> submitJson(std::string_view json_text);

    /**
     * Cancel every job with this spec id that the scheduler still
     * holds (parked on a warming lane or waiting for a slot). Their
     * futures complete immediately with ok=false and a "cancelled"
     * diagnostic. Jobs already dispatched to the pool — running or
     * finished — are not cancellable; returns the number cancelled.
     */
    std::size_t cancel(const std::string &id);

    /** Block until every admitted job has finished. */
    void drain();

    /** Snapshot of the queue-level statistics. */
    JobQueueStats stats() const;

  private:
    /** A resolved job the scheduler holds or the pool executes. */
    struct Pending
    {
        std::shared_ptr<ResolvedJob> job;
        std::shared_ptr<std::promise<JobReport>> done;
        std::chrono::steady_clock::time_point admitted;
    };

    std::future<JobReport> reject(JobReport &&report);
    void dispatch(std::uint64_t seq, Pending &&pending);
    void execute(std::uint64_t seq, const Pending &pending);

    ThreadPool &pool() { return own_pool_ ? *own_pool_ : ThreadPool::global(); }

    std::optional<ThreadPool> own_pool_;
    const std::chrono::steady_clock::time_point start_;
    const ArtifactStoreStats store_before_;

    mutable std::mutex mutex_;
    std::condition_variable idle_;
    JobScheduler sched_;
    /** Jobs admitted but held by the scheduler, by seq. */
    std::map<std::uint64_t, Pending> held_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t pending_ = 0;
    std::uint64_t submitted_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t cancelled_ = 0;
    std::uint64_t verifyChecked_ = 0;
    std::uint64_t verifyRejected_ = 0;
    std::uint64_t pressureRejected_ = 0;
    LatencyReservoir latencies_;
};

} // namespace sc::api

#endif // SPARSECORE_API_JOB_QUEUE_HH
