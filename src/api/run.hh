/**
 * @file
 * Struct-based request/result types for the Machine facade.
 *
 * The original facade grew one positional-argument overload per
 * (workload × substrate) pair — nine entry points whose unsigned
 * parameters (stride? root_stride? threads?) were easy to transpose
 * silently. A RunRequest names every field once, carries the shared
 * RunOptions knobs, and feeds exactly two entry points:
 *
 *   api::Machine machine;
 *   const auto req = api::RunRequest::gpm(gpm::GpmApp::T, graph);
 *   const auto run = machine.run(req, api::Substrate::SparseCore);
 *   const auto cmp = machine.compare(req); // both substrates
 *
 * The old overloads survived PR 3 as [[deprecated]] shims and were
 * removed in PR 7; RunRequest is the only entry point.
 */

#ifndef SPARSECORE_API_RUN_HH
#define SPARSECORE_API_RUN_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "gpm/apps.hh"
#include "graph/labeled_graph.hh"
#include "kernels/spmspm.hh"
#include "sim/core_model.hh"
#include "streams/setindex/policy.hh"
#include "streams/simd/kernel_table.hh"
#include "tensor/csf_tensor.hh"
#include "tensor/sparse_matrix.hh"
#include "trace/replay.hh"

namespace sc::api {

/** Which execution substrate run() should time. */
enum class Substrate { Cpu, SparseCore };

/** Knobs shared by every workload. */
struct RunOptions
{
    /** Tensor kernels: process every stride-th row/fiber. */
    unsigned stride = 1;
    /** GPM/FSM: process every rootStride-th root vertex. */
    unsigned rootStride = 1;
    /**
     * Host threads for compare()'s replay legs: 0 = the shared
     * global pool; otherwise a dedicated pool of this size for the
     * call. Simulated cycles do not depend on this.
     */
    unsigned hostThreads = 0;
    /** Host set-op kernel level override (nullopt = process
     *  default); moves wall-clock only, never simulated cycles. */
    std::optional<streams::KernelLevel> kernel;
    /** Hybrid set-index policy override (auto / array-only / bitmap;
     *  nullopt = process default, i.e. SC_FORCE_SETINDEX or auto).
     *  Like `kernel`, moves wall-clock only, never simulated
     *  cycles. */
    std::optional<streams::setindex::IndexPolicy> indexPolicy;
    /**
     * Run the stream-lifetime verifier (analysis/) over the backend
     * event stream and throw analysis::VerifyError on violations.
     * nullopt = analysis::verifyByDefault(): on in debug builds, off
     * in release, overridable with SC_VERIFY=0/1. The verifier wraps
     * the backend transparently and never changes simulated cycles.
     */
    std::optional<bool> verify;
    /**
     * Replay engine for compare()'s trace-driven legs: Auto resolves
     * from SC_REPLAY (default Bytecode — the trace compiles once and
     * both substrates replay the devirtualized bytecode loop); Event
     * forces the original per-event walker. Both engines issue the
     * identical backend call sequence, so simulated cycles never
     * depend on this — it only moves host wall-clock (the A/B
     * escape hatch tests/trace_test.cc pins).
     */
    trace::ReplayMode replayMode = trace::ReplayMode::Auto;
    /**
     * Share captured traces and compiled bytecode across run()/
     * compare() calls through the content-keyed ArtifactStore
     * (api/artifact_store.hh). nullopt = SC_ARTIFACT_CACHE (default
     * on). Cached and cold paths are bit-identical in results and
     * simulated cycles — the store only moves host wall-clock
     * (tests/artifact_store_test.cc pins the identity).
     */
    std::optional<bool> artifactCache;
};

/**
 * One workload description: the variant tag plus the dataset
 * references that variant needs. Use the named factories — they set
 * exactly the fields the workload reads, and validation rejects the
 * rest. Referenced datasets must outlive the request.
 */
struct RunRequest
{
    enum class Workload { Gpm, Fsm, Spmspm, Ttv, Ttm };

    Workload workload = Workload::Gpm;
    RunOptions options;

    // Gpm
    gpm::GpmApp app = gpm::GpmApp::T;
    const graph::CsrGraph *graph = nullptr;
    // Fsm
    const graph::LabeledGraph *labeledGraph = nullptr;
    std::uint64_t minSupport = 0;
    // Spmspm
    const tensor::SparseMatrix *matrixA = nullptr;
    const tensor::SparseMatrix *matrixB = nullptr;
    kernels::SpmspmAlgorithm algorithm =
        kernels::SpmspmAlgorithm::Gustavson;
    /** Optional functional product for validation (may stay null). */
    tensor::SparseMatrix *spmspmResult = nullptr;
    // Ttv / Ttm
    const tensor::CsfTensor *tensor = nullptr;
    const std::vector<Value> *vector = nullptr;

    static RunRequest
    gpm(gpm::GpmApp app, const graph::CsrGraph &g,
        RunOptions options = {})
    {
        RunRequest req;
        req.workload = Workload::Gpm;
        req.options = options;
        req.app = app;
        req.graph = &g;
        return req;
    }

    static RunRequest
    fsm(const graph::LabeledGraph &g, std::uint64_t min_support,
        RunOptions options = {})
    {
        RunRequest req;
        req.workload = Workload::Fsm;
        req.options = options;
        req.labeledGraph = &g;
        req.minSupport = min_support;
        return req;
    }

    static RunRequest
    spmspm(const tensor::SparseMatrix &a, const tensor::SparseMatrix &b,
           kernels::SpmspmAlgorithm algorithm, RunOptions options = {},
           tensor::SparseMatrix *result = nullptr)
    {
        RunRequest req;
        req.workload = Workload::Spmspm;
        req.options = options;
        req.matrixA = &a;
        req.matrixB = &b;
        req.algorithm = algorithm;
        req.spmspmResult = result;
        return req;
    }

    static RunRequest
    ttv(const tensor::CsfTensor &t, const std::vector<Value> &vec,
        RunOptions options = {})
    {
        RunRequest req;
        req.workload = Workload::Ttv;
        req.options = options;
        req.tensor = &t;
        req.vector = &vec;
        return req;
    }

    static RunRequest
    ttm(const tensor::CsfTensor &t, const tensor::SparseMatrix &b,
        RunOptions options = {})
    {
        RunRequest req;
        req.workload = Workload::Ttm;
        req.options = options;
        req.tensor = &t;
        req.matrixB = &b;
        return req;
    }
};

/**
 * Capture/replay statistics of a trace-driven execution: the
 * workload ran functionally once (capture) and the substrate(s) were
 * timed by replaying the shared trace.
 */
struct TraceStats
{
    std::size_t events = 0;     ///< captured events
    std::size_t arenaBytes = 0; ///< interned key-arena bytes
    /** Compiled bytecode program bytes (0 when replayMode=event). */
    std::size_t bytecodeBytes = 0;
    /** Replay engine used: "event" or "bytecode". */
    std::string replayMode;
    /** The trace came out of the ArtifactStore warm: the functional
     *  capture run was skipped entirely. */
    bool traceCacheHit = false;
    /** The compiled program came out of the store warm: the
     *  trace->bytecode compile was skipped. */
    bool bytecodeCacheHit = false;
    double captureSeconds = 0;  ///< host wall-clock of the capture run
    /** Host wall-clock of the trace -> bytecode compile (0 when
     *  replayMode=event); paid once, amortized over both replays. */
    double compileSeconds = 0;
    double replaySeconds = 0;   ///< host wall-clock of the replay(s)
};

/** Outcome of run() on one substrate. */
struct RunResult
{
    /** Embeddings (GPM), frequent patterns (FSM) or value ops
     *  (tensor kernels) — the same scalar compare() reports. */
    std::uint64_t functionalResult = 0;
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;
    /** Capture/replay stats when the run was store-backed; zeroed
     *  (empty replayMode) on the direct-execution cold path. */
    TraceStats trace;
};

} // namespace sc::api

#endif // SPARSECORE_API_RUN_HH
