/**
 * @file
 * api::ArtifactStore — one shared, content-keyed lifecycle for the
 * expensive artifacts the system builds: captured execution Traces
 * (with their functional result) and compiled SCBC BytecodePrograms,
 * alongside the dataset-registry graph caches (graph/datasets.hh,
 * built on the same common/cache.hh primitive).
 *
 * Keys are content-derived, never pointer-derived:
 *
 *   trace    gpm/<app>/g<graph fp>/s<root stride>[/c<chunk>of<n>]/tr<v>
 *            fsm/lg<labeled-graph fp>/sup<min support>/tr<v>
 *   program  <trace key>/scbc<v>[f]
 *   graph    dataset key (+ label count), owned by graph/datasets
 *
 * A trace is a pure function of (workload, dataset content, root
 * sampling) — the substrate, SparseCoreConfig, SIMD kernel level and
 * set-index policy all act at *replay* time — so one cached capture
 * serves every sweep point, substrate comparison and config ladder.
 * Compiled programs key off the trace key plus the SCBC format
 * version, so a fig07–fig16 sweep compiles each (app, dataset)
 * exactly once and replays the shared program at every point.
 *
 * Cached and cold paths are bit-identical in results and simulated
 * cycles (the PR-2/PR-6 replay invariants; pinned again by
 * tests/artifact_store_test.cc). The store only moves host
 * wall-clock. SC_ARTIFACT_CACHE=off|on is the process-wide escape
 * hatch; RunOptions::artifactCache / HostOptions::artifactCache
 * override per call. SC_ARTIFACT_CACHE_BYTES bounds the resident
 * bytes per cache (traces and programs; default 1 GiB each) — LRU
 * eviction with in-use artifacts pinned by their shared_ptr.
 */

#ifndef SPARSECORE_API_ARTIFACT_STORE_HH
#define SPARSECORE_API_ARTIFACT_STORE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "analysis/diagnostics.hh"
#include "analysis/summary.hh"
#include "common/cache.hh"
#include "gpm/apps.hh"
#include "graph/datasets.hh"
#include "trace/compile.hh"
#include "trace/recorder.hh"

namespace sc::api {

/** Counter snapshot across the store's caches. */
struct ArtifactStoreStats
{
    CacheStats graphs;        ///< dataset registry (graph/datasets)
    CacheStats labeledGraphs; ///< labeled dataset registry
    CacheStats traces;
    CacheStats programs;
    CacheStats verdicts; ///< verified-bit cache (verdict())

    /** One-line summary ("traces 3 hits / 1 miss | ..."). */
    std::string str() const;
};

class ArtifactStore
{
  public:
    /** A captured trace plus the functional result of its capture
     *  run (embeddings / frequent patterns), so cache hits skip the
     *  functional enumeration entirely. */
    struct CachedTrace
    {
        trace::Trace trace;
        std::uint64_t functionalResult = 0;
    };

    /** Capture callback: run the workload against the recorder and
     *  return the functional result. Invoked only on a miss. */
    using CaptureFn =
        std::function<std::uint64_t(trace::TraceRecorder &)>;

    /** @param capacity_bytes per-cache byte budget (0 = unbounded) */
    explicit ArtifactStore(std::size_t capacity_bytes =
                               defaultCapacityBytes());

    /** The process-wide store every cached code path shares. */
    static ArtifactStore &global();

    /** SC_ARTIFACT_CACHE=off|on|0|1 (default on). Read once. */
    static bool enabledByDefault();
    /** Per-call override beats the environment default. */
    static bool resolveEnabled(std::optional<bool> override_);
    /** SC_ARTIFACT_CACHE_BYTES (default 1 GiB per cache). */
    static std::size_t defaultCapacityBytes();

    /** Get-or-capture the trace for `key`. The capture runs at most
     *  once per resident lifetime of the key; concurrent requests
     *  share the first capture. */
    std::shared_ptr<const CachedTrace>
    trace(const std::string &key, const CaptureFn &capture);

    /**
     * Get-or-compile the bytecode program for a trace. On a miss the
     * trace is verified first when `verify` resolves to true
     * (analysis::verifyByDefault() when nullopt) and then compiled;
     * hits skip both, which never changes cycles — verification and
     * compilation are pure functions of the already-validated trace.
     * When `compiled` is non-null it is set to whether *this call*
     * ran the compile (i.e. the request was a store miss) — the
     * race-free way to report per-call cache hits, unlike sampling
     * the aggregate miss counters around the call.
     */
    std::shared_ptr<const trace::BytecodeProgram>
    program(const std::string &trace_key, const trace::Trace &tr,
            std::optional<bool> verify = std::nullopt,
            bool *compiled = nullptr);

    /**
     * Get-or-verify the stream-lifetime report for a trace at
     * `capacity` live streams — the verified bit. The checker runs
     * at most once per resident (trace_key, capacity); warm replays
     * and repeat job admissions reuse the verdict instead of
     * re-running the trace checker. The verdict is a pure function
     * of the (content-keyed) trace, so caching it never changes
     * results or cycles — replay verification happens entirely
     * before the timing backend starts.
     */
    std::shared_ptr<const analysis::VerifyReport>
    verdict(const std::string &trace_key, const trace::Trace &tr,
            unsigned capacity);

    /** Get-or-compute the quantitative summary (pressure profile +
     *  cost bounds) of a trace under `config` — at most once per
     *  resident (trace_key, arch point). Admission control reads
     *  maxPressure from here; scverify and the sweep tests share the
     *  same cached numbers. */
    std::shared_ptr<const analysis::ProgramSummary>
    summary(const std::string &trace_key, const trace::Trace &tr,
            const arch::SparseCoreConfig &config);

    /** Resident-trace peek for admission-time checks: never captures,
     *  never counts a hit or miss (the smoke legs pin those). */
    std::shared_ptr<const CachedTrace>
    peekTrace(const std::string &key);

    /** Dataset-registry accessors (shared graph+index artifacts). */
    std::shared_ptr<const graph::CsrGraph>
    graph(const std::string &dataset_key) const;
    std::shared_ptr<const graph::LabeledGraph>
    labeledGraph(const std::string &dataset_key,
                 std::uint32_t num_labels = 8) const;

    ArtifactStoreStats stats() const;
    /** Drop resident traces/programs (graph registry untouched). */
    void clear();

    // ---------------- key scheme ----------------
    static std::string gpmTraceKey(gpm::GpmApp app,
                                   const graph::CsrGraph &g,
                                   unsigned root_stride);
    /** Per-chunk key for the host-parallel runtime: chunk m of n of
     *  the same (app, graph, stride) run. */
    static std::string gpmChunkTraceKey(gpm::GpmApp app,
                                        const graph::CsrGraph &g,
                                        unsigned root_stride,
                                        unsigned chunk,
                                        unsigned num_chunks);
    static std::string fsmTraceKey(const graph::LabeledGraph &g,
                                   std::uint64_t min_support);
    static std::string programKey(const std::string &trace_key,
                                  bool fused = true);
    static std::string verdictKey(const std::string &trace_key,
                                  unsigned capacity);
    static std::string summaryKey(const std::string &trace_key,
                                  const arch::SparseCoreConfig &config);

  private:
    LruCache<std::string, CachedTrace> traces_;
    LruCache<std::string, trace::BytecodeProgram> programs_;
    LruCache<std::string, analysis::VerifyReport> verdicts_;
    LruCache<std::string, analysis::ProgramSummary> summaries_;
};

} // namespace sc::api

#endif // SPARSECORE_API_ARTIFACT_STORE_HH
