/**
 * @file
 * api::JobSpec — the serializable job description of the service
 * layer, and the API boundary RunRequest could never cross.
 *
 * A RunRequest holds raw `const CsrGraph*` / `SparseMatrix*`
 * pointers: perfect in-process, meaningless across a process or wire
 * boundary. A JobSpec names everything by value — the workload, the
 * dataset *by registry key or file path*, the run options — with
 * versioned JSON (de)serialization and strict validation: unknown
 * fields, bad enum strings, missing dataset references and
 * out-of-range strides all come back as structured JobDiag lists
 * (field + message), never as a thrown-to-abort error. A malformed
 * job must fail that job, not the batch.
 *
 * Lifecycle:
 *
 *     parseJobSpec(json)   ->  JobSpec      (syntax + schema checks)
 *     resolveJob(spec)     ->  ResolvedJob  (dataset refs -> memory)
 *     ResolvedJob.request  ->  Machine::run / compare
 *
 * Resolution goes through the process-wide registries
 * (graph::datasets, tensor::tensor_datasets) and the ArtifactStore,
 * so a thousand jobs naming one dataset share a single loaded graph,
 * captured trace and compiled program. RunRequest survives as the
 * resolved, in-memory form every execution path still consumes.
 *
 * Option precedence: a field set in the JobSpec's "options" object
 * beats the environment default (sc::Config) which beats the built-in
 * default — the optionals in RunOptions encode exactly that.
 */

#ifndef SPARSECORE_API_JOBSPEC_HH
#define SPARSECORE_API_JOBSPEC_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/run.hh"
#include "arch/config.hh"
#include "common/json.hh"

namespace sc::api {

/** One structured validation/resolution diagnostic. */
struct JobDiag
{
    std::string field;   ///< JSON path ("options.stride", "dataset")
    std::string message; ///< what is wrong and what was expected

    JsonValue toJsonValue() const;
};

/** Execute on one substrate, or compare both? */
enum class JobMode { Run, Compare };

const char *jobModeName(JobMode mode);
const char *substrateName(Substrate substrate);
const char *workloadName(RunRequest::Workload workload);

/** The serializable job description (schema v1). */
struct JobSpec
{
    /** Schema version; parseJobSpec rejects anything newer. */
    static constexpr std::int64_t kSchemaVersion = 1;

    std::string id; ///< optional client tag, echoed in the report

    /** Scheduling priority, 0 (default) .. 100. Higher runs earlier
     *  under SchedPolicy::Affinity when jobs wait for a worker slot;
     *  starvation-free aging keeps low-priority jobs progressing.
     *  Never changes results — only dispatch order. */
    int priority = 0;

    RunRequest::Workload workload = RunRequest::Workload::Gpm;
    JobMode mode = JobMode::Compare;
    /** Substrate for mode=Run (Compare always times both). */
    Substrate substrate = Substrate::SparseCore;

    // --- dataset references (resolved at admission time) ---
    /** Registry key: Table-4 graphs for gpm/fsm, Table-5 matrices
     *  for spmspm, Table-5 tensors for ttv/ttm. */
    std::string dataset;
    /** GPM alternative: a SNAP edge-list file path. */
    std::string graphFile;
    /** Spmspm: the B operand's registry key ("" = dataset, C=A*A). */
    std::string datasetB;

    // --- workload parameters ---
    gpm::GpmApp app = gpm::GpmApp::T;               // gpm
    std::uint64_t minSupport = 1;                   // fsm
    std::uint32_t numLabels = 8;                    // fsm
    kernels::SpmspmAlgorithm algorithm =
        kernels::SpmspmAlgorithm::Gustavson;        // spmspm

    // --- architecture overrides (Table-2 defaults otherwise) ---
    std::optional<unsigned> numSus;
    std::optional<unsigned> suWindow;
    std::optional<unsigned> bandwidth;
    std::optional<bool> nested;

    /** Shared run knobs; optionals resolve through sc::Config. */
    RunOptions options;

    /** The SparseCoreConfig this spec's arch overrides produce. */
    arch::SparseCoreConfig archConfig() const;

    /** Versioned, byte-stable JSON (round-trips through
     *  parseJobSpec; only non-default fields are emitted). */
    JsonValue toJsonValue() const;
    std::string toJson() const;
};

/** Outcome of parseJobSpec / resolveJob: value or diagnostics. */
struct JobSpecParse
{
    std::optional<JobSpec> spec;
    std::vector<JobDiag> errors;

    bool ok() const { return spec.has_value() && errors.empty(); }
};

/**
 * Parse + validate one JSON job description. Never throws: JSON
 * syntax errors, unknown fields, bad enum values, wrong types,
 * out-of-range numbers and fields inapplicable to the workload all
 * come back as JobDiags.
 */
JobSpecParse parseJobSpec(std::string_view json_text);

/** Validate an already-built JobSpec (the non-syntax half of
 *  parseJobSpec); empty result = valid. */
std::vector<JobDiag> validateJobSpec(const JobSpec &spec);

/**
 * A JobSpec with its dataset references resolved to in-memory data:
 * the RunRequest every execution path consumes plus shared ownership
 * of everything it points at. Registry datasets are process-stable
 * (the registry caches are unbounded); file graphs and generated
 * tensor operands are owned here. Movable; the request's pointers
 * stay valid because the owned data sits behind shared_ptrs.
 */
struct ResolvedJob
{
    JobSpec spec;
    arch::SparseCoreConfig config;
    RunRequest request;

    /** Dataset-affinity key: the ArtifactStore trace key this job
     *  will capture or replay (workload + dataset content fingerprint
     *  + sampling), or "" when the job shares no store artifacts
     *  (tensor workloads; artifact cache disabled). The JobQueue's
     *  affinity scheduler groups jobs into lanes by this key. */
    std::string affinityKey;

    std::shared_ptr<const graph::CsrGraph> graph;
    std::shared_ptr<const graph::LabeledGraph> labeledGraph;
    std::shared_ptr<const tensor::SparseMatrix> matrixA;
    std::shared_ptr<const tensor::SparseMatrix> matrixB;
    std::shared_ptr<const tensor::CsfTensor> tensor;
    std::shared_ptr<const std::vector<Value>> vector;
};

/** Outcome of resolveJob. */
struct JobResolve
{
    std::optional<ResolvedJob> job;
    std::vector<JobDiag> errors;

    bool ok() const { return job.has_value() && errors.empty(); }
};

/**
 * Resolve a (validated) spec's dataset references against the
 * registries / filesystem and build the RunRequest. Unknown registry
 * keys and unloadable files come back as JobDiags, not exceptions.
 */
JobResolve resolveJob(const JobSpec &spec);

} // namespace sc::api

#endif // SPARSECORE_API_JOBSPEC_HH
