#include "api/report.hh"

#include <sstream>

#include "common/table.hh"

namespace sc::api {

std::string
breakdownStr(const sim::CycleBreakdown &breakdown)
{
    std::ostringstream os;
    bool first = true;
    for (unsigned i = 0;
         i < static_cast<unsigned>(sim::CycleClass::NumClasses); ++i) {
        const auto cls = static_cast<sim::CycleClass>(i);
        if (!first)
            os << " | ";
        first = false;
        os << sim::cycleClassName(cls) << " "
           << Table::num(100.0 * breakdown.fraction(cls), 1) << "%";
    }
    return os.str();
}

std::string
Comparison::str() const
{
    std::ostringstream os;
    os << "result: " << functionalResult << "\n";
    os << baseline.substrate << ": " << baseline.cycles
       << " cycles  [" << breakdownStr(baseline.breakdown) << "]\n";
    os << accelerated.substrate << ": " << accelerated.cycles
       << " cycles  [" << breakdownStr(accelerated.breakdown) << "]\n";
    os << "speedup: " << Table::speedup(speedup()) << "\n";
    return os.str();
}

} // namespace sc::api
