#include "api/report.hh"

#include <sstream>

#include "common/table.hh"

namespace sc::api {

std::string
breakdownStr(const sim::CycleBreakdown &breakdown)
{
    std::ostringstream os;
    bool first = true;
    for (unsigned i = 0;
         i < static_cast<unsigned>(sim::CycleClass::NumClasses); ++i) {
        const auto cls = static_cast<sim::CycleClass>(i);
        if (!first)
            os << " | ";
        first = false;
        os << sim::cycleClassName(cls) << " "
           << Table::num(100.0 * breakdown.fraction(cls), 1) << "%";
    }
    return os.str();
}

std::string
Comparison::str() const
{
    std::ostringstream os;
    os << "result: " << functionalResult << "\n";
    os << baseline.substrate << ": " << baseline.cycles
       << " cycles  [" << breakdownStr(baseline.breakdown) << "]\n";
    os << accelerated.substrate << ": " << accelerated.cycles
       << " cycles  [" << breakdownStr(accelerated.breakdown) << "]\n";
    os << "speedup: " << Table::speedup(speedup()) << "\n";
    if (trace.events) {
        os << "trace: " << trace.events << " events, "
           << trace.arenaBytes << " arena bytes, ";
        if (trace.traceCacheHit)
            os << "capture skipped (store hit)";
        else
            os << "capture "
               << Table::num(trace.captureSeconds * 1e3, 1) << " ms";
        os << ", replay " << Table::num(trace.replaySeconds * 1e3, 1)
           << " ms";
        if (!trace.replayMode.empty())
            os << " (" << trace.replayMode << ")";
        os << "\n";
        if (trace.bytecodeBytes) {
            os << "bytecode: " << trace.bytecodeBytes << " bytes, ";
            if (trace.bytecodeCacheHit)
                os << "compile skipped (store hit)\n";
            else
                os << "compile "
                   << Table::num(trace.compileSeconds * 1e3, 1)
                   << " ms\n";
        }
    }
    return os.str();
}

} // namespace sc::api
