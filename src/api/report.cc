#include "api/report.hh"

#include <sstream>

#include "common/table.hh"

namespace sc::api {

std::string
breakdownStr(const sim::CycleBreakdown &breakdown)
{
    std::ostringstream os;
    bool first = true;
    for (unsigned i = 0;
         i < static_cast<unsigned>(sim::CycleClass::NumClasses); ++i) {
        const auto cls = static_cast<sim::CycleClass>(i);
        if (!first)
            os << " | ";
        first = false;
        os << sim::cycleClassName(cls) << " "
           << Table::num(100.0 * breakdown.fraction(cls), 1) << "%";
    }
    return os.str();
}

namespace {

/** Stable machine-readable key for a cycle class (the display names
 *  from cycleClassName carry punctuation and spaces). */
const char *
cycleClassKey(sim::CycleClass cls)
{
    switch (cls) {
      case sim::CycleClass::Cache:
        return "cache";
      case sim::CycleClass::Mispredict:
        return "mispredict";
      case sim::CycleClass::OtherCompute:
        return "other_compute";
      case sim::CycleClass::Intersection:
        return "intersection";
      default:
        return "unknown";
    }
}

} // namespace

JsonValue
jsonValue(const sim::CycleBreakdown &breakdown)
{
    JsonValue out = JsonValue::object();
    for (unsigned i = 0;
         i < static_cast<unsigned>(sim::CycleClass::NumClasses); ++i) {
        const auto cls = static_cast<sim::CycleClass>(i);
        out.set(cycleClassKey(cls),
                JsonValue::number(std::uint64_t{breakdown[cls]}));
    }
    return out;
}

JsonValue
jsonValue(const TraceStats &trace)
{
    JsonValue out = JsonValue::object();
    out.set("events", JsonValue::number(std::uint64_t{trace.events}));
    out.set("arena_bytes",
            JsonValue::number(std::uint64_t{trace.arenaBytes}));
    out.set("bytecode_bytes",
            JsonValue::number(std::uint64_t{trace.bytecodeBytes}));
    out.set("replay_mode", JsonValue::str(trace.replayMode));
    out.set("trace_cache_hit", JsonValue::boolean(trace.traceCacheHit));
    out.set("bytecode_cache_hit",
            JsonValue::boolean(trace.bytecodeCacheHit));
    out.set("capture_seconds", JsonValue::number(trace.captureSeconds));
    out.set("compile_seconds", JsonValue::number(trace.compileSeconds));
    out.set("replay_seconds", JsonValue::number(trace.replaySeconds));
    return out;
}

JsonValue
jsonValue(const SubstrateResult &result)
{
    JsonValue out = JsonValue::object();
    out.set("substrate", JsonValue::str(result.substrate));
    out.set("cycles", JsonValue::number(std::uint64_t{result.cycles}));
    out.set("breakdown", jsonValue(result.breakdown));
    return out;
}

JsonValue
jsonValue(const RunResult &result)
{
    JsonValue out = JsonValue::object();
    out.set("result",
            JsonValue::number(std::uint64_t{result.functionalResult}));
    out.set("cycles", JsonValue::number(std::uint64_t{result.cycles}));
    out.set("breakdown", jsonValue(result.breakdown));
    if (!result.trace.replayMode.empty())
        out.set("trace", jsonValue(result.trace));
    return out;
}

JsonValue
jsonValue(const Comparison &comparison)
{
    JsonValue out = JsonValue::object();
    out.set("result", JsonValue::number(
                          std::uint64_t{comparison.functionalResult}));
    out.set("cpu", jsonValue(comparison.baseline));
    out.set("sparsecore", jsonValue(comparison.accelerated));
    out.set("speedup", JsonValue::number(comparison.speedup()));
    if (!comparison.trace.replayMode.empty())
        out.set("trace", jsonValue(comparison.trace));
    return out;
}

std::string
Comparison::str() const
{
    std::ostringstream os;
    os << "result: " << functionalResult << "\n";
    os << baseline.substrate << ": " << baseline.cycles
       << " cycles  [" << breakdownStr(baseline.breakdown) << "]\n";
    os << accelerated.substrate << ": " << accelerated.cycles
       << " cycles  [" << breakdownStr(accelerated.breakdown) << "]\n";
    os << "speedup: " << Table::speedup(speedup()) << "\n";
    if (trace.events) {
        os << "trace: " << trace.events << " events, "
           << trace.arenaBytes << " arena bytes, ";
        if (trace.traceCacheHit)
            os << "capture skipped (store hit)";
        else
            os << "capture "
               << Table::num(trace.captureSeconds * 1e3, 1) << " ms";
        os << ", replay " << Table::num(trace.replaySeconds * 1e3, 1)
           << " ms";
        if (!trace.replayMode.empty())
            os << " (" << trace.replayMode << ")";
        os << "\n";
        if (trace.bytecodeBytes) {
            os << "bytecode: " << trace.bytecodeBytes << " bytes, ";
            if (trace.bytecodeCacheHit)
                os << "compile skipped (store hit)\n";
            else
                os << "compile "
                   << Table::num(trace.compileSeconds * 1e3, 1)
                   << " ms\n";
        }
    }
    return os.str();
}

} // namespace sc::api
