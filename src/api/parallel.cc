#include "api/parallel.hh"

#include <algorithm>
#include <memory>

#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/logging.hh"
#include "gpm/executor.hh"

namespace sc::api {

namespace {

template <typename MakeBackend>
ParallelGpmResult
mineParallel(gpm::GpmApp app, const graph::CsrGraph &g,
             unsigned num_cores, unsigned root_stride,
             MakeBackend &&make_backend)
{
    if (num_cores == 0)
        fatal("need at least one core");
    const auto plans = gpm::gpmAppPlans(app);

    ParallelGpmResult result;
    result.perCore.reserve(num_cores);
    for (unsigned core = 0; core < num_cores; ++core) {
        auto backend = make_backend();
        gpm::PlanExecutor executor(g, *backend);
        executor.setRootRange(core * root_stride,
                              num_cores * root_stride);
        const auto run = executor.runMany(plans);
        result.embeddings += run.embeddings;
        result.perCore.push_back(run.cycles);
        result.cycles = std::max(result.cycles, run.cycles);
    }
    return result;
}

} // namespace

ParallelGpmResult
mineParallelSparseCore(gpm::GpmApp app, const graph::CsrGraph &g,
                       unsigned num_cores,
                       const arch::SparseCoreConfig &config,
                       unsigned root_stride)
{
    return mineParallel(app, g, num_cores, root_stride, [&] {
        return std::make_unique<backend::SparseCoreBackend>(config);
    });
}

ParallelGpmResult
mineParallelCpu(gpm::GpmApp app, const graph::CsrGraph &g,
                unsigned num_cores,
                const arch::SparseCoreConfig &config,
                unsigned root_stride)
{
    return mineParallel(app, g, num_cores, root_stride, [&] {
        return std::make_unique<backend::CpuBackend>(config.core,
                                                     config.mem);
    });
}

} // namespace sc::api
