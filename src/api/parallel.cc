#include "api/parallel.hh"

#include <algorithm>
#include <memory>

#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "gpm/executor.hh"

namespace sc::api {

namespace {

/** One root-loop chunk's contribution (per-task backend session). */
struct ChunkRun
{
    std::uint64_t embeddings = 0;
    Cycles cycles = 0;
};

template <typename MakeBackend>
ParallelGpmResult
mineParallel(gpm::GpmApp app, const graph::CsrGraph &g,
             unsigned num_cores, unsigned root_stride,
             const HostOptions &host, MakeBackend &&make_backend)
{
    if (num_cores == 0)
        fatal("need at least one core");
    if (root_stride == 0)
        fatal("root stride must be positive");
    const auto plans = gpm::gpmAppPlans(app);
    ThreadPool &pool = host.pool ? *host.pool : ThreadPool::global();

    // K * num_cores chunks, stolen dynamically by the host threads.
    // Chunk m covers roots { (m + i*M) * root_stride } and is
    // attributed to simulated core m % num_cores — the same
    // interleaved split as the legacy per-core loop, just finer, so
    // a heavy root region spreads over every simulated core AND over
    // every host thread.
    const unsigned k = std::max(1u, host.chunksPerCore);
    const unsigned num_chunks = num_cores * k;

    const auto runs = parallelMap<ChunkRun>(
        pool, num_chunks, [&](std::size_t chunk) {
            auto backend = make_backend();
            gpm::PlanExecutor executor(g, *backend);
            executor.setRootRange(
                static_cast<unsigned>(chunk) * root_stride,
                num_chunks * root_stride);
            const auto run = executor.runMany(plans);
            return ChunkRun{run.embeddings, run.cycles};
        });

    // Ordered reduction: chunk-index order, fixed chunk→core cycle
    // attribution — bit-identical for any host thread count.
    ParallelGpmResult result;
    result.perCore.assign(num_cores, 0);
    for (unsigned chunk = 0; chunk < num_chunks; ++chunk) {
        result.embeddings += runs[chunk].embeddings;
        result.perCore[chunk % num_cores] += runs[chunk].cycles;
    }
    for (Cycles c : result.perCore)
        result.cycles = std::max(result.cycles, c);
    return result;
}

} // namespace

ParallelGpmResult
mineParallelSparseCore(gpm::GpmApp app, const graph::CsrGraph &g,
                       unsigned num_cores,
                       const arch::SparseCoreConfig &config,
                       unsigned root_stride, const HostOptions &host)
{
    return mineParallel(app, g, num_cores, root_stride, host, [&] {
        return std::make_unique<backend::SparseCoreBackend>(config);
    });
}

ParallelGpmResult
mineParallelCpu(gpm::GpmApp app, const graph::CsrGraph &g,
                unsigned num_cores,
                const arch::SparseCoreConfig &config,
                unsigned root_stride, const HostOptions &host)
{
    return mineParallel(app, g, num_cores, root_stride, host, [&] {
        return std::make_unique<backend::CpuBackend>(config.core,
                                                     config.mem);
    });
}

} // namespace sc::api
