#include "api/parallel.hh"

#include <algorithm>
#include <memory>

#include "analysis/trace_check.hh"
#include "api/artifact_store.hh"
#include "backend/cpu_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "gpm/executor.hh"
#include "trace/compile.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

namespace sc::api {

namespace {

/** One root-loop chunk's contribution (per-task backend session). */
struct ChunkRun
{
    std::uint64_t embeddings = 0;
    Cycles cycles = 0;
};

void
checkParallelArgs(unsigned num_cores, unsigned root_stride)
{
    if (num_cores == 0)
        fatal("need at least one core");
    if (root_stride == 0)
        fatal("root stride must be positive");
}

/**
 * Capture one root-loop chunk's event trace. Chunk m covers roots
 * { (m + i*M) * root_stride } — the same interleaved split as the
 * legacy per-core loop, just finer, so a heavy root region spreads
 * over every simulated core AND over every host thread.
 */
gpm::GpmRunResult
captureChunk(const std::vector<gpm::MiningPlan> &plans,
             const graph::CsrGraph &g,
             unsigned chunk, unsigned num_chunks, unsigned root_stride,
             trace::TraceRecorder &recorder)
{
    gpm::PlanExecutor executor(g, recorder);
    executor.setRootRange(chunk * root_stride,
                          num_chunks * root_stride);
    return executor.runMany(plans);
}

template <typename MakeBackend>
ParallelGpmResult
mineParallel(gpm::GpmApp app, const graph::CsrGraph &g,
             unsigned num_cores, unsigned root_stride,
             const HostOptions &host, MakeBackend &&make_backend)
{
    checkParallelArgs(num_cores, root_stride);
    const auto plans = gpm::gpmAppPlans(app);
    ThreadPool &pool = host.pool ? *host.pool : ThreadPool::global();
    std::optional<streams::ScopedKernelOverride> forced;
    if (host.kernel)
        forced.emplace(*host.kernel);
    std::optional<streams::setindex::ScopedIndexPolicyOverride>
        forced_index;
    if (host.indexPolicy)
        forced_index.emplace(*host.indexPolicy);

    // K * num_cores chunks, stolen dynamically by the host threads.
    // Chunk m is attributed to simulated core m % num_cores. Each
    // chunk captures its event trace once and replays it onto a
    // private backend — the chunk outcome is a pure function of the
    // chunk index, so the result is independent of host scheduling.
    const unsigned k = std::max(1u, host.chunksPerCore);
    const unsigned num_chunks = num_cores * k;

    const trace::ReplayMode mode =
        trace::resolveReplayMode(host.replayMode);
    const bool use_store =
        ArtifactStore::resolveEnabled(host.artifactCache);
    const auto runs = parallelMap<ChunkRun>(
        pool, num_chunks, [&](std::size_t chunk) {
            if (use_store) {
                // Per-chunk content key: concurrent chunks dedup
                // in-flight builds inside the store, and a warm run
                // (same app/graph/split) skips capture and compile
                // entirely.
                const std::string key =
                    ArtifactStore::gpmChunkTraceKey(
                        app, g, root_stride,
                        static_cast<unsigned>(chunk), num_chunks);
                ArtifactStore &store = ArtifactStore::global();
                const auto cached = store.trace(
                    key, [&](trace::TraceRecorder &recorder) {
                        return captureChunk(
                                   plans, g,
                                   static_cast<unsigned>(chunk),
                                   num_chunks, root_stride, recorder)
                            .embeddings;
                    });
                auto backend = make_backend();
                trace::ReplayResult rep;
                if (mode == trace::ReplayMode::Bytecode) {
                    const auto bc = store.program(key, cached->trace);
                    rep = trace::replayCompiled(*bc, *backend, false);
                } else {
                    rep = trace::replay(cached->trace, *backend,
                                        std::nullopt,
                                        trace::ReplayMode::Event);
                }
                return ChunkRun{cached->functionalResult, rep.cycles};
            }
            trace::TraceRecorder recorder;
            const auto run =
                captureChunk(plans, g, static_cast<unsigned>(chunk),
                             num_chunks, root_stride, recorder);
            const trace::Trace tr = recorder.takeTrace();
            auto backend = make_backend();
            const auto rep =
                trace::replay(tr, *backend, std::nullopt, mode);
            return ChunkRun{run.embeddings, rep.cycles};
        });

    // Ordered reduction: chunk-index order, fixed chunk→core cycle
    // attribution — bit-identical for any host thread count.
    ParallelGpmResult result;
    result.perCore.assign(num_cores, 0);
    for (unsigned chunk = 0; chunk < num_chunks; ++chunk) {
        result.embeddings += runs[chunk].embeddings;
        result.perCore[chunk % num_cores] += runs[chunk].cycles;
    }
    for (Cycles c : result.perCore)
        result.cycles = std::max(result.cycles, c);
    return result;
}

} // namespace

ParallelGpmResult
mineParallelSparseCore(gpm::GpmApp app, const graph::CsrGraph &g,
                       unsigned num_cores,
                       const arch::SparseCoreConfig &config,
                       unsigned root_stride, const HostOptions &host)
{
    return mineParallel(app, g, num_cores, root_stride, host, [&] {
        return std::make_unique<backend::SparseCoreBackend>(config);
    });
}

ParallelGpmResult
mineParallelCpu(gpm::GpmApp app, const graph::CsrGraph &g,
                unsigned num_cores,
                const arch::SparseCoreConfig &config,
                unsigned root_stride, const HostOptions &host)
{
    return mineParallel(app, g, num_cores, root_stride, host, [&] {
        return std::make_unique<backend::CpuBackend>(config.core,
                                                     config.mem);
    });
}

ParallelComparison
compareParallelGpm(gpm::GpmApp app, const graph::CsrGraph &g,
                   unsigned num_cores,
                   const arch::SparseCoreConfig &config,
                   unsigned root_stride, const HostOptions &host)
{
    checkParallelArgs(num_cores, root_stride);
    const auto plans = gpm::gpmAppPlans(app);
    ThreadPool &pool = host.pool ? *host.pool : ThreadPool::global();
    std::optional<streams::ScopedKernelOverride> forced;
    if (host.kernel)
        forced.emplace(*host.kernel);
    std::optional<streams::setindex::ScopedIndexPolicyOverride>
        forced_index;
    if (host.indexPolicy)
        forced_index.emplace(*host.indexPolicy);
    const unsigned k = std::max(1u, host.chunksPerCore);
    const unsigned num_chunks = num_cores * k;

    struct ChunkCompare
    {
        std::uint64_t embeddings = 0;
        Cycles cpuCycles = 0;
        Cycles scCycles = 0;
    };

    // One capture per chunk; the trace replays onto both substrates
    // within the same host task, so the chunk outcome stays a pure
    // function of the chunk index. In Bytecode mode the chunk
    // compiles its trace once and both substrates replay the shared
    // program.
    const trace::ReplayMode mode =
        trace::resolveReplayMode(host.replayMode);
    const bool use_store =
        ArtifactStore::resolveEnabled(host.artifactCache);
    const auto runs = parallelMap<ChunkCompare>(
        pool, num_chunks, [&](std::size_t chunk) {
            if (use_store) {
                const std::string key =
                    ArtifactStore::gpmChunkTraceKey(
                        app, g, root_stride,
                        static_cast<unsigned>(chunk), num_chunks);
                ArtifactStore &store = ArtifactStore::global();
                const auto cached = store.trace(
                    key, [&](trace::TraceRecorder &recorder) {
                        return captureChunk(
                                   plans, g,
                                   static_cast<unsigned>(chunk),
                                   num_chunks, root_stride, recorder)
                            .embeddings;
                    });
                backend::CpuBackend cpu(config.core, config.mem);
                backend::SparseCoreBackend sc(config);
                if (mode == trace::ReplayMode::Bytecode) {
                    const auto bc = store.program(key, cached->trace);
                    return ChunkCompare{
                        cached->functionalResult,
                        trace::replayCompiled(*bc, cpu, false).cycles,
                        trace::replayCompiled(*bc, sc, false).cycles};
                }
                return ChunkCompare{
                    cached->functionalResult,
                    trace::replay(cached->trace, cpu, std::nullopt,
                                  trace::ReplayMode::Event)
                        .cycles,
                    trace::replay(cached->trace, sc, std::nullopt,
                                  trace::ReplayMode::Event)
                        .cycles};
            }
            trace::TraceRecorder recorder;
            const auto run =
                captureChunk(plans, g, static_cast<unsigned>(chunk),
                             num_chunks, root_stride, recorder);
            const trace::Trace tr = recorder.takeTrace();
            backend::CpuBackend cpu(config.core, config.mem);
            backend::SparseCoreBackend sc(config);
            if (mode == trace::ReplayMode::Bytecode) {
                if (analysis::verifyByDefault()) {
                    const analysis::VerifyReport report =
                        analysis::verifyTrace(tr);
                    if (report.hasErrors())
                        throw analysis::VerifyError(report.format());
                }
                const trace::BytecodeProgram bc =
                    trace::compileTrace(tr);
                return ChunkCompare{
                    run.embeddings,
                    trace::replayCompiled(bc, cpu, false).cycles,
                    trace::replayCompiled(bc, sc, false).cycles};
            }
            return ChunkCompare{
                run.embeddings,
                trace::replay(tr, cpu, std::nullopt, mode).cycles,
                trace::replay(tr, sc, std::nullopt, mode).cycles};
        });

    ParallelComparison cmp;
    cmp.baseline.perCore.assign(num_cores, 0);
    cmp.accelerated.perCore.assign(num_cores, 0);
    for (unsigned chunk = 0; chunk < num_chunks; ++chunk) {
        cmp.functionalResult += runs[chunk].embeddings;
        cmp.baseline.perCore[chunk % num_cores] +=
            runs[chunk].cpuCycles;
        cmp.accelerated.perCore[chunk % num_cores] +=
            runs[chunk].scCycles;
    }
    cmp.baseline.embeddings = cmp.functionalResult;
    cmp.accelerated.embeddings = cmp.functionalResult;
    for (unsigned core = 0; core < num_cores; ++core) {
        cmp.baseline.cycles =
            std::max(cmp.baseline.cycles, cmp.baseline.perCore[core]);
        cmp.accelerated.cycles = std::max(
            cmp.accelerated.cycles, cmp.accelerated.perCore[core]);
    }
    return cmp;
}

} // namespace sc::api
