/**
 * @file
 * sc::api::Machine — the library's top-level facade.
 *
 * A Machine owns a SparseCore configuration and executes RunRequests
 * (api/run.hh) on one substrate (run()) or on both with capture-once
 * trace replay (compare()). This is the API the examples and most
 * benchmarks use; lower layers (backends, engine, plans) remain
 * public for advanced use.
 *
 * GPM and FSM requests route their captured traces and compiled
 * bytecode through the content-keyed ArtifactStore
 * (api/artifact_store.hh), so repeated runs of one (app, dataset)
 * across substrates, configs or sweep points pay the functional
 * enumeration and the trace->bytecode compile once. Cached and cold
 * paths are bit-identical (results and cycles); SC_ARTIFACT_CACHE or
 * RunOptions::artifactCache opt out.
 *
 * The legacy positional-argument overloads (mineSparseCore,
 * compareGpm, spmspmCpu, ...) that survived PR 3 as deprecated shims
 * are gone; use RunRequest.
 */

#ifndef SPARSECORE_API_MACHINE_HH
#define SPARSECORE_API_MACHINE_HH

#include "api/report.hh"
#include "api/run.hh"
#include "arch/config.hh"

namespace sc::api {

/** The facade. */
class Machine
{
  public:
    explicit Machine(
        const arch::SparseCoreConfig &config = arch::SparseCoreConfig{});

    const arch::SparseCoreConfig &config() const { return config_; }

    /** Execute a request on one substrate. */
    RunResult run(const RunRequest &request, Substrate substrate) const;

    /** Execute a request on both substrates (one functional capture,
     *  two concurrent replays) and report the speedup. */
    Comparison compare(const RunRequest &request) const;

  private:
    arch::SparseCoreConfig config_;
};

} // namespace sc::api

#endif // SPARSECORE_API_MACHINE_HH
