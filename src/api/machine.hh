/**
 * @file
 * sc::api::Machine — the library's top-level facade.
 *
 * A Machine owns a SparseCore configuration and runs GPM applications
 * or tensor kernels on the SparseCore substrate, the CPU baseline, or
 * both (returning a Comparison). This is the API the examples and
 * most benchmarks use; lower layers (backends, engine, plans) remain
 * public for advanced use.
 */

#ifndef SPARSECORE_API_MACHINE_HH
#define SPARSECORE_API_MACHINE_HH

#include <memory>
#include <string>

#include "api/report.hh"
#include "arch/config.hh"
#include "gpm/apps.hh"
#include "gpm/fsm.hh"
#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"

namespace sc::api {

/** The facade. */
class Machine
{
  public:
    explicit Machine(
        const arch::SparseCoreConfig &config = arch::SparseCoreConfig{});

    const arch::SparseCoreConfig &config() const { return config_; }

    // ---------------- GPM ----------------
    /** Run a GPM app on SparseCore. */
    gpm::GpmRunResult mineSparseCore(gpm::GpmApp app,
                                     const graph::CsrGraph &g,
                                     unsigned root_stride = 1) const;
    /** Run a GPM app on the CPU baseline. */
    gpm::GpmRunResult mineCpu(gpm::GpmApp app, const graph::CsrGraph &g,
                              unsigned root_stride = 1) const;
    /** Both substrates + speedup. */
    Comparison compareGpm(gpm::GpmApp app, const graph::CsrGraph &g,
                          unsigned root_stride = 1) const;

    /** FSM on both substrates. */
    Comparison compareFsm(const graph::LabeledGraph &g,
                          std::uint64_t min_support) const;

    // ---------------- tensors ----------------
    /** spmspm on SparseCore. */
    kernels::TensorRunResult
    spmspmSparseCore(const tensor::SparseMatrix &a,
                     const tensor::SparseMatrix &b,
                     kernels::SpmspmAlgorithm algorithm,
                     unsigned stride = 1,
                     tensor::SparseMatrix *result = nullptr) const;
    /** spmspm on the CPU baseline. */
    kernels::TensorRunResult
    spmspmCpu(const tensor::SparseMatrix &a, const tensor::SparseMatrix &b,
              kernels::SpmspmAlgorithm algorithm, unsigned stride = 1,
              tensor::SparseMatrix *result = nullptr) const;
    /** Both substrates + speedup. */
    Comparison compareSpmspm(const tensor::SparseMatrix &a,
                             const tensor::SparseMatrix &b,
                             kernels::SpmspmAlgorithm algorithm,
                             unsigned stride = 1) const;

    Comparison compareTtv(const tensor::CsfTensor &a,
                          const std::vector<Value> &vec,
                          unsigned stride = 1) const;
    Comparison compareTtm(const tensor::CsfTensor &a,
                          const tensor::SparseMatrix &b,
                          unsigned stride = 1) const;

  private:
    arch::SparseCoreConfig config_;
};

} // namespace sc::api

#endif // SPARSECORE_API_MACHINE_HH
