/**
 * @file
 * sc::api::Machine — the library's top-level facade.
 *
 * A Machine owns a SparseCore configuration and executes RunRequests
 * (api/run.hh) on one substrate (run()) or on both with capture-once
 * trace replay (compare()). This is the API the examples and most
 * benchmarks use; lower layers (backends, engine, plans) remain
 * public for advanced use.
 *
 * The legacy positional-argument overloads (mineSparseCore,
 * compareGpm, spmspmCpu, ...) are deprecated shims over run()/
 * compare(); migrate to RunRequest.
 */

#ifndef SPARSECORE_API_MACHINE_HH
#define SPARSECORE_API_MACHINE_HH

#include <memory>
#include <string>

#include "api/report.hh"
#include "api/run.hh"
#include "arch/config.hh"
#include "gpm/apps.hh"
#include "gpm/fsm.hh"
#include "kernels/spmspm.hh"
#include "kernels/ttm.hh"
#include "kernels/ttv.hh"

namespace sc::api {

/** The facade. */
class Machine
{
  public:
    explicit Machine(
        const arch::SparseCoreConfig &config = arch::SparseCoreConfig{});

    const arch::SparseCoreConfig &config() const { return config_; }

    /** Execute a request on one substrate. */
    RunResult run(const RunRequest &request, Substrate substrate) const;

    /** Execute a request on both substrates (one functional capture,
     *  two concurrent replays) and report the speedup. */
    Comparison compare(const RunRequest &request) const;

    // ------------- deprecated positional-arg shims -------------
    /** @deprecated run(RunRequest::gpm(...), Substrate::SparseCore) */
    [[deprecated("use run(RunRequest::gpm(...))")]] gpm::GpmRunResult
    mineSparseCore(gpm::GpmApp app, const graph::CsrGraph &g,
                   unsigned root_stride = 1) const;
    /** @deprecated run(RunRequest::gpm(...), Substrate::Cpu) */
    [[deprecated("use run(RunRequest::gpm(...))")]] gpm::GpmRunResult
    mineCpu(gpm::GpmApp app, const graph::CsrGraph &g,
            unsigned root_stride = 1) const;
    /** @deprecated compare(RunRequest::gpm(...)) */
    [[deprecated("use compare(RunRequest::gpm(...))")]] Comparison
    compareGpm(gpm::GpmApp app, const graph::CsrGraph &g,
               unsigned root_stride = 1) const;

    /** @deprecated compare(RunRequest::fsm(...)) */
    [[deprecated("use compare(RunRequest::fsm(...))")]] Comparison
    compareFsm(const graph::LabeledGraph &g,
               std::uint64_t min_support) const;

    /** @deprecated run(RunRequest::spmspm(...)) */
    [[deprecated("use run(RunRequest::spmspm(...))")]]
    kernels::TensorRunResult
    spmspmSparseCore(const tensor::SparseMatrix &a,
                     const tensor::SparseMatrix &b,
                     kernels::SpmspmAlgorithm algorithm,
                     unsigned stride = 1,
                     tensor::SparseMatrix *result = nullptr) const;
    /** @deprecated run(RunRequest::spmspm(...)) */
    [[deprecated("use run(RunRequest::spmspm(...))")]]
    kernels::TensorRunResult
    spmspmCpu(const tensor::SparseMatrix &a, const tensor::SparseMatrix &b,
              kernels::SpmspmAlgorithm algorithm, unsigned stride = 1,
              tensor::SparseMatrix *result = nullptr) const;
    /** @deprecated compare(RunRequest::spmspm(...)) */
    [[deprecated("use compare(RunRequest::spmspm(...))")]] Comparison
    compareSpmspm(const tensor::SparseMatrix &a,
                  const tensor::SparseMatrix &b,
                  kernels::SpmspmAlgorithm algorithm,
                  unsigned stride = 1) const;

    /** @deprecated compare(RunRequest::ttv(...)) */
    [[deprecated("use compare(RunRequest::ttv(...))")]] Comparison
    compareTtv(const tensor::CsfTensor &a, const std::vector<Value> &vec,
               unsigned stride = 1) const;
    /** @deprecated compare(RunRequest::ttm(...)) */
    [[deprecated("use compare(RunRequest::ttm(...))")]] Comparison
    compareTtm(const tensor::CsfTensor &a, const tensor::SparseMatrix &b,
               unsigned stride = 1) const;

  private:
    arch::SparseCoreConfig config_;
};

} // namespace sc::api

#endif // SPARSECORE_API_MACHINE_HH
