/**
 * @file
 * Multi-core mining (Table 2 configures six cores): the root-vertex
 * loop is split across cores by interleaving (core c takes vertices
 * c, c+N, c+2N, ...), each core owning a private SparseCore engine —
 * its own SUs, S-Cache, scratchpad and L1/L2 — exactly the
 * replication the paper's per-core extension implies. The parallel
 * runtime is the slowest core's cycle count; graph data is read-only,
 * so no coherence traffic is modeled (§5.1).
 */

#ifndef SPARSECORE_API_PARALLEL_HH
#define SPARSECORE_API_PARALLEL_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "gpm/apps.hh"

namespace sc::api {

/** Outcome of a multi-core mining run. */
struct ParallelGpmResult
{
    std::uint64_t embeddings = 0; ///< total across cores
    Cycles cycles = 0;            ///< slowest core (wall clock)
    std::vector<Cycles> perCore;  ///< each core's cycle count

    /** Load balance: average / slowest core utilization. */
    double
    balance() const
    {
        if (perCore.empty() || cycles == 0)
            return 0.0;
        double sum = 0;
        for (Cycles c : perCore)
            sum += static_cast<double>(c);
        return sum / perCore.size() / static_cast<double>(cycles);
    }
};

/**
 * Run a GPM app across num_cores SparseCore cores.
 * @param root_stride extra sampling on top of the core split
 */
ParallelGpmResult mineParallelSparseCore(
    gpm::GpmApp app, const graph::CsrGraph &g, unsigned num_cores,
    const arch::SparseCoreConfig &config = arch::SparseCoreConfig{},
    unsigned root_stride = 1);

/** The CPU-baseline equivalent (one scalar core per slice). */
ParallelGpmResult mineParallelCpu(
    gpm::GpmApp app, const graph::CsrGraph &g, unsigned num_cores,
    const arch::SparseCoreConfig &config = arch::SparseCoreConfig{},
    unsigned root_stride = 1);

} // namespace sc::api

#endif // SPARSECORE_API_PARALLEL_HH
