/**
 * @file
 * Multi-core mining (Table 2 configures six cores): the root-vertex
 * loop is split across simulated cores by interleaving, each core
 * owning a private SparseCore engine — its own SUs, S-Cache,
 * scratchpad and L1/L2 — exactly the replication the paper's per-core
 * extension implies. The parallel runtime is the slowest core's cycle
 * count; graph data is read-only, so no coherence traffic is modeled
 * (§5.1).
 *
 * Host execution: the simulation of the cores itself runs on the
 * host work-stealing pool (common/thread_pool.hh). Each simulated
 * core's root slice is further split into chunksPerCore chunks with a
 * fixed chunk→core mapping, so a skewed degree distribution cannot
 * serialize the host run behind one heavy simulated core. Chunk
 * results are reduced in chunk-index order, making the returned
 * ParallelGpmResult bit-identical for any host thread count (see
 * DESIGN.md "Host execution model").
 */

#ifndef SPARSECORE_API_PARALLEL_HH
#define SPARSECORE_API_PARALLEL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/config.hh"
#include "common/thread_pool.hh"
#include "gpm/apps.hh"
#include "streams/setindex/policy.hh"
#include "streams/simd/kernel_table.hh"
#include "trace/replay.hh"

namespace sc::api {

/** Outcome of a multi-core mining run. */
struct ParallelGpmResult
{
    std::uint64_t embeddings = 0; ///< total across cores
    Cycles cycles = 0;            ///< slowest core (wall clock)
    std::vector<Cycles> perCore;  ///< each core's cycle count

    /** Load balance: average / slowest core utilization. */
    double
    balance() const
    {
        if (perCore.empty() || cycles == 0)
            return 0.0;
        double sum = 0;
        for (Cycles c : perCore)
            sum += static_cast<double>(c);
        return sum / perCore.size() / static_cast<double>(cycles);
    }
};

/** Host-side execution knobs for the multi-core runs. */
struct HostOptions
{
    /** Pool to run on; nullptr = ThreadPool::global(). */
    ThreadPool *pool = nullptr;
    /**
     * Root-loop chunks per simulated core (K): the run is split into
     * K * num_cores dynamically-stolen chunks; chunk m is attributed
     * to simulated core m % num_cores. K = 1 reproduces the legacy
     * one-session-per-core split exactly.
     */
    unsigned chunksPerCore = 4;
    /**
     * Host set-op kernel level for this run (nullopt = process
     * default). Scoped for the whole run so every pool thread's
     * chunks use the same kernels; results and cycles are
     * bit-identical across levels either way (the kernels only move
     * host wall-clock), which tests/kernel_table_test.cc asserts.
     */
    std::optional<streams::KernelLevel> kernel;
    /**
     * Hybrid set-index policy for this run (nullopt = process
     * default). Same contract as `kernel`: scoped for the whole run,
     * moves host wall-clock only (tests/set_index_test.cc asserts
     * the cycle invariance).
     */
    std::optional<streams::setindex::IndexPolicy> indexPolicy;
    /**
     * Replay engine for the per-chunk replays (same contract as
     * RunOptions::replayMode): Auto resolves from SC_REPLAY, default
     * Bytecode. Moves host wall-clock only, never simulated cycles —
     * tests/parallel_test.cc asserts the cycle identity.
     */
    trace::ReplayMode replayMode = trace::ReplayMode::Auto;
    /**
     * Share per-chunk traces and compiled bytecode across runs
     * through the content-keyed ArtifactStore (same contract as
     * RunOptions::artifactCache): a warm mining or comparison call
     * skips every chunk's functional capture and compile. nullopt =
     * SC_ARTIFACT_CACHE (default on); cached and cold runs are
     * bit-identical in results and cycles.
     */
    std::optional<bool> artifactCache;
};

/**
 * Run a GPM app across num_cores SparseCore cores.
 * @param root_stride extra sampling on top of the core split
 * @param host host-parallelism knobs (pool, chunking)
 */
ParallelGpmResult mineParallelSparseCore(
    gpm::GpmApp app, const graph::CsrGraph &g, unsigned num_cores,
    const arch::SparseCoreConfig &config = arch::SparseCoreConfig{},
    unsigned root_stride = 1, const HostOptions &host = HostOptions{});

/** The CPU-baseline equivalent (one scalar core per slice). */
ParallelGpmResult mineParallelCpu(
    gpm::GpmApp app, const graph::CsrGraph &g, unsigned num_cores,
    const arch::SparseCoreConfig &config = arch::SparseCoreConfig{},
    unsigned root_stride = 1, const HostOptions &host = HostOptions{});

/** Multi-core comparison sharing one capture per chunk. */
struct ParallelComparison
{
    std::uint64_t functionalResult = 0; ///< total embeddings
    ParallelGpmResult baseline;         ///< CPU cores
    ParallelGpmResult accelerated;      ///< SparseCore cores

    double
    speedup() const
    {
        return accelerated.cycles
                   ? static_cast<double>(baseline.cycles) /
                         static_cast<double>(accelerated.cycles)
                   : 0.0;
    }
};

/**
 * Run a GPM app across num_cores cores on BOTH substrates. Each
 * root-loop chunk's event trace is captured once and replayed onto a
 * private CPU and a private SparseCore backend, so the functional
 * enumeration cost is paid once instead of per substrate. Both
 * results are bit-identical to the corresponding mineParallel* call.
 */
ParallelComparison compareParallelGpm(
    gpm::GpmApp app, const graph::CsrGraph &g, unsigned num_cores,
    const arch::SparseCoreConfig &config = arch::SparseCoreConfig{},
    unsigned root_stride = 1, const HostOptions &host = HostOptions{});

} // namespace sc::api

#endif // SPARSECORE_API_PARALLEL_HH
