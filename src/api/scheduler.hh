/**
 * @file
 * api::JobScheduler — the pluggable scheduling layer under JobQueue.
 *
 * PR 8's queue was fire-and-forget FIFO: every admitted job went
 * straight to the work-stealing pool. On a mixed-dataset batch that
 * convoys — the pool's workers all pick up jobs naming the same cold
 * dataset and block together on the ArtifactStore's in-flight build
 * dedup while other datasets sit untouched. The scheduler fixes this
 * the way the paper's stream ISA keeps the SVPU fed: decouple cold
 * artifact *production* from warm artifact *consumption* so the host
 * workers never stall on work someone else is already doing.
 *
 * Policies (SchedPolicy, default Affinity; SC_JOB_SCHED / the
 * server's --sched flag select):
 *
 *  - Fifo      PR-8 behavior, bit for bit: every admitted job is
 *              dispatched immediately, priorities are ignored. The
 *              baseline the bench compares against.
 *
 *  - Affinity  Jobs are grouped into *lanes* by their dataset
 *              affinity key (the artifact trace key: workload +
 *              dataset content fingerprint + sampling — see
 *              ResolvedJob::affinityKey). The first job of a cold
 *              lane is dispatched as the lane's designated *warmer*;
 *              siblings arriving while it runs are *parked* instead
 *              of burning pool workers on the same in-flight capture.
 *              When the warmer completes, the lane is warm and the
 *              parked jobs are released (they replay the now-resident
 *              trace + program). Distinct lanes spread across the
 *              available slots, so cold captures overlap with warm
 *              replays instead of convoying. Dispatch is capped at
 *              `slots` concurrent jobs; ready jobs beyond that wait
 *              in a priority queue ordered by effective priority
 *              (JobSpec::priority plus starvation-free aging: a held
 *              job gains one lane per aging quantum, so low-priority
 *              work can be delayed but never starved).
 *
 * The scheduler is a pure state machine: no threads, no locks, no
 * clock reads — the caller (JobQueue) holds its mutex across every
 * call and passes `now` in. That makes the parking/wakeup protocol
 * deterministic and directly unit-testable (tests/scheduler_test.cc).
 *
 * Determinism: scheduling moves host wall-clock only. Results and
 * simulated cycles are bit-identical for any policy, slot count or
 * dispatch order (the PR-2/PR-7/PR-8 replay invariants) — the
 * check.sh scheduler leg diffs --sched fifo vs affinity reports
 * byte for byte.
 */

#ifndef SPARSECORE_API_SCHEDULER_HH
#define SPARSECORE_API_SCHEDULER_HH

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sc::api {

/** Queue scheduling policy (see file comment). */
enum class SchedPolicy { Fifo, Affinity };

const char *schedPolicyName(SchedPolicy policy);
/** "fifo" / "affinity" -> policy; nullopt on anything else. */
std::optional<SchedPolicy> parseSchedPolicy(std::string_view name);

/** Counter snapshot of one JobScheduler (under the owner's lock). */
struct SchedulerStats
{
    SchedPolicy policy = SchedPolicy::Fifo;
    std::uint64_t inflight = 0;       ///< dispatched, not yet complete
    std::uint64_t parked = 0;         ///< waiting on a warming lane
    std::uint64_t waitingForSlot = 0; ///< ready, all slots busy
    std::uint64_t warmers = 0;        ///< cold-lane warmers designated
    std::uint64_t convoyAvoided = 0;  ///< park events (jobs that did
                                      ///< not pile onto a cold lane)
    std::uint64_t cancelled = 0;      ///< held jobs cancelled
    /** Jobs admitted per affinity lane, sorted by lane key. */
    std::vector<std::pair<std::string, std::uint64_t>> laneJobs;
};

/**
 * The scheduling state machine. NOT thread-safe by design: the owner
 * serializes calls under its own mutex and supplies timestamps, so
 * unit tests can drive every interleaving deterministically.
 *
 * Contract: each admitted seq is either dispatched by admit()
 * returning true, dispatched later by appearing in an onComplete()
 * return value, or removed by cancel(). The owner must call
 * onComplete() exactly once for every dispatched seq.
 */
class JobScheduler
{
  public:
    using TimePoint = std::chrono::steady_clock::time_point;

    /** Aging quantum: a held job gains one priority lane per this
     *  many seconds held, so aged jobs eventually outrank any fresh
     *  high-priority stream (starvation freedom). */
    static constexpr double kDefaultAgingSeconds = 0.05;

    /**
     * @param policy scheduling policy
     * @param slots  max concurrently dispatched jobs (Affinity only;
     *        clamped to >= 1; Fifo never holds anything)
     * @param aging_seconds aging quantum; <= 0 disables aging
     */
    JobScheduler(SchedPolicy policy, unsigned slots,
                 double aging_seconds = kDefaultAgingSeconds);

    SchedPolicy policy() const { return policy_; }

    /**
     * Admit job `seq`. Returns true when the job should be dispatched
     * to the pool now; false when the scheduler holds it (parked on a
     * warming lane, or ready but out of slots) — it will come back
     * from a later onComplete() or be removed by cancel().
     *
     * `affinity` keys the lane ("" = no shared artifacts: the job
     * never parks and never warms a lane, but still counts against
     * the slot cap).
     */
    bool admit(std::uint64_t seq, const std::string &affinity,
               int priority, TimePoint now);

    /**
     * A dispatched job finished. Returns the held seqs to dispatch
     * now, in dispatch order: the completed job's lane (if it was the
     * warmer) is marked warm and its parked jobs become ready, then
     * free slots are filled by descending effective priority
     * (ties: submission order).
     */
    std::vector<std::uint64_t> onComplete(std::uint64_t seq,
                                          TimePoint now);

    /** Remove a held (parked or waiting-for-slot) job. Returns false
     *  when `seq` is unknown, already dispatched, or done — running
     *  jobs cannot be cancelled. */
    bool cancel(std::uint64_t seq);

    SchedulerStats stats() const;

  private:
    struct Held
    {
        std::uint64_t seq = 0;
        int priority = 0;
        TimePoint enqueued;
        std::string lane; ///< affinity key ("" = none)
    };

    /** Per-affinity-key artifact temperature + parked siblings. */
    struct Lane
    {
        enum class Temp { Cold, Warming, Warm };
        Temp temp = Temp::Cold;
        std::uint64_t warmer = 0; ///< seq of the designated warmer
        std::uint64_t jobs = 0;   ///< total admitted to this lane
        std::vector<Held> parked;
    };

    void dispatchLocked(const Held &held);
    int effectivePriority(const Held &held, TimePoint now) const;

    const SchedPolicy policy_;
    const unsigned slots_;
    const double agingSeconds_;

    std::unordered_map<std::string, Lane> lanes_;
    std::vector<Held> ready_; ///< have no free slot yet
    std::unordered_map<std::uint64_t, std::string> dispatched_;
    std::uint64_t warmers_ = 0;
    std::uint64_t convoyAvoided_ = 0;
    std::uint64_t cancelled_ = 0;
};

} // namespace sc::api

#endif // SPARSECORE_API_SCHEDULER_HH
