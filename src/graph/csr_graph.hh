/**
 * @file
 * Compressed sparse row (CSR) graph (§3.2 of the paper).
 *
 * Two arrays: the vertex array (row offsets) and the edge array (each
 * vertex's neighbor list, sorted ascending). A third per-vertex array
 * — the CSR *offset* the paper loads into GFR2 — stores, for each
 * vertex v, the position within N(v) of the smallest neighbor larger
 * than v; it supports bounded intersection and symmetry breaking.
 *
 * Graphs carry synthetic base addresses so timing models can replay
 * their accesses through the cache hierarchy.
 */

#ifndef SPARSECORE_GRAPH_CSR_GRAPH_HH
#define SPARSECORE_GRAPH_CSR_GRAPH_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "streams/setindex/set_index.hh"

namespace sc::graph {

/** Immutable undirected graph in CSR form. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from raw CSR arrays.
     * @param offsets row offsets, size numVertices+1
     * @param edges concatenated sorted neighbor lists
     */
    CsrGraph(std::vector<std::uint64_t> offsets, std::vector<VertexId> edges,
             std::string name = "graph");

    // The stream set index is registered against the live edge-array
    // pointer range (streams/setindex/registry.hh), so the graph
    // manages that registration across copies, moves and destruction:
    // copies re-register their own arrays, moves transfer the
    // registration (vector moves keep the data pointer), and the
    // destructor removes it strictly before the arrays are freed.
    CsrGraph(const CsrGraph &other);
    CsrGraph &operator=(const CsrGraph &other);
    CsrGraph(CsrGraph &&other) noexcept;
    CsrGraph &operator=(CsrGraph &&other) noexcept;
    ~CsrGraph();

    VertexId numVertices() const
    {
        return offsets_.empty()
                   ? 0
                   : static_cast<VertexId>(offsets_.size() - 1);
    }
    /** Directed edge-slot count (2x the undirected edge count). */
    std::uint64_t numEdgeSlots() const { return edges_.size(); }
    /** Undirected edge count. */
    std::uint64_t numEdges() const { return edges_.size() / 2; }

    std::uint32_t
    degree(VertexId v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }
    std::uint32_t maxDegree() const { return maxDegree_; }
    double avgDegree() const;

    /** Sorted neighbor list of v. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {edges_.data() + offsets_[v],
                edges_.data() + offsets_[v + 1]};
    }

    /** Neighbors of v strictly greater than v (uses the offset array). */
    std::span<const VertexId>
    neighborsAbove(VertexId v) const
    {
        return {edges_.data() + offsets_[v] + aboveOffsets_[v],
                edges_.data() + offsets_[v + 1]};
    }

    /** Neighbors of v strictly smaller than v. */
    std::span<const VertexId>
    neighborsBelow(VertexId v) const
    {
        return {edges_.data() + offsets_[v],
                edges_.data() + offsets_[v] + aboveOffsets_[v]};
    }

    /** Position within N(v) of the first neighbor > v (GFR2 content). */
    std::uint32_t aboveOffset(VertexId v) const { return aboveOffsets_[v]; }

    /** True when (u,v) is an edge (binary search). */
    bool hasEdge(VertexId u, VertexId v) const;

    /** Simulated byte address of N(v)'s first key (edge array). */
    Addr
    edgeListAddr(VertexId v) const
    {
        return edgeArrayBase_ + offsets_[v] * sizeof(VertexId);
    }
    /** Simulated byte address of the vertex-array entry for v. */
    Addr
    vertexEntryAddr(VertexId v) const
    {
        return vertexArrayBase_ + v * sizeof(std::uint64_t);
    }
    Addr vertexArrayBase() const { return vertexArrayBase_; }
    Addr edgeArrayBase() const { return edgeArrayBase_; }

    const std::string &name() const { return name_; }
    const std::vector<std::uint64_t> &offsets() const { return offsets_; }
    const std::vector<VertexId> &edges() const { return edges_; }

    /** Content fingerprint (FNV-1a over the CSR arrays, name
     *  excluded): identical for structurally identical graphs.
     *  Computed once at construction; the artifact store's content
     *  keys (api/artifact_store.hh) are built from it. */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Approximate resident bytes of the CSR arrays + offset array
     *  (artifact-store byte accounting). */
    std::size_t
    memoryBytes() const
    {
        return offsets_.size() * sizeof(std::uint64_t) +
               edges_.size() * sizeof(VertexId) +
               aboveOffsets_.size() * sizeof(std::uint32_t);
    }

    /** Hybrid bitmap/array stream set index over this graph's
     *  adjacency lists (null for empty or non-indexable graphs).
     *  Shared by copies — the permutation and bitmap chunks are
     *  identical for identical CSR arrays. */
    const std::shared_ptr<const streams::setindex::StreamSetIndex> &
    setIndex() const
    {
        return index_;
    }

  private:
    void registerSetIndex();

    std::vector<std::uint64_t> offsets_;
    std::vector<VertexId> edges_;
    std::vector<std::uint32_t> aboveOffsets_;
    std::uint32_t maxDegree_ = 0;
    std::uint64_t fingerprint_ = 0;
    std::string name_;

    // Synthetic address map: vertex array first, edge array after it,
    // both offset from a fixed heap base.
    Addr vertexArrayBase_ = 0x100000000ull;
    Addr edgeArrayBase_ = 0;

    std::shared_ptr<const streams::setindex::StreamSetIndex> index_;
};

} // namespace sc::graph

#endif // SPARSECORE_GRAPH_CSR_GRAPH_HH
