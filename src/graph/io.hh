/**
 * @file
 * Dataset file I/O, so the library runs on real data when available:
 * SNAP-style edge lists for graphs (the format wiki-vote, com-youtube
 * etc. are distributed in) and MatrixMarket coordinate files for
 * sparse matrices (the UF collection's format).
 */

#ifndef SPARSECORE_GRAPH_IO_HH
#define SPARSECORE_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/csr_graph.hh"
#include "tensor/sparse_matrix.hh"

namespace sc::graph {

/**
 * Parse a SNAP-style edge list: one "u v" pair per line, '#' or '%'
 * comments, arbitrary whitespace. Vertex ids are compacted to a dense
 * 0-based range; self loops and duplicates are dropped.
 */
CsrGraph loadEdgeList(std::istream &in, std::string name = "graph");

/** Load an edge-list file; fatal() when the file cannot be opened. */
CsrGraph loadEdgeListFile(const std::string &path);

/** Write a graph as a SNAP-style edge list (each edge once, u < v). */
void saveEdgeList(const CsrGraph &g, std::ostream &out);

} // namespace sc::graph

namespace sc::tensor {

/**
 * Parse a MatrixMarket coordinate file ("%%MatrixMarket matrix
 * coordinate real general/symmetric"). Pattern files get value 1.0;
 * symmetric files are expanded.
 */
SparseMatrix loadMatrixMarket(std::istream &in,
                              std::string name = "matrix");

/** Load a MatrixMarket file; fatal() when it cannot be opened. */
SparseMatrix loadMatrixMarketFile(const std::string &path);

/** Write a matrix in MatrixMarket coordinate format. */
void saveMatrixMarket(const SparseMatrix &m, std::ostream &out);

} // namespace sc::tensor

#endif // SPARSECORE_GRAPH_IO_HH
