#include "graph/io.hh"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"
#include "graph/graph_builder.hh"

namespace sc::graph {

CsrGraph
loadEdgeList(std::istream &in, std::string name)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
    std::unordered_map<std::uint64_t, VertexId> compact;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto first =
            line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#' ||
            line[first] == '%') {
            continue;
        }
        std::istringstream fields(line);
        std::uint64_t u, v;
        if (!(fields >> u >> v))
            fatal("edge list parse error at line %zu", lineno);
        raw.emplace_back(u, v);
        compact.emplace(u, 0);
        compact.emplace(v, 0);
    }
    if (raw.empty())
        fatal("edge list '%s' contains no edges", name.c_str());

    // Compact ids in sorted order so output is deterministic.
    std::vector<std::uint64_t> ids;
    ids.reserve(compact.size());
    for (const auto &[id, unused] : compact)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::size_t i = 0; i < ids.size(); ++i)
        compact[ids[i]] = static_cast<VertexId>(i);

    GraphBuilder builder(static_cast<VertexId>(ids.size()));
    for (const auto &[u, v] : raw)
        builder.addEdge(compact[u], compact[v]);
    return std::move(builder).build(std::move(name));
}

CsrGraph
loadEdgeListFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open edge list '%s'", path.c_str());
    return loadEdgeList(in, path);
}

void
saveEdgeList(const CsrGraph &g, std::ostream &out)
{
    out << "# " << g.name() << ": " << g.numVertices()
        << " vertices, " << g.numEdges() << " edges\n";
    for (VertexId u = 0; u < g.numVertices(); ++u)
        for (VertexId v : g.neighborsAbove(u))
            out << u << ' ' << v << '\n';
}

} // namespace sc::graph

namespace sc::tensor {

SparseMatrix
loadMatrixMarket(std::istream &in, std::string name)
{
    std::string header;
    if (!std::getline(in, header) ||
        header.rfind("%%MatrixMarket", 0) != 0) {
        fatal("'%s' is not a MatrixMarket file", name.c_str());
    }
    std::istringstream head(header);
    std::string tag, object, format, field, symmetry;
    head >> tag >> object >> format >> field >> symmetry;
    if (object != "matrix" || format != "coordinate")
        fatal("unsupported MatrixMarket header in '%s'", name.c_str());
    const bool pattern = field == "pattern";
    const bool symmetric = symmetry == "symmetric";
    if (field != "real" && field != "integer" && !pattern)
        fatal("unsupported MatrixMarket field '%s'", field.c_str());

    std::string line;
    std::uint32_t rows = 0, cols = 0;
    std::uint64_t nnz = 0;
    while (std::getline(in, line)) {
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '%')
            continue;
        std::istringstream sizes(line);
        if (!(sizes >> rows >> cols >> nnz))
            fatal("bad MatrixMarket size line in '%s'", name.c_str());
        break;
    }
    if (rows == 0 || cols == 0)
        fatal("missing MatrixMarket size line in '%s'", name.c_str());

    std::vector<Triplet> triplets;
    triplets.reserve(nnz * (symmetric ? 2 : 1));
    std::uint64_t seen = 0;
    while (seen < nnz && std::getline(in, line)) {
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '%')
            continue;
        std::istringstream entry(line);
        std::uint32_t r, c;
        double value = 1.0;
        if (!(entry >> r >> c))
            fatal("bad MatrixMarket entry in '%s'", name.c_str());
        if (!pattern && !(entry >> value))
            fatal("missing value in '%s'", name.c_str());
        if (r == 0 || c == 0 || r > rows || c > cols)
            fatal("MatrixMarket index out of range in '%s'",
                  name.c_str());
        triplets.push_back({r - 1, c - 1, value}); // 1-based input
        if (symmetric && r != c)
            triplets.push_back({c - 1, r - 1, value});
        ++seen;
    }
    if (seen != nnz)
        fatal("'%s' ended after %llu of %llu entries", name.c_str(),
              static_cast<unsigned long long>(seen),
              static_cast<unsigned long long>(nnz));
    return SparseMatrix::fromTriplets(rows, cols, std::move(triplets),
                                      std::move(name));
}

SparseMatrix
loadMatrixMarketFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open matrix file '%s'", path.c_str());
    return loadMatrixMarket(in, path);
}

void
saveMatrixMarket(const SparseMatrix &m, std::ostream &out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
    for (std::uint32_t r = 0; r < m.rows(); ++r) {
        auto keys = m.rowKeys(r);
        auto vals = m.rowVals(r);
        for (std::size_t i = 0; i < keys.size(); ++i)
            out << r + 1 << ' ' << keys[i] + 1 << ' ' << vals[i]
                << '\n';
    }
}

} // namespace sc::tensor
