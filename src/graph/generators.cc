#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "graph/graph_builder.hh"

namespace sc::graph {

CsrGraph
generateErdosRenyi(VertexId num_vertices, std::uint64_t num_edges,
                   std::uint64_t seed, std::string name)
{
    if (num_vertices < 2)
        fatal("Erdos-Renyi needs at least two vertices");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    // The builder drops duplicates, so retry until the unique-edge
    // target is met (with a generous cap for near-complete graphs).
    const std::uint64_t attempts = num_edges * 10 + 64;
    for (std::uint64_t i = 0; i < attempts &&
                              builder.pendingEdges() < num_edges;
         ++i) {
        auto u = static_cast<VertexId>(rng.below(num_vertices));
        auto v = static_cast<VertexId>(rng.below(num_vertices));
        builder.addEdge(u, v);
    }
    return std::move(builder).build(std::move(name));
}

CsrGraph
generateChungLu(VertexId num_vertices, std::uint64_t num_edges,
                std::uint32_t max_degree, double alpha,
                std::uint64_t seed, std::string name, double closure)
{
    if (num_vertices < 2)
        fatal("Chung-Lu needs at least two vertices");
    if (closure < 0.0 || closure >= 1.0)
        fatal("closure fraction must be in [0, 1)");
    Rng rng(seed);

    // Power-law weights w_i = c * (i+1)^(-1/(alpha-1)), capped so the
    // expected max degree is near max_degree.
    const double gamma = 1.0 / (alpha - 1.0);
    std::vector<double> weights(num_vertices);
    double total = 0.0;
    for (VertexId i = 0; i < num_vertices; ++i) {
        weights[i] = std::pow(static_cast<double>(i + 1), -gamma);
        total += weights[i];
    }
    // Scale so that sum of expected degrees = 2 * num_edges, then cap
    // the head at max_degree.
    const double scale = 2.0 * static_cast<double>(num_edges) / total;
    for (auto &w : weights)
        w = std::min(w * scale, static_cast<double>(max_degree));

    // Build an alias-free sampler: cumulative weights + binary search.
    std::vector<double> cumulative(num_vertices);
    double acc = 0.0;
    for (VertexId i = 0; i < num_vertices; ++i) {
        acc += weights[i];
        cumulative[i] = acc;
    }

    auto sample = [&]() -> VertexId {
        const double r = rng.uniform() * acc;
        auto it = std::lower_bound(cumulative.begin(), cumulative.end(),
                                   r);
        return static_cast<VertexId>(it - cumulative.begin());
    };

    const std::uint64_t base_edges = static_cast<std::uint64_t>(
        static_cast<double>(num_edges) * (1.0 - closure));
    GraphBuilder builder(num_vertices);
    std::vector<std::vector<VertexId>> adjacency(num_vertices);
    auto add_tracked = [&](VertexId u, VertexId v) {
        if (!builder.addEdge(u, v))
            return false;
        adjacency[u].push_back(v);
        adjacency[v].push_back(u);
        return true;
    };

    const std::uint64_t attempts = num_edges * 20 + 64;
    for (std::uint64_t i = 0; i < attempts &&
                              builder.pendingEdges() < base_edges;
         ++i) {
        add_tracked(sample(), sample());
    }

    // Wedge-closure pass: pick a degree-weighted center, connect two
    // of its current neighbors. This is what gives the graph the
    // triangle density of real social/citation networks.
    for (std::uint64_t i = 0; i < attempts &&
                              builder.pendingEdges() < num_edges;
         ++i) {
        const VertexId center = sample();
        const auto &nbrs = adjacency[center];
        if (nbrs.size() < 2)
            continue;
        const VertexId u = nbrs[rng.below(nbrs.size())];
        const VertexId v = nbrs[rng.below(nbrs.size())];
        if (u != v)
            add_tracked(u, v);
    }
    return std::move(builder).build(std::move(name));
}

CsrGraph
generateRmat(VertexId num_vertices_pow2, std::uint64_t num_edges,
             std::uint64_t seed, double a, double b, double c,
             std::string name)
{
    if (num_vertices_pow2 == 0 ||
        (num_vertices_pow2 & (num_vertices_pow2 - 1)) != 0) {
        fatal("R-MAT vertex count must be a power of two");
    }
    unsigned levels = 0;
    while ((VertexId{1} << levels) < num_vertices_pow2)
        ++levels;

    Rng rng(seed);
    GraphBuilder builder(num_vertices_pow2);
    const std::uint64_t attempts = num_edges * 10 + 64;
    for (std::uint64_t i = 0; i < attempts &&
                              builder.pendingEdges() < num_edges;
         ++i) {
        VertexId u = 0, v = 0;
        for (unsigned level = 0; level < levels; ++level) {
            const double r = rng.uniform();
            u <<= 1;
            v <<= 1;
            if (r < a) {
                // top-left quadrant
            } else if (r < a + b) {
                v |= 1;
            } else if (r < a + b + c) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.addEdge(u, v);
    }
    return std::move(builder).build(std::move(name));
}

CsrGraph
generateSmallWorld(VertexId num_vertices, std::uint32_t ring_hops,
                   std::uint64_t num_chords, std::uint64_t seed,
                   std::string name)
{
    if (num_vertices < 3)
        fatal("small-world graph needs at least three vertices");
    Rng rng(seed);
    GraphBuilder builder(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v)
        for (std::uint32_t h = 1; h <= ring_hops; ++h)
            builder.addEdge(v, (v + h) % num_vertices);
    for (std::uint64_t i = 0; i < num_chords; ++i) {
        auto u = static_cast<VertexId>(rng.below(num_vertices));
        auto v = static_cast<VertexId>(rng.below(num_vertices));
        builder.addEdge(u, v);
    }
    return std::move(builder).build(std::move(name));
}

} // namespace sc::graph
