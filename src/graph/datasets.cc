#include "graph/datasets.hh"

#include "common/logging.hh"
#include "graph/generators.hh"

namespace sc::graph {

namespace {

/**
 * The dataset registry caches, built on the shared artifact-cache
 * primitive: one entry per generated dataset, built exactly once even
 * when concurrent sweep points request the same key (the in-flight
 * dedup replaces the old race-and-discard scheme). Capacity is
 * unbounded — loadGraph() hands out plain references, and every
 * downstream artifact (trace, bytecode, set-index registration) keys
 * off the resident graph.
 */
LruCache<std::string, CsrGraph> &
graphCache()
{
    static LruCache<std::string, CsrGraph> cache(
        0, [](const CsrGraph &g) { return g.memoryBytes(); });
    return cache;
}

LruCache<std::string, LabeledGraph> &
labeledGraphCache()
{
    static LruCache<std::string, LabeledGraph> cache(
        0, [](const LabeledGraph &g) { return g.memoryBytes(); });
    return cache;
}

} // namespace

const std::vector<GraphDataset> &
graphDatasets()
{
    // Published statistics (Table 4):
    //   C citeseer            3.3K/4.5K  maxD 99
    //   E email-eu-core       1.0K/16.1K maxD 345
    //   B soc-sign-bitcoinalpha 3.8K/24K maxD 511
    //   G p2p-Gnutella08      6K/21K     maxD 97
    //   F socfb-Haverford76   1.4K/60K   maxD 375
    //   W wiki-vote           7K/104K    maxD 1065
    //   M mico                96.6K/1.1M maxD 1359  (scaled 1/4.4)
    //   Y com-youtube         1.1M/3.0M  maxD 28754 (scaled 1/27)
    //   P patent              3.8M/16.5M maxD 793   (scaled 1/62)
    //   L livejournal         4.8M/42.9M maxD 20333 (scaled 1/100)
    static const std::vector<GraphDataset> datasets = {
        {"C", "citeseer", 3300, 4500, 99, 2.6, 1.0},
        {"E", "email-eu-core", 1005, 16100, 345, 1.9, 1.0},
        {"B", "soc-sign-bitcoinalpha", 3783, 24000, 511, 2.0, 1.0},
        {"G", "p2p-Gnutella08", 6000, 21000, 97, 2.6, 1.0},
        {"F", "socfb-Haverford76", 1446, 60000, 375, 1.8, 1.0},
        {"W", "wiki-vote", 7100, 104000, 1065, 2.0, 1.0},
        {"M", "mico", 22000, 250000, 320, 2.1, 4.4},
        {"Y", "com-youtube", 40000, 110000, 1050, 1.9, 27.0},
        {"P", "patent", 61000, 266000, 120, 2.5, 62.0},
        {"L", "livejournal", 48000, 429000, 900, 2.1, 100.0},
    };
    return datasets;
}

const GraphDataset &
graphDataset(const std::string &key)
{
    for (const auto &dataset : graphDatasets())
        if (dataset.key == key)
            return dataset;
    fatal("unknown graph dataset key '%s'", key.c_str());
}

std::shared_ptr<const CsrGraph>
loadGraphShared(const std::string &key)
{
    return graphCache().getOrBuild(key, [&key] {
        const GraphDataset &ds = graphDataset(key);
        // Seed derived from the key so every dataset is distinct but
        // reproducible across runs.
        std::uint64_t seed = 0x5ca1ab1e;
        for (char c : ds.key)
            seed = seed * 131 + static_cast<unsigned char>(c);
        return std::make_shared<const CsrGraph>(generateChungLu(
            ds.numVertices, ds.numEdges, ds.maxDegree, ds.alpha, seed,
            ds.name));
    });
}

const CsrGraph &
loadGraph(const std::string &key)
{
    // The registry cache is unbounded, so the shared_ptr it retains
    // keeps the graph alive for the process; the reference is stable.
    return *loadGraphShared(key);
}

std::shared_ptr<const LabeledGraph>
loadLabeledGraphShared(const std::string &key, std::uint32_t num_labels)
{
    const std::string cache_key =
        key + "/" + std::to_string(num_labels);
    return labeledGraphCache().getOrBuild(cache_key, [&] {
        std::uint64_t seed = 0x1abe1ed;
        for (char c : key)
            seed = seed * 131 + static_cast<unsigned char>(c);
        return std::make_shared<const LabeledGraph>(
            LabeledGraph::withRandomLabels(loadGraph(key), num_labels,
                                           seed));
    });
}

const LabeledGraph &
loadLabeledGraph(const std::string &key, std::uint32_t num_labels)
{
    return *loadLabeledGraphShared(key, num_labels);
}

CacheStats
graphCacheStats()
{
    return graphCache().stats();
}

CacheStats
labeledGraphCacheStats()
{
    return labeledGraphCache().stats();
}

std::vector<std::string>
smallGraphKeys()
{
    return {"B", "E", "F", "W"};
}

std::vector<std::string>
mediumGraphKeys()
{
    return {"E", "F", "W", "M", "Y"};
}

std::vector<std::string>
allGraphKeys()
{
    return {"G", "C", "B", "E", "F", "W", "M", "Y", "P", "L"};
}

} // namespace sc::graph
