#include "graph/graph_builder.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sc::graph {

GraphBuilder::GraphBuilder(VertexId num_vertices)
    : numVertices_(num_vertices)
{
}

bool
GraphBuilder::addEdge(VertexId u, VertexId v)
{
    if (u == v)
        return false;
    if (u >= numVertices_ || v >= numVertices_)
        fatal("edge (%u,%u) out of range for %u vertices", u, v,
              numVertices_);
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
        std::max(u, v);
    if (!seen_.insert(packed).second)
        return false;
    edges_.emplace_back(u, v);
    return true;
}

void
GraphBuilder::addEdges(const std::vector<Edge> &edges)
{
    for (const auto &[u, v] : edges)
        addEdge(u, v);
}

CsrGraph
GraphBuilder::build(std::string name) &&
{
    // Symmetrize: one directed slot per direction.
    std::vector<Edge> directed;
    directed.reserve(edges_.size() * 2);
    for (const auto &[u, v] : edges_) {
        directed.emplace_back(u, v);
        directed.emplace_back(v, u);
    }
    std::sort(directed.begin(), directed.end());
    directed.erase(std::unique(directed.begin(), directed.end()),
                   directed.end());

    std::vector<std::uint64_t> offsets(numVertices_ + 1, 0);
    for (const auto &[u, v] : directed)
        ++offsets[u + 1];
    for (VertexId v = 0; v < numVertices_; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> adjacency;
    adjacency.reserve(directed.size());
    for (const auto &[u, v] : directed)
        adjacency.push_back(v);

    return CsrGraph(std::move(offsets), std::move(adjacency),
                    std::move(name));
}

CsrGraph
buildCsr(VertexId num_vertices, const std::vector<Edge> &edges,
         std::string name)
{
    GraphBuilder builder(num_vertices);
    builder.addEdges(edges);
    return std::move(builder).build(std::move(name));
}

} // namespace sc::graph
