/**
 * @file
 * Table-4 dataset registry.
 *
 * Each entry reproduces the published |V|, |E|, average degree and
 * max-degree statistics of a real graph with a deterministic synthetic
 * generator (see DESIGN.md §4/§5 for the substitution rationale).
 * The four large graphs (M, Y, P, L) are scaled down by the recorded
 * factor to keep simulation tractable; the degree *shape* (avg degree,
 * maxD/|V| ratio) is preserved.
 */

#ifndef SPARSECORE_GRAPH_DATASETS_HH
#define SPARSECORE_GRAPH_DATASETS_HH

#include <memory>
#include <string>
#include <vector>

#include "common/cache.hh"
#include "graph/csr_graph.hh"
#include "graph/labeled_graph.hh"

namespace sc::graph {

/** Descriptor of one Table-4 dataset. */
struct GraphDataset
{
    std::string key;        ///< one-letter code used by the figures
    std::string name;       ///< dataset name from Table 4
    VertexId numVertices;   ///< generated |V|
    std::uint64_t numEdges; ///< generated |E| (undirected)
    std::uint32_t maxDegree;///< target maximum degree
    double alpha;           ///< power-law exponent used by Chung-Lu
    double scale;           ///< published-size / generated-size factor
};

/** All ten Table-4 datasets in paper order (C,E,B,G,F,W,M,Y,P,L). */
const std::vector<GraphDataset> &graphDatasets();

/** Lookup by one-letter key ("C".."L"); fatal() on unknown keys. */
const GraphDataset &graphDataset(const std::string &key);

/**
 * Generate (and memoize) the graph for a dataset key. The memo is a
 * common/cache.hh LruCache shared with the artifact store's report:
 * a graph is generated (and its StreamSetIndex built) exactly once
 * per process, even under concurrent sweep points. Returned
 * references stay valid for the process lifetime (the registry cache
 * is unbounded — dataset graphs are the roots every other artifact
 * hangs off).
 */
const CsrGraph &loadGraph(const std::string &key);

/** loadGraph with shared ownership, for callers that manage artifact
 *  lifetime explicitly (api::ArtifactStore). */
std::shared_ptr<const CsrGraph> loadGraphShared(const std::string &key);

/** Labeled variant of a dataset (FSM); labels drawn from num_labels. */
const LabeledGraph &loadLabeledGraph(const std::string &key,
                                     std::uint32_t num_labels = 8);

/** Shared-ownership variant of loadLabeledGraph. */
std::shared_ptr<const LabeledGraph>
loadLabeledGraphShared(const std::string &key,
                       std::uint32_t num_labels = 8);

/** Hit/miss counters of the dataset registry caches (graphs,
 *  labeled graphs) — surfaced through api::ArtifactStore::stats(). */
CacheStats graphCacheStats();
CacheStats labeledGraphCacheStats();

/** The dataset keys used by each figure's x-axis. */
std::vector<std::string> smallGraphKeys();  ///< B,E,F,W (Figs. 12/13)
std::vector<std::string> mediumGraphKeys(); ///< E,F,W,M,Y (Fig. 7)
std::vector<std::string> allGraphKeys();    ///< all ten (Figs. 8-10)

} // namespace sc::graph

#endif // SPARSECORE_GRAPH_DATASETS_HH
