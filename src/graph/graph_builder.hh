/**
 * @file
 * Build CSR graphs from unordered edge lists: symmetrize, sort,
 * de-duplicate, drop self loops, optionally relabel by degree.
 */

#ifndef SPARSECORE_GRAPH_GRAPH_BUILDER_HH
#define SPARSECORE_GRAPH_GRAPH_BUILDER_HH

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/csr_graph.hh"

namespace sc::graph {

/** An undirected edge as an unordered vertex pair. */
using Edge = std::pair<VertexId, VertexId>;

/** Incrementally collects edges, then finalizes into a CsrGraph. */
class GraphBuilder
{
  public:
    explicit GraphBuilder(VertexId num_vertices);

    /**
     * Add one undirected edge; self loops and duplicates are
     * silently dropped.
     * @return true when the edge was new
     */
    bool addEdge(VertexId u, VertexId v);

    void addEdges(const std::vector<Edge> &edges);

    /** Unique undirected edges collected so far. */
    std::uint64_t pendingEdges() const { return edges_.size(); }
    VertexId numVertices() const { return numVertices_; }

    /**
     * Finalize into a CSR graph. Duplicates are removed; each
     * undirected edge appears in both endpoint lists.
     */
    CsrGraph build(std::string name = "graph") &&;

  private:
    VertexId numVertices_;
    std::vector<Edge> edges_;
    std::unordered_set<std::uint64_t> seen_;
};

/** Convenience: build directly from an edge vector. */
CsrGraph buildCsr(VertexId num_vertices, const std::vector<Edge> &edges,
                  std::string name = "graph");

} // namespace sc::graph

#endif // SPARSECORE_GRAPH_GRAPH_BUILDER_HH
