/**
 * @file
 * Vertex-labeled graph for frequent subgraph mining (FSM).
 */

#ifndef SPARSECORE_GRAPH_LABELED_GRAPH_HH
#define SPARSECORE_GRAPH_LABELED_GRAPH_HH

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hh"

namespace sc::graph {

/** Vertex label type (FSM patterns are vertex-labeled, like mico). */
using Label = std::uint32_t;

/** A CSR graph plus per-vertex labels. */
class LabeledGraph
{
  public:
    LabeledGraph() = default;
    LabeledGraph(CsrGraph graph, std::vector<Label> labels);

    /** Assign deterministic pseudo-random labels from [0, numLabels). */
    static LabeledGraph withRandomLabels(CsrGraph graph,
                                         std::uint32_t num_labels,
                                         std::uint64_t seed);

    const CsrGraph &graph() const { return graph_; }
    Label label(VertexId v) const { return labels_[v]; }
    const std::vector<Label> &labels() const { return labels_; }
    std::uint32_t numLabels() const { return numLabels_; }

    /** Content fingerprint (graph fingerprint mixed with the label
     *  array); artifact-store FSM trace keys are built from it. */
    std::uint64_t fingerprint() const { return fingerprint_; }

    /** Approximate resident bytes (artifact-store accounting). */
    std::size_t
    memoryBytes() const
    {
        return graph_.memoryBytes() + labels_.size() * sizeof(Label);
    }

  private:
    CsrGraph graph_;
    std::vector<Label> labels_;
    std::uint32_t numLabels_ = 0;
    std::uint64_t fingerprint_ = 0;
};

} // namespace sc::graph

#endif // SPARSECORE_GRAPH_LABELED_GRAPH_HH
