#include "graph/csr_graph.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "streams/setindex/registry.hh"

namespace sc::graph {

CsrGraph::CsrGraph(std::vector<std::uint64_t> offsets,
                   std::vector<VertexId> edges, std::string name)
    : offsets_(std::move(offsets)), edges_(std::move(edges)),
      name_(std::move(name))
{
    if (offsets_.empty())
        fatal("CSR graph requires a non-empty offset array");
    if (offsets_.front() != 0 || offsets_.back() != edges_.size())
        fatal("CSR offsets are inconsistent with the edge array");

    const VertexId n = numVertices();
    aboveOffsets_.resize(n);
    for (VertexId v = 0; v < n; ++v) {
        auto list = neighbors(v);
        if (!std::is_sorted(list.begin(), list.end()))
            fatal("neighbor list of vertex %u is not sorted", v);
        maxDegree_ = std::max(maxDegree_, degree(v));
        auto it = std::upper_bound(list.begin(), list.end(), v);
        aboveOffsets_[v] =
            static_cast<std::uint32_t>(it - list.begin());
    }
    edgeArrayBase_ = vertexArrayBase_ +
                     (static_cast<Addr>(n) + 1) * sizeof(std::uint64_t);
    // Align the edge array to a cache line for clean prefetch modeling.
    edgeArrayBase_ = (edgeArrayBase_ + 63) & ~Addr{63};

    // Content fingerprint (FNV-1a over both CSR arrays): the
    // artifact store keys traces by it, so structurally identical
    // graphs share captured/compiled artifacts regardless of name.
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(n);
    mix(edges_.size());
    for (const std::uint64_t off : offsets_)
        mix(off);
    for (const VertexId e : edges_)
        mix(e);
    fingerprint_ = h;

    index_ = streams::setindex::StreamSetIndex::build(offsets_, edges_);
    registerSetIndex();
}

void
CsrGraph::registerSetIndex()
{
    if (!index_)
        return;
    streams::setindex::registerGraphIndex(this, edges_.data(),
                                          edges_.size(), offsets_.data(),
                                          numVertices(), index_);
}

CsrGraph::CsrGraph(const CsrGraph &other)
    : offsets_(other.offsets_), edges_(other.edges_),
      aboveOffsets_(other.aboveOffsets_), maxDegree_(other.maxDegree_),
      fingerprint_(other.fingerprint_), name_(other.name_),
      vertexArrayBase_(other.vertexArrayBase_),
      edgeArrayBase_(other.edgeArrayBase_), index_(other.index_)
{
    registerSetIndex();
}

CsrGraph &
CsrGraph::operator=(const CsrGraph &other)
{
    if (this == &other)
        return *this;
    streams::setindex::unregisterGraphIndex(this);
    offsets_ = other.offsets_;
    edges_ = other.edges_;
    aboveOffsets_ = other.aboveOffsets_;
    maxDegree_ = other.maxDegree_;
    fingerprint_ = other.fingerprint_;
    name_ = other.name_;
    vertexArrayBase_ = other.vertexArrayBase_;
    edgeArrayBase_ = other.edgeArrayBase_;
    index_ = other.index_;
    registerSetIndex();
    return *this;
}

CsrGraph::CsrGraph(CsrGraph &&other) noexcept
    : offsets_(std::move(other.offsets_)),
      edges_(std::move(other.edges_)),
      aboveOffsets_(std::move(other.aboveOffsets_)),
      maxDegree_(other.maxDegree_), fingerprint_(other.fingerprint_),
      name_(std::move(other.name_)),
      vertexArrayBase_(other.vertexArrayBase_),
      edgeArrayBase_(other.edgeArrayBase_),
      index_(std::move(other.index_))
{
    // Vector moves keep the data pointer, so the registration simply
    // changes owner.
    streams::setindex::unregisterGraphIndex(&other);
    registerSetIndex();
}

CsrGraph &
CsrGraph::operator=(CsrGraph &&other) noexcept
{
    if (this == &other)
        return *this;
    streams::setindex::unregisterGraphIndex(this);
    streams::setindex::unregisterGraphIndex(&other);
    offsets_ = std::move(other.offsets_);
    edges_ = std::move(other.edges_);
    aboveOffsets_ = std::move(other.aboveOffsets_);
    maxDegree_ = other.maxDegree_;
    fingerprint_ = other.fingerprint_;
    name_ = std::move(other.name_);
    vertexArrayBase_ = other.vertexArrayBase_;
    edgeArrayBase_ = other.edgeArrayBase_;
    index_ = std::move(other.index_);
    registerSetIndex();
    return *this;
}

CsrGraph::~CsrGraph()
{
    streams::setindex::unregisterGraphIndex(this);
}

double
CsrGraph::avgDegree() const
{
    const VertexId n = numVertices();
    return n ? static_cast<double>(edges_.size()) / n : 0.0;
}

bool
CsrGraph::hasEdge(VertexId u, VertexId v) const
{
    auto list = neighbors(u);
    return std::binary_search(list.begin(), list.end(), v);
}

} // namespace sc::graph
