/**
 * @file
 * Deterministic synthetic graph generators.
 *
 * Real datasets (Table 4) are not shipped; generators reproduce each
 * dataset's published vertex count, edge count, average degree and
 * heavy-tailed maximum degree. Chung-Lu matches a target power-law
 * degree sequence; R-MAT gives community-like skew; Erdős–Rényi gives
 * a homogeneous control.
 */

#ifndef SPARSECORE_GRAPH_GENERATORS_HH
#define SPARSECORE_GRAPH_GENERATORS_HH

#include <cstdint>
#include <string>

#include "graph/csr_graph.hh"

namespace sc::graph {

/** Erdős–Rényi G(n, m): m uniform random edges. */
CsrGraph generateErdosRenyi(VertexId num_vertices, std::uint64_t num_edges,
                            std::uint64_t seed,
                            std::string name = "erdos-renyi");

/**
 * Chung-Lu generator with a truncated power-law weight sequence and a
 * wedge-closure pass. Produces expected edge count close to num_edges
 * with maximum degree near max_degree; the closure pass converts a
 * fraction of the edge budget into triangle-closing edges so the
 * synthetic graphs exhibit the clustering real social/citation
 * networks have (plain Chung-Lu has near-zero clustering, which would
 * starve the triangle-based applications).
 *
 * @param num_vertices |V|
 * @param num_edges target undirected |E|
 * @param max_degree target maximum degree (heavy tail cap)
 * @param alpha power-law exponent of the weight sequence (~2.1 for
 *        social graphs)
 * @param closure fraction of edges created by closing wedges
 */
CsrGraph generateChungLu(VertexId num_vertices, std::uint64_t num_edges,
                         std::uint32_t max_degree, double alpha,
                         std::uint64_t seed,
                         std::string name = "chung-lu",
                         double closure = 0.2);

/** R-MAT generator (a=0.57, b=c=0.19 by default). */
CsrGraph generateRmat(VertexId num_vertices_pow2, std::uint64_t num_edges,
                      std::uint64_t seed, double a = 0.57, double b = 0.19,
                      double c = 0.19, std::string name = "rmat");

/** A deterministic small ring+chords graph for examples and tests. */
CsrGraph generateSmallWorld(VertexId num_vertices, std::uint32_t ring_hops,
                            std::uint64_t num_chords, std::uint64_t seed,
                            std::string name = "small-world");

} // namespace sc::graph

#endif // SPARSECORE_GRAPH_GENERATORS_HH
