#include "graph/labeled_graph.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sc::graph {

LabeledGraph::LabeledGraph(CsrGraph graph, std::vector<Label> labels)
    : graph_(std::move(graph)), labels_(std::move(labels))
{
    if (labels_.size() != graph_.numVertices())
        fatal("label array size %zu != vertex count %u", labels_.size(),
              graph_.numVertices());
    numLabels_ = labels_.empty()
                     ? 0
                     : *std::max_element(labels_.begin(), labels_.end()) +
                           1;

    // Content fingerprint: the graph's, mixed with every label.
    std::uint64_t h = graph_.fingerprint() ^ 0x9e3779b97f4a7c15ull;
    for (const Label label : labels_) {
        h ^= label;
        h *= 0x100000001b3ull;
    }
    fingerprint_ = h;
}

LabeledGraph
LabeledGraph::withRandomLabels(CsrGraph graph, std::uint32_t num_labels,
                               std::uint64_t seed)
{
    if (num_labels == 0)
        fatal("need at least one label");
    Rng rng(seed);
    std::vector<Label> labels(graph.numVertices());
    for (auto &label : labels)
        label = static_cast<Label>(rng.below(num_labels));
    return LabeledGraph(std::move(graph), std::move(labels));
}

} // namespace sc::graph
