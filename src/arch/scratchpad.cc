#include "arch/scratchpad.hh"

#include "common/logging.hh"

namespace sc::arch {

Scratchpad::Scratchpad(std::uint64_t capacity_bytes)
    : capacityKeys_(capacity_bytes / sizeof(Key))
{
    if (capacityKeys_ == 0)
        fatal("scratchpad must hold at least one key");
}

bool
Scratchpad::lookup(Addr key_addr)
{
    auto it = index_.find(key_addr);
    if (it == index_.end()) {
        ++stats_.counter("misses");
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.counter("hits");
    return true;
}

void
Scratchpad::insert(Addr key_addr, std::uint64_t num_keys)
{
    if (num_keys == 0 || num_keys > capacityKeys_)
        return;
    auto it = index_.find(key_addr);
    if (it != index_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    evictFor(num_keys);
    lru_.push_front({key_addr, num_keys});
    index_[key_addr] = lru_.begin();
    usedKeys_ += num_keys;
    ++stats_.counter("inserts");
}

void
Scratchpad::invalidate(Addr key_addr)
{
    auto it = index_.find(key_addr);
    if (it == index_.end())
        return;
    usedKeys_ -= it->second->keys;
    lru_.erase(it->second);
    index_.erase(it);
}

void
Scratchpad::evictFor(std::uint64_t needed_keys)
{
    while (usedKeys_ + needed_keys > capacityKeys_ && !lru_.empty()) {
        const Entry &victim = lru_.back();
        usedKeys_ -= victim.keys;
        index_.erase(victim.addr);
        lru_.pop_back();
        ++stats_.counter("evictions");
    }
}

} // namespace sc::arch
