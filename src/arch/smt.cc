#include "arch/smt.hh"

#include "common/logging.hh"

namespace sc::arch {

Smt::Smt(unsigned num_entries) : entries_(num_entries)
{
    if (num_entries == 0)
        fatal("SMT requires at least one entry");
    for (unsigned i = 0; i < num_entries; ++i)
        entries_[i].sreg = i;
}

std::optional<unsigned>
Smt::define(std::uint64_t sid)
{
    auto it = defined_.find(sid);
    if (it != defined_.end()) {
        // §3.3: re-defining an active sid overwrites the mapping.
        SmtEntry &e = entries_[it->second];
        e.start = e.produced = false;
        e.pred0 = e.pred1 = noPred;
        ++stats_.counter("redefines");
        return it->second;
    }
    for (unsigned i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].va) {
            SmtEntry &e = entries_[i];
            e.sid = sid;
            e.vd = e.va = true;
            e.start = e.produced = false;
            e.pred0 = e.pred1 = noPred;
            defined_[sid] = i;
            ++stats_.counter("defines");
            return i;
        }
    }
    ++stats_.counter("allocStalls");
    return std::nullopt;
}

void
Smt::decodeFree(std::uint64_t sid)
{
    auto it = defined_.find(sid);
    if (it == defined_.end())
        panic("S_FREE of undefined stream id %llu",
              static_cast<unsigned long long>(sid));
    entries_[it->second].vd = false;
    defined_.erase(it);
    ++stats_.counter("frees");
}

void
Smt::retireFree(unsigned entry_index)
{
    SmtEntry &e = entry(entry_index);
    if (e.vd)
        panic("retiring S_FREE for an entry still defined");
    e.va = false;
    e.start = e.produced = false;
}

unsigned
Smt::spillOne()
{
    for (unsigned i = 0; i < entries_.size(); ++i) {
        if (entries_[i].va) {
            if (entries_[i].vd)
                defined_.erase(entries_[i].sid);
            entries_[i].va = false;
            entries_[i].vd = false;
            ++stats_.counter("spills");
            return i;
        }
    }
    panic("spillOne called on an empty SMT");
}

std::optional<unsigned>
Smt::lookup(std::uint64_t sid) const
{
    auto it = defined_.find(sid);
    if (it == defined_.end())
        return std::nullopt;
    return it->second;
}

SmtEntry &
Smt::entry(unsigned index)
{
    if (index >= entries_.size())
        panic("SMT entry index %u out of range", index);
    return entries_[index];
}

const SmtEntry &
Smt::entry(unsigned index) const
{
    return const_cast<Smt *>(this)->entry(index);
}

unsigned
Smt::activeCount() const
{
    unsigned count = 0;
    for (const auto &e : entries_)
        if (e.va)
            ++count;
    return count;
}

} // namespace sc::arch
