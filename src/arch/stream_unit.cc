#include "arch/stream_unit.hh"

#include "common/logging.hh"

namespace sc::arch {

StreamUnit::StreamUnit(unsigned id, unsigned window,
                       Cycles pipeline_latency)
    : id_(id), window_(window), pipelineLatency_(pipeline_latency)
{
    if (window == 0)
        fatal("SU window must be positive");
}

Cycles
StreamUnit::opCycles(streams::KeySpan a, streams::KeySpan b,
                     streams::SetOpKind kind, Key bound) const
{
    return pipelineLatency_ +
           streams::suCycles(a, b, kind, bound, window_);
}

void
StreamUnit::occupy(Cycles start, Cycles end)
{
    if (end < start)
        panic("SU %u occupancy interval is inverted", id_);
    if (start < freeAt_)
        panic("SU %u scheduled while busy (start %llu < free %llu)",
              id_, static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(freeAt_));
    freeAt_ = end;
    busyCycles_ += end - start;
    ++ops_;
}

void
StreamUnit::reset()
{
    freeAt_ = 0;
    busyCycles_ = 0;
    ops_ = 0;
}

} // namespace sc::arch
