/**
 * @file
 * Stream Mapping Table timing model (§4.1).
 *
 * Each entry maps a stream ID to a stream register and carries:
 *  - VD (defined) and VA (active) valid bits: VD clears when S_FREE
 *    decodes, VA clears when S_FREE retires; a register is only
 *    reusable once VA is clear,
 *  - the start (s) and produced (p) bits driven by the S-Cache, and
 *  - pred0/pred1 dependency links to producer streams.
 */

#ifndef SPARSECORE_ARCH_SMT_HH
#define SPARSECORE_ARCH_SMT_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sc::arch {

/** Sentinel for "no predecessor". */
constexpr std::uint64_t noPred = ~std::uint64_t{0};

/** One SMT entry. */
struct SmtEntry
{
    std::uint64_t sid = 0;
    unsigned sreg = 0;
    bool vd = false; ///< defined (visible to younger instructions)
    bool va = false; ///< active (register not yet reclaimable)
    bool start = false;    ///< S-Cache holds the stream's first keys
    bool produced = false; ///< whole stream produced
    std::uint64_t pred0 = noPred;
    std::uint64_t pred1 = noPred;
};

/**
 * The SMT. Decode-time define/free plus retire-time release, with the
 * VD/VA semantics of §4.1.
 */
class Smt
{
  public:
    explicit Smt(unsigned num_entries);

    /**
     * Decode of S_READ/S_VREAD/S_INTER-output: map sid to a register.
     * Re-defining a currently defined sid overwrites its mapping.
     * @return the entry index, or nullopt when every register is
     *         active (the defining instruction must stall, §4.1).
     */
    std::optional<unsigned> define(std::uint64_t sid);

    /** Decode of S_FREE: clears VD. Throws SimError if undefined. */
    void decodeFree(std::uint64_t sid);

    /** Retire of S_FREE: clears VA, releasing the register. */
    void retireFree(unsigned entry_index);

    /**
     * Virtualization spill (§4.1): evict one active entry to the
     * special memory region so a new stream can be mapped.
     * @return the spilled entry index
     */
    unsigned spillOne();

    /** Entry for a defined sid; nullopt when not defined. */
    std::optional<unsigned> lookup(std::uint64_t sid) const;

    SmtEntry &entry(unsigned index);
    const SmtEntry &entry(unsigned index) const;

    unsigned numEntries() const
    {
        return static_cast<unsigned>(entries_.size());
    }
    unsigned activeCount() const;
    bool full() const { return activeCount() == numEntries(); }

    const StatSet &stats() const { return stats_; }

  private:
    std::vector<SmtEntry> entries_;
    std::unordered_map<std::uint64_t, unsigned> defined_; // sid -> idx
    StatSet stats_{"smt"};
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_SMT_HH
