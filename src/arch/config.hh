/**
 * @file
 * SparseCore architecture configuration (Table 2 defaults plus the
 * §4.2/§4.3 stream-component parameters).
 */

#ifndef SPARSECORE_ARCH_CONFIG_HH
#define SPARSECORE_ARCH_CONFIG_HH

#include <string>

#include "common/logging.hh"
#include "sim/core_model.hh"
#include "sim/mem_hierarchy.hh"

namespace sc::arch {

/** All knobs of the SparseCore extension. */
struct SparseCoreConfig
{
    /** Number of Stream Units (the paper's design point is 4;
     *  accelerator comparisons use 1). */
    unsigned numSus = 4;
    /** SU parallel-comparison window (16-element double buffer). */
    unsigned suWindow = 16;
    /** Fixed SU start/drain pipeline latency per operation. */
    sc::Cycles suPipelineLatency = 4;
    /** Keys per S-Cache slot (64 keys = 256 B, Table 2). */
    unsigned scacheSlotKeys = 64;
    /** Number of stream registers / SMT entries (§3.2: 16). */
    unsigned numStreamRegs = 16;
    /**
     * Aggregated S-Cache + scratchpad bandwidth in elements per cycle
     * delivered to the SUs (the Fig. 13 sweep parameter; the default
     * models two cache lines of keys per cycle, §4.3).
     */
    unsigned aggregateBandwidth = 32;
    /** Scratchpad capacity in bytes (Table 2: 16 KB). */
    unsigned scratchpadBytes = 16 * 1024;
    /** Scratchpad access latency in cycles. */
    sc::Cycles scratchpadLatency = 1;
    /** Nested-intersection translation buffer entries (§4.6). */
    unsigned translationBufferSize = 16;
    /** Memory-level parallelism of the value load queue (§4.5). */
    unsigned valueLoadMlp = 8;
    /**
     * Sustained value loads per cycle through the shared load queue
     * (vBuf fills contend with the core's own memory accesses, so
     * value throughput does not scale with the SU count).
     */
    unsigned valueLoadsPerCycle = 2;
    /**
     * Maximum stream instructions in flight (each takes one ROB entry
     * alongside the surrounding scalar instructions; robSize/4 leaves
     * room for the scalar code between stream instructions).
     */
    unsigned maxOutstandingOps = 32;
    /** Enable S_NESTINTER (disabled for the TS/4CS/5CS variants). */
    bool nestedIntersection = true;

    sim::CoreParams core;
    sim::MemParams mem;

    /** One-line description for bench headers. */
    std::string
    describe() const
    {
        return strprintf(
            "SparseCore: %u SU(s) (window %u), S-Cache slot %u keys, "
            "bw %u elem/cyc, scratchpad %u KB, nested=%s, ROB %u, LQ %u",
            numSus, suWindow, scacheSlotKeys, aggregateBandwidth,
            scratchpadBytes / 1024, nestedIntersection ? "on" : "off",
            core.robSize, core.loadQueueSize);
    }
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_CONFIG_HH
