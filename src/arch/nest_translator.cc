#include "arch/nest_translator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sc::arch {

NestTranslator::NestTranslator(const NestTranslatorParams &params)
    : params_(params)
{
    if (params.bufferEntries == 0 || params.elementsPerCycle == 0 ||
        params.infoLoadMlp == 0) {
        fatal("nested-intersection translator parameters must be "
              "positive");
    }
}

std::vector<Cycles>
NestTranslator::translate(Cycles start,
                          const std::vector<Addr> &info_addrs,
                          sim::MemHierarchy &mem)
{
    std::vector<Cycles> ready(info_addrs.size());
    // The translation buffer holds bufferEntries in-flight elements:
    // element i may begin translating only after element
    // i - bufferEntries has drained (its micro-ops inserted).
    std::vector<Cycles> drain(info_addrs.size(), 0);
    Cycles info_pipe = start;

    for (std::size_t i = 0; i < info_addrs.size(); ++i) {
        // Stream-info load through the load queue; loads overlap up
        // to infoLoadMlp, modeled as a pipeline advancing by
        // latency/mlp per element.
        const Cycles latency = mem.l1Access(info_addrs[i]);
        info_pipe += std::max<Cycles>(
            1, latency / params_.infoLoadMlp);

        Cycles slot_free = start;
        if (i >= params_.bufferEntries)
            slot_free = drain[i - params_.bufferEntries];

        // Translation itself takes one cycle per elementsPerCycle
        // group; with the default of one element per cycle this is a
        // one-cycle step.
        const Cycles trans_step =
            (i % params_.elementsPerCycle == 0) ? 1 : 0;
        const Cycles translated =
            std::max(info_pipe, slot_free) + trans_step;
        ready[i] = translated;
        // The element drains once its micro-ops are inserted; the
        // S_INTER.C itself executes later on an SU, but the buffer
        // entry is released at insertion (§4.6: ROB retirement and
        // refills release the space independently).
        drain[i] = translated;
        ++stats_.counter("elements");
    }
    stats_.counter("instructions") += info_addrs.size() * 3 + 1;
    return ready;
}

} // namespace sc::arch
