/**
 * @file
 * Stream Cache (S-Cache) model (§4.3).
 *
 * One slot per stream register (64 keys = 256 B); each slot is split
 * into two sub-slots so refill from L2 overlaps with the transfer of
 * the other sub-slot to an SU (double buffering). The S-Cache sits on
 * top of L2 (key fetches bypass and never pollute L1). Result streams
 * are written back to L2 in slot-sized groups once they outgrow the
 * slot.
 */

#ifndef SPARSECORE_ARCH_SCACHE_HH
#define SPARSECORE_ARCH_SCACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/mem_hierarchy.hh"

namespace sc::arch {

/** Per-slot state of the stream cache. */
struct ScacheSlot
{
    bool valid = false;
    Addr baseAddr = 0;          ///< stream's key base (0 for produced)
    std::uint64_t streamKeys = 0; ///< total keys in the stream
    std::uint64_t residentFrom = 0; ///< first resident key index
    bool startBit = true;       ///< slot holds the stream's start
};

/** The S-Cache model. */
class SCache
{
  public:
    /**
     * @param num_slots one per stream register
     * @param slot_keys keys per slot (64 in the paper)
     * @param line_bytes cache line size of the backing L2
     */
    SCache(unsigned num_slots, unsigned slot_keys, unsigned line_bytes);

    /**
     * Begin fetching a memory-backed stream into a slot (S_READ).
     * Issues the first sub-slot's line fills through L2.
     * @return cycles until the first sub-slot is usable by an SU.
     */
    Cycles allocate(unsigned slot, Addr key_addr, std::uint64_t num_keys,
                    sim::MemHierarchy &mem);

    /**
     * Attach a produced (computed) stream to a slot; data arrives from
     * an SU, not memory.
     */
    void allocateProduced(unsigned slot, std::uint64_t num_keys);

    /**
     * Account the L2 traffic of streaming the rest of the stream
     * (prefetch of sub-slots beyond the first). Installs the lines in
     * the L2 tag model; latency is hidden by double buffering.
     */
    void prefetchRemainder(unsigned slot, sim::MemHierarchy &mem);

    /**
     * Write back a produced stream that exceeded the slot (start bit
     * clears; earlier keys go to L2, §4.3).
     * @return number of lines written back
     */
    std::uint64_t writebackProduced(unsigned slot,
                                    std::uint64_t total_keys,
                                    sim::MemHierarchy &mem);

    /** Release a slot (stream freed). */
    void release(unsigned slot);

    const ScacheSlot &slot(unsigned index) const;
    unsigned numSlots() const
    {
        return static_cast<unsigned>(slots_.size());
    }
    unsigned slotKeys() const { return slotKeys_; }
    /** Keys per sub-slot (half a slot). */
    unsigned subSlotKeys() const { return slotKeys_ / 2; }

    std::uint64_t totalSizeBytes() const
    {
        return static_cast<std::uint64_t>(numSlots()) * slotKeys_ *
               sizeof(Key);
    }

    const StatSet &stats() const { return stats_; }

  private:
    std::vector<ScacheSlot> slots_;
    unsigned slotKeys_;
    unsigned lineBytes_;
    StatSet stats_{"scache"};
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_SCACHE_HH
