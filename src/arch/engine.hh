/**
 * @file
 * The SparseCore execution engine: composes the host core model with
 * the stream components (SMT, S-Cache, scratchpad, SUs, SVPU, nested
 * intersection translator) and schedules stream instructions in time.
 *
 * The engine is driven by an execution backend: the caller reports
 * each dynamic stream instruction together with the operand key
 * spans; the engine computes start/completion times subject to
 *  - operand readiness (S-Cache refill / scratchpad hit),
 *  - SU availability (ops pick the earliest-free SU),
 *  - the aggregated S-Cache/scratchpad -> SU bandwidth, modeled as a
 *    shared fluid server (the Fig. 13 sweep parameter),
 *  - ROB occupancy (bounded outstanding stream instructions), and
 *  - SMT capacity (stream-register virtualization penalty when all
 *    sixteen registers are active).
 *
 * Cycle accounting flows into the Fig. 10 breakdown categories: core
 * scalar work is OtherCompute, branch penalties are Mispredict, and
 * stalls waiting on stream results split between Cache and
 * Intersection according to each operation's delay composition.
 */

#ifndef SPARSECORE_ARCH_ENGINE_HH
#define SPARSECORE_ARCH_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "arch/config.hh"
#include "arch/nest_translator.hh"
#include "arch/scache.hh"
#include "arch/scratchpad.hh"
#include "arch/smt.hh"
#include "arch/stream_unit.hh"
#include "arch/svpu.hh"
#include "common/stats.hh"
#include "sim/core_model.hh"
#include "streams/set_ops.hh"

namespace sc::arch {

/** Opaque reference to an engine-tracked stream. */
using StreamHandle = std::uint32_t;
constexpr StreamHandle invalidStream = ~StreamHandle{0};

/** One element of an S_NESTINTER expansion. */
struct NestedElem
{
    Addr infoAddr;  ///< CSR vertex-array entry address (stream info)
    Addr keyAddr;   ///< nested edge list base address
    streams::KeySpan nested; ///< nested edge list keys (bounded)
    Key bound;      ///< intersection upper bound (the element value)
};

/** The timing engine. */
class Engine
{
  public:
    explicit Engine(const SparseCoreConfig &config = SparseCoreConfig{});
    ~Engine();

    // ------------- host scalar side -------------
    /** Charge n scalar ALU/addressing operations. */
    void scalarOps(std::uint64_t n);
    /** Charge one conditional branch (runs the core's predictor). */
    void scalarBranch(std::uint64_t pc, bool taken);
    /** Charge one scalar load through L1. */
    void scalarLoad(Addr addr);

    // ------------- stream instructions -------------
    /** S_READ: initialize a key stream. */
    StreamHandle streamRead(Addr key_addr, std::uint32_t length,
                            unsigned priority, streams::KeySpan keys);
    /** S_VREAD: initialize a (key,value) stream. */
    StreamHandle streamReadKv(Addr key_addr, Addr val_addr,
                              std::uint32_t length, unsigned priority,
                              streams::KeySpan keys);
    /** S_FREE. */
    void streamFree(StreamHandle handle);

    /**
     * S_INTER / S_SUB / S_MERGE producing an output stream.
     * @param a,b operand handles; @param ak,bk their key spans
     * @param result_len output length (computed functionally)
     */
    StreamHandle setOp(streams::SetOpKind kind, StreamHandle a,
                       StreamHandle b, streams::KeySpan ak,
                       streams::KeySpan bk, Key bound,
                       std::uint64_t result_len);

    /** S_INTER.C / S_SUB.C / S_MERGE.C (count only). */
    void setOpCount(streams::SetOpKind kind, StreamHandle a,
                    StreamHandle b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound);

    /**
     * S_VINTER: key intersection + value computation on matches.
     * @param match_val_addrs_{a,b} matched value addresses (VA_gen)
     */
    void valueIntersect(StreamHandle a, StreamHandle b,
                        streams::KeySpan ak, streams::KeySpan bk,
                        const std::vector<Addr> &match_val_addrs_a,
                        const std::vector<Addr> &match_val_addrs_b);

    /**
     * S_VMERGE: merged (key,value) output stream; every consumed
     * element's value is loaded and scaled.
     */
    StreamHandle valueMerge(StreamHandle a, StreamHandle b,
                            streams::KeySpan ak, streams::KeySpan bk,
                            Addr a_val_base, Addr b_val_base,
                            std::uint64_t result_len);

    /** S_NESTINTER over stream s with the given expansion. */
    void nestedIntersect(StreamHandle s, streams::KeySpan s_keys,
                         const std::vector<NestedElem> &elems);

    // ------------- synchronization -------------
    /** Core consumes a stream's result (control dependence). */
    void waitFor(StreamHandle handle);
    /** Core iterates n elements of a stream via S_FETCH. */
    void fetchLoop(StreamHandle handle, std::uint64_t n,
                   std::uint64_t ops_per_element = 2);

    /** Drain all outstanding work; returns the final cycle count. */
    Cycles finish();

    // ------------- observability -------------
    Cycles now() const;
    const sim::CycleBreakdown &breakdown() const;
    const SparseCoreConfig &config() const { return config_; }
    sim::CoreModel &core() { return *core_; }
    const Histogram &streamLengthHist() const { return lengthHist_; }
    const StatSet &stats() const { return stats_; }
    const Smt &smt() const { return smt_; }
    const SCache &scache() const { return scache_; }
    const Scratchpad &scratchpad() const { return scratchpad_; }
    const std::vector<StreamUnit> &streamUnits() const { return sus_; }
    /** Dynamic stream-instruction count (Table 1 opcodes). */
    std::uint64_t streamInstructions() const
    {
        return stats_.get("streamInstructions");
    }

  private:
    struct StreamInfo
    {
        Addr keyAddr = 0;
        Addr valAddr = 0;
        std::uint64_t length = 0;
        unsigned priority = 0;
        Cycles readyAt = 0;    ///< first sub-slot usable
        Cycles producedAt = 0; ///< whole stream available
        double memShare = 1.0; ///< memory fraction of its delay
        unsigned smtIndex = 0;
        bool freed = false;
    };

    struct OutstandingOp
    {
        Cycles completion;
        double memShare; ///< memory fraction of the op's latency
    };

    StreamHandle makeStream(Addr key_addr, Addr val_addr,
                            std::uint32_t length, unsigned priority,
                            streams::KeySpan keys);

    /** Apply the ROB outstanding-op limit; returns the issue time. */
    Cycles gateIssue();
    /** Record an op for ROB accounting and final drain. */
    void recordOp(Cycles completion, double mem_share);
    /** Advance core time to `target`, splitting the stall. */
    void stallUntil(Cycles target, double mem_share);

    /** Advance the shared value-load server; returns its drain time. */
    Cycles valueServerDone(Cycles start, std::uint64_t loads);

    /** Schedule one set op on the SUs; returns completion time. */
    Cycles scheduleSetOp(streams::SetOpKind kind, StreamHandle a,
                         StreamHandle b, streams::KeySpan ak,
                         streams::KeySpan bk, Key bound,
                         double &mem_share_out);

    StreamInfo &info(StreamHandle handle);

    SparseCoreConfig config_;
    std::unique_ptr<sim::CoreModel> core_;
    Smt smt_;
    SCache scache_;
    Scratchpad scratchpad_;
    std::vector<StreamUnit> sus_;
    Svpu svpu_;
    NestTranslator translator_;

    std::vector<StreamInfo> streams_;
    std::deque<OutstandingOp> rob_;
    double bwFreeAt_ = 0.0; ///< fluid bandwidth-server virtual time
    /** Value loads go through the core's shared load queue (§4.5);
     *  this fluid server bounds aggregate value throughput. */
    double valueFreeAt_ = 0.0;
    Cycles maxCompletion_ = 0;
    double drainMemWeight_ = 0.0;
    double drainSuWeight_ = 0.0;

    Histogram lengthHist_;
    StatSet stats_{"engine"};
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_ENGINE_HH
