/**
 * @file
 * Stream scratchpad (§4.2): a software-managed buffer shared by all
 * SUs that pins high-priority (reused) streams, avoiding repeated
 * refills from the cache hierarchy. Residency is tracked per stream
 * base address with LRU replacement at key granularity.
 */

#ifndef SPARSECORE_ARCH_SCRATCHPAD_HH
#define SPARSECORE_ARCH_SCRATCHPAD_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"

namespace sc::arch {

/** LRU key-granularity scratchpad model. */
class Scratchpad
{
  public:
    /** @param capacity_bytes total size; keys are 4 bytes each. */
    explicit Scratchpad(std::uint64_t capacity_bytes);

    /**
     * Look up a stream by base address; on hit the entry is touched.
     * @return true when the stream's keys are resident.
     */
    bool lookup(Addr key_addr);

    /**
     * Insert a stream (called for priority > 0 streams on first use).
     * Streams larger than the whole scratchpad are not inserted.
     */
    void insert(Addr key_addr, std::uint64_t num_keys);

    /** Remove a stream (invalidation on overwrite). */
    void invalidate(Addr key_addr);

    std::uint64_t capacityKeys() const { return capacityKeys_; }
    std::uint64_t usedKeys() const { return usedKeys_; }
    std::uint64_t hits() const { return stats_.get("hits"); }
    std::uint64_t missesOrAbsent() const { return stats_.get("misses"); }
    const StatSet &stats() const { return stats_; }

  private:
    struct Entry
    {
        Addr addr;
        std::uint64_t keys;
    };

    void evictFor(std::uint64_t needed_keys);

    std::uint64_t capacityKeys_;
    std::uint64_t usedKeys_ = 0;
    std::list<Entry> lru_; // front = most recent
    std::unordered_map<Addr, std::list<Entry>::iterator> index_;
    StatSet stats_{"scratchpad"};
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_SCRATCHPAD_HH
