/**
 * @file
 * Nested Intersection Translator model (§4.6).
 *
 * S_NESTINTER expands inside the processor into a per-element
 * sequence of micro-ops (S_READ, S_INTER.C, S_FREE, ADD). The
 * translator fetches each element's stream information (CSR offsets
 * through the GFRs) via the load queue, holds it in the translation
 * buffer, and inserts the micro-ops into the ROB as entries free up.
 *
 * The model produces, for each nested element, the cycle at which its
 * intersection micro-op is ready to issue; the engine then schedules
 * those intersections on the SUs.
 */

#ifndef SPARSECORE_ARCH_NEST_TRANSLATOR_HH
#define SPARSECORE_ARCH_NEST_TRANSLATOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/mem_hierarchy.hh"

namespace sc::arch {

/** Translator parameters. */
struct NestTranslatorParams
{
    unsigned bufferEntries = 16; ///< translation buffer size
    unsigned elementsPerCycle = 1; ///< translation throughput
    unsigned infoLoadMlp = 8; ///< overlapped stream-info loads
};

/** The translator model. */
class NestTranslator
{
  public:
    explicit NestTranslator(const NestTranslatorParams &params);

    /**
     * Expand one S_NESTINTER.
     * @param start cycle at which the instruction reaches the
     *        translator with its input stream available
     * @param info_addrs per-element stream-info addresses (CSR vertex
     *        array entries) fetched through the load queue
     * @param mem hierarchy used for the info loads
     * @return per-element cycles at which each generated S_INTER.C is
     *         ready to be scheduled
     */
    std::vector<Cycles> translate(Cycles start,
                                  const std::vector<Addr> &info_addrs,
                                  sim::MemHierarchy &mem);

    const NestTranslatorParams &params() const { return params_; }
    const StatSet &stats() const { return stats_; }

  private:
    NestTranslatorParams params_;
    StatSet stats_{"nest_translator"};
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_NEST_TRANSLATOR_HH
