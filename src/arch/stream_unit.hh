/**
 * @file
 * Stream Unit (SU) model (§4.2, Fig. 6): the functional unit that
 * executes set operations with 16-wide parallel comparison and a
 * double-buffered input stage. Exposes the per-operation cycle cost
 * and tracks utilization; scheduling across SUs is the engine's job.
 *
 * Cost-model independence: opCycles() derives time purely from the
 * operand key spans via streams::suCost() — it never calls the
 * host's dispatched SIMD kernels (streams/simd/kernel_table.hh),
 * which only accelerate the *functional* computation of results.
 * Simulated cycles are therefore bit-identical under every
 * SC_FORCE_KERNEL level; tests/kernel_table_test.cc replays the
 * golden trace at each level to enforce this (DESIGN.md §10).
 */

#ifndef SPARSECORE_ARCH_STREAM_UNIT_HH
#define SPARSECORE_ARCH_STREAM_UNIT_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "streams/set_ops.hh"

namespace sc::arch {

/** One Stream Unit. */
class StreamUnit
{
  public:
    /**
     * @param window parallel-comparator width (16)
     * @param pipeline_latency fixed start/drain cycles per operation
     */
    StreamUnit(unsigned id, unsigned window, Cycles pipeline_latency);

    /**
     * Cycle cost of one set operation on this SU (Fig. 6 model),
     * including the fixed pipeline latency.
     */
    Cycles opCycles(streams::KeySpan a, streams::KeySpan b,
                    streams::SetOpKind kind, Key bound = noBound) const;

    /** Earliest cycle this SU can accept a new operation. */
    Cycles freeAt() const { return freeAt_; }

    /** Record an operation occupying [start, end). */
    void occupy(Cycles start, Cycles end);

    unsigned id() const { return id_; }
    unsigned window() const { return window_; }
    Cycles busyCycles() const { return busyCycles_; }
    std::uint64_t opsExecuted() const { return ops_; }

    void reset();

  private:
    unsigned id_;
    unsigned window_;
    Cycles pipelineLatency_;
    Cycles freeAt_ = 0;
    Cycles busyCycles_ = 0;
    std::uint64_t ops_ = 0;
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_STREAM_UNIT_HH
