#include "arch/engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sc::arch {

using sim::CycleClass;
using streams::SetOpKind;

Engine::Engine(const SparseCoreConfig &config)
    : config_(config),
      core_(std::make_unique<sim::CoreModel>(config.core, config.mem)),
      smt_(config.numStreamRegs),
      scache_(config.numStreamRegs, config.scacheSlotKeys,
              config.mem.l2.lineBytes),
      scratchpad_(config.scratchpadBytes),
      svpu_(config.valueLoadMlp),
      translator_(NestTranslatorParams{config.translationBufferSize, 1,
                                       config.valueLoadMlp}),
      lengthHist_(4, 512)
{
    if (config.numSus == 0)
        fatal("SparseCore needs at least one SU");
    if (config.aggregateBandwidth == 0)
        fatal("aggregate bandwidth must be positive");
    sus_.reserve(config.numSus);
    for (unsigned i = 0; i < config.numSus; ++i)
        sus_.emplace_back(i, config.suWindow, config.suPipelineLatency);
}

Engine::~Engine() = default;

Cycles
Engine::now() const
{
    return core_->cycles();
}

const sim::CycleBreakdown &
Engine::breakdown() const
{
    return core_->breakdown();
}

void
Engine::scalarOps(std::uint64_t n)
{
    core_->executeOps(n);
}

void
Engine::scalarBranch(std::uint64_t pc, bool taken)
{
    core_->executeBranch(pc, taken);
}

void
Engine::scalarLoad(Addr addr)
{
    core_->load(addr);
}

Engine::StreamInfo &
Engine::info(StreamHandle handle)
{
    if (handle >= streams_.size())
        panic("invalid stream handle %u", handle);
    return streams_[handle];
}

Cycles
Engine::gateIssue()
{
    const Cycles t = now();
    // Retire completed ops.
    while (!rob_.empty() && rob_.front().completion <= t)
        rob_.pop_front();
    if (rob_.size() >= config_.maxOutstandingOps) {
        const OutstandingOp oldest = rob_.front();
        stallUntil(oldest.completion, oldest.memShare);
        while (!rob_.empty() && rob_.front().completion <= now())
            rob_.pop_front();
    }
    return now();
}

void
Engine::recordOp(Cycles completion, double mem_share)
{
    rob_.push_back({completion, mem_share});
    maxCompletion_ = std::max(maxCompletion_, completion);
    if (completion > now()) {
        const double gap = static_cast<double>(completion - now());
        drainMemWeight_ += gap * mem_share;
        drainSuWeight_ += gap * (1.0 - mem_share);
    }
}

void
Engine::stallUntil(Cycles target, double mem_share)
{
    const Cycles t = now();
    if (target <= t)
        return;
    const Cycles gap = target - t;
    const auto mem_cycles = static_cast<Cycles>(
        std::llround(static_cast<double>(gap) * mem_share));
    core_->addCycles(CycleClass::Cache, mem_cycles);
    core_->addCycles(CycleClass::Intersection, gap - mem_cycles);
}

StreamHandle
Engine::makeStream(Addr key_addr, Addr val_addr, std::uint32_t length,
                   unsigned priority, streams::KeySpan keys)
{
    (void)keys;
    ++stats_.counter("streamInstructions");
    // The instruction itself plus the operand moves feeding it (the
    // paper's generated code marshals address/length/id/priority
    // into registers before each S_READ/S_VREAD, Fig. 3/4).
    scalarOps(3);
    const Cycles issue = gateIssue();

    auto entry = smt_.define(streams_.size());
    Cycles extra = 0;
    if (!entry) {
        // §4.1 virtualization: spill an SMT entry to the special
        // memory region and retry; modeled as a fixed penalty.
        extra = config_.mem.l2Latency + config_.mem.l3Latency;
        ++stats_.counter("smtVirtualizationStalls");
        smt_.spillOne();
        entry = smt_.define(streams_.size());
    }

    StreamInfo si;
    si.keyAddr = key_addr;
    si.valAddr = val_addr;
    si.length = length;
    si.priority = priority;
    si.smtIndex = *entry;

    // Scratchpad hit: high-priority reused streams skip the refill.
    if (priority > 0 && scratchpad_.lookup(key_addr)) {
        si.readyAt = issue + extra + config_.scratchpadLatency;
        si.memShare = 0.1;
        ++stats_.counter("scratchpadStreamHits");
    } else {
        const Cycles refill = scache_.allocate(
            si.smtIndex, key_addr, length, core_->mem());
        scache_.prefetchRemainder(si.smtIndex, core_->mem());
        si.readyAt = issue + extra + refill;
        si.memShare = 1.0;
        if (priority > 0)
            scratchpad_.insert(key_addr, length);
    }
    smt_.entry(*entry).start = true;
    smt_.entry(*entry).produced = true; // memory-backed: data exists
    si.producedAt = si.readyAt;

    streams_.push_back(si);
    lengthHist_.sample(length);
    recordOp(si.readyAt, si.memShare);
    return static_cast<StreamHandle>(streams_.size() - 1);
}

StreamHandle
Engine::streamRead(Addr key_addr, std::uint32_t length, unsigned priority,
                   streams::KeySpan keys)
{
    ++stats_.counter("sread");
    return makeStream(key_addr, 0, length, priority, keys);
}

StreamHandle
Engine::streamReadKv(Addr key_addr, Addr val_addr, std::uint32_t length,
                     unsigned priority, streams::KeySpan keys)
{
    ++stats_.counter("svread");
    return makeStream(key_addr, val_addr, length, priority, keys);
}

void
Engine::streamFree(StreamHandle handle)
{
    StreamInfo &si = info(handle);
    if (si.freed)
        panic("double free of stream handle %u", handle);
    si.freed = true;
    ++stats_.counter("sfree");
    ++stats_.counter("streamInstructions");
    scalarOps(1);
    smt_.decodeFree(handle);
    smt_.retireFree(si.smtIndex);
    scache_.release(si.smtIndex);
}

Cycles
Engine::scheduleSetOp(SetOpKind kind, StreamHandle a, StreamHandle b,
                      streams::KeySpan ak, streams::KeySpan bk, Key bound,
                      double &mem_share_out)
{
    const Cycles issue = gateIssue();

    // Earliest-free SU.
    StreamUnit *su = &sus_[0];
    for (auto &candidate : sus_)
        if (candidate.freeAt() < su->freeAt())
            su = &candidate;

    const StreamInfo &ia = info(a);
    const StreamInfo &ib = info(b);
    const Cycles operands = std::max(ia.readyAt, ib.readyAt);
    const Cycles su_free = su->freeAt();
    const Cycles start = std::max({issue, su_free, operands});

    const auto cost =
        streams::suCost(ak, bk, kind, bound, config_.suWindow);
    const Cycles intrinsic = config_.suPipelineLatency + cost.cycles;

    // Fluid bandwidth server shared by all SUs: the operation needs
    // (aConsumed + bConsumed) elements delivered from S-Cache or
    // scratchpad at the aggregate rate.
    const double elems =
        static_cast<double>(cost.aConsumed + cost.bConsumed);
    const double bw_start =
        std::max(static_cast<double>(start), bwFreeAt_);
    bwFreeAt_ = bw_start + elems / config_.aggregateBandwidth;
    const auto bw_done = static_cast<Cycles>(std::ceil(bwFreeAt_));

    const Cycles completion = std::max(start + intrinsic, bw_done);
    su->occupy(start, completion);

    // Delay composition: memory is only responsible for the time the
    // operation waited on operands BEYOND when an SU was available
    // (operand prefetch overlaps with earlier SU work).
    const Cycles resource_ready = std::max(issue, su_free);
    const Cycles mem_wait =
        operands > resource_ready ? operands - resource_ready : 0;
    const Cycles total = completion > issue ? completion - issue : 1;
    mem_share_out = std::min(
        1.0, static_cast<double>(mem_wait) / static_cast<double>(total));

    lengthHist_.sample(ak.size());
    lengthHist_.sample(bk.size());
    stats_.counter("setOpElements") +=
        cost.aConsumed + cost.bConsumed;
    ++stats_.counter(std::string("op.") + streams::setOpName(kind));
    return completion;
}

StreamHandle
Engine::setOp(SetOpKind kind, StreamHandle a, StreamHandle b,
              streams::KeySpan ak, streams::KeySpan bk, Key bound,
              std::uint64_t result_len)
{
    ++stats_.counter("streamInstructions");
    scalarOps(2); // instruction + operand moves
    double mem_share = 0.0;
    const Cycles completion =
        scheduleSetOp(kind, a, b, ak, bk, bound, mem_share);

    auto entry = smt_.define(streams_.size());
    Cycles extra = 0;
    if (!entry) {
        extra = config_.mem.l2Latency + config_.mem.l3Latency;
        ++stats_.counter("smtVirtualizationStalls");
        smt_.spillOne();
        entry = smt_.define(streams_.size());
    }

    StreamInfo si;
    si.length = result_len;
    si.smtIndex = *entry;
    si.readyAt = completion + extra;
    si.producedAt = completion + extra;
    si.memShare = mem_share;
    // Dependency bookkeeping (§4.4): record producer links.
    smt_.entry(*entry).pred0 = a;
    smt_.entry(*entry).pred1 = b;
    scache_.allocateProduced(si.smtIndex, result_len);
    if (result_len > config_.scacheSlotKeys)
        scache_.writebackProduced(si.smtIndex, result_len,
                                  core_->mem());
    smt_.entry(*entry).produced = true;

    streams_.push_back(si);
    recordOp(si.producedAt, mem_share);
    return static_cast<StreamHandle>(streams_.size() - 1);
}

void
Engine::setOpCount(SetOpKind kind, StreamHandle a, StreamHandle b,
                   streams::KeySpan ak, streams::KeySpan bk, Key bound)
{
    ++stats_.counter("streamInstructions");
    scalarOps(2); // instruction + operand moves
    double mem_share = 0.0;
    const Cycles completion =
        scheduleSetOp(kind, a, b, ak, bk, bound, mem_share);
    recordOp(completion, mem_share);
}

Cycles
Engine::valueServerDone(Cycles start, std::uint64_t loads)
{
    // The shared load queue drains value requests at a bounded
    // aggregate rate; SU parallelism does not multiply it (§4.5: one
    // load queue feeds every vBuf).
    const double begin =
        std::max(static_cast<double>(start), valueFreeAt_);
    valueFreeAt_ = begin + static_cast<double>(loads) /
                               config_.valueLoadsPerCycle;
    return static_cast<Cycles>(std::ceil(valueFreeAt_));
}

void
Engine::valueIntersect(StreamHandle a, StreamHandle b,
                       streams::KeySpan ak, streams::KeySpan bk,
                       const std::vector<Addr> &match_val_addrs_a,
                       const std::vector<Addr> &match_val_addrs_b)
{
    ++stats_.counter("streamInstructions");
    ++stats_.counter("svinter");
    scalarOps(2);
    double mem_share = 0.0;
    const Cycles su_completion = scheduleSetOp(
        SetOpKind::Intersect, a, b, ak, bk, noBound, mem_share);

    // Value pipeline: VA_gen -> load queue -> vBuf -> SVPU (§4.5).
    const SvpuCost vc = svpu_.process(match_val_addrs_a,
                                      match_val_addrs_b, core_->mem());
    const Cycles value_done =
        valueServerDone(now(), vc.loads) + vc.cycles / 4;
    const Cycles completion = std::max(su_completion, value_done);
    const double combined_share =
        vc.cycles > 0 ? std::max(mem_share, 0.5) : mem_share;
    recordOp(completion, combined_share);
}

StreamHandle
Engine::valueMerge(StreamHandle a, StreamHandle b, streams::KeySpan ak,
                   streams::KeySpan bk, Addr a_val_base, Addr b_val_base,
                   std::uint64_t result_len)
{
    ++stats_.counter("svmerge");
    // Value loads go through the load queue only for MEMORY-backed
    // operands (a_val_base/b_val_base nonzero): a produced stream's
    // values are already on chip and feed the SVPU directly, which is
    // what keeps Gustavson's chained accumulator cheap (§4.5).
    std::vector<Addr> addrs_a, addrs_b;
    if (a_val_base != 0)
        for (std::size_t i = 0; i < ak.size(); ++i)
            addrs_a.push_back(a_val_base + i * sizeof(Value));
    if (b_val_base != 0)
        for (std::size_t i = 0; i < bk.size(); ++i)
            addrs_b.push_back(b_val_base + i * sizeof(Value));
    // The SVPU model takes pairwise lists; pad the shorter side with
    // repeats of its last address (sequential, latency-insensitive).
    const std::size_t n = std::max(addrs_a.size(), addrs_b.size());
    auto pad = [n](std::vector<Addr> &v, Addr base) {
        if (v.empty())
            v.assign(n, base ? base : 0x7f0000000ull);
        else
            v.resize(n, v.back());
    };
    pad(addrs_a, a_val_base);
    pad(addrs_b, b_val_base);
    const SvpuCost vc = svpu_.process(addrs_a, addrs_b, core_->mem());

    StreamHandle out = setOp(SetOpKind::Merge, a, b, ak, bk, noBound,
                             result_len);
    StreamInfo &si = info(out);
    // The merged stream is only complete once its values have been
    // fetched, scaled and written: bounded by the shared value-load
    // path plus one output per cycle through the SVPU.
    const std::uint64_t queue_loads =
        (a_val_base != 0 ? ak.size() : 0) +
        (b_val_base != 0 ? bk.size() : 0);
    const Cycles value_done =
        std::max(valueServerDone(si.producedAt, queue_loads),
                 si.producedAt + vc.cycles / 8) +
        result_len / 4;
    si.producedAt = std::max(si.producedAt, value_done);
    si.readyAt = si.producedAt;
    maxCompletion_ = std::max(maxCompletion_, si.producedAt);
    return out;
}

void
Engine::nestedIntersect(StreamHandle s, streams::KeySpan s_keys,
                        const std::vector<NestedElem> &elems)
{
    ++stats_.counter("streamInstructions");
    ++stats_.counter("snestinter");
    if (!config_.nestedIntersection)
        panic("S_NESTINTER issued with nested intersection disabled");
    scalarOps(1);
    const Cycles issue = gateIssue();
    const StreamInfo &si = info(s);
    const Cycles start = std::max(issue, si.readyAt);

    std::vector<Addr> info_addrs;
    info_addrs.reserve(elems.size());
    for (const auto &elem : elems)
        info_addrs.push_back(elem.infoAddr);
    const std::vector<Cycles> ready =
        translator_.translate(start, info_addrs, core_->mem());

    // Accumulator ADD micro-op per element.
    scalarOps(elems.size());

    for (std::size_t i = 0; i < elems.size(); ++i) {
        const NestedElem &elem = elems[i];
        // Micro-op S_READ of the nested stream: first-line fetch
        // latency; fetches of consecutive elements overlap, so only
        // the L2-and-beyond portion beyond one line is serialized.
        const Cycles fetch = core_->mem().l2Access(elem.keyAddr);

        StreamUnit *su = &sus_[0];
        for (auto &candidate : sus_)
            if (candidate.freeAt() < su->freeAt())
                su = &candidate;

        const Cycles su_free = su->freeAt();
        const Cycles op_start =
            std::max({ready[i] + fetch, su_free, start});
        const auto cost =
            streams::suCost(s_keys, elem.nested,
                            SetOpKind::Intersect, elem.bound,
                            config_.suWindow);
        const Cycles intrinsic =
            config_.suPipelineLatency + cost.cycles;
        const double elems_moved =
            static_cast<double>(cost.aConsumed + cost.bConsumed);
        const double bw_start =
            std::max(static_cast<double>(op_start), bwFreeAt_);
        bwFreeAt_ =
            bw_start + elems_moved / config_.aggregateBandwidth;
        const auto bw_done =
            static_cast<Cycles>(std::ceil(bwFreeAt_));
        const Cycles completion =
            std::max(op_start + intrinsic, bw_done);
        su->occupy(op_start, completion);

        lengthHist_.sample(elem.nested.size());
        stats_.counter("setOpElements") +=
            cost.aConsumed + cost.bConsumed;
        ++stats_.counter("op.nestedIntersect");
        // Memory is charged only for delay beyond SU availability
        // (nested prefetches overlap with earlier intersections).
        const Cycles data_ready = ready[i] + fetch;
        const Cycles mem_wait =
            data_ready > su_free ? data_ready - su_free : 0;
        const double mem_share =
            completion > op_start
                ? std::min(1.0,
                           static_cast<double>(mem_wait) /
                               static_cast<double>(completion -
                                                   op_start + 1))
                : 0.0;
        recordOp(completion, mem_share);
    }
}

void
Engine::waitFor(StreamHandle handle)
{
    if (handle == invalidStream)
        return;
    const StreamInfo &si = info(handle);
    stallUntil(si.producedAt, si.memShare);
}

void
Engine::fetchLoop(StreamHandle handle, std::uint64_t n,
                  std::uint64_t ops_per_element)
{
    // invalidStream: a plain counted loop not backed by S_FETCH.
    waitFor(handle);
    if (handle != invalidStream)
        stats_.counter("streamInstructions") += n; // S_FETCH each
    scalarOps(n * ops_per_element);
    // Loop-closing branch: taken n times, then falls through. These
    // are highly predictable; run them through the real predictor.
    const std::uint64_t pc =
        0x1000 + (static_cast<std::uint64_t>(handle) << 4);
    for (std::uint64_t i = 0; i + 1 < n; ++i)
        core_->executeBranch(pc, true);
    if (n > 0)
        core_->executeBranch(pc, false);
}

Cycles
Engine::finish()
{
    if (maxCompletion_ > now()) {
        const double total = drainMemWeight_ + drainSuWeight_;
        const double share =
            total > 0.0 ? drainMemWeight_ / total : 0.5;
        stallUntil(maxCompletion_, share);
    }
    rob_.clear();
    return now();
}

} // namespace sc::arch
