#include "arch/scache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sc::arch {

SCache::SCache(unsigned num_slots, unsigned slot_keys,
               unsigned line_bytes)
    : slots_(num_slots), slotKeys_(slot_keys), lineBytes_(line_bytes)
{
    if (num_slots == 0 || slot_keys < 2 || slot_keys % 2 != 0)
        fatal("S-Cache needs slots with an even number of keys");
    if (line_bytes == 0)
        fatal("S-Cache line size must be positive");
}

Cycles
SCache::allocate(unsigned slot, Addr key_addr, std::uint64_t num_keys,
                 sim::MemHierarchy &mem)
{
    ScacheSlot &s = slots_.at(slot);
    s.valid = true;
    s.baseAddr = key_addr;
    s.streamKeys = num_keys;
    s.residentFrom = 0;
    s.startBit = true;
    ++stats_.counter("allocs");

    // First sub-slot: fetch its cache lines through L2. The fills
    // pipeline, so the latency to first use is the first line's
    // latency plus one transfer cycle per additional line.
    const std::uint64_t fetch_keys =
        std::min<std::uint64_t>(num_keys, subSlotKeys());
    if (fetch_keys == 0)
        return 0;
    const Addr first = key_addr;
    const Addr last = key_addr + (fetch_keys - 1) * sizeof(Key);
    Cycles latency = 0;
    std::uint64_t line_count = 0;
    for (Addr line = first / lineBytes_; line <= last / lineBytes_;
         ++line) {
        const Cycles l = mem.l2Access(line * lineBytes_);
        latency = std::max(latency, l);
        ++line_count;
        ++stats_.counter("refillLines");
    }
    return latency + (line_count > 0 ? line_count - 1 : 0);
}

void
SCache::allocateProduced(unsigned slot, std::uint64_t num_keys)
{
    ScacheSlot &s = slots_.at(slot);
    s.valid = true;
    s.baseAddr = 0;
    s.streamKeys = num_keys;
    s.residentFrom =
        num_keys > slotKeys_ ? num_keys - slotKeys_ : 0;
    s.startBit = num_keys <= slotKeys_;
    ++stats_.counter("producedAllocs");
}

void
SCache::prefetchRemainder(unsigned slot, sim::MemHierarchy &mem)
{
    const ScacheSlot &s = slots_.at(slot);
    if (!s.valid || s.baseAddr == 0)
        return;
    if (s.streamKeys <= subSlotKeys())
        return;
    const Addr first = s.baseAddr + subSlotKeys() * sizeof(Key);
    const Addr last = s.baseAddr + (s.streamKeys - 1) * sizeof(Key);
    for (Addr line = first / lineBytes_; line <= last / lineBytes_;
         ++line) {
        mem.l2Access(line * lineBytes_);
        ++stats_.counter("prefetchLines");
    }
}

std::uint64_t
SCache::writebackProduced(unsigned slot, std::uint64_t total_keys,
                          sim::MemHierarchy &mem)
{
    ScacheSlot &s = slots_.at(slot);
    if (total_keys <= slotKeys_) {
        s.streamKeys = total_keys;
        s.startBit = true;
        s.residentFrom = 0;
        return 0;
    }
    // The most recent slotKeys_ stay resident; earlier keys are
    // written back to L2 (the start bit clears).
    const std::uint64_t spilled = total_keys - slotKeys_;
    const std::uint64_t lines =
        (spilled * sizeof(Key) + lineBytes_ - 1) / lineBytes_;
    // Touch L2 so subsequent consumers find the data there. Writeback
    // addresses are synthetic (produced streams have no base); use a
    // per-slot spill region.
    const Addr spill_base =
        0x700000000ull + static_cast<Addr>(slot) * 0x1000000ull;
    for (std::uint64_t l = 0; l < lines; ++l)
        mem.l2Access(spill_base + l * lineBytes_);
    s.streamKeys = total_keys;
    s.residentFrom = spilled;
    s.startBit = false;
    stats_.counter("writebackLines") += lines;
    return lines;
}

void
SCache::release(unsigned slot)
{
    slots_.at(slot) = ScacheSlot{};
}

const ScacheSlot &
SCache::slot(unsigned index) const
{
    return slots_.at(index);
}

} // namespace sc::arch
