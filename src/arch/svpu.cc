#include "arch/svpu.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sc::arch {

Svpu::Svpu(unsigned mlp, unsigned fp_ops_per_cycle)
    : mlp_(mlp), fpOpsPerCycle_(fp_ops_per_cycle)
{
    if (mlp == 0 || fp_ops_per_cycle == 0)
        fatal("SVPU parameters must be positive");
}

SvpuCost
Svpu::process(const std::vector<Addr> &match_val_addrs_a,
              const std::vector<Addr> &match_val_addrs_b,
              sim::MemHierarchy &mem)
{
    if (match_val_addrs_a.size() != match_val_addrs_b.size())
        panic("SVPU operand address lists differ in length");

    SvpuCost cost;
    Cycles total_latency = 0;
    for (std::size_t i = 0; i < match_val_addrs_a.size(); ++i) {
        total_latency += mem.l1Access(match_val_addrs_a[i]);
        total_latency += mem.l1Access(match_val_addrs_b[i]);
        cost.loads += 2;
        ++cost.flops;
    }
    // Loads overlap up to the MLP; the commutative reduction consumes
    // one pair per fpOpsPerCycle_ once both values are ready.
    const Cycles load_time = (total_latency + mlp_ - 1) / mlp_;
    const Cycles fp_time =
        (cost.flops + fpOpsPerCycle_ - 1) / fpOpsPerCycle_;
    cost.cycles = std::max(load_time, fp_time);
    stats_.counter("loads") += cost.loads;
    stats_.counter("flops") += cost.flops;
    stats_.counter("cycles") += cost.cycles;
    return cost;
}

} // namespace sc::arch
