/**
 * @file
 * Stream Value Processing Unit (SVPU) model (§4.5): VA_gen produces
 * value addresses for intersected keys, the load queue fetches values
 * through the normal hierarchy into vBuf entries, and the SVPU
 * combines them (commutative reduction into acc_reg, so no ordering
 * is enforced and loads overlap up to the load queue's MLP).
 */

#ifndef SPARSECORE_ARCH_SVPU_HH
#define SPARSECORE_ARCH_SVPU_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/mem_hierarchy.hh"

namespace sc::arch {

/** Result of processing one value-computation burst. */
struct SvpuCost
{
    Cycles cycles = 0;          ///< time to drain all value work
    std::uint64_t loads = 0;    ///< value loads issued
    std::uint64_t flops = 0;    ///< value operations performed
};

/** The SVPU + vBuf + load-queue cost model. */
class Svpu
{
  public:
    /**
     * @param mlp maximum overlapped value loads (load queue share)
     * @param fp_ops_per_cycle SVPU reduction throughput
     */
    Svpu(unsigned mlp, unsigned fp_ops_per_cycle = 1);

    /**
     * Cost of fetching and combining values for n matched keys.
     * Two value loads per match (val0, val1) go through the normal
     * hierarchy; latencies overlap up to the MLP.
     *
     * @param match_val_addrs_a addresses of matched values, operand A
     * @param match_val_addrs_b addresses of matched values, operand B
     */
    SvpuCost process(const std::vector<Addr> &match_val_addrs_a,
                     const std::vector<Addr> &match_val_addrs_b,
                     sim::MemHierarchy &mem);

    const StatSet &stats() const { return stats_; }

  private:
    unsigned mlp_;
    unsigned fpOpsPerCycle_;
    StatSet stats_{"svpu"};
};

} // namespace sc::arch

#endif // SPARSECORE_ARCH_SVPU_HH
