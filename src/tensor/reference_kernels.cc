#include "tensor/reference_kernels.hh"

#include <cmath>
#include <unordered_map>

#include "common/logging.hh"

namespace sc::tensor {

SparseMatrix
referenceSpmspm(const SparseMatrix &a, const SparseMatrix &b)
{
    if (a.cols() != b.rows())
        fatal("spmspm shape mismatch: %ux%u * %ux%u", a.rows(), a.cols(),
              b.rows(), b.cols());

    std::vector<Triplet> out;
    std::unordered_map<Key, Value> row_acc;
    for (std::uint32_t i = 0; i < a.rows(); ++i) {
        row_acc.clear();
        auto a_keys = a.rowKeys(i);
        auto a_vals = a.rowVals(i);
        for (std::size_t p = 0; p < a_keys.size(); ++p) {
            const Key k = a_keys[p];
            const Value av = a_vals[p];
            auto b_keys = b.rowKeys(k);
            auto b_vals = b.rowVals(k);
            for (std::size_t q = 0; q < b_keys.size(); ++q)
                row_acc[b_keys[q]] += av * b_vals[q];
        }
        for (const auto &[col, val] : row_acc)
            if (val != 0.0)
                out.push_back({i, col, val});
    }
    return SparseMatrix::fromTriplets(a.rows(), b.cols(), std::move(out),
                                      "reference");
}

SparseMatrix
referenceTtv(const CsfTensor &a, const std::vector<Value> &vec)
{
    if (vec.size() < a.dimK())
        fatal("TTV vector too short: %zu < %u", vec.size(), a.dimK());

    std::vector<Triplet> out;
    for (std::uint32_t s = 0; s < a.numSlices(); ++s) {
        const std::uint32_t i = a.sliceRoot(s);
        auto fiber_keys = a.sliceFiberKeys(s);
        for (std::uint64_t f = a.fiberBegin(s); f < a.fiberEnd(s); ++f) {
            const Key j = fiber_keys[f - a.fiberBegin(s)];
            auto ks = a.fiberKeys(f);
            auto vs = a.fiberVals(f);
            Value acc = 0.0;
            for (std::size_t p = 0; p < ks.size(); ++p)
                acc += vs[p] * vec[ks[p]];
            if (acc != 0.0)
                out.push_back({i, j, acc});
        }
    }
    return SparseMatrix::fromTriplets(a.dimI(), a.dimJ(), std::move(out),
                                      "reference-ttv");
}

CsfTensor
referenceTtm(const CsfTensor &a, const SparseMatrix &b)
{
    if (b.cols() != a.dimK())
        fatal("TTM shape mismatch: tensor k-dim %u vs matrix cols %u",
              a.dimK(), b.cols());

    std::vector<TensorEntry> out;
    for (std::uint32_t s = 0; s < a.numSlices(); ++s) {
        const std::uint32_t i = a.sliceRoot(s);
        auto fiber_keys = a.sliceFiberKeys(s);
        for (std::uint64_t f = a.fiberBegin(s); f < a.fiberEnd(s); ++f) {
            const Key j = fiber_keys[f - a.fiberBegin(s)];
            auto ks = a.fiberKeys(f);
            auto vs = a.fiberVals(f);
            for (std::uint32_t k = 0; k < b.rows(); ++k) {
                auto b_keys = b.rowKeys(k);
                auto b_vals = b.rowVals(k);
                // Dot of sparse fiber with sparse row of B.
                Value acc = 0.0;
                std::size_t p = 0, q = 0;
                while (p < ks.size() && q < b_keys.size()) {
                    if (ks[p] == b_keys[q]) {
                        acc += vs[p] * b_vals[q];
                        ++p;
                        ++q;
                    } else if (ks[p] < b_keys[q]) {
                        ++p;
                    } else {
                        ++q;
                    }
                }
                if (acc != 0.0)
                    out.push_back({i, j, k, acc});
            }
        }
    }
    return CsfTensor::fromEntries(a.dimI(), a.dimJ(), b.rows(),
                                  std::move(out), "reference-ttm");
}

} // namespace sc::tensor
