/**
 * @file
 * Deterministic sparse matrix / tensor generators. Structure families
 * mimic the Table-5 collections: uniform-random (circuit-like),
 * banded (PDE meshes like ex19/gridgena), and column-skewed
 * (power-grid matrices like TSOPF with dense columns).
 */

#ifndef SPARSECORE_TENSOR_TENSOR_GEN_HH
#define SPARSECORE_TENSOR_TENSOR_GEN_HH

#include <cstdint>
#include <string>

#include "tensor/csf_tensor.hh"
#include "tensor/sparse_matrix.hh"

namespace sc::tensor {

/** Structure family of a generated matrix. */
enum class MatrixStructure : unsigned
{
    Uniform,     ///< nnz scattered uniformly
    Banded,      ///< nnz concentrated near the diagonal
    ColumnSkewed ///< a few dense columns, rest sparse (TSOPF-like)
};

/** Generate an n x m matrix with the requested nnz and structure. */
SparseMatrix generateMatrix(std::uint32_t rows, std::uint32_t cols,
                            std::uint64_t nnz, MatrixStructure structure,
                            std::uint64_t seed,
                            std::string name = "matrix");

/** Generate a 3-order tensor with the requested nnz (uniform). */
CsfTensor generateTensor(std::uint32_t dim_i, std::uint32_t dim_j,
                         std::uint32_t dim_k, std::uint64_t nnz,
                         std::uint64_t seed,
                         std::string name = "tensor");

/** Generate a dense vector of the given length (values in [0.5,1.5)). */
std::vector<Value> generateVector(std::uint32_t length,
                                  std::uint64_t seed);

} // namespace sc::tensor

#endif // SPARSECORE_TENSOR_TENSOR_GEN_HH
