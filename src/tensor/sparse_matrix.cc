#include "tensor/sparse_matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sc::tensor {

SparseMatrix
SparseMatrix::fromTriplets(std::uint32_t rows, std::uint32_t cols,
                           std::vector<Triplet> triplets, std::string name)
{
    for (const auto &t : triplets)
        if (t.row >= rows || t.col >= cols)
            fatal("triplet (%u,%u) outside %ux%u matrix", t.row, t.col,
                  rows, cols);

    std::sort(triplets.begin(), triplets.end(),
              [](const Triplet &x, const Triplet &y) {
                  return std::tie(x.row, x.col) < std::tie(y.row, y.col);
              });

    SparseMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.name_ = std::move(name);
    m.rowPtr_.assign(rows + 1, 0);
    m.colIdx_.reserve(triplets.size());
    m.vals_.reserve(triplets.size());

    for (std::size_t i = 0; i < triplets.size();) {
        const std::uint32_t r = triplets[i].row;
        const std::uint32_t c = triplets[i].col;
        Value sum = 0.0;
        while (i < triplets.size() && triplets[i].row == r &&
               triplets[i].col == c) {
            sum += triplets[i].value;
            ++i;
        }
        m.colIdx_.push_back(c);
        m.vals_.push_back(sum);
        ++m.rowPtr_[r + 1];
    }
    for (std::uint32_t r = 0; r < rows; ++r)
        m.rowPtr_[r + 1] += m.rowPtr_[r];
    return m;
}

SparseMatrix
SparseMatrix::transpose() const
{
    std::vector<Triplet> triplets;
    triplets.reserve(nnz());
    for (std::uint32_t r = 0; r < rows_; ++r) {
        auto keys = rowKeys(r);
        auto vals = rowVals(r);
        for (std::size_t k = 0; k < keys.size(); ++k)
            triplets.push_back({keys[k], r, vals[k]});
    }
    return fromTriplets(cols_, rows_, std::move(triplets),
                        name_ + "^T");
}

std::vector<Value>
SparseMatrix::toDense() const
{
    std::vector<Value> dense(static_cast<std::size_t>(rows_) * cols_,
                             0.0);
    for (std::uint32_t r = 0; r < rows_; ++r) {
        auto keys = rowKeys(r);
        auto vals = rowVals(r);
        for (std::size_t k = 0; k < keys.size(); ++k)
            dense[static_cast<std::size_t>(r) * cols_ + keys[k]] =
                vals[k];
    }
    return dense;
}

double
SparseMatrix::maxAbsDiff(const SparseMatrix &other) const
{
    if (rows_ != other.rows_ || cols_ != other.cols_)
        fatal("matrix shape mismatch: %ux%u vs %ux%u", rows_, cols_,
              other.rows_, other.cols_);
    const auto a = toDense();
    const auto b = other.toDense();
    double max_diff = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
    return max_diff;
}

} // namespace sc::tensor
