#include "tensor/tensor_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sc::tensor {

namespace {

Value
randomValue(Rng &rng)
{
    return 0.5 + rng.uniform();
}

} // namespace

SparseMatrix
generateMatrix(std::uint32_t rows, std::uint32_t cols, std::uint64_t nnz,
               MatrixStructure structure, std::uint64_t seed,
               std::string name)
{
    if (rows == 0 || cols == 0)
        fatal("matrix dimensions must be positive");
    Rng rng(seed);
    std::vector<Triplet> triplets;
    triplets.reserve(nnz + nnz / 8);

    switch (structure) {
      case MatrixStructure::Uniform:
        for (std::uint64_t n = 0; n < nnz; ++n) {
            triplets.push_back(
                {static_cast<std::uint32_t>(rng.below(rows)),
                 static_cast<std::uint32_t>(rng.below(cols)),
                 randomValue(rng)});
        }
        break;

      case MatrixStructure::Banded: {
        // Bandwidth sized so the band holds ~6x the requested nnz
        // (enough headroom that duplicate draws stay rare even for
        // very sparse PDE meshes).
        const std::uint64_t band = std::max<std::uint64_t>(
            8, 6 * nnz / rows);
        for (std::uint64_t n = 0; n < nnz; ++n) {
            const auto r = static_cast<std::uint32_t>(rng.below(rows));
            const std::int64_t offset =
                static_cast<std::int64_t>(rng.below(band)) -
                static_cast<std::int64_t>(band / 2);
            std::int64_t c =
                static_cast<std::int64_t>(
                    static_cast<double>(r) * cols / rows) +
                offset;
            c = std::clamp<std::int64_t>(c, 0, cols - 1);
            triplets.push_back({r, static_cast<std::uint32_t>(c),
                                randomValue(rng)});
        }
        break;
      }

      case MatrixStructure::ColumnSkewed: {
        // 5% of columns receive 60% of the non-zeros.
        const std::uint32_t hot_cols =
            std::max<std::uint32_t>(1, cols / 20);
        for (std::uint64_t n = 0; n < nnz; ++n) {
            const auto r = static_cast<std::uint32_t>(rng.below(rows));
            std::uint32_t c;
            if (rng.chance(0.6))
                c = static_cast<std::uint32_t>(rng.below(hot_cols));
            else
                c = static_cast<std::uint32_t>(rng.below(cols));
            triplets.push_back({r, c, randomValue(rng)});
        }
        break;
      }
    }
    return SparseMatrix::fromTriplets(rows, cols, std::move(triplets),
                                      std::move(name));
}

CsfTensor
generateTensor(std::uint32_t dim_i, std::uint32_t dim_j,
               std::uint32_t dim_k, std::uint64_t nnz, std::uint64_t seed,
               std::string name)
{
    if (dim_i == 0 || dim_j == 0 || dim_k == 0)
        fatal("tensor dimensions must be positive");
    Rng rng(seed);
    std::vector<TensorEntry> entries;
    entries.reserve(nnz);
    for (std::uint64_t n = 0; n < nnz; ++n) {
        entries.push_back({static_cast<std::uint32_t>(rng.below(dim_i)),
                           static_cast<std::uint32_t>(rng.below(dim_j)),
                           static_cast<std::uint32_t>(rng.below(dim_k)),
                           randomValue(rng)});
    }
    return CsfTensor::fromEntries(dim_i, dim_j, dim_k, std::move(entries),
                                  std::move(name));
}

std::vector<Value>
generateVector(std::uint32_t length, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Value> vec(length);
    for (auto &v : vec)
        v = randomValue(rng);
    return vec;
}

} // namespace sc::tensor
