/**
 * @file
 * Third-order sparse tensor in compressed sparse fiber (CSF) form,
 * mode order (i, j, k): i-slices -> j-fibers -> k entries. Used by the
 * TTV and TTM kernels (§6.2/§6.9).
 */

#ifndef SPARSECORE_TENSOR_CSF_TENSOR_HH
#define SPARSECORE_TENSOR_CSF_TENSOR_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"

namespace sc::tensor {

/** (i, j, k, value) entry used during construction. */
struct TensorEntry
{
    std::uint32_t i;
    std::uint32_t j;
    std::uint32_t k;
    Value value;
};

/** Immutable 3-order CSF tensor. */
class CsfTensor
{
  public:
    CsfTensor() = default;

    /** Build from entries; duplicates are summed. */
    static CsfTensor fromEntries(std::uint32_t dim_i, std::uint32_t dim_j,
                                 std::uint32_t dim_k,
                                 std::vector<TensorEntry> entries,
                                 std::string name = "tensor");

    std::uint32_t dimI() const { return dimI_; }
    std::uint32_t dimJ() const { return dimJ_; }
    std::uint32_t dimK() const { return dimK_; }
    std::uint64_t nnz() const { return kIdx_.size(); }
    double density() const;

    /** Number of non-empty i slices. */
    std::uint32_t numSlices() const
    {
        return static_cast<std::uint32_t>(iIdx_.size());
    }
    std::uint32_t sliceRoot(std::uint32_t s) const { return iIdx_[s]; }

    /** j coordinates of the fibers in slice s. */
    std::span<const Key>
    sliceFiberKeys(std::uint32_t s) const
    {
        return {jIdx_.data() + iPtr_[s], jIdx_.data() + iPtr_[s + 1]};
    }
    /** Fiber index range [begin,end) for slice s. */
    std::uint64_t fiberBegin(std::uint32_t s) const { return iPtr_[s]; }
    std::uint64_t fiberEnd(std::uint32_t s) const { return iPtr_[s + 1]; }

    /** k coordinates of fiber f (sorted: a key stream). */
    std::span<const Key>
    fiberKeys(std::uint64_t f) const
    {
        return {kIdx_.data() + jPtr_[f], kIdx_.data() + jPtr_[f + 1]};
    }
    /** Values of fiber f, aligned with fiberKeys(). */
    std::span<const Value>
    fiberVals(std::uint64_t f) const
    {
        return {vals_.data() + jPtr_[f], vals_.data() + jPtr_[f + 1]};
    }

    /** Simulated byte address of fiber f's keys / values. */
    Addr
    fiberKeyAddr(std::uint64_t f) const
    {
        return keyBase_ + jPtr_[f] * sizeof(Key);
    }
    Addr
    fiberValAddr(std::uint64_t f) const
    {
        return valBase_ + jPtr_[f] * sizeof(Value);
    }

    const std::string &name() const { return name_; }

  private:
    std::uint32_t dimI_ = 0, dimJ_ = 0, dimK_ = 0;
    std::vector<std::uint32_t> iIdx_; ///< root coordinates (slices)
    std::vector<std::uint64_t> iPtr_; ///< slice -> fiber range
    std::vector<Key> jIdx_;           ///< fiber coordinates
    std::vector<std::uint64_t> jPtr_; ///< fiber -> entry range
    std::vector<Key> kIdx_;           ///< entry coordinates
    std::vector<Value> vals_;
    std::string name_;
    Addr keyBase_ = 0x400000000ull;
    Addr valBase_ = 0x500000000ull;
};

} // namespace sc::tensor

#endif // SPARSECORE_TENSOR_CSF_TENSOR_HH
