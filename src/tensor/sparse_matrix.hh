/**
 * @file
 * Sparse matrix in compressed sparse row (CSR) form with values —
 * the (key,value) stream substrate for spmspm (§2.1, §6.9).
 */

#ifndef SPARSECORE_TENSOR_SPARSE_MATRIX_HH
#define SPARSECORE_TENSOR_SPARSE_MATRIX_HH

#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.hh"

namespace sc::tensor {

/** (row, col, value) triplet used during construction. */
struct Triplet
{
    std::uint32_t row;
    std::uint32_t col;
    Value value;
};

/** Immutable CSR sparse matrix. */
class SparseMatrix
{
  public:
    SparseMatrix() = default;

    /** Build from triplets; duplicates are summed. */
    static SparseMatrix fromTriplets(std::uint32_t rows,
                                     std::uint32_t cols,
                                     std::vector<Triplet> triplets,
                                     std::string name = "matrix");

    std::uint32_t rows() const { return rows_; }
    std::uint32_t cols() const { return cols_; }
    std::uint64_t nnz() const { return colIdx_.size(); }
    double
    density() const
    {
        return rows_ && cols_ ? static_cast<double>(nnz()) /
                                    (static_cast<double>(rows_) * cols_)
                              : 0.0;
    }

    std::uint32_t
    rowNnz(std::uint32_t r) const
    {
        return static_cast<std::uint32_t>(rowPtr_[r + 1] - rowPtr_[r]);
    }

    /** Sorted column indices of row r (a key stream). */
    std::span<const Key>
    rowKeys(std::uint32_t r) const
    {
        return {colIdx_.data() + rowPtr_[r],
                colIdx_.data() + rowPtr_[r + 1]};
    }
    /** Values of row r, aligned with rowKeys(). */
    std::span<const Value>
    rowVals(std::uint32_t r) const
    {
        return {vals_.data() + rowPtr_[r], vals_.data() + rowPtr_[r + 1]};
    }

    /** Transposed copy (CSR of A^T doubles as CSC of A). */
    SparseMatrix transpose() const;

    /** Dense expansion, row-major; only for small validation cases. */
    std::vector<Value> toDense() const;

    /** Sum of absolute differences against another matrix. */
    double maxAbsDiff(const SparseMatrix &other) const;

    /** Simulated byte address of row r's first column index. */
    Addr
    rowKeyAddr(std::uint32_t r) const
    {
        return keyBase_ + rowPtr_[r] * sizeof(Key);
    }
    /** Simulated byte address of row r's first value. */
    Addr
    rowValAddr(std::uint32_t r) const
    {
        return valBase_ + rowPtr_[r] * sizeof(Value);
    }

    const std::string &name() const { return name_; }
    const std::vector<std::uint64_t> &rowPtr() const { return rowPtr_; }

  private:
    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    std::vector<std::uint64_t> rowPtr_;
    std::vector<Key> colIdx_;
    std::vector<Value> vals_;
    std::string name_;
    Addr keyBase_ = 0x200000000ull;
    Addr valBase_ = 0x300000000ull;
};

} // namespace sc::tensor

#endif // SPARSECORE_TENSOR_SPARSE_MATRIX_HH
