/**
 * @file
 * Golden reference tensor kernels. These compute spmspm / TTV / TTM
 * with straightforward algorithms (no stream modeling) so the
 * stream-kernel implementations in src/kernels can be validated
 * bit-for-bit (modulo FP associativity, hence tolerance checks).
 */

#ifndef SPARSECORE_TENSOR_REFERENCE_KERNELS_HH
#define SPARSECORE_TENSOR_REFERENCE_KERNELS_HH

#include <vector>

#include "tensor/csf_tensor.hh"
#include "tensor/sparse_matrix.hh"

namespace sc::tensor {

/** C = A * B via dense accumulation per row (Gustavson order). */
SparseMatrix referenceSpmspm(const SparseMatrix &a, const SparseMatrix &b);

/** Z(i,j) = sum_k A(i,j,k) * v(k). Returns a sparse (i,j) matrix. */
SparseMatrix referenceTtv(const CsfTensor &a,
                          const std::vector<Value> &vec);

/**
 * Z(i,j,k) = sum_l A(i,j,l) * B(k,l). Returns entries of the result
 * tensor in CSF form.
 */
CsfTensor referenceTtm(const CsfTensor &a, const SparseMatrix &b);

} // namespace sc::tensor

#endif // SPARSECORE_TENSOR_REFERENCE_KERNELS_HH
