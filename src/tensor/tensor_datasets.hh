/**
 * @file
 * Table-5 dataset registry: eleven sparse matrices and two 3-order
 * tensors, generated at the published dimension/nnz statistics (the
 * tensors are scaled down; see DESIGN.md §5).
 */

#ifndef SPARSECORE_TENSOR_TENSOR_DATASETS_HH
#define SPARSECORE_TENSOR_TENSOR_DATASETS_HH

#include <string>
#include <vector>

#include "tensor/csf_tensor.hh"
#include "tensor/sparse_matrix.hh"
#include "tensor/tensor_gen.hh"

namespace sc::tensor {

/** Descriptor of one Table-5 matrix. */
struct MatrixDataset
{
    std::string key;  ///< short code used by Fig. 15 (C, E, F, ...)
    std::string name; ///< published dataset name
    std::uint32_t rows;
    std::uint32_t cols;
    std::uint64_t nnz;
    MatrixStructure structure;
};

/** Descriptor of one Table-5 tensor. */
struct TensorDataset
{
    std::string key;
    std::string name;
    std::uint32_t dimI;
    std::uint32_t dimJ;
    std::uint32_t dimK;
    std::uint64_t nnz;
    double scale; ///< published-nnz / generated-nnz
};

/** The eleven Table-5 matrices in paper order. */
const std::vector<MatrixDataset> &matrixDatasets();
const MatrixDataset &matrixDataset(const std::string &key);
/** Generate (and memoize) a matrix dataset. */
const SparseMatrix &loadMatrix(const std::string &key);

/** The two Table-5 tensors (Chicago Crime, Uber Pickups). */
const std::vector<TensorDataset> &tensorDatasets();
const TensorDataset &tensorDataset(const std::string &key);
const CsfTensor &loadTensor(const std::string &key);

/** Keys of all matrices in Fig. 15 order. */
std::vector<std::string> allMatrixKeys();
/** Keys of the two tensors. */
std::vector<std::string> allTensorKeys();

} // namespace sc::tensor

#endif // SPARSECORE_TENSOR_TENSOR_DATASETS_HH
