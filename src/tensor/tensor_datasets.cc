#include "tensor/tensor_datasets.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"

namespace sc::tensor {

namespace {

/** Guards the memoization caches: benchmark sweep points run on the
 *  host pool and may load datasets concurrently. */
std::mutex cacheMutex;

std::uint64_t
seedFromKey(const std::string &key, std::uint64_t base)
{
    std::uint64_t seed = base;
    for (char c : key)
        seed = seed * 131 + static_cast<unsigned char>(c);
    return seed;
}

} // namespace

const std::vector<MatrixDataset> &
matrixDatasets()
{
    // Published statistics (Table 5). Structures chosen per family:
    // circuit/FPGA/power matrices are uniform-ish, PDE meshes banded,
    // TSOPF column-skewed (it has very dense columns, which the paper
    // credits for its outsized inner/Gustavson speedups).
    static const std::vector<MatrixDataset> datasets = {
        {"CA", "California", 9664, 9664, 16150,
         MatrixStructure::Uniform},
        {"C", "Circuit204", 1020, 1020, 5883, MatrixStructure::Uniform},
        {"E", "Email-Eu-core", 1005, 1005, 25571,
         MatrixStructure::Uniform},
        {"F", "Fpga_dcop_26", 1220, 1220, 5892,
         MatrixStructure::Uniform},
        {"G", "Grid2", 3296, 3296, 6432, MatrixStructure::Banded},
        {"L", "Laser", 3002, 3002, 5000, MatrixStructure::Banded},
        {"P", "Piston", 2025, 2025, 100015, MatrixStructure::Banded},
        {"H", "Hydr1c", 5308, 5308, 23752, MatrixStructure::Banded},
        {"EX", "ex19", 12005, 12005, 259577, MatrixStructure::Banded},
        {"GR", "gridgena", 48962, 48962, 512084,
         MatrixStructure::Banded},
        {"T", "TSOPF", 18696, 18696, 4396289,
         MatrixStructure::ColumnSkewed},
    };
    return datasets;
}

const MatrixDataset &
matrixDataset(const std::string &key)
{
    for (const auto &dataset : matrixDatasets())
        if (dataset.key == key)
            return dataset;
    fatal("unknown matrix dataset key '%s'", key.c_str());
}

const SparseMatrix &
loadMatrix(const std::string &key)
{
    static std::map<std::string, SparseMatrix> cache;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    const MatrixDataset &ds = matrixDataset(key);
    SparseMatrix m = generateMatrix(ds.rows, ds.cols, ds.nnz,
                                    ds.structure,
                                    seedFromKey(key, 0x7e45045), ds.name);
    // Deterministic generation: a racing loser's copy is identical;
    // emplace keeps the first and map nodes are stable.
    std::lock_guard<std::mutex> lock(cacheMutex);
    auto [pos, inserted] = cache.emplace(key, std::move(m));
    (void)inserted;
    return pos->second;
}

const std::vector<TensorDataset> &
tensorDatasets()
{
    // Chicago Crime 6.2K x 24 x 2.4K, 5.3M nnz; Uber Pickups
    // 4.3K x 1.1K x 1.7K, 3.3M nnz. Scaled to 1/8 nnz (same dims /2).
    static const std::vector<TensorDataset> datasets = {
        {"Ch", "Chicago Crime", 3100, 24, 1200, 660000, 8.0},
        {"U", "Uber Pickups", 2150, 550, 850, 410000, 8.0},
    };
    return datasets;
}

const TensorDataset &
tensorDataset(const std::string &key)
{
    for (const auto &dataset : tensorDatasets())
        if (dataset.key == key)
            return dataset;
    fatal("unknown tensor dataset key '%s'", key.c_str());
}

const CsfTensor &
loadTensor(const std::string &key)
{
    static std::map<std::string, CsfTensor> cache;
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }
    const TensorDataset &ds = tensorDataset(key);
    CsfTensor t = generateTensor(ds.dimI, ds.dimJ, ds.dimK, ds.nnz,
                                 seedFromKey(key, 0x7e4503), ds.name);
    std::lock_guard<std::mutex> lock(cacheMutex);
    auto [pos, inserted] = cache.emplace(key, std::move(t));
    (void)inserted;
    return pos->second;
}

std::vector<std::string>
allMatrixKeys()
{
    return {"CA", "C", "E", "F", "G", "L", "P", "H", "EX", "GR", "T"};
}

std::vector<std::string>
allTensorKeys()
{
    return {"Ch", "U"};
}

} // namespace sc::tensor
