#include "tensor/csf_tensor.hh"

#include <algorithm>
#include <tuple>

#include "common/logging.hh"

namespace sc::tensor {

CsfTensor
CsfTensor::fromEntries(std::uint32_t dim_i, std::uint32_t dim_j,
                       std::uint32_t dim_k,
                       std::vector<TensorEntry> entries, std::string name)
{
    for (const auto &e : entries)
        if (e.i >= dim_i || e.j >= dim_j || e.k >= dim_k)
            fatal("tensor entry (%u,%u,%u) outside %ux%ux%u", e.i, e.j,
                  e.k, dim_i, dim_j, dim_k);

    std::sort(entries.begin(), entries.end(),
              [](const TensorEntry &x, const TensorEntry &y) {
                  return std::tie(x.i, x.j, x.k) <
                         std::tie(y.i, y.j, y.k);
              });

    CsfTensor t;
    t.dimI_ = dim_i;
    t.dimJ_ = dim_j;
    t.dimK_ = dim_k;
    t.name_ = std::move(name);

    std::size_t idx = 0;
    while (idx < entries.size()) {
        const std::uint32_t i = entries[idx].i;
        t.iIdx_.push_back(i);
        t.iPtr_.push_back(t.jIdx_.size());
        while (idx < entries.size() && entries[idx].i == i) {
            const std::uint32_t j = entries[idx].j;
            t.jIdx_.push_back(j);
            t.jPtr_.push_back(t.kIdx_.size());
            while (idx < entries.size() && entries[idx].i == i &&
                   entries[idx].j == j) {
                const std::uint32_t k = entries[idx].k;
                Value sum = 0.0;
                while (idx < entries.size() && entries[idx].i == i &&
                       entries[idx].j == j && entries[idx].k == k) {
                    sum += entries[idx].value;
                    ++idx;
                }
                t.kIdx_.push_back(k);
                t.vals_.push_back(sum);
            }
        }
    }
    t.iPtr_.push_back(t.jIdx_.size());
    t.jPtr_.push_back(t.kIdx_.size());
    return t;
}

double
CsfTensor::density() const
{
    const double cells = static_cast<double>(dimI_) * dimJ_ * dimK_;
    return cells > 0 ? static_cast<double>(nnz()) / cells : 0.0;
}

} // namespace sc::tensor
