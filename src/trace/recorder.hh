/**
 * @file
 * TraceRecorder: an ExecBackend that captures the execution-event
 * stream into a Trace instead of timing it. Timeless like
 * FunctionalBackend (finish() returns 0); the captured trace replays
 * onto any substrate via trace::replay().
 */

#ifndef SPARSECORE_TRACE_RECORDER_HH
#define SPARSECORE_TRACE_RECORDER_HH

#include "backend/exec_backend.hh"
#include "streams/simd/kernel_table.hh"
#include "trace/trace.hh"

namespace sc::trace {

/** The capturing backend. */
class TraceRecorder : public backend::ExecBackend
{
  public:
    TraceRecorder() = default;

    std::string name() const override { return "trace-recorder"; }
    void begin() override;
    Cycles finish() override;
    sim::CycleBreakdown breakdown() const override { return {}; }

    void scalarOps(std::uint64_t n) override;
    void scalarBranch(std::uint64_t pc, bool taken) override;
    void scalarLoad(Addr addr) override;

    backend::BackendStream streamLoad(Addr key_addr,
                                      std::uint32_t length,
                                      unsigned priority,
                                      streams::KeySpan keys) override;
    backend::BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                                        std::uint32_t length,
                                        unsigned priority,
                                        streams::KeySpan keys) override;
    void streamFree(backend::BackendStream handle) override;

    backend::BackendStream setOp(streams::SetOpKind kind,
                                 backend::BackendStream a,
                                 backend::BackendStream b,
                                 streams::KeySpan ak,
                                 streams::KeySpan bk, Key bound,
                                 streams::KeySpan result,
                                 Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, backend::BackendStream a,
                    backend::BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(backend::BackendStream a,
                        backend::BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Addr a_val_base,
                        Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    void denseValueIntersect(
        backend::BackendStream a, backend::BackendStream b,
        streams::KeySpan ak, streams::KeySpan bk, Addr a_val_base,
        Addr b_val_base, std::span<const std::uint32_t> match_a,
        std::span<const std::uint32_t> match_b) override;
    backend::BackendStream valueMerge(backend::BackendStream a,
                                      backend::BackendStream b,
                                      streams::KeySpan ak,
                                      streams::KeySpan bk,
                                      Addr a_val_base, Addr b_val_base,
                                      std::uint64_t result_len,
                                      Addr out_addr) override;

    /**
     * The recorder captures the nested group as a single event; the
     * replay driver re-dispatches it through the target backend's
     * own nestedIntersect (which lowers it when unsupported).
     */
    backend::ExecBackend::Caps
    caps() const override
    {
        backend::ExecBackend::Caps c;
        c.nested = true;
        c.vectorizedSetOps =
            streams::activeKernels().level != streams::KernelLevel::Scalar;
        return c;
    }
    void nestedIntersect(
        backend::BackendStream s, streams::KeySpan s_keys,
        const std::vector<backend::NestedItem> &elems) override;

    void consumeStream(backend::BackendStream handle) override;
    void iterateStream(backend::BackendStream handle, std::uint64_t n,
                       unsigned ops_per_element) override;

    /** The captured trace (valid after finish(), or mid-capture). */
    const Trace &trace() const { return trace_; }
    /** Move the trace out (the recorder is then empty). */
    Trace takeTrace();

  private:
    backend::BackendStream nextHandle() { return next_++; }
    Event &push(EventKind kind);
    void recordValueIntersect(EventKind kind, backend::BackendStream a,
                              backend::BackendStream b,
                              streams::KeySpan ak, streams::KeySpan bk,
                              Addr a_val_base, Addr b_val_base,
                              std::span<const std::uint32_t> match_a,
                              std::span<const std::uint32_t> match_b);

    Trace trace_;
    backend::BackendStream next_ = 0;
};

} // namespace sc::trace

#endif // SPARSECORE_TRACE_RECORDER_HH
