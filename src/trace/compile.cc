#include "trace/compile.hh"

namespace sc::trace {

namespace {

/**
 * Staged encoder for one instruction. Operands accumulate in call
 * order (which must mirror walkBytecode's read order exactly — the
 * decoder is the layout's source of truth); flush() then decides the
 * wide flag from the staged u64-class values and emits header +
 * operands in one go.
 */
class Emitter
{
  public:
    explicit Emitter(std::vector<Word> &code) : code_(code) {}

    void
    u64f(std::uint64_t value)
    {
        stage(value, true);
    }
    void
    u32f(std::uint32_t value)
    {
        stage(value, false);
    }
    /** Zigzag delta against the running address register (the decoder
     *  keeps the twin register; wrapping u64 arithmetic, no UB). */
    void
    addrf(std::uint64_t addr)
    {
        u64f(zigzagEncode(addr - last_addr_));
        last_addr_ = addr;
    }
    void
    spanf(const SpanRef &ref)
    {
        u64f(ref.off);
        u32f(ref.len);
    }

    void
    flush(Op op, std::uint8_t aux)
    {
        flushResult(op, aux, false, 0);
    }

    void
    flushResult(Op op, std::uint8_t aux, bool explicit_result,
                TraceStream result)
    {
        bool wide = false;
        for (unsigned i = 0; i < nfields_; ++i)
            if (fields_[i].u64_class &&
                fields_[i].value > 0xffffffffull) {
                wide = true;
                break;
            }
        Word hdr = static_cast<Word>(op) |
                   (Word{aux} << auxShift) | (wide ? flagWide : 0) |
                   (explicit_result ? flagExplicitResult : 0);
        code_.push_back(hdr);
        for (unsigned i = 0; i < nfields_; ++i) {
            const Operand &f = fields_[i];
            code_.push_back(static_cast<Word>(f.value));
            if (f.u64_class && wide)
                code_.push_back(static_cast<Word>(f.value >> 32));
        }
        if (explicit_result)
            code_.push_back(result);
        nfields_ = 0;
    }

  private:
    struct Operand
    {
        std::uint64_t value;
        bool u64_class;
    };

    void
    stage(std::uint64_t value, bool u64_class)
    {
        fields_[nfields_++] = {value, u64_class};
    }

    std::vector<Word> &code_;
    std::uint64_t last_addr_ = 0;
    Operand fields_[16];
    unsigned nfields_ = 0;
};

} // namespace

BytecodeProgram
compileTrace(const Trace &trace, bool fuse_scalar_runs)
{
    BytecodeProgram bc;
    const streams::KeySpan arena = trace.arenaSpan();
    bc.arena_.assign(arena.data(), arena.data() + arena.size());
    bc.nested_ = trace.nestedEntries();
    bc.handleCount_ = trace.handleCount();
    bc.numSourceEvents_ = trace.numEvents();

    // Per event: header + a few operand words. 4 is a generous
    // average (scalar events take 2); one reserve, no growth churn.
    bc.code_.reserve(trace.numEvents() * 4);

    Emitter em(bc.code_);
    const std::vector<Event> &events = trace.events();
    // Next implicit creation-order result id; events whose recorded
    // result matches it encode without a result word, and the counter
    // advances only on that implicit form (mirroring the decoder).
    TraceStream next_implicit = 0;
    std::size_t num_instructions = 0;

    auto result_form = [&](TraceStream result) {
        const bool explicit_result = result != next_implicit;
        if (!explicit_result)
            ++next_implicit;
        return explicit_result;
    };

    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        ++num_instructions;
        switch (e.kind) {
        case EventKind::ScalarOps: {
            std::uint64_t run = 1;
            if (fuse_scalar_runs) {
                while (i + run < events.size() &&
                       events[i + run].kind == EventKind::ScalarOps &&
                       events[i + run].n == e.n &&
                       run < 0xffffffffull)
                    ++run;
            }
            if (run > 1) {
                em.u32f(static_cast<std::uint32_t>(run));
                em.u64f(e.n);
                em.flush(Op::ScalarOpsRun, 0);
                i += run - 1;
            } else {
                em.u64f(e.n);
                em.flush(Op::ScalarOps, 0);
            }
            break;
        }
        case EventKind::ScalarBranch:
            em.addrf(e.addr0);
            em.flush(Op::ScalarBranch, e.aux != 0 ? 1 : 0);
            break;
        case EventKind::ScalarLoad:
            em.addrf(e.addr0);
            em.flush(Op::ScalarLoad, 0);
            break;
        case EventKind::StreamLoad:
            em.addrf(e.addr0);
            em.u64f(e.n);
            em.spanf(e.s0);
            em.flushResult(Op::StreamLoad, e.aux,
                           result_form(e.result), e.result);
            break;
        case EventKind::StreamLoadKv:
            em.addrf(e.addr0);
            em.addrf(e.addr1);
            em.u64f(e.n);
            em.spanf(e.s0);
            em.flushResult(Op::StreamLoadKv, e.aux,
                           result_form(e.result), e.result);
            break;
        case EventKind::StreamFree:
            em.u32f(e.a);
            em.flush(Op::StreamFree, 0);
            break;
        case EventKind::SetOp:
            em.u32f(e.a);
            em.u32f(e.b);
            em.spanf(e.s0);
            em.spanf(e.s1);
            em.u32f(e.bound);
            em.spanf(e.s2);
            em.addrf(e.addr0);
            em.flushResult(Op::SetOp, e.aux, result_form(e.result),
                           e.result);
            break;
        case EventKind::SetOpCount:
            em.u32f(e.a);
            em.u32f(e.b);
            em.spanf(e.s0);
            em.spanf(e.s1);
            em.u32f(e.bound);
            em.u64f(e.n);
            em.flush(Op::SetOpCount, e.aux);
            break;
        case EventKind::ValueIntersect:
        case EventKind::DenseValueIntersect:
            em.u32f(e.a);
            em.u32f(e.b);
            em.spanf(e.s0);
            em.spanf(e.s1);
            em.addrf(e.addr0);
            em.addrf(e.addr1);
            em.spanf(e.s2);
            em.spanf(e.s3);
            em.flush(e.kind == EventKind::DenseValueIntersect
                         ? Op::DenseValueIntersect
                         : Op::ValueIntersect,
                     0);
            break;
        case EventKind::ValueMerge:
            em.u32f(e.a);
            em.u32f(e.b);
            em.spanf(e.s0);
            em.spanf(e.s1);
            em.addrf(e.addr0);
            em.addrf(e.addr1);
            em.u64f(e.n);
            em.addrf(e.addr2);
            em.flushResult(Op::ValueMerge, 0, result_form(e.result),
                           e.result);
            break;
        case EventKind::NestedGroup:
            em.u32f(e.a);
            em.spanf(e.s0);
            em.u64f(e.n);
            em.u32f(e.aux2);
            em.flush(Op::NestedGroup, 0);
            break;
        case EventKind::ConsumeStream:
            em.u32f(e.a);
            em.flush(Op::ConsumeStream, 0);
            break;
        case EventKind::IterateStream:
            em.u32f(e.a);
            em.u64f(e.n);
            em.flush(Op::IterateStream, e.aux);
            break;
        case EventKind::NumKinds:
            panic("bytecode compile: corrupt event kind");
        }
    }

    bc.numInstructions_ = num_instructions;
    bc.code_.shrink_to_fit();

    // One fused finalize pass replaces all replay-time bounds checks
    // (it re-decodes with the shared walker, so it also proves
    // encoder and decoder agree on this program's layout) and
    // aggregates the cost-model updates the whole program makes
    // (EventProfile), which stateless substrates apply wholesale.
    bc.finalize();
    return bc;
}

} // namespace sc::trace
