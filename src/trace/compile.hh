/**
 * @file
 * compileTrace(): lower a captured Trace into the flat bytecode form
 * (trace/bytecode.hh). Compiled once per (app, dataset) and replayed
 * onto any backend by trace::replayCompiled / the bytecode mode of
 * trace::replay.
 */

#ifndef SPARSECORE_TRACE_COMPILE_HH
#define SPARSECORE_TRACE_COMPILE_HH

#include "trace/bytecode.hh"

namespace sc::trace {

/**
 * Lower a captured trace into bytecode. A pure function of the trace
 * (deterministic output; the committed golden SCBC image pins it).
 * The trace is only read; the returned program owns copies of the
 * arena and nested-entry table, so it outlives the trace.
 *
 * Compile-time validation replaces replay-time checks: every stream
 * handle is either the sentinel or below handleCount(), every span
 * lies inside the arena and every nested group inside the entry
 * table, so the hot replay loops index without bounds branches.
 * Malformed traces panic here, exactly like the event walker would.
 *
 * @param fuse_scalar_runs fuse runs of consecutive identical
 *        scalarOps events into one run-length instruction (replay
 *        still issues one backend call per source event, keeping the
 *        ceil(n/issueWidth) cost-model semantics bit-identical).
 *        Disable for a strictly 1:1 instruction-per-event program.
 */
BytecodeProgram compileTrace(const Trace &trace,
                             bool fuse_scalar_runs = true);

} // namespace sc::trace

#endif // SPARSECORE_TRACE_COMPILE_HH
