/**
 * @file
 * replay(): drive any ExecBackend with a captured Trace. The replay
 * issues exactly the call sequence the capture run issued — stream
 * handles are remapped through a dense table in creation order, so
 * backends that key costs off handle values (e.g. the CPU baseline's
 * per-site branch pcs) see identical numbering — making replayed
 * cycles and breakdowns bit-identical to direct execution.
 *
 * Two replay engines produce that call sequence:
 *
 *  - Event: the original walker over the captured Event records, one
 *    virtual ExecBackend call per event.
 *  - Bytecode: the trace is lowered once (trace/compile.hh) into the
 *    flat bytecode form (trace/bytecode.hh) and driven by a
 *    template-specialized loop instantiated per concrete backend, so
 *    every backend call devirtualizes and inlines. The compiled
 *    program is reusable across backends and replays — the intended
 *    shape for sweeps is compile once, replayCompiled() many times.
 *
 * Both engines issue the identical call sequence, so cycles and
 * breakdowns are bit-identical; the mode is a pure wall-clock choice.
 * SC_REPLAY=event|bytecode forces a mode process-wide (the escape
 * hatch for A/B tests); explicit mode arguments win over the
 * environment.
 */

#ifndef SPARSECORE_TRACE_REPLAY_HH
#define SPARSECORE_TRACE_REPLAY_HH

#include <optional>

#include "backend/exec_backend.hh"
#include "trace/bytecode.hh"
#include "trace/trace.hh"

namespace sc::trace {

/** Timing outcome of one replay. */
struct ReplayResult
{
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;
};

/** Which replay engine to use. */
enum class ReplayMode : std::uint8_t
{
    Auto,     ///< resolve from SC_REPLAY (default: Bytecode)
    Event,    ///< walk the captured Event records (virtual dispatch)
    Bytecode, ///< compile to bytecode, run the devirtualized loop
};

const char *replayModeName(ReplayMode mode);

/** The process-wide default: SC_REPLAY=event|bytecode, else
 *  Bytecode. Read once and cached (panics on unknown values). */
ReplayMode defaultReplayMode();

/** Auto -> defaultReplayMode(), anything else passes through. */
ReplayMode resolveReplayMode(ReplayMode mode);

/**
 * Replay the trace onto a backend (begin() .. finish()). Nested
 * groups re-dispatch through the backend's nestedIntersect, which
 * lowers to the explicit loop on substrates without S_NESTINTER —
 * one trace serves both classes of hardware.
 *
 * When `verify` resolves to true (nullopt = analysis::verifyByDefault,
 * i.e. debug builds or SC_VERIFY=1) the trace is checked against the
 * stream-lifetime contract before any backend call and
 * analysis::VerifyError is thrown on violations. The check reads only
 * the trace, so a verified replay's cycles are identical to an
 * unverified one.
 *
 * In Bytecode mode the trace is compiled on every call; callers that
 * replay one trace repeatedly should compileTrace() once and use
 * replayCompiled().
 *
 * Thread safety: the trace is only read; concurrent replays of one
 * trace onto distinct backends are safe.
 */
ReplayResult replay(const Trace &trace, backend::ExecBackend &backend,
                    std::optional<bool> verify = std::nullopt,
                    ReplayMode mode = ReplayMode::Auto);

/**
 * Replay a compiled program (compile once per (app, dataset), replay
 * onto any backend). Dispatch devirtualizes for the concrete backend
 * types (CpuBackend, SparseCoreBackend, FunctionalBackend); other
 * ExecBackends run through a generic loop that still skips the Event
 * materialization. Verification decodes back to event order and runs
 * the shared checker. Concurrent replays of one program onto
 * distinct backends are safe.
 */
ReplayResult replayCompiled(const BytecodeProgram &program,
                            backend::ExecBackend &backend,
                            std::optional<bool> verify = std::nullopt);

} // namespace sc::trace

#endif // SPARSECORE_TRACE_REPLAY_HH
