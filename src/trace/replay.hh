/**
 * @file
 * replay(): drive any ExecBackend with a captured Trace. The replay
 * issues exactly the call sequence the capture run issued — stream
 * handles are remapped through a dense table in creation order, so
 * backends that key costs off handle values (e.g. the CPU baseline's
 * per-site branch pcs) see identical numbering — making replayed
 * cycles and breakdowns bit-identical to direct execution.
 */

#ifndef SPARSECORE_TRACE_REPLAY_HH
#define SPARSECORE_TRACE_REPLAY_HH

#include <optional>

#include "backend/exec_backend.hh"
#include "trace/trace.hh"

namespace sc::trace {

/** Timing outcome of one replay. */
struct ReplayResult
{
    Cycles cycles = 0;
    sim::CycleBreakdown breakdown;
};

/**
 * Replay the trace onto a backend (begin() .. finish()). Nested
 * groups re-dispatch through the backend's nestedIntersect, which
 * lowers to the explicit loop on substrates without S_NESTINTER —
 * one trace serves both classes of hardware.
 *
 * When `verify` resolves to true (nullopt = analysis::verifyByDefault,
 * i.e. debug builds or SC_VERIFY=1) the trace is checked against the
 * stream-lifetime contract before any backend call and
 * analysis::VerifyError is thrown on violations. The check reads only
 * the trace, so a verified replay's cycles are identical to an
 * unverified one.
 *
 * Thread safety: the trace is only read; concurrent replays of one
 * trace onto distinct backends are safe.
 */
ReplayResult replay(const Trace &trace, backend::ExecBackend &backend,
                    std::optional<bool> verify = std::nullopt);

} // namespace sc::trace

#endif // SPARSECORE_TRACE_REPLAY_HH
