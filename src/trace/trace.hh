/**
 * @file
 * The execution-event trace IR: a compact, owned recording of every
 * dynamic event an algorithm reports to an ExecBackend (stream
 * loads/frees, set operations, value operations, nested-intersection
 * groups, scalar batches).
 *
 * The repo's methodology runs one algorithm on many substrates; a
 * Trace decouples "what the algorithm did" (captured once by
 * TraceRecorder) from "what it costs" (measured by replaying the
 * trace onto any backend). Key data referenced by events is interned
 * into an arena the Trace owns, so events outlive the executor's
 * per-level scratch buffers and a trace can be replayed, serialized
 * and diffed long after the capture run returned.
 *
 * Span payloads are deduplicated by content: a neighbor list loaded
 * at every recursion level is stored once, which keeps trace arenas
 * near the size of the underlying graph rather than the size of the
 * dynamic execution.
 */

#ifndef SPARSECORE_TRACE_TRACE_HH
#define SPARSECORE_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "streams/set_ops.hh"

namespace sc::trace {

/** Serialized-format version (bump on any layout change). */
constexpr std::uint32_t traceFormatVersion = 1;

/** Reified mirror of the ExecBackend vtable. */
enum class EventKind : std::uint8_t
{
    ScalarOps,           ///< scalarOps(n)
    ScalarBranch,        ///< scalarBranch(pc, taken)
    ScalarLoad,          ///< scalarLoad(addr)
    StreamLoad,          ///< streamLoad -> handle
    StreamLoadKv,        ///< streamLoadKv -> handle
    StreamFree,          ///< streamFree(handle)
    SetOp,               ///< setOp -> handle
    SetOpCount,          ///< setOpCount (.C variant)
    ValueIntersect,      ///< valueIntersect
    DenseValueIntersect, ///< denseValueIntersect (dense operand B)
    ValueMerge,          ///< valueMerge -> handle
    NestedGroup,         ///< nestedIntersect over a candidate set
    ConsumeStream,       ///< consumeStream(handle)
    IterateStream,       ///< iterateStream(handle, n, ops)
    NumKinds
};

const char *eventKindName(EventKind kind);

/** Reference to interned key data: [off, off+len) in the arena. */
struct SpanRef
{
    std::uint64_t off = 0;
    std::uint32_t len = 0;
};

/** One nested-intersection element, with its functional count. */
struct NestedEntry
{
    Addr infoAddr = 0; ///< CSR vertex-array entry address
    Addr keyAddr = 0;  ///< nested edge list base address
    SpanRef nested;    ///< nested edge list keys
    Key bound = noBound;
    std::uint64_t count = 0; ///< functional intersection count
};

/** Trace-local stream handle (dense, assigned in creation order). */
using TraceStream = std::uint32_t;
constexpr TraceStream noTraceStream = ~TraceStream{0};

/**
 * One captured event. A fixed-size record; per-kind field use:
 *
 *  kind                 fields
 *  ScalarOps            n
 *  ScalarBranch         addr0=pc, aux=taken
 *  ScalarLoad           addr0
 *  StreamLoad           result, addr0=key, n=length, aux=prio, s0=keys
 *  StreamLoadKv         + addr1=val
 *  StreamFree           a
 *  SetOp                result, aux=SetOpKind, a, b, s0=ak, s1=bk,
 *                       bound, s2=result keys, addr0=out
 *  SetOpCount           aux=SetOpKind, a, b, s0=ak, s1=bk, bound,
 *                       n=count
 *  ValueIntersect       a, b, s0=ak, s1=bk, addr0/addr1=val bases,
 *                       s2=match_a, s3=match_b
 *  DenseValueIntersect  as ValueIntersect
 *  ValueMerge           result, a, b, s0=ak, s1=bk, addr0/addr1=val
 *                       bases, n=result_len, addr2=out
 *  NestedGroup          a=set handle, s0=set keys,
 *                       n=index into nested entries, aux2=entry count
 *  ConsumeStream        a
 *  IterateStream        a, n, aux=ops_per_element
 */
struct Event
{
    EventKind kind = EventKind::ScalarOps;
    std::uint8_t aux = 0;
    std::uint32_t aux2 = 0;
    TraceStream a = noTraceStream;
    TraceStream b = noTraceStream;
    TraceStream result = noTraceStream;
    Key bound = noBound;
    Addr addr0 = 0;
    Addr addr1 = 0;
    Addr addr2 = 0;
    std::uint64_t n = 0;
    SpanRef s0, s1, s2, s3;
};

/** The owned trace: events + interned key arena + nested entries. */
class Trace
{
  public:
    Trace() = default;

    // ---------------- capture side ----------------
    void clear();
    /** Intern a span's content (content-deduplicated). */
    SpanRef intern(streams::KeySpan keys);
    Event &
    append(const Event &event)
    {
        events_.push_back(event);
        return events_.back();
    }
    std::uint32_t
    appendNested(const std::vector<NestedEntry> &entries)
    {
        const auto off = static_cast<std::uint32_t>(nested_.size());
        nested_.insert(nested_.end(), entries.begin(), entries.end());
        return off;
    }
    void setHandleCount(TraceStream n) { handleCount_ = n; }

    // ---------------- replay side ----------------
    const std::vector<Event> &events() const { return events_; }
    streams::KeySpan
    span(const SpanRef &ref) const
    {
        return {arena_.data() + ref.off, ref.len};
    }
    const NestedEntry &nestedEntry(std::size_t i) const
    {
        return nested_[i];
    }
    /** Whole interned arena (the bytecode compiler copies it). */
    streams::KeySpan
    arenaSpan() const
    {
        return {arena_.data(), arena_.size()};
    }
    const std::vector<NestedEntry> &nestedEntries() const
    {
        return nested_;
    }
    /** Stream handles the capture run created (map size for replay). */
    TraceStream handleCount() const { return handleCount_; }

    // ---------------- statistics ----------------
    std::size_t numEvents() const { return events_.size(); }
    std::size_t arenaKeys() const { return arena_.size(); }
    std::size_t arenaBytes() const { return arena_.size() * sizeof(Key); }
    /** Approximate total owned bytes (events + arena + entries). */
    std::size_t memoryBytes() const;
    /** Event counts per kind, arena size, handle count as counters. */
    StatSet statSet(const std::string &name = "trace") const;

    // ---------------- serialization ----------------
    /** Versioned binary image (little-endian, no padding). */
    std::string serialize() const;
    /** Parse a binary image; panics on malformed/mismatched input. */
    static Trace deserialize(std::string_view bytes);
    void saveFile(const std::string &path) const;
    static Trace loadFile(const std::string &path);

    /** Human-readable dump (one line per event) for offline diffing. */
    std::string dumpText(std::size_t max_events = ~std::size_t{0}) const;

  private:
    std::vector<Key> arena_;
    std::vector<Event> events_;
    std::vector<NestedEntry> nested_;
    TraceStream handleCount_ = 0;
    /** Content hash -> candidate arena refs (interning index). */
    std::unordered_map<std::uint64_t, std::vector<SpanRef>> interned_;
};

} // namespace sc::trace

#endif // SPARSECORE_TRACE_TRACE_HH
