#include "trace/recorder.hh"

namespace sc::trace {

using backend::BackendStream;

void
TraceRecorder::begin()
{
    trace_.clear();
    next_ = 0;
}

Cycles
TraceRecorder::finish()
{
    trace_.setHandleCount(next_);
    return 0;
}

Trace
TraceRecorder::takeTrace()
{
    trace_.setHandleCount(next_);
    Trace out = std::move(trace_);
    trace_.clear();
    next_ = 0;
    return out;
}

Event &
TraceRecorder::push(EventKind kind)
{
    Event e;
    e.kind = kind;
    // Valid until the next append; callers fill fields immediately.
    return trace_.append(e);
}

void
TraceRecorder::scalarOps(std::uint64_t n)
{
    push(EventKind::ScalarOps).n = n;
}

void
TraceRecorder::scalarBranch(std::uint64_t pc, bool taken)
{
    Event &e = push(EventKind::ScalarBranch);
    e.addr0 = pc;
    e.aux = taken ? 1 : 0;
}

void
TraceRecorder::scalarLoad(Addr addr)
{
    push(EventKind::ScalarLoad).addr0 = addr;
}

BackendStream
TraceRecorder::streamLoad(Addr key_addr, std::uint32_t length,
                          unsigned priority, streams::KeySpan keys)
{
    Event &e = push(EventKind::StreamLoad);
    e.addr0 = key_addr;
    e.n = length;
    e.aux = static_cast<std::uint8_t>(priority);
    e.s0 = trace_.intern(keys);
    e.result = nextHandle();
    return e.result;
}

BackendStream
TraceRecorder::streamLoadKv(Addr key_addr, Addr val_addr,
                            std::uint32_t length, unsigned priority,
                            streams::KeySpan keys)
{
    Event &e = push(EventKind::StreamLoadKv);
    e.addr0 = key_addr;
    e.addr1 = val_addr;
    e.n = length;
    e.aux = static_cast<std::uint8_t>(priority);
    e.s0 = trace_.intern(keys);
    e.result = nextHandle();
    return e.result;
}

void
TraceRecorder::streamFree(BackendStream handle)
{
    push(EventKind::StreamFree).a = handle;
}

BackendStream
TraceRecorder::setOp(streams::SetOpKind kind, BackendStream a,
                     BackendStream b, streams::KeySpan ak,
                     streams::KeySpan bk, Key bound,
                     streams::KeySpan result, Addr out_addr)
{
    Event &e = push(EventKind::SetOp);
    e.aux = static_cast<std::uint8_t>(kind);
    e.a = a;
    e.b = b;
    e.s0 = trace_.intern(ak);
    e.s1 = trace_.intern(bk);
    e.bound = bound;
    e.s2 = trace_.intern(result);
    e.addr0 = out_addr;
    e.result = nextHandle();
    return e.result;
}

void
TraceRecorder::setOpCount(streams::SetOpKind kind, BackendStream a,
                          BackendStream b, streams::KeySpan ak,
                          streams::KeySpan bk, Key bound,
                          std::uint64_t count)
{
    Event &e = push(EventKind::SetOpCount);
    e.aux = static_cast<std::uint8_t>(kind);
    e.a = a;
    e.b = b;
    e.s0 = trace_.intern(ak);
    e.s1 = trace_.intern(bk);
    e.bound = bound;
    e.n = count;
}

void
TraceRecorder::recordValueIntersect(
    EventKind kind, BackendStream a, BackendStream b,
    streams::KeySpan ak, streams::KeySpan bk, Addr a_val_base,
    Addr b_val_base, std::span<const std::uint32_t> match_a,
    std::span<const std::uint32_t> match_b)
{
    Event &e = push(kind);
    e.a = a;
    e.b = b;
    e.s0 = trace_.intern(ak);
    e.s1 = trace_.intern(bk);
    e.addr0 = a_val_base;
    e.addr1 = b_val_base;
    e.s2 = trace_.intern({match_a.data(), match_a.size()});
    e.s3 = trace_.intern({match_b.data(), match_b.size()});
}

void
TraceRecorder::valueIntersect(BackendStream a, BackendStream b,
                              streams::KeySpan ak, streams::KeySpan bk,
                              Addr a_val_base, Addr b_val_base,
                              std::span<const std::uint32_t> match_a,
                              std::span<const std::uint32_t> match_b)
{
    recordValueIntersect(EventKind::ValueIntersect, a, b, ak, bk,
                         a_val_base, b_val_base, match_a, match_b);
}

void
TraceRecorder::denseValueIntersect(
    BackendStream a, BackendStream b, streams::KeySpan ak,
    streams::KeySpan bk, Addr a_val_base, Addr b_val_base,
    std::span<const std::uint32_t> match_a,
    std::span<const std::uint32_t> match_b)
{
    recordValueIntersect(EventKind::DenseValueIntersect, a, b, ak, bk,
                         a_val_base, b_val_base, match_a, match_b);
}

BackendStream
TraceRecorder::valueMerge(BackendStream a, BackendStream b,
                          streams::KeySpan ak, streams::KeySpan bk,
                          Addr a_val_base, Addr b_val_base,
                          std::uint64_t result_len, Addr out_addr)
{
    Event &e = push(EventKind::ValueMerge);
    e.a = a;
    e.b = b;
    e.s0 = trace_.intern(ak);
    e.s1 = trace_.intern(bk);
    e.addr0 = a_val_base;
    e.addr1 = b_val_base;
    e.n = result_len;
    e.addr2 = out_addr;
    e.result = nextHandle();
    return e.result;
}

void
TraceRecorder::nestedIntersect(
    BackendStream s, streams::KeySpan s_keys,
    const std::vector<backend::NestedItem> &elems)
{
    std::vector<NestedEntry> entries;
    entries.reserve(elems.size());
    for (const auto &elem : elems)
        entries.push_back({elem.infoAddr, elem.keyAddr,
                           trace_.intern(elem.nested), elem.bound,
                           elem.count});
    const std::uint32_t off = trace_.appendNested(entries);
    Event &e = push(EventKind::NestedGroup);
    e.a = s;
    e.s0 = trace_.intern(s_keys);
    e.n = off;
    e.aux2 = static_cast<std::uint32_t>(entries.size());
}

void
TraceRecorder::consumeStream(BackendStream handle)
{
    push(EventKind::ConsumeStream).a = handle;
}

void
TraceRecorder::iterateStream(BackendStream handle, std::uint64_t n,
                             unsigned ops_per_element)
{
    Event &e = push(EventKind::IterateStream);
    e.a = handle;
    e.n = n;
    e.aux = static_cast<std::uint8_t>(ops_per_element);
}

} // namespace sc::trace
