/**
 * @file
 * The compiled-trace bytecode: a captured Trace lowered into one flat,
 * cache-resident buffer of fixed-layout opcodes, replayed by
 * devirtualized per-backend loops (trace/replay.cc).
 *
 * Why a second form? The event walker reads ~112-byte Event records
 * and pays a virtual ExecBackend call per event; for every benchmark
 * sweep and DSE run, that walk IS the hot loop. The bytecode packs
 * the same call sequence into 32-bit words — delta-encoded addresses
 * (zigzag against a running register), implicit creation-order stream
 * ids, inlined key-span references into an owned arena — so replay
 * touches a fraction of the memory and decodes with one predictable
 * switch per instruction. Runs of identical consecutive scalarOps
 * events fuse into a single run-length instruction whose replay loop
 * re-issues each call, keeping per-call cost-model semantics (and
 * therefore cycles) bit-identical to the event walker.
 *
 * A program is self-contained: compile() copies the arena and the
 * nested-entry table out of the source trace, so one program compiled
 * per (app, dataset) replays onto any backend with no live Trace, and
 * serializes standalone ("SCBC" image, sniffed by tools/scverify).
 *
 * Instruction encoding (see walkBytecode for the decoder, which is
 * the layout's single source of truth shared with the compiler):
 *
 *   header word: op(8) | aux(8) | flags(8) | reserved(8)
 *     flagWide           every u64-class operand takes 2 words
 *     flagExplicitResult result handle follows as a trailing word
 *                        (otherwise: next creation-order id)
 *   operand classes:
 *     u64-class  zigzag address deltas, lengths/counts, span offsets
 *                (1 word narrow, 2 words wide)
 *     u32        stream handles, span lengths, bounds, run counts
 */

#ifndef SPARSECORE_TRACE_BYTECODE_HH
#define SPARSECORE_TRACE_BYTECODE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "trace/trace.hh"

namespace sc::trace {

/** Serialized SCBC format version (bump on any layout change). */
constexpr std::uint32_t bytecodeFormatVersion = 1;

/** Bytecode opcodes: EventKind plus the fused scalar-ops run. */
enum class Op : std::uint8_t
{
    ScalarOps,           ///< [n]
    ScalarOpsRun,        ///< [count][n] — count identical calls
    ScalarBranch,        ///< aux=taken, [pcDelta]
    ScalarLoad,          ///< [addrDelta]
    StreamLoad,          ///< aux=prio, [addrDelta][len][s0][res?]
    StreamLoadKv,        ///< aux=prio, [kD][vD][len][s0][res?]
    StreamFree,          ///< [a]
    SetOp,               ///< aux=kind, [a][b][s0][s1][bound][s2][outD][res?]
    SetOpCount,          ///< aux=kind, [a][b][s0][s1][bound][n]
    ValueIntersect,      ///< [a][b][s0][s1][aD][bD][s2][s3]
    DenseValueIntersect, ///< as ValueIntersect
    ValueMerge,          ///< [a][b][s0][s1][aD][bD][n][outD][res?]
    NestedGroup,         ///< [a][s0][entryIndex][entryCount]
    ConsumeStream,       ///< [a]
    IterateStream,       ///< aux=ops, [a][n]
    NumOps
};

const char *opName(Op op);

using Word = std::uint32_t;

constexpr Word opMask = 0xff;
constexpr unsigned auxShift = 8;
constexpr Word flagWide = Word{1} << 16;
constexpr Word flagExplicitResult = Word{1} << 17;

/** Zigzag a two's-complement u64 delta into an unsigned code. */
constexpr std::uint64_t
zigzagEncode(std::uint64_t delta)
{
    return (delta << 1) ^ (std::uint64_t{0} - (delta >> 63));
}

constexpr std::uint64_t
zigzagDecode(std::uint64_t code)
{
    return (code >> 1) ^ (std::uint64_t{0} - (code & 1));
}

/**
 * Backend-independent aggregate of every cost-model update a replay
 * of the program performs: operation counts per hook, total set-op
 * work, and the full multiset of stream-length histogram samples.
 *
 * This is the limit case of run batching: for a stateless substrate
 * whose end state is a pure function of the trace (FunctionalBackend
 * — every hook is a counter bump and/or an order-independent
 * histogram sample), the whole program collapses into one profile
 * application, so a compiled replay costs O(distinct lengths) instead
 * of O(events). Derived at compile/deserialize time from the code
 * itself; never serialized (the SCBC image stays at format v1).
 */
struct EventProfile
{
    static constexpr std::size_t numSetOpKinds = 3;

    std::uint64_t streamLoads = 0;
    std::uint64_t streamLoadsKv = 0;
    std::uint64_t streamFrees = 0;
    std::uint64_t setOps[numSetOpKinds] = {};
    std::uint64_t setOpCounts[numSetOpKinds] = {};
    std::uint64_t setOpElements = 0;   ///< sum |ak|+|bk| over both
    std::uint64_t valueIntersects = 0; ///< dense folds in (same hook)
    std::uint64_t valueMatches = 0;    ///< sum |match_a|
    std::uint64_t valueMerges = 0;
    std::uint64_t nestedGroups = 0;
    std::uint64_t nestedElements = 0;
    /** Streams created (loads + kv loads + set ops + merges). */
    std::uint64_t streamsCreated = 0;
    /** Creations minus frees — the end-of-replay live count. */
    std::int64_t liveStreamDelta = 0;
    /** Every stream-length histogram sample the event walk would
     *  make, aggregated to (length, occurrences), sorted by length. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> lengthSamples;
};

/**
 * One compiled trace: flat code + owned key arena + nested-entry
 * table. Immutable after compile()/deserialize(); concurrent replays
 * of one program are safe.
 */
class BytecodeProgram
{
  public:
    BytecodeProgram() = default;

    const std::vector<Word> &code() const { return code_; }
    streams::KeySpan
    span(const SpanRef &ref) const
    {
        return {arena_.data() + ref.off, ref.len};
    }
    const NestedEntry &nestedEntry(std::size_t i) const
    {
        return nested_[i];
    }
    std::size_t numNestedEntries() const { return nested_.size(); }
    TraceStream handleCount() const { return handleCount_; }
    /** Aggregate cost-model profile (see EventProfile). */
    const EventProfile &profile() const { return profile_; }

    // ---------------- statistics ----------------
    std::size_t numInstructions() const { return numInstructions_; }
    /** Events of the source trace (fused runs count each event). */
    std::size_t numSourceEvents() const { return numSourceEvents_; }
    std::size_t codeBytes() const { return code_.size() * sizeof(Word); }
    std::size_t arenaKeys() const { return arena_.size(); }
    /** Total owned bytes (code + arena + nested entries). */
    std::size_t memoryBytes() const;

    /**
     * Decode back to the event form. The decoded sequence is exactly
     * the source trace's event list (fused runs re-expand), which the
     * round-trip property test pins and the shared event-order
     * checker (analysis::verifyEvents) consumes.
     */
    std::vector<Event> decodeEvents() const;

    // ---------------- serialization ----------------
    /** Versioned standalone binary image ("SCBC", little-endian). */
    std::string serialize() const;
    /** Parse an SCBC image; panics on malformed/mismatched input. */
    static BytecodeProgram deserialize(std::string_view bytes);
    void saveFile(const std::string &path) const;
    static BytecodeProgram loadFile(const std::string &path);

    /**
     * Re-walk the code and panic unless every operand is in range
     * (handles below handleCount or sentinel, spans inside the arena,
     * nested groups inside the entry table) and the header counts
     * match. compileTrace() output satisfies this by construction;
     * deserialize() calls it so the unchecked replay loops can trust
     * any loaded image.
     */
    void validate() const;

  private:
    friend BytecodeProgram compileTrace(const Trace &trace,
                                        bool fuse_scalar_runs);

    /** One fused walk validating the code AND rebuilding profile_
     *  (derived data — the serialized image carries none of it).
     *  Called by compileTrace() and deserialize(); subsumes
     *  validate(). */
    void finalize();

    std::vector<Word> code_;
    std::vector<Key> arena_;
    std::vector<NestedEntry> nested_;
    TraceStream handleCount_ = 0;
    std::size_t numInstructions_ = 0;
    std::size_t numSourceEvents_ = 0;
    EventProfile profile_;
};

/**
 * Decode the program, invoking one handler method per instruction.
 * This is the single decoder both the devirtualized replay loops and
 * decodeEvents() share, so the encoding has exactly one reader.
 *
 * The handler mirrors the ExecBackend surface with trace-level
 * operands (TraceStream handles, SpanRefs into program.span()):
 *
 *   scalarOps(n, repeat)           repeat identical scalarOps(n) calls
 *   scalarBranch(pc, taken)
 *   scalarLoad(addr)
 *   streamLoad(res, addr, len, prio, s0)
 *   streamLoadKv(res, kAddr, vAddr, len, prio, s0)
 *   streamFree(a)
 *   setOp(res, kind, a, b, s0, s1, bound, s2, outAddr)
 *   setOpCount(kind, a, b, s0, s1, bound, n)
 *   valueIntersect(dense, a, b, s0, s1, aVal, bVal, s2, s3)
 *   valueMerge(res, a, b, s0, s1, aVal, bVal, n, outAddr)
 *   nestedGroup(a, s0, entryIndex, entryCount)
 *   consumeStream(a)
 *   iterateStream(a, n, ops)
 */
template <typename Handler>
void
walkBytecode(const BytecodeProgram &program, Handler &&handler)
{
    const Word *p = program.code().data();
    const Word *const end = p + program.code().size();
    std::uint64_t last_addr = 0;
    TraceStream next_result = 0;

    while (p < end) {
        const Word hdr = *p++;
        const auto op = static_cast<Op>(hdr & opMask);
        const auto aux =
            static_cast<std::uint8_t>((hdr >> auxShift) & 0xff);
        const bool wide = (hdr & flagWide) != 0;

        // u64-class operand: 1 word narrow, low/high pair wide.
        auto u64 = [&]() -> std::uint64_t {
            std::uint64_t v = *p++;
            if (wide)
                v |= std::uint64_t{*p++} << 32;
            return v;
        };
        auto addr = [&]() -> std::uint64_t {
            last_addr += zigzagDecode(u64());
            return last_addr;
        };
        auto span = [&]() -> SpanRef {
            SpanRef ref;
            ref.off = u64();
            ref.len = *p++;
            return ref;
        };
        auto handle = [&]() -> TraceStream { return *p++; };
        // Trailing result handle: implicit creation-order id unless
        // the (rare, hand-built-trace) explicit form is flagged.
        auto result = [&]() -> TraceStream {
            if (hdr & flagExplicitResult)
                return *p++;
            return next_result++;
        };

        switch (op) {
        case Op::ScalarOps:
            handler.scalarOps(u64(), 1);
            break;
        case Op::ScalarOpsRun: {
            const Word count = *p++;
            handler.scalarOps(u64(), count);
            break;
        }
        case Op::ScalarBranch:
            handler.scalarBranch(addr(), aux != 0);
            break;
        case Op::ScalarLoad:
            handler.scalarLoad(addr());
            break;
        case Op::StreamLoad: {
            const std::uint64_t a0 = addr();
            const std::uint64_t len = u64();
            const SpanRef s0 = span();
            handler.streamLoad(result(), a0, len, aux, s0);
            break;
        }
        case Op::StreamLoadKv: {
            const std::uint64_t a0 = addr();
            const std::uint64_t a1 = addr();
            const std::uint64_t len = u64();
            const SpanRef s0 = span();
            handler.streamLoadKv(result(), a0, a1, len, aux, s0);
            break;
        }
        case Op::StreamFree:
            handler.streamFree(handle());
            break;
        case Op::SetOp: {
            const TraceStream a = handle();
            const TraceStream b = handle();
            const SpanRef s0 = span();
            const SpanRef s1 = span();
            const Key bound = *p++;
            const SpanRef s2 = span();
            const std::uint64_t out_addr = addr();
            handler.setOp(result(), aux, a, b, s0, s1, bound, s2,
                          out_addr);
            break;
        }
        case Op::SetOpCount: {
            const TraceStream a = handle();
            const TraceStream b = handle();
            const SpanRef s0 = span();
            const SpanRef s1 = span();
            const Key bound = *p++;
            handler.setOpCount(aux, a, b, s0, s1, bound, u64());
            break;
        }
        case Op::ValueIntersect:
        case Op::DenseValueIntersect: {
            const TraceStream a = handle();
            const TraceStream b = handle();
            const SpanRef s0 = span();
            const SpanRef s1 = span();
            const std::uint64_t a_val = addr();
            const std::uint64_t b_val = addr();
            const SpanRef s2 = span();
            const SpanRef s3 = span();
            handler.valueIntersect(op == Op::DenseValueIntersect, a,
                                   b, s0, s1, a_val, b_val, s2, s3);
            break;
        }
        case Op::ValueMerge: {
            const TraceStream a = handle();
            const TraceStream b = handle();
            const SpanRef s0 = span();
            const SpanRef s1 = span();
            const std::uint64_t a_val = addr();
            const std::uint64_t b_val = addr();
            const std::uint64_t n = u64();
            const std::uint64_t out_addr = addr();
            handler.valueMerge(result(), a, b, s0, s1, a_val, b_val,
                               n, out_addr);
            break;
        }
        case Op::NestedGroup: {
            const TraceStream a = handle();
            const SpanRef s0 = span();
            const std::uint64_t index = u64();
            const Word count = *p++;
            handler.nestedGroup(a, s0, index, count);
            break;
        }
        case Op::ConsumeStream:
            handler.consumeStream(handle());
            break;
        case Op::IterateStream: {
            const TraceStream a = handle();
            handler.iterateStream(a, u64(), aux);
            break;
        }
        case Op::NumOps:
            panic("bytecode replay: corrupt opcode");
        }
    }
}

} // namespace sc::trace

#endif // SPARSECORE_TRACE_BYTECODE_HH
