#include "trace/trace.hh"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "trace/wire.hh"

namespace sc::trace {

namespace {

using wire::put;
using wire::Reader;

/** FNV-1a over the span's raw bytes. */
std::uint64_t
contentHash(streams::KeySpan keys)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const Key k : keys) {
        h ^= k;
        h *= 1099511628211ull;
    }
    return h;
}

void
putSpan(std::string &out, const SpanRef &ref)
{
    put<std::uint64_t>(out, ref.off);
    put<std::uint32_t>(out, ref.len);
}

SpanRef
getSpan(Reader &r)
{
    SpanRef ref;
    ref.off = r.get<std::uint64_t>();
    ref.len = r.get<std::uint32_t>();
    return ref;
}

constexpr char traceMagic[4] = {'S', 'C', 'T', 'R'};

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::ScalarOps:
        return "scalarOps";
      case EventKind::ScalarBranch:
        return "scalarBranch";
      case EventKind::ScalarLoad:
        return "scalarLoad";
      case EventKind::StreamLoad:
        return "streamLoad";
      case EventKind::StreamLoadKv:
        return "streamLoadKv";
      case EventKind::StreamFree:
        return "streamFree";
      case EventKind::SetOp:
        return "setOp";
      case EventKind::SetOpCount:
        return "setOpCount";
      case EventKind::ValueIntersect:
        return "valueIntersect";
      case EventKind::DenseValueIntersect:
        return "denseValueIntersect";
      case EventKind::ValueMerge:
        return "valueMerge";
      case EventKind::NestedGroup:
        return "nestedGroup";
      case EventKind::ConsumeStream:
        return "consumeStream";
      case EventKind::IterateStream:
        return "iterateStream";
      default:
        return "unknown";
    }
}

void
Trace::clear()
{
    arena_.clear();
    events_.clear();
    nested_.clear();
    handleCount_ = 0;
    interned_.clear();
}

SpanRef
Trace::intern(streams::KeySpan keys)
{
    if (keys.empty())
        return SpanRef{};
    const std::uint64_t h = contentHash(keys);
    auto &bucket = interned_[h];
    for (const SpanRef &ref : bucket) {
        if (ref.len == keys.size() &&
            std::memcmp(arena_.data() + ref.off, keys.data(),
                        keys.size() * sizeof(Key)) == 0)
            return ref;
    }
    SpanRef ref{arena_.size(), static_cast<std::uint32_t>(keys.size())};
    arena_.insert(arena_.end(), keys.begin(), keys.end());
    bucket.push_back(ref);
    return ref;
}

std::size_t
Trace::memoryBytes() const
{
    return arena_.capacity() * sizeof(Key) +
           events_.capacity() * sizeof(Event) +
           nested_.capacity() * sizeof(NestedEntry);
}

StatSet
Trace::statSet(const std::string &name) const
{
    StatSet stats(name);
    stats.counter("events") += events_.size();
    stats.counter("arenaKeys") += arena_.size();
    stats.counter("arenaBytes") += arenaBytes();
    stats.counter("nestedEntries") += nested_.size();
    stats.counter("streams") += handleCount_;
    for (const Event &e : events_)
        ++stats.counter(std::string("events.") + eventKindName(e.kind));
    return stats;
}

std::string
Trace::serialize() const
{
    std::string out;
    out.reserve(64 + arena_.size() * sizeof(Key) +
                events_.size() * 96 + nested_.size() * 36);
    out.append(traceMagic, sizeof(traceMagic));
    put<std::uint32_t>(out, traceFormatVersion);
    put<std::uint32_t>(out, handleCount_);

    put<std::uint64_t>(out, arena_.size());
    wire::putArray(out, arena_.data(), arena_.size());

    put<std::uint64_t>(out, nested_.size());
    for (const NestedEntry &ne : nested_) {
        put<std::uint64_t>(out, ne.infoAddr);
        put<std::uint64_t>(out, ne.keyAddr);
        putSpan(out, ne.nested);
        put<std::uint32_t>(out, ne.bound);
        put<std::uint64_t>(out, ne.count);
    }

    put<std::uint64_t>(out, events_.size());
    for (const Event &e : events_) {
        put<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
        put<std::uint8_t>(out, e.aux);
        put<std::uint32_t>(out, e.aux2);
        put<std::uint32_t>(out, e.a);
        put<std::uint32_t>(out, e.b);
        put<std::uint32_t>(out, e.result);
        put<std::uint32_t>(out, e.bound);
        put<std::uint64_t>(out, e.addr0);
        put<std::uint64_t>(out, e.addr1);
        put<std::uint64_t>(out, e.addr2);
        put<std::uint64_t>(out, e.n);
        putSpan(out, e.s0);
        putSpan(out, e.s1);
        putSpan(out, e.s2);
        putSpan(out, e.s3);
    }
    return out;
}

Trace
Trace::deserialize(std::string_view bytes)
{
    Reader r(bytes);
    char magic[4];
    for (char &c : magic)
        c = static_cast<char>(r.get<std::uint8_t>());
    if (std::memcmp(magic, traceMagic, sizeof(traceMagic)) != 0)
        panic("not a SparseCore trace (bad magic)");
    const auto version = r.get<std::uint32_t>();
    if (version != traceFormatVersion)
        panic("trace format version %u, expected %u", version,
              traceFormatVersion);

    Trace t;
    t.handleCount_ = r.get<std::uint32_t>();

    const auto arena_len = r.get<std::uint64_t>();
    t.arena_.resize(arena_len);
    r.getArray(t.arena_.data(), arena_len);

    auto check_span = [&](const SpanRef &ref) {
        if (ref.off + ref.len > t.arena_.size())
            panic("trace span [%llu, +%u) outside the arena",
                  static_cast<unsigned long long>(ref.off), ref.len);
        return ref;
    };

    const auto nested_len = r.get<std::uint64_t>();
    t.nested_.reserve(nested_len);
    for (std::uint64_t i = 0; i < nested_len; ++i) {
        NestedEntry ne;
        ne.infoAddr = r.get<std::uint64_t>();
        ne.keyAddr = r.get<std::uint64_t>();
        ne.nested = check_span(getSpan(r));
        ne.bound = r.get<std::uint32_t>();
        ne.count = r.get<std::uint64_t>();
        t.nested_.push_back(ne);
    }

    const auto event_len = r.get<std::uint64_t>();
    t.events_.reserve(event_len);
    for (std::uint64_t i = 0; i < event_len; ++i) {
        Event e;
        const auto kind = r.get<std::uint8_t>();
        if (kind >= static_cast<std::uint8_t>(EventKind::NumKinds))
            panic("unknown trace event kind %u", kind);
        e.kind = static_cast<EventKind>(kind);
        e.aux = r.get<std::uint8_t>();
        e.aux2 = r.get<std::uint32_t>();
        e.a = r.get<std::uint32_t>();
        e.b = r.get<std::uint32_t>();
        e.result = r.get<std::uint32_t>();
        e.bound = r.get<std::uint32_t>();
        e.addr0 = r.get<std::uint64_t>();
        e.addr1 = r.get<std::uint64_t>();
        e.addr2 = r.get<std::uint64_t>();
        e.n = r.get<std::uint64_t>();
        e.s0 = check_span(getSpan(r));
        e.s1 = check_span(getSpan(r));
        e.s2 = check_span(getSpan(r));
        e.s3 = check_span(getSpan(r));
        if (e.kind == EventKind::NestedGroup &&
            e.n + e.aux2 > t.nested_.size())
            panic("trace nested group [%llu, +%u) out of range",
                  static_cast<unsigned long long>(e.n), e.aux2);
        t.events_.push_back(e);
    }
    if (!r.done())
        panic("trailing bytes after the trace image");
    return t;
}

void
Trace::saveFile(const std::string &path) const
{
    const std::string bytes = serialize();
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        panic("cannot write trace file '%s'", path.c_str());
    const std::size_t n =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size())
        panic("short write to trace file '%s'", path.c_str());
}

Trace
Trace::loadFile(const std::string &path)
{
    // Single presized read (wire::readWholeFile) instead of the old
    // 64K-chunk append loop — one allocation for the whole image.
    return deserialize(wire::readWholeFile(path));
}

std::string
Trace::dumpText(std::size_t max_events) const
{
    std::ostringstream os;
    os << "trace: " << events_.size() << " events, " << handleCount_
       << " streams, " << arena_.size() << " arena keys, "
       << nested_.size() << " nested entries\n";
    auto span_str = [](const SpanRef &ref) {
        std::ostringstream s;
        s << "[" << ref.off << "+" << ref.len << "]";
        return s.str();
    };
    std::size_t shown = 0;
    for (const Event &e : events_) {
        if (shown++ >= max_events) {
            os << "... (" << events_.size() - max_events
               << " more)\n";
            break;
        }
        os << shown - 1 << ": " << eventKindName(e.kind);
        switch (e.kind) {
          case EventKind::ScalarOps:
            os << " n=" << e.n;
            break;
          case EventKind::ScalarBranch:
            os << " pc=0x" << std::hex << e.addr0 << std::dec
               << " taken=" << unsigned(e.aux);
            break;
          case EventKind::ScalarLoad:
            os << " addr=0x" << std::hex << e.addr0 << std::dec;
            break;
          case EventKind::StreamLoad:
          case EventKind::StreamLoadKv:
            os << " -> s" << e.result << " len=" << e.n << " prio="
               << unsigned(e.aux) << " keys=" << span_str(e.s0);
            break;
          case EventKind::StreamFree:
          case EventKind::ConsumeStream:
            os << " s" << e.a;
            break;
          case EventKind::SetOp:
            os << "." << streams::setOpName(
                             static_cast<streams::SetOpKind>(e.aux))
               << " s" << e.a << " s" << e.b << " -> s" << e.result
               << " a=" << span_str(e.s0) << " b=" << span_str(e.s1)
               << " out=" << span_str(e.s2) << " bound=" << e.bound;
            break;
          case EventKind::SetOpCount:
            os << "." << streams::setOpName(
                             static_cast<streams::SetOpKind>(e.aux))
               << " s" << e.a << " s" << e.b << " count=" << e.n
               << " bound=" << e.bound;
            break;
          case EventKind::ValueIntersect:
          case EventKind::DenseValueIntersect:
            os << " s" << e.a << " s" << e.b << " matches="
               << e.s2.len;
            break;
          case EventKind::ValueMerge:
            os << " s" << e.a << " s" << e.b << " -> s" << e.result
               << " len=" << e.n;
            break;
          case EventKind::NestedGroup:
            os << " s" << e.a << " elems=" << e.aux2;
            break;
          case EventKind::IterateStream:
            os << " s" << static_cast<std::int64_t>(
                             static_cast<std::int32_t>(e.a))
               << " n=" << e.n << " ops=" << unsigned(e.aux);
            break;
          default:
            break;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace sc::trace
