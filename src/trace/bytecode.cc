#include "trace/bytecode.hh"

#include <cstdio>
#include <cstring>
#include <map>

#include "trace/wire.hh"

namespace sc::trace {

namespace {

constexpr char bytecodeMagic[4] = {'S', 'C', 'B', 'C'};

/** walkBytecode handler reconstructing the source event list. The
 *  per-kind field assignments mirror TraceRecorder exactly, so the
 *  decoded sequence is field-for-field the original trace. */
struct EventDecoder
{
    std::vector<Event> out;

    Event &
    push(EventKind kind)
    {
        Event e;
        e.kind = kind;
        out.push_back(e);
        return out.back();
    }

    void
    scalarOps(std::uint64_t n, std::uint32_t repeat)
    {
        for (std::uint32_t i = 0; i < repeat; ++i)
            push(EventKind::ScalarOps).n = n;
    }
    void
    scalarBranch(std::uint64_t pc, bool taken)
    {
        Event &e = push(EventKind::ScalarBranch);
        e.addr0 = pc;
        e.aux = taken ? 1 : 0;
    }
    void scalarLoad(Addr addr) { push(EventKind::ScalarLoad).addr0 = addr; }
    void
    streamLoad(TraceStream res, Addr addr, std::uint64_t len,
               std::uint8_t prio, SpanRef s0)
    {
        Event &e = push(EventKind::StreamLoad);
        e.addr0 = addr;
        e.n = len;
        e.aux = prio;
        e.s0 = s0;
        e.result = res;
    }
    void
    streamLoadKv(TraceStream res, Addr key_addr, Addr val_addr,
                 std::uint64_t len, std::uint8_t prio, SpanRef s0)
    {
        Event &e = push(EventKind::StreamLoadKv);
        e.addr0 = key_addr;
        e.addr1 = val_addr;
        e.n = len;
        e.aux = prio;
        e.s0 = s0;
        e.result = res;
    }
    void streamFree(TraceStream a) { push(EventKind::StreamFree).a = a; }
    void
    setOp(TraceStream res, std::uint8_t kind, TraceStream a,
          TraceStream b, SpanRef s0, SpanRef s1, Key bound, SpanRef s2,
          Addr out_addr)
    {
        Event &e = push(EventKind::SetOp);
        e.aux = kind;
        e.a = a;
        e.b = b;
        e.s0 = s0;
        e.s1 = s1;
        e.bound = bound;
        e.s2 = s2;
        e.addr0 = out_addr;
        e.result = res;
    }
    void
    setOpCount(std::uint8_t kind, TraceStream a, TraceStream b,
               SpanRef s0, SpanRef s1, Key bound, std::uint64_t count)
    {
        Event &e = push(EventKind::SetOpCount);
        e.aux = kind;
        e.a = a;
        e.b = b;
        e.s0 = s0;
        e.s1 = s1;
        e.bound = bound;
        e.n = count;
    }
    void
    valueIntersect(bool dense, TraceStream a, TraceStream b, SpanRef s0,
                   SpanRef s1, Addr a_val, Addr b_val, SpanRef s2,
                   SpanRef s3)
    {
        Event &e = push(dense ? EventKind::DenseValueIntersect
                              : EventKind::ValueIntersect);
        e.a = a;
        e.b = b;
        e.s0 = s0;
        e.s1 = s1;
        e.addr0 = a_val;
        e.addr1 = b_val;
        e.s2 = s2;
        e.s3 = s3;
    }
    void
    valueMerge(TraceStream res, TraceStream a, TraceStream b, SpanRef s0,
               SpanRef s1, Addr a_val, Addr b_val, std::uint64_t n,
               Addr out_addr)
    {
        Event &e = push(EventKind::ValueMerge);
        e.a = a;
        e.b = b;
        e.s0 = s0;
        e.s1 = s1;
        e.addr0 = a_val;
        e.addr1 = b_val;
        e.n = n;
        e.addr2 = out_addr;
        e.result = res;
    }
    void
    nestedGroup(TraceStream a, SpanRef s0, std::uint64_t entry_index,
                std::uint32_t entry_count)
    {
        Event &e = push(EventKind::NestedGroup);
        e.a = a;
        e.s0 = s0;
        e.n = entry_index;
        e.aux2 = entry_count;
    }
    void consumeStream(TraceStream a) { push(EventKind::ConsumeStream).a = a; }
    void
    iterateStream(TraceStream a, std::uint64_t n, std::uint8_t ops)
    {
        Event &e = push(EventKind::IterateStream);
        e.a = a;
        e.n = n;
        e.aux = ops;
    }
};

/**
 * walkBytecode handler doing validation and profile accumulation in
 * one pass (finalize() runs it once per compile/deserialize).
 *
 * Validation: every operand in range — handles below handleCount or
 * sentinel, spans inside the arena, nested groups inside the entry
 * table, set-op kinds in range — so the replay loops index unchecked.
 *
 * Profile: the EventProfile mirrors the cost-model updates
 * FunctionalBackend's hooks perform per event
 * (backend/functional_backend.cc), aggregated — counts per hook,
 * set-op element work, and every stream-length histogram sample.
 * Lengths are small (span lengths and load lengths), so the multiset
 * uses a flat array with a map spillover for outliers.
 */
struct Auditor
{
    static constexpr std::size_t denseLengthLimit = 4096;

    explicit Auditor(const BytecodeProgram &program)
        : bc(program), dense(denseLengthLimit, 0)
    {
    }

    const BytecodeProgram &bc;
    std::size_t instructions = 0;
    std::size_t events = 0;
    EventProfile p;
    std::vector<std::uint64_t> dense;
    std::map<std::uint64_t, std::uint64_t> sparse;

    void
    checkHandle(TraceStream h) const
    {
        if (h != noTraceStream && h >= bc.handleCount())
            panic("bytecode handle %u out of range (%u created)", h,
                  bc.handleCount());
    }
    void
    checkSpan(SpanRef s) const
    {
        if (s.off + s.len > bc.arenaKeys())
            panic("bytecode span [%llu, +%u) outside the arena",
                  static_cast<unsigned long long>(s.off), s.len);
    }
    void
    checkKind(std::uint8_t kind) const
    {
        if (kind >= EventProfile::numSetOpKinds)
            panic("bytecode set-op kind %u out of range", kind);
    }
    void
    count(std::size_t n = 1)
    {
        ++instructions;
        events += n;
    }
    /** Panic unless the walked totals match the program header. */
    void
    verifyCounts() const
    {
        if (instructions != bc.numInstructions() ||
            events != bc.numSourceEvents())
            panic("bytecode counts disagree with header: %zu/%zu "
                  "instructions, %zu/%zu events",
                  instructions, bc.numInstructions(), events,
                  bc.numSourceEvents());
    }

    void
    sample(std::uint64_t length)
    {
        if (length < denseLengthLimit)
            ++dense[length];
        else
            ++sparse[length];
    }
    void
    created()
    {
        ++p.streamsCreated;
        ++p.liveStreamDelta;
    }

    void scalarOps(std::uint64_t, std::uint32_t repeat) { count(repeat); }
    void scalarBranch(std::uint64_t, bool) { count(); }
    void scalarLoad(Addr) { count(); }
    void
    streamLoad(TraceStream res, Addr, std::uint64_t len, std::uint8_t,
               SpanRef s0)
    {
        checkHandle(res);
        checkSpan(s0);
        count();
        ++p.streamLoads;
        created();
        sample(static_cast<std::uint32_t>(len));
    }
    void
    streamLoadKv(TraceStream res, Addr, Addr, std::uint64_t len,
                 std::uint8_t, SpanRef s0)
    {
        checkHandle(res);
        checkSpan(s0);
        count();
        ++p.streamLoadsKv;
        created();
        sample(static_cast<std::uint32_t>(len));
    }
    void
    streamFree(TraceStream a)
    {
        checkHandle(a);
        count();
        ++p.streamFrees;
        --p.liveStreamDelta;
    }
    void
    setOp(TraceStream res, std::uint8_t kind, TraceStream a,
          TraceStream b, SpanRef s0, SpanRef s1, Key, SpanRef s2, Addr)
    {
        checkKind(kind);
        checkHandle(res);
        checkHandle(a);
        checkHandle(b);
        checkSpan(s0);
        checkSpan(s1);
        checkSpan(s2);
        count();
        ++p.setOps[kind];
        p.setOpElements += std::uint64_t{s0.len} + s1.len;
        sample(s0.len);
        sample(s1.len);
        created();
    }
    void
    setOpCount(std::uint8_t kind, TraceStream a, TraceStream b,
               SpanRef s0, SpanRef s1, Key, std::uint64_t)
    {
        checkKind(kind);
        checkHandle(a);
        checkHandle(b);
        checkSpan(s0);
        checkSpan(s1);
        count();
        ++p.setOpCounts[kind];
        p.setOpElements += std::uint64_t{s0.len} + s1.len;
        sample(s0.len);
        sample(s1.len);
    }
    void
    valueIntersect(bool, TraceStream a, TraceStream b, SpanRef s0,
                   SpanRef s1, Addr, Addr, SpanRef s2, SpanRef s3)
    {
        checkHandle(a);
        checkHandle(b);
        checkSpan(s0);
        checkSpan(s1);
        checkSpan(s2);
        checkSpan(s3);
        count();
        ++p.valueIntersects;
        p.valueMatches += s2.len;
        sample(s0.len);
        sample(s1.len);
    }
    void
    valueMerge(TraceStream res, TraceStream a, TraceStream b,
               SpanRef s0, SpanRef s1, Addr, Addr, std::uint64_t, Addr)
    {
        checkHandle(res);
        checkHandle(a);
        checkHandle(b);
        checkSpan(s0);
        checkSpan(s1);
        count();
        ++p.valueMerges;
        sample(s0.len);
        sample(s1.len);
        created();
    }
    void
    nestedGroup(TraceStream a, SpanRef s0, std::uint64_t index,
                std::uint32_t n)
    {
        checkHandle(a);
        checkSpan(s0);
        if (index + n > bc.numNestedEntries())
            panic("bytecode nested group [%llu, +%u) out of range",
                  static_cast<unsigned long long>(index), n);
        count();
        ++p.nestedGroups;
        p.nestedElements += n;
        for (std::uint32_t i = 0; i < n; ++i)
            sample(bc.nestedEntry(index + i).nested.len);
    }
    void
    consumeStream(TraceStream a)
    {
        checkHandle(a);
        count();
    }
    void
    iterateStream(TraceStream a, std::uint64_t, std::uint8_t)
    {
        checkHandle(a);
        count();
    }

    EventProfile
    take()
    {
        for (std::uint64_t len = 0; len < dense.size(); ++len)
            if (dense[len])
                p.lengthSamples.emplace_back(len, dense[len]);
        for (const auto &[len, n] : sparse)
            p.lengthSamples.emplace_back(len, n);
        return std::move(p);
    }
};

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::ScalarOps:
        return "scalarOps";
      case Op::ScalarOpsRun:
        return "scalarOpsRun";
      case Op::ScalarBranch:
        return "scalarBranch";
      case Op::ScalarLoad:
        return "scalarLoad";
      case Op::StreamLoad:
        return "streamLoad";
      case Op::StreamLoadKv:
        return "streamLoadKv";
      case Op::StreamFree:
        return "streamFree";
      case Op::SetOp:
        return "setOp";
      case Op::SetOpCount:
        return "setOpCount";
      case Op::ValueIntersect:
        return "valueIntersect";
      case Op::DenseValueIntersect:
        return "denseValueIntersect";
      case Op::ValueMerge:
        return "valueMerge";
      case Op::NestedGroup:
        return "nestedGroup";
      case Op::ConsumeStream:
        return "consumeStream";
      case Op::IterateStream:
        return "iterateStream";
      default:
        return "unknown";
    }
}

std::size_t
BytecodeProgram::memoryBytes() const
{
    return code_.capacity() * sizeof(Word) +
           arena_.capacity() * sizeof(Key) +
           nested_.capacity() * sizeof(NestedEntry);
}

std::vector<Event>
BytecodeProgram::decodeEvents() const
{
    EventDecoder decoder;
    decoder.out.reserve(numSourceEvents_);
    walkBytecode(*this, decoder);
    return std::move(decoder.out);
}

std::string
BytecodeProgram::serialize() const
{
    std::string out;
    out.reserve(64 + arena_.size() * sizeof(Key) +
                nested_.size() * 36 + code_.size() * sizeof(Word));
    out.append(bytecodeMagic, sizeof(bytecodeMagic));
    wire::put<std::uint32_t>(out, bytecodeFormatVersion);
    wire::put<std::uint32_t>(out, handleCount_);
    wire::put<std::uint64_t>(out, numInstructions_);
    wire::put<std::uint64_t>(out, numSourceEvents_);

    wire::put<std::uint64_t>(out, arena_.size());
    wire::putArray(out, arena_.data(), arena_.size());

    wire::put<std::uint64_t>(out, nested_.size());
    for (const NestedEntry &ne : nested_) {
        wire::put<std::uint64_t>(out, ne.infoAddr);
        wire::put<std::uint64_t>(out, ne.keyAddr);
        wire::put<std::uint64_t>(out, ne.nested.off);
        wire::put<std::uint32_t>(out, ne.nested.len);
        wire::put<std::uint32_t>(out, ne.bound);
        wire::put<std::uint64_t>(out, ne.count);
    }

    wire::put<std::uint64_t>(out, code_.size());
    wire::putArray(out, code_.data(), code_.size());
    return out;
}

BytecodeProgram
BytecodeProgram::deserialize(std::string_view bytes)
{
    wire::Reader r(bytes);
    char magic[4];
    for (char &c : magic)
        c = static_cast<char>(r.get<std::uint8_t>());
    if (std::memcmp(magic, bytecodeMagic, sizeof(bytecodeMagic)) != 0)
        panic("not a SparseCore bytecode program (bad magic)");
    const auto version = r.get<std::uint32_t>();
    if (version != bytecodeFormatVersion)
        panic("bytecode format version %u, expected %u", version,
              bytecodeFormatVersion);

    BytecodeProgram bc;
    bc.handleCount_ = r.get<std::uint32_t>();
    bc.numInstructions_ = r.get<std::uint64_t>();
    bc.numSourceEvents_ = r.get<std::uint64_t>();

    const auto arena_len = r.get<std::uint64_t>();
    bc.arena_.resize(arena_len);
    r.getArray(bc.arena_.data(), arena_len);

    const auto nested_len = r.get<std::uint64_t>();
    bc.nested_.reserve(nested_len);
    for (std::uint64_t i = 0; i < nested_len; ++i) {
        NestedEntry ne;
        ne.infoAddr = r.get<std::uint64_t>();
        ne.keyAddr = r.get<std::uint64_t>();
        ne.nested.off = r.get<std::uint64_t>();
        ne.nested.len = r.get<std::uint32_t>();
        if (ne.nested.off + ne.nested.len > bc.arena_.size())
            panic("bytecode span [%llu, +%u) outside the arena",
                  static_cast<unsigned long long>(ne.nested.off),
                  ne.nested.len);
        ne.bound = r.get<std::uint32_t>();
        ne.count = r.get<std::uint64_t>();
        bc.nested_.push_back(ne);
    }

    const auto code_len = r.get<std::uint64_t>();
    bc.code_.resize(code_len);
    r.getArray(bc.code_.data(), code_len);
    if (!r.done())
        panic("trailing bytes after the bytecode image");

    // Re-walk the code once to validate every operand against the
    // loaded tables (the compiler guarantees this for its own output;
    // a deserialized image has to earn the unchecked replay loops).
    bc.finalize();
    return bc;
}

void
BytecodeProgram::finalize()
{
    Auditor a(*this);
    walkBytecode(*this, a);
    a.verifyCounts();
    profile_ = a.take();
}

void
BytecodeProgram::validate() const
{
    Auditor a(*this);
    walkBytecode(*this, a);
    a.verifyCounts();
}

void
BytecodeProgram::saveFile(const std::string &path) const
{
    const std::string bytes = serialize();
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        panic("cannot write bytecode file '%s'", path.c_str());
    const std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (n != bytes.size())
        panic("short write to bytecode file '%s'", path.c_str());
}

BytecodeProgram
BytecodeProgram::loadFile(const std::string &path)
{
    return deserialize(wire::readWholeFile(path));
}

} // namespace sc::trace
