#include "trace/replay.hh"

#include "analysis/trace_check.hh"
#include "common/logging.hh"

namespace sc::trace {

using backend::BackendStream;

namespace {

/** Translate a trace handle through the replay map. */
BackendStream
mapHandle(const std::vector<BackendStream> &map, TraceStream h)
{
    if (h == noTraceStream)
        return backend::noStream;
    if (h >= map.size())
        panic("trace replay: handle %u out of range (%zu created)",
              h, map.size());
    return map[h];
}

} // namespace

ReplayResult
replay(const Trace &trace, backend::ExecBackend &backend,
       std::optional<bool> verify)
{
    if (verify.value_or(analysis::verifyByDefault())) {
        const analysis::VerifyReport report =
            analysis::verifyTrace(trace);
        if (report.hasErrors())
            throw analysis::VerifyError(report.format());
    }

    backend.begin();

    // Trace handles are dense and assigned in creation order; the map
    // fills in the same order during replay, so backend-side handle
    // numbering matches the original capture run exactly.
    std::vector<BackendStream> map(trace.handleCount(),
                                   backend::noStream);

    for (const Event &e : trace.events()) {
        switch (e.kind) {
        case EventKind::ScalarOps:
            backend.scalarOps(e.n);
            break;
        case EventKind::ScalarBranch:
            backend.scalarBranch(e.addr0, e.aux != 0);
            break;
        case EventKind::ScalarLoad:
            backend.scalarLoad(e.addr0);
            break;
        case EventKind::StreamLoad:
            map[e.result] = backend.streamLoad(
                e.addr0, static_cast<std::uint32_t>(e.n), e.aux,
                trace.span(e.s0));
            break;
        case EventKind::StreamLoadKv:
            map[e.result] = backend.streamLoadKv(
                e.addr0, e.addr1, static_cast<std::uint32_t>(e.n),
                e.aux, trace.span(e.s0));
            break;
        case EventKind::StreamFree:
            backend.streamFree(mapHandle(map, e.a));
            break;
        case EventKind::SetOp:
            map[e.result] = backend.setOp(
                static_cast<streams::SetOpKind>(e.aux),
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.bound,
                trace.span(e.s2), e.addr0);
            break;
        case EventKind::SetOpCount:
            backend.setOpCount(static_cast<streams::SetOpKind>(e.aux),
                               mapHandle(map, e.a), mapHandle(map, e.b),
                               trace.span(e.s0), trace.span(e.s1),
                               e.bound, e.n);
            break;
        case EventKind::ValueIntersect:
            backend.valueIntersect(
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.addr0, e.addr1,
                trace.span(e.s2), trace.span(e.s3));
            break;
        case EventKind::DenseValueIntersect:
            backend.denseValueIntersect(
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.addr0, e.addr1,
                trace.span(e.s2), trace.span(e.s3));
            break;
        case EventKind::ValueMerge:
            map[e.result] = backend.valueMerge(
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.addr0, e.addr1,
                e.n, e.addr2);
            break;
        case EventKind::NestedGroup: {
            std::vector<backend::NestedItem> items;
            items.reserve(e.aux2);
            for (std::uint32_t i = 0; i < e.aux2; ++i) {
                const NestedEntry &entry = trace.nestedEntry(e.n + i);
                items.push_back({entry.infoAddr, entry.keyAddr,
                                 trace.span(entry.nested), entry.bound,
                                 entry.count});
            }
            // Virtual dispatch lowers the group to the explicit loop
            // on substrates without S_NESTINTER.
            backend.nestedIntersect(mapHandle(map, e.a),
                                    trace.span(e.s0), items);
            break;
        }
        case EventKind::ConsumeStream:
            backend.consumeStream(mapHandle(map, e.a));
            break;
        case EventKind::IterateStream:
            backend.iterateStream(mapHandle(map, e.a), e.n, e.aux);
            break;
        case EventKind::NumKinds:
            panic("trace replay: corrupt event kind");
        }
    }

    ReplayResult out;
    out.cycles = backend.finish();
    out.breakdown = backend.breakdown();
    return out;
}

} // namespace sc::trace
