#include "trace/replay.hh"

#include <cstdlib>
#include <cstring>

#include "analysis/trace_check.hh"
#include "backend/cpu_backend.hh"
#include "backend/functional_backend.hh"
#include "backend/sparsecore_backend.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "trace/compile.hh"

namespace sc::trace {

using backend::BackendStream;

namespace {

/** Translate a trace handle through the replay map. */
BackendStream
mapHandle(const std::vector<BackendStream> &map, TraceStream h)
{
    if (h == noTraceStream)
        return backend::noStream;
    if (h >= map.size())
        panic("trace replay: handle %u out of range (%zu created)",
              h, map.size());
    return map[h];
}

/** The original engine: walk the Event records, one virtual call
 *  per event. Kept verbatim as the bit-identity reference the
 *  bytecode loop is pinned against. */
ReplayResult
replayEvents(const Trace &trace, backend::ExecBackend &backend)
{
    backend.begin();

    // Trace handles are dense and assigned in creation order; the map
    // fills in the same order during replay, so backend-side handle
    // numbering matches the original capture run exactly.
    std::vector<BackendStream> map(trace.handleCount(),
                                   backend::noStream);

    for (const Event &e : trace.events()) {
        switch (e.kind) {
        case EventKind::ScalarOps:
            backend.scalarOps(e.n);
            break;
        case EventKind::ScalarBranch:
            backend.scalarBranch(e.addr0, e.aux != 0);
            break;
        case EventKind::ScalarLoad:
            backend.scalarLoad(e.addr0);
            break;
        case EventKind::StreamLoad:
            map[e.result] = backend.streamLoad(
                e.addr0, static_cast<std::uint32_t>(e.n), e.aux,
                trace.span(e.s0));
            break;
        case EventKind::StreamLoadKv:
            map[e.result] = backend.streamLoadKv(
                e.addr0, e.addr1, static_cast<std::uint32_t>(e.n),
                e.aux, trace.span(e.s0));
            break;
        case EventKind::StreamFree:
            backend.streamFree(mapHandle(map, e.a));
            break;
        case EventKind::SetOp:
            map[e.result] = backend.setOp(
                static_cast<streams::SetOpKind>(e.aux),
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.bound,
                trace.span(e.s2), e.addr0);
            break;
        case EventKind::SetOpCount:
            backend.setOpCount(static_cast<streams::SetOpKind>(e.aux),
                               mapHandle(map, e.a), mapHandle(map, e.b),
                               trace.span(e.s0), trace.span(e.s1),
                               e.bound, e.n);
            break;
        case EventKind::ValueIntersect:
            backend.valueIntersect(
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.addr0, e.addr1,
                trace.span(e.s2), trace.span(e.s3));
            break;
        case EventKind::DenseValueIntersect:
            backend.denseValueIntersect(
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.addr0, e.addr1,
                trace.span(e.s2), trace.span(e.s3));
            break;
        case EventKind::ValueMerge:
            map[e.result] = backend.valueMerge(
                mapHandle(map, e.a), mapHandle(map, e.b),
                trace.span(e.s0), trace.span(e.s1), e.addr0, e.addr1,
                e.n, e.addr2);
            break;
        case EventKind::NestedGroup: {
            std::vector<backend::NestedItem> items;
            items.reserve(e.aux2);
            for (std::uint32_t i = 0; i < e.aux2; ++i) {
                const NestedEntry &entry = trace.nestedEntry(e.n + i);
                items.push_back({entry.infoAddr, entry.keyAddr,
                                 trace.span(entry.nested), entry.bound,
                                 entry.count});
            }
            // Virtual dispatch lowers the group to the explicit loop
            // on substrates without S_NESTINTER.
            backend.nestedIntersect(mapHandle(map, e.a),
                                    trace.span(e.s0), items);
            break;
        }
        case EventKind::ConsumeStream:
            backend.consumeStream(mapHandle(map, e.a));
            break;
        case EventKind::IterateStream:
            backend.iterateStream(mapHandle(map, e.a), e.n, e.aux);
            break;
        case EventKind::NumKinds:
            panic("trace replay: corrupt event kind");
        }
    }

    ReplayResult out;
    out.cycles = backend.finish();
    out.breakdown = backend.breakdown();
    return out;
}

/**
 * walkBytecode handler issuing backend calls. Instantiated once per
 * concrete backend type (B = CpuBackend etc.), so every call below is
 * direct and inlinable; B = ExecBackend is the generic fallback. The
 * issued call sequence is identical to replayEvents — a ScalarOpsRun
 * re-issues one scalarOps(n) per source event, preserving the
 * per-call ceil(n/issueWidth) cost-model semantics.
 *
 * compileTrace/deserialize validated every handle, span and nested
 * group, so the hot path maps handles without bounds branches.
 */
template <typename B>
struct ReplayLoop
{
    B &backend;
    const BytecodeProgram &bc;
    std::vector<BackendStream> map;
    std::vector<backend::NestedItem> items; // reused across groups

    ReplayLoop(B &b, const BytecodeProgram &p)
        : backend(b), bc(p),
          map(p.handleCount(), backend::noStream)
    {
    }

    BackendStream
    get(TraceStream h) const
    {
        return h == noTraceStream ? backend::noStream : map[h];
    }
    void
    set(TraceStream h, BackendStream v)
    {
        if (h != noTraceStream)
            map[h] = v;
    }

    void
    scalarOps(std::uint64_t n, std::uint32_t repeat)
    {
        for (std::uint32_t i = 0; i < repeat; ++i)
            backend.scalarOps(n);
    }
    void
    scalarBranch(std::uint64_t pc, bool taken)
    {
        backend.scalarBranch(pc, taken);
    }
    void scalarLoad(Addr addr) { backend.scalarLoad(addr); }
    void
    streamLoad(TraceStream res, Addr addr, std::uint64_t len,
               std::uint8_t prio, SpanRef s0)
    {
        set(res, backend.streamLoad(addr,
                                    static_cast<std::uint32_t>(len),
                                    prio, bc.span(s0)));
    }
    void
    streamLoadKv(TraceStream res, Addr key_addr, Addr val_addr,
                 std::uint64_t len, std::uint8_t prio, SpanRef s0)
    {
        set(res, backend.streamLoadKv(key_addr, val_addr,
                                      static_cast<std::uint32_t>(len),
                                      prio, bc.span(s0)));
    }
    void streamFree(TraceStream a) { backend.streamFree(get(a)); }
    void
    setOp(TraceStream res, std::uint8_t kind, TraceStream a,
          TraceStream b, SpanRef s0, SpanRef s1, Key bound, SpanRef s2,
          Addr out_addr)
    {
        set(res, backend.setOp(static_cast<streams::SetOpKind>(kind),
                               get(a), get(b), bc.span(s0),
                               bc.span(s1), bound, bc.span(s2),
                               out_addr));
    }
    void
    setOpCount(std::uint8_t kind, TraceStream a, TraceStream b,
               SpanRef s0, SpanRef s1, Key bound, std::uint64_t count)
    {
        backend.setOpCount(static_cast<streams::SetOpKind>(kind),
                           get(a), get(b), bc.span(s0), bc.span(s1),
                           bound, count);
    }
    void
    valueIntersect(bool dense, TraceStream a, TraceStream b, SpanRef s0,
                   SpanRef s1, Addr a_val, Addr b_val, SpanRef s2,
                   SpanRef s3)
    {
        if (dense)
            backend.denseValueIntersect(get(a), get(b), bc.span(s0),
                                        bc.span(s1), a_val, b_val,
                                        bc.span(s2), bc.span(s3));
        else
            backend.valueIntersect(get(a), get(b), bc.span(s0),
                                   bc.span(s1), a_val, b_val,
                                   bc.span(s2), bc.span(s3));
    }
    void
    valueMerge(TraceStream res, TraceStream a, TraceStream b, SpanRef s0,
               SpanRef s1, Addr a_val, Addr b_val, std::uint64_t n,
               Addr out_addr)
    {
        set(res, backend.valueMerge(get(a), get(b), bc.span(s0),
                                    bc.span(s1), a_val, b_val, n,
                                    out_addr));
    }
    void
    nestedGroup(TraceStream a, SpanRef s0, std::uint64_t index,
                std::uint32_t count)
    {
        items.clear();
        items.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            const NestedEntry &entry = bc.nestedEntry(index + i);
            items.push_back({entry.infoAddr, entry.keyAddr,
                             bc.span(entry.nested), entry.bound,
                             entry.count});
        }
        backend.nestedIntersect(get(a), bc.span(s0), items);
    }
    void consumeStream(TraceStream a) { backend.consumeStream(get(a)); }
    void
    iterateStream(TraceStream a, std::uint64_t n, std::uint8_t ops)
    {
        backend.iterateStream(get(a), n, ops);
    }
};

template <typename B>
void
runBytecode(const BytecodeProgram &bc, B &backend)
{
    ReplayLoop<B> loop(backend, bc);
    walkBytecode(bc, loop);
}

} // namespace

const char *
replayModeName(ReplayMode mode)
{
    switch (mode) {
      case ReplayMode::Auto:
        return "auto";
      case ReplayMode::Event:
        return "event";
      case ReplayMode::Bytecode:
        return "bytecode";
    }
    return "unknown";
}

ReplayMode
defaultReplayMode()
{
    // config() validates SC_REPLAY; "auto" resolves to the bytecode
    // engine (the default since PR 6).
    static const ReplayMode mode =
        config().replay == "event" ? ReplayMode::Event
                                   : ReplayMode::Bytecode;
    return mode;
}

ReplayMode
resolveReplayMode(ReplayMode mode)
{
    return mode == ReplayMode::Auto ? defaultReplayMode() : mode;
}

ReplayResult
replay(const Trace &trace, backend::ExecBackend &backend,
       std::optional<bool> verify, ReplayMode mode)
{
    if (verify.value_or(analysis::verifyByDefault())) {
        const analysis::VerifyReport report =
            analysis::verifyTrace(trace);
        if (report.hasErrors())
            throw analysis::VerifyError(report.format());
    }

    if (resolveReplayMode(mode) == ReplayMode::Event)
        return replayEvents(trace, backend);

    // Verified above (the bytecode preserves event order, so the
    // trace-level check covers it); don't re-verify per replay.
    return replayCompiled(compileTrace(trace), backend,
                          /*verify=*/false);
}

ReplayResult
replayCompiled(const BytecodeProgram &program,
               backend::ExecBackend &backend,
               std::optional<bool> verify)
{
    if (verify.value_or(analysis::verifyByDefault())) {
        const analysis::VerifyReport report =
            analysis::verifyBytecode(program);
        if (report.hasErrors())
            throw analysis::VerifyError(report.format());
    }

    backend.begin();

    // One devirtualized loop instantiation per concrete backend: the
    // concrete classes are final, so B's calls resolve statically and
    // inline into the decode switch. The functional substrate goes
    // further — it is stateless across events, so the compile-time
    // EventProfile aggregate replaces the walk entirely (run batching
    // taken to its limit; bit-identical stats by construction since
    // every hook is additive and order-independent). Everything else
    // (verifying wrappers, baseline accelerators) takes the generic
    // loop, which still skips Event materialization.
    if (auto *cpu = dynamic_cast<backend::CpuBackend *>(&backend))
        runBytecode(program, *cpu);
    else if (auto *sc =
                 dynamic_cast<backend::SparseCoreBackend *>(&backend))
        runBytecode(program, *sc);
    else if (auto *fn =
                 dynamic_cast<backend::FunctionalBackend *>(&backend))
        fn->applyProfile(program.profile());
    else
        runBytecode(program, backend);

    ReplayResult out;
    out.cycles = backend.finish();
    out.breakdown = backend.breakdown();
    return out;
}

} // namespace sc::trace
