/**
 * @file
 * Little-endian wire helpers shared by the trace ("SCTR") and
 * compiled-bytecode ("SCBC") serializers: byte-stable scalar
 * encoding across hosts, plus a bounds-checked reader with a bulk
 * path for contiguous arrays.
 */

#ifndef SPARSECORE_TRACE_WIRE_HH
#define SPARSECORE_TRACE_WIRE_HH

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>

#include "common/logging.hh"

namespace sc::trace::wire {

/** Read a whole file in one presized fread (no per-chunk reallocs),
 *  with a chunked fallback for streams fseek cannot size. */
inline std::string
readWholeFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        panic("cannot read file '%s'", path.c_str());
    std::string bytes;
    if (std::fseek(f, 0, SEEK_END) == 0) {
        const long size = std::ftell(f);
        if (size > 0)
            bytes.resize(static_cast<std::size_t>(size));
        std::rewind(f);
    }
    std::size_t have = 0;
    if (!bytes.empty())
        have = std::fread(bytes.data(), 1, bytes.size(), f);
    bytes.resize(have);
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    return bytes;
}

/** Append `value` little-endian (byte-stable across hosts). */
template <typename T>
void
put(std::string &out, T value)
{
    static_assert(std::is_unsigned_v<T>);
    for (unsigned i = 0; i < sizeof(T); ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

/** Append `n` elements of `data` little-endian (bulk memcpy on
 *  little-endian hosts). */
template <typename T>
void
putArray(std::string &out, const T *data, std::size_t n)
{
    static_assert(std::is_unsigned_v<T>);
    if constexpr (std::endian::native == std::endian::little) {
        out.append(reinterpret_cast<const char *>(data),
                   n * sizeof(T));
    } else {
        for (std::size_t i = 0; i < n; ++i)
            put(out, data[i]);
    }
}

/** Bounds-checked little-endian reader over a serialized image. */
class Reader
{
  public:
    explicit Reader(std::string_view bytes) : bytes_(bytes) {}

    template <typename T>
    T
    get()
    {
        static_assert(std::is_unsigned_v<T>);
        if (pos_ + sizeof(T) > bytes_.size())
            panic("truncated image at byte %zu", pos_);
        T value = 0;
        for (unsigned i = 0; i < sizeof(T); ++i)
            value |= static_cast<T>(
                         static_cast<unsigned char>(bytes_[pos_ + i]))
                     << (8 * i);
        pos_ += sizeof(T);
        return value;
    }

    /** Read `n` elements into `out` (bulk memcpy on little-endian
     *  hosts — the satellite fast path for big arenas). */
    template <typename T>
    void
    getArray(T *out, std::size_t n)
    {
        static_assert(std::is_unsigned_v<T>);
        if (n > (bytes_.size() - pos_) / sizeof(T))
            panic("truncated image at byte %zu (need %zu x %zu)",
                  pos_, n, sizeof(T));
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(out, bytes_.data() + pos_, n * sizeof(T));
            pos_ += n * sizeof(T);
        } else {
            for (std::size_t i = 0; i < n; ++i)
                out[i] = get<T>();
        }
    }

    bool done() const { return pos_ == bytes_.size(); }
    std::size_t pos() const { return pos_; }

  private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
};

} // namespace sc::trace::wire

#endif // SPARSECORE_TRACE_WIRE_HH
