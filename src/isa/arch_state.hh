/**
 * @file
 * Functional architectural state for the stream ISA: a segment-based
 * memory image, the stream register file, the Stream Mapping Table
 * (SMT, §4.1 semantics at architectural granularity), and the graph
 * format registers (GFR0..2, §3.2).
 */

#ifndef SPARSECORE_ISA_ARCH_STATE_HH
#define SPARSECORE_ISA_ARCH_STATE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "isa/stream_inst.hh"

namespace sc::isa {

/** Raised for architectural stream exceptions (freeing an unmapped
 *  stream, value ops on key-only streams, scalar access to stream
 *  data, ...). */
class StreamException : public SimError
{
  public:
    explicit StreamException(const std::string &msg)
        : SimError("stream exception: " + msg), msg_(msg)
    {}

    /** The message without the "stream exception: " prefix, so
     *  re-throw sites (Interpreter::step's pc annotation) can build a
     *  new exception without stacking prefixes. */
    const std::string &message() const { return msg_; }

  private:
    std::string msg_;
};

/**
 * Structured stream-lifetime fault: the runtime counterpart of the
 * static verifier's lifetime rules (analysis/verifier.hh). Carries
 * the fault kind and the offending sid so tests and tools can match
 * on semantics instead of message text.
 */
class StreamFault : public StreamException
{
  public:
    enum class Kind
    {
        FreeUnallocated, ///< S_FREE of a sid never defined
        DoubleFree,      ///< S_FREE of an already-freed sid
        UseAfterFree,    ///< reference to a freed sid
    };

    StreamFault(Kind kind, std::uint64_t sid, const std::string &msg)
        : StreamException(msg), kind_(kind), sid_(sid)
    {}

    Kind kind() const { return kind_; }
    std::uint64_t sid() const { return sid_; }

  private:
    Kind kind_;
    std::uint64_t sid_;
};

/**
 * Sparse functional memory: read-only data segments registered by the
 * host program (graph arrays, tensor arrays) plus a writable scratch
 * heap for produced streams.
 */
class MemoryImage
{
  public:
    /** Map [base, base+bytes) to host data (borrowed, not owned). */
    void addSegment(Addr base, const void *data, std::size_t bytes);

    /** Typed load; throws StreamException on unmapped access. */
    template <typename T>
    T
    read(Addr addr) const
    {
        const auto *seg = find(addr, sizeof(T));
        T out;
        std::memcpy(&out, seg->data + (addr - seg->base), sizeof(T));
        return out;
    }

    /** Read a span of n elements of type T. */
    template <typename T>
    std::vector<T>
    readArray(Addr addr, std::size_t n) const
    {
        const auto *seg = find(addr, sizeof(T) * n);
        std::vector<T> out(n);
        std::memcpy(out.data(), seg->data + (addr - seg->base),
                    sizeof(T) * n);
        return out;
    }

    /**
     * Zero-copy typed view of n elements. Segments borrow the host
     * program's live arrays, so a view into a graph's edge segment
     * IS a span into that graph's edge array — which is what lets
     * runSetOp resolve interpreter operands in the setindex registry
     * and pick hybrid formats with no interpreter-level plumbing.
     * Valid while the segment's backing array lives.
     */
    template <typename T>
    std::span<const T>
    viewArray(Addr addr, std::size_t n) const
    {
        const auto *seg = find(addr, sizeof(T) * n);
        const std::uint8_t *p = seg->data + (addr - seg->base);
        if (reinterpret_cast<std::uintptr_t>(p) % alignof(T) != 0)
            throw StreamException(strprintf(
                "misaligned stream array access at 0x%llx",
                static_cast<unsigned long long>(addr)));
        return {reinterpret_cast<const T *>(p), n};
    }

    bool mapped(Addr addr, std::size_t bytes) const;

  private:
    struct Segment
    {
        Addr base;
        std::size_t bytes;
        const std::uint8_t *data;
    };

    const Segment *find(Addr addr, std::size_t bytes) const;

    std::map<Addr, Segment> segments_; // keyed by base
};

/** One architectural stream register (§3.2). */
struct StreamReg
{
    bool valid = false;
    std::uint64_t sid = 0;
    Addr keyAddr = 0;
    Addr valAddr = 0;
    std::uint64_t length = 0;
    std::uint64_t priority = 0;
    bool isKv = false;
    /** Produced data (output of S_INTER/S_SUB/S_MERGE/S_VMERGE);
     *  empty for memory-backed streams. */
    std::vector<Key> producedKeys;
    std::vector<Value> producedVals;
    bool produced = false; ///< producedKeys valid (not memory-backed)
};

/**
 * Functional stream state: SMT + stream registers + GFRs. The
 * interpreter is in-order, so VD and VA transition together here; the
 * timing-level SMT in src/arch models the decode/retire window.
 */
class StreamState
{
  public:
    explicit StreamState(MemoryImage &mem) : mem_(&mem) {}

    /** S_READ/S_VREAD: (re)map sid, loading keys lazily from memory.
     *  Throws when all stream registers are active. */
    void define(std::uint64_t sid, Addr key_addr, std::uint64_t length,
                std::uint64_t priority, bool is_kv, Addr val_addr = 0);

    /** Create a mapping for a produced (computed) output stream. */
    StreamReg &defineProduced(std::uint64_t sid);

    /** S_FREE: unmap. Throws StreamFault — DoubleFree for a sid that
     *  was live and already freed, FreeUnallocated for one that never
     *  existed. */
    void free(std::uint64_t sid);

    /** Lookup; throws StreamFault(UseAfterFree) for a freed sid,
     *  StreamException for one that was never mapped. */
    StreamReg &lookup(std::uint64_t sid);
    const StreamReg &lookup(std::uint64_t sid) const;
    bool isMapped(std::uint64_t sid) const;

    /** Materialized sorted keys of a stream (memory or produced). */
    std::vector<Key> keys(const StreamReg &reg) const;
    /** Materialized values of a (key,value) stream. */
    std::vector<Value> values(const StreamReg &reg) const;

    /** Zero-copy view of a stream's keys: produced streams view
     *  producedKeys, memory-backed streams view the borrowed segment
     *  (MemoryImage::viewArray). Valid until the register is
     *  redefined / freed or the backing memory goes away. */
    std::span<const Key> keySpan(const StreamReg &reg) const;
    /** Same for values of a (key,value) stream. */
    std::span<const Value> valueSpan(const StreamReg &reg) const;

    /** Number of active streams. */
    unsigned activeCount() const;

    /** GFR0..2: CSR index, CSR edge list, CSR offset (§3.2). */
    void loadGfr(std::uint64_t g0, std::uint64_t g1, std::uint64_t g2);
    std::uint64_t gfr(unsigned idx) const;

    /**
     * Checkpoint of the full stream state, taken before executing a
     * multi-micro-op S_NESTINTER so exceptions are precise (§5.1).
     */
    struct Checkpoint
    {
        std::array<StreamReg, numStreamRegs> regs;
        std::map<std::uint64_t, unsigned> smt;
        std::set<std::uint64_t> freed;
        std::array<std::uint64_t, 3> gfr;
    };

    Checkpoint checkpoint() const;
    void restore(Checkpoint cp);

  private:
    MemoryImage *mem_;
    std::array<StreamReg, numStreamRegs> regs_;
    std::map<std::uint64_t, unsigned> smt_; // sid -> sreg index
    /** Sids that were mapped and later freed (and not redefined
     *  since): distinguishes double-free / use-after-free from a
     *  reference to a sid that never existed. */
    std::set<std::uint64_t> freed_;
    std::array<std::uint64_t, 3> gfr_{};

    unsigned allocReg();
};

} // namespace sc::isa

#endif // SPARSECORE_ISA_ARCH_STATE_HH
