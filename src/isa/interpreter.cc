#include "isa/interpreter.hh"

#include <bit>

#include "common/logging.hh"
#include "streams/set_ops.hh"

namespace sc::isa {

using streams::SetOpResult;

Interpreter::Interpreter(MemoryImage &mem) : mem_(mem), streams_(mem) {}

std::uint64_t
Interpreter::gpr(unsigned idx) const
{
    if (idx >= numGprs)
        panic("GPR index %u out of range", idx);
    return gprs_[idx];
}

void
Interpreter::setGpr(unsigned idx, std::uint64_t value)
{
    if (idx >= numGprs)
        panic("GPR index %u out of range", idx);
    if (idx == 0)
        return; // r0 is hard-wired zero
    gprs_[idx] = value;
}

double
Interpreter::fpr(unsigned idx) const
{
    if (idx >= numFprs)
        panic("FPR index %u out of range", idx);
    return fprs_[idx];
}

void
Interpreter::setFpr(unsigned idx, double value)
{
    if (idx >= numFprs)
        panic("FPR index %u out of range", idx);
    fprs_[idx] = value;
}

double
Interpreter::gprAsDouble(unsigned idx) const
{
    return std::bit_cast<double>(gpr(idx));
}

void
Interpreter::run(const Program &program, std::uint64_t max_steps)
{
    std::uint64_t pc = 0;
    std::uint64_t steps = 0;
    while (pc < program.size()) {
        if (program[pc].op == Opcode::Halt)
            return;
        if (++steps > max_steps)
            fatal("program exceeded %llu steps (infinite loop?)",
                  static_cast<unsigned long long>(max_steps));
        pc = step(program, pc);
    }
}

std::uint64_t
Interpreter::step(const Program &program, std::uint64_t pc)
{
    if (pc >= program.size())
        panic("pc %llu past end of program",
              static_cast<unsigned long long>(pc));
    const Inst &inst = program[pc];
    ++instCount_;
    ++opcodeCounts_.counter(opcodeName(inst.op));

    // Branch offsets are relative; negative offsets rely on unsigned
    // wrap-around of the cast, which is well-defined.
    const std::uint64_t target =
        pc + static_cast<std::uint64_t>(inst.imm);

    // Annotate stream exceptions with the faulting pc and instruction
    // text, preserving the concrete type (StreamFault carries its
    // kind and sid through the rethrow).
    try {
        return dispatch(program, inst, pc, target);
    } catch (const StreamFault &e) {
        throw StreamFault(
            e.kind(), e.sid(),
            strprintf("%s — pc %llu: %s", e.message().c_str(),
                      static_cast<unsigned long long>(pc),
                      inst.toString().c_str()));
    } catch (const StreamException &e) {
        throw StreamException(
            strprintf("%s — pc %llu: %s", e.message().c_str(),
                      static_cast<unsigned long long>(pc),
                      inst.toString().c_str()));
    }
}

std::uint64_t
Interpreter::dispatch(const Program &program, const Inst &inst,
                      std::uint64_t pc, std::uint64_t target)
{
    switch (inst.op) {
      case Opcode::Li:
        setGpr(inst.r[0], static_cast<std::uint64_t>(inst.imm));
        return pc + 1;
      case Opcode::Mov:
        setGpr(inst.r[0], gpr(inst.r[1]));
        return pc + 1;
      case Opcode::Add:
        setGpr(inst.r[0], gpr(inst.r[1]) + gpr(inst.r[2]));
        return pc + 1;
      case Opcode::Addi:
        setGpr(inst.r[0],
               gpr(inst.r[1]) + static_cast<std::uint64_t>(inst.imm));
        return pc + 1;
      case Opcode::Sub:
        setGpr(inst.r[0], gpr(inst.r[1]) - gpr(inst.r[2]));
        return pc + 1;
      case Opcode::Mul:
        setGpr(inst.r[0], gpr(inst.r[1]) * gpr(inst.r[2]));
        return pc + 1;
      case Opcode::Fli:
        setFpr(inst.f[0], std::bit_cast<double>(inst.imm));
        return pc + 1;
      case Opcode::Beq:
        return gpr(inst.r[0]) == gpr(inst.r[1]) ? target : pc + 1;
      case Opcode::Bne:
        return gpr(inst.r[0]) != gpr(inst.r[1]) ? target : pc + 1;
      case Opcode::Blt:
        return gpr(inst.r[0]) < gpr(inst.r[1]) ? target : pc + 1;
      case Opcode::Bge:
        return gpr(inst.r[0]) >= gpr(inst.r[1]) ? target : pc + 1;
      case Opcode::Jmp:
        return target;
      case Opcode::Halt:
        return program.size();
      default:
        ++streamInstCount_;
        execStream(inst);
        return pc + 1;
    }
}

void
Interpreter::loadOperands(const Inst &inst, std::span<const Key> &a,
                          std::span<const Key> &b)
{
    const StreamReg &ra = streams_.lookup(gpr(inst.r[0]));
    const StreamReg &rb = streams_.lookup(gpr(inst.r[1]));
    a = streams_.keySpan(ra);
    b = streams_.keySpan(rb);
}

void
Interpreter::execStream(const Inst &inst)
{
    using streams::SetOpKind;

    switch (inst.op) {
      case Opcode::SRead:
        streams_.define(gpr(inst.r[2]), gpr(inst.r[0]), gpr(inst.r[1]),
                        gpr(inst.r[3]), /*is_kv=*/false);
        // S_READ triggers the key fetch; validate the addresses now.
        if (gpr(inst.r[1]) > 0 &&
            !mem_.mapped(gpr(inst.r[0]),
                         gpr(inst.r[1]) * sizeof(Key))) {
            throw StreamException("S_READ source range unmapped");
        }
        return;

      case Opcode::SVRead:
        streams_.define(gpr(inst.r[2]), gpr(inst.r[0]), gpr(inst.r[1]),
                        gpr(inst.r[4]), /*is_kv=*/true, gpr(inst.r[3]));
        if (gpr(inst.r[1]) > 0 &&
            !mem_.mapped(gpr(inst.r[0]),
                         gpr(inst.r[1]) * sizeof(Key))) {
            throw StreamException("S_VREAD key range unmapped");
        }
        // Values are fetched lazily by S_VINTER through the normal
        // hierarchy (§3.3), so they are not validated here.
        return;

      case Opcode::SFree:
        streams_.free(gpr(inst.r[0]));
        return;

      case Opcode::SFetch: {
        const StreamReg &reg = streams_.lookup(gpr(inst.r[0]));
        const std::uint64_t offset = gpr(inst.r[1]);
        const auto keys = streams_.keySpan(reg);
        setGpr(inst.r[2],
               offset < keys.size() ? keys[offset] : endOfStream);
        return;
      }

      case Opcode::SInter:
      case Opcode::SInterC:
      case Opcode::SSub:
      case Opcode::SSubC: {
        std::span<const Key> a, b;
        loadOperands(inst, a, b);
        const Key bound = static_cast<Key>(gpr(inst.r[3]));
        std::vector<Key> out;
        const bool counting = inst.op == Opcode::SInterC ||
                              inst.op == Opcode::SSubC;
        const auto kind = inst.op == Opcode::SInter ||
                                  inst.op == Opcode::SInterC
                              ? streams::SetOpKind::Intersect
                              : streams::SetOpKind::Subtract;
        const SetOpResult res = streams::runSetOp(
            kind, a, b, bound, counting ? nullptr : &out);
        if (counting) {
            setGpr(inst.r[2], res.count);
        } else {
            StreamReg &dst =
                streams_.defineProduced(gpr(inst.r[2]));
            dst.producedKeys = std::move(out);
            dst.length = dst.producedKeys.size();
        }
        return;
      }

      case Opcode::SMerge:
      case Opcode::SMergeC: {
        std::span<const Key> a, b;
        loadOperands(inst, a, b);
        std::vector<Key> out;
        const bool counting = inst.op == Opcode::SMergeC;
        const SetOpResult res =
            streams::runSetOp(streams::SetOpKind::Merge, a, b,
                              noBound, counting ? nullptr : &out);
        if (counting) {
            setGpr(inst.r[2], res.count);
        } else {
            StreamReg &dst =
                streams_.defineProduced(gpr(inst.r[2]));
            dst.producedKeys = std::move(out);
            dst.length = dst.producedKeys.size();
        }
        return;
      }

      case Opcode::SVInter: {
        const StreamReg &ra = streams_.lookup(gpr(inst.r[0]));
        const StreamReg &rb = streams_.lookup(gpr(inst.r[1]));
        if ((!ra.isKv && !ra.produced) || (!rb.isKv && !rb.produced))
            throw StreamException(
                "S_VINTER requires (key,value) streams");
        const auto ak = streams_.keySpan(ra);
        const auto av = streams_.valueSpan(ra);
        const auto bk = streams_.keySpan(rb);
        const auto bv = streams_.valueSpan(rb);
        const Value result = streams::valueIntersect(
            ak, av, bk, bv, inst.valueOp);
        setGpr(inst.r[2], std::bit_cast<std::uint64_t>(result));
        return;
      }

      case Opcode::SVMerge: {
        const StreamReg &ra = streams_.lookup(gpr(inst.r[0]));
        const StreamReg &rb = streams_.lookup(gpr(inst.r[1]));
        if ((!ra.isKv && !ra.produced) || (!rb.isKv && !rb.produced))
            throw StreamException(
                "S_VMERGE requires (key,value) streams");
        const auto ak = streams_.keySpan(ra);
        const auto av = streams_.valueSpan(ra);
        const auto bk = streams_.keySpan(rb);
        const auto bv = streams_.valueSpan(rb);
        std::vector<Key> out_keys;
        std::vector<Value> out_vals;
        streams::valueMerge(ak, av, bk, bv, fpr(inst.f[0]),
                            fpr(inst.f[1]), out_keys, out_vals);
        StreamReg &dst = streams_.defineProduced(gpr(inst.r[2]));
        dst.producedKeys = std::move(out_keys);
        dst.producedVals = std::move(out_vals);
        dst.isKv = true;
        dst.length = dst.producedKeys.size();
        return;
      }

      case Opcode::SLdGfr:
        streams_.loadGfr(gpr(inst.r[0]), gpr(inst.r[1]),
                         gpr(inst.r[2]));
        return;

      case Opcode::SNestInter:
        execNestedIntersect(inst);
        return;

      default:
        panic("execStream called with non-stream opcode %s",
              opcodeName(inst.op));
    }
}

void
Interpreter::execNestedIntersect(const Inst &inst)
{
    // Precise exceptions: checkpoint before the micro-op expansion,
    // roll back if anything inside raises (§5.1).
    auto cp = streams_.checkpoint();
    try {
        const StreamReg &reg = streams_.lookup(gpr(inst.r[0]));
        const auto s_keys = streams_.keySpan(reg);

        const Addr vertex_base = streams_.gfr(0);
        const Addr edge_base = streams_.gfr(1);
        const Addr above_base = streams_.gfr(2);
        if (vertex_base == 0 || edge_base == 0)
            throw StreamException(
                "S_NESTINTER requires loaded GFR registers");

        std::uint64_t total = 0;
        for (const Key s : s_keys) {
            // Micro-ops: S_READ of S(s) bounded below s, S_INTER.C
            // against S, S_FREE, ADD into the accumulator.
            const auto row_begin =
                mem_.read<std::uint64_t>(vertex_base + s * 8);
            const auto above = mem_.read<std::uint32_t>(
                above_base + s * 4);
            // Zero-copy: for graph-backed memory images this span
            // aliases the live edge array, so the nested operand
            // resolves in the setindex registry.
            const auto nested = mem_.viewArray<Key>(
                edge_base + row_begin * sizeof(Key), above);
            total += streams::runSetOpCount(
                         streams::SetOpKind::Intersect, s_keys,
                         nested, s)
                         .count;
        }
        setGpr(inst.r[1], total);
    } catch (...) {
        streams_.restore(std::move(cp));
        throw;
    }
}

} // namespace sc::isa
