/**
 * @file
 * The stream ISA extension (Table 1) plus a minimal scalar ISA so
 * complete programs are expressible and executable by the functional
 * interpreter.
 *
 * Stream instructions name streams through general-purpose registers
 * holding stream IDs, exactly as in the paper; the scalar subset
 * (LI/ADD/BLT/...) stands in for the host ISA the extension plugs
 * into.
 */

#ifndef SPARSECORE_ISA_STREAM_INST_HH
#define SPARSECORE_ISA_STREAM_INST_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "streams/set_ops.hh"

namespace sc::isa {

/** All opcodes: the Table-1 stream extension plus host-scalar ops. */
enum class Opcode : unsigned
{
    // --- stream initialization / free (Table 1) ---
    SRead,      ///< S_READ  R0=addr R1=len R2=sid R3=priority
    SVRead,     ///< S_VREAD R0=addr R1=len R2=sid R3=valaddr R4=prio
    SFree,      ///< S_FREE  R0=sid
    // --- stream computation ---
    SSub,       ///< S_SUB     R0,R1=sids R2=out sid R3=bound
    SSubC,      ///< S_SUB.C   R0,R1=sids R2=count out R3=bound
    SInter,     ///< S_INTER   R0,R1=sids R2=out sid R3=bound
    SInterC,    ///< S_INTER.C R0,R1=sids R2=count out R3=bound
    SVInter,    ///< S_VINTER  R0,R1=sids R2=result IMM=value op
    SMerge,     ///< S_MERGE   R0,R1=sids R2=out sid
    SMergeC,    ///< S_MERGE.C R0,R1=sids R2=count out
    SVMerge,    ///< S_VMERGE  F0,F1=scales R0,R1=sids R2=out sid
    SLdGfr,     ///< S_LD_GFR  R0,R1,R2 -> GFR0..2
    SNestInter, ///< S_NESTINTER R0=sid R1=result
    // --- stream element access ---
    SFetch,     ///< S_FETCH R0=sid R1=offset R2=result (EOS at end)
    // --- host scalar subset ---
    Li,         ///< R0 <- IMM
    Mov,        ///< R0 <- R1
    Add,        ///< R0 <- R1 + R2
    Addi,       ///< R0 <- R1 + IMM
    Sub,        ///< R0 <- R1 - R2
    Mul,        ///< R0 <- R1 * R2
    Fli,        ///< F0 <- IMM reinterpreted as double via table
    Beq,        ///< if R0 == R1 goto pc+IMM
    Bne,        ///< if R0 != R1 goto pc+IMM
    Blt,        ///< if R0 <  R1 goto pc+IMM (unsigned)
    Bge,        ///< if R0 >= R1 goto pc+IMM (unsigned)
    Jmp,        ///< goto pc+IMM
    Halt,       ///< stop execution
    NumOpcodes
};

/** Mnemonic ("S_INTER", "ADD", ...). */
const char *opcodeName(Opcode op);
/** Reverse lookup; returns NumOpcodes for unknown mnemonics. */
Opcode opcodeFromName(const std::string &mnemonic);

/** True for the Table-1 stream extension opcodes. */
bool isStreamOpcode(Opcode op);

/** True when the opcode allocates a stream register (S_READ/S_VREAD
 *  and the producing set ops) — the defines the pressure analysis
 *  (analysis/summary.hh) counts. */
bool definesStream(Opcode op);
/** True when the opcode releases a stream register (S_FREE). */
bool freesStream(Opcode op);
/** True when the defined stream carries values (key/value lattice
 *  point): S_VREAD and S_VMERGE. */
bool definesKvStream(Opcode op);

/** Number of general registers in the model. */
constexpr unsigned numGprs = 32;
/** Number of floating-point registers in the model. */
constexpr unsigned numFprs = 8;
/** Number of stream registers (§3.2: the design uses 16). */
constexpr unsigned numStreamRegs = 16;

/** One decoded instruction. */
struct Inst
{
    Opcode op = Opcode::Halt;
    std::array<std::uint8_t, 5> r{}; ///< GPR operand indices
    std::array<std::uint8_t, 2> f{}; ///< FPR operand indices
    std::int64_t imm = 0;            ///< immediate / branch offset
    streams::ValueOp valueOp = streams::ValueOp::Mac; ///< S_VINTER IMM

    std::string toString() const;
};

/** A program: a flat instruction sequence (pc = index). */
using Program = std::vector<Inst>;

} // namespace sc::isa

#endif // SPARSECORE_ISA_STREAM_INST_HH
