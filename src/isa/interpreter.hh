/**
 * @file
 * Functional interpreter for stream-ISA programs. Executes the scalar
 * subset plus the full Table-1 extension with architectural precision:
 * SMT mapping rules, re-definition of active stream IDs, exceptions on
 * bad frees, EOS on S_FETCH past the end, checkpoint/rollback around
 * S_NESTINTER (§5.1).
 *
 * This layer is the golden model for ISA semantics; the performance
 * path (src/arch, src/backend) models the same operations in time.
 */

#ifndef SPARSECORE_ISA_INTERPRETER_HH
#define SPARSECORE_ISA_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <span>

#include "common/stats.hh"
#include "isa/arch_state.hh"
#include "isa/stream_inst.hh"

namespace sc::isa {

/** The functional machine: GPRs, FPRs, stream state, memory. */
class Interpreter
{
  public:
    explicit Interpreter(MemoryImage &mem);

    /**
     * Run a program from pc 0 until HALT (or the end of the program).
     * @param max_steps guard against runaway loops
     * @throws StreamException on architectural stream errors
     */
    void run(const Program &program,
             std::uint64_t max_steps = 100'000'000);

    /** Execute a single instruction at pc; returns the next pc.
     *  Stream exceptions are annotated with the faulting pc and the
     *  instruction text; StreamFault additionally carries the fault
     *  kind and sid for structured matching. */
    std::uint64_t step(const Program &program, std::uint64_t pc);

    std::uint64_t gpr(unsigned idx) const;
    void setGpr(unsigned idx, std::uint64_t value);
    double fpr(unsigned idx) const;
    void setFpr(unsigned idx, double value);

    /** Read a GPR holding an S_VINTER result as a double. */
    double gprAsDouble(unsigned idx) const;

    StreamState &streams() { return streams_; }
    const StreamState &streams() const { return streams_; }

    std::uint64_t instructionsExecuted() const { return instCount_; }
    /** Dynamic count of stream-extension instructions executed. */
    std::uint64_t streamInstructions() const { return streamInstCount_; }
    const StatSet &opcodeCounts() const { return opcodeCounts_; }

  private:
    /** step() minus the exception annotation wrapper. */
    std::uint64_t dispatch(const Program &program, const Inst &inst,
                           std::uint64_t pc, std::uint64_t target);
    void execStream(const Inst &inst);
    void execNestedIntersect(const Inst &inst);

    /** Materialize both operand key streams of a binary set op. */
    /** Zero-copy operand views: memory-backed streams alias the
     *  borrowed segment arrays, so graph-resident operands resolve in
     *  the setindex registry and runSetOp can pick hybrid formats.
     *  The views are consumed before any register is redefined. */
    void loadOperands(const Inst &inst, std::span<const Key> &a,
                      std::span<const Key> &b);

    MemoryImage &mem_;
    StreamState streams_;
    std::array<std::uint64_t, numGprs> gprs_{};
    std::array<double, numFprs> fprs_{};
    std::uint64_t instCount_ = 0;
    std::uint64_t streamInstCount_ = 0;
    StatSet opcodeCounts_{"opcode"};
};

} // namespace sc::isa

#endif // SPARSECORE_ISA_INTERPRETER_HH
