#include "isa/stream_inst.hh"

#include <map>
#include <sstream>

#include "common/logging.hh"

namespace sc::isa {

namespace {

const std::map<Opcode, const char *> &
nameTable()
{
    static const std::map<Opcode, const char *> table = {
        {Opcode::SRead, "S_READ"},
        {Opcode::SVRead, "S_VREAD"},
        {Opcode::SFree, "S_FREE"},
        {Opcode::SSub, "S_SUB"},
        {Opcode::SSubC, "S_SUB.C"},
        {Opcode::SInter, "S_INTER"},
        {Opcode::SInterC, "S_INTER.C"},
        {Opcode::SVInter, "S_VINTER"},
        {Opcode::SMerge, "S_MERGE"},
        {Opcode::SMergeC, "S_MERGE.C"},
        {Opcode::SVMerge, "S_VMERGE"},
        {Opcode::SLdGfr, "S_LD_GFR"},
        {Opcode::SNestInter, "S_NESTINTER"},
        {Opcode::SFetch, "S_FETCH"},
        {Opcode::Li, "LI"},
        {Opcode::Mov, "MOV"},
        {Opcode::Add, "ADD"},
        {Opcode::Addi, "ADDI"},
        {Opcode::Sub, "SUB"},
        {Opcode::Mul, "MUL"},
        {Opcode::Fli, "FLI"},
        {Opcode::Beq, "BEQ"},
        {Opcode::Bne, "BNE"},
        {Opcode::Blt, "BLT"},
        {Opcode::Bge, "BGE"},
        {Opcode::Jmp, "JMP"},
        {Opcode::Halt, "HALT"},
    };
    return table;
}

/** Number of GPR operands each opcode prints. */
unsigned
gprOperandCount(Opcode op)
{
    switch (op) {
      case Opcode::SRead:
      case Opcode::SSub:
      case Opcode::SSubC:
      case Opcode::SInter:
      case Opcode::SInterC:
        return 4;
      case Opcode::SVRead:
        return 5;
      case Opcode::SVInter:
      case Opcode::SMerge:
      case Opcode::SMergeC:
      case Opcode::SVMerge:
      case Opcode::SLdGfr:
      case Opcode::SFetch:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
        return 3;
      case Opcode::SNestInter:
      case Opcode::Mov:
      case Opcode::Addi:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return 2;
      case Opcode::SFree:
      case Opcode::Li:
        return 1;
      default:
        return 0;
    }
}

bool
hasImmediate(Opcode op)
{
    switch (op) {
      case Opcode::Li:
      case Opcode::Addi:
      case Opcode::Fli:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
        return true;
      default:
        return false;
    }
}

} // namespace

const char *
opcodeName(Opcode op)
{
    auto it = nameTable().find(op);
    if (it == nameTable().end())
        panic("unknown opcode %u", static_cast<unsigned>(op));
    return it->second;
}

Opcode
opcodeFromName(const std::string &mnemonic)
{
    for (const auto &[op, name] : nameTable())
        if (mnemonic == name)
            return op;
    return Opcode::NumOpcodes;
}

bool
isStreamOpcode(Opcode op)
{
    switch (op) {
      case Opcode::SRead:
      case Opcode::SVRead:
      case Opcode::SFree:
      case Opcode::SSub:
      case Opcode::SSubC:
      case Opcode::SInter:
      case Opcode::SInterC:
      case Opcode::SVInter:
      case Opcode::SMerge:
      case Opcode::SMergeC:
      case Opcode::SVMerge:
      case Opcode::SLdGfr:
      case Opcode::SNestInter:
      case Opcode::SFetch:
        return true;
      default:
        return false;
    }
}

bool
definesStream(Opcode op)
{
    switch (op) {
      case Opcode::SRead:
      case Opcode::SVRead:
      case Opcode::SSub:
      case Opcode::SInter:
      case Opcode::SMerge:
      case Opcode::SVMerge:
        return true;
      default:
        return false;
    }
}

bool
freesStream(Opcode op)
{
    return op == Opcode::SFree;
}

bool
definesKvStream(Opcode op)
{
    return op == Opcode::SVRead || op == Opcode::SVMerge;
}

std::string
Inst::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };
    if (op == Opcode::SVMerge || op == Opcode::Fli)
        for (unsigned i = 0; i < (op == Opcode::SVMerge ? 2u : 1u); ++i)
            sep() << "f" << static_cast<unsigned>(f[i]);
    for (unsigned i = 0; i < gprOperandCount(op); ++i)
        sep() << "r" << static_cast<unsigned>(r[i]);
    if (op == Opcode::SVInter)
        sep() << streams::valueOpName(valueOp);
    else if (hasImmediate(op))
        sep() << imm;
    return os.str();
}

} // namespace sc::isa
