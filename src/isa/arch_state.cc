#include "isa/arch_state.hh"

#include <algorithm>

namespace sc::isa {

void
MemoryImage::addSegment(Addr base, const void *data, std::size_t bytes)
{
    if (bytes == 0)
        return;
    // Reject overlap with existing segments.
    auto it = segments_.upper_bound(base);
    if (it != segments_.end() && it->first < base + bytes)
        panic("memory segments overlap at 0x%llx",
              static_cast<unsigned long long>(base));
    if (it != segments_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.base + prev->second.bytes > base)
            panic("memory segments overlap at 0x%llx",
                  static_cast<unsigned long long>(base));
    }
    segments_[base] = {base, bytes,
                       static_cast<const std::uint8_t *>(data)};
}

const MemoryImage::Segment *
MemoryImage::find(Addr addr, std::size_t bytes) const
{
    auto it = segments_.upper_bound(addr);
    if (it == segments_.begin())
        throw StreamException(strprintf(
            "unmapped memory access at 0x%llx",
            static_cast<unsigned long long>(addr)));
    --it;
    const Segment &seg = it->second;
    if (addr < seg.base || addr + bytes > seg.base + seg.bytes)
        throw StreamException(strprintf(
            "unmapped memory access at 0x%llx",
            static_cast<unsigned long long>(addr)));
    return &seg;
}

bool
MemoryImage::mapped(Addr addr, std::size_t bytes) const
{
    try {
        find(addr, bytes);
        return true;
    } catch (const StreamException &) {
        return false;
    }
}

unsigned
StreamState::allocReg()
{
    for (unsigned i = 0; i < numStreamRegs; ++i)
        if (!regs_[i].valid)
            return i;
    // §4.1: when all stream registers are active the initializing
    // instruction stalls; at functional level running out means the
    // program (compiler) exceeded the architectural limit.
    throw StreamException("all stream registers active");
}

void
StreamState::define(std::uint64_t sid, Addr key_addr,
                    std::uint64_t length, std::uint64_t priority,
                    bool is_kv, Addr val_addr)
{
    unsigned idx;
    auto it = smt_.find(sid);
    if (it != smt_.end()) {
        // Re-defining an active sid overwrites the mapping (§3.3).
        idx = it->second;
    } else {
        idx = allocReg();
        smt_[sid] = idx;
    }
    freed_.erase(sid); // a redefined sid is live again
    StreamReg &reg = regs_[idx];
    reg.valid = true;
    reg.sid = sid;
    reg.keyAddr = key_addr;
    reg.valAddr = val_addr;
    reg.length = length;
    reg.priority = priority;
    reg.isKv = is_kv;
    reg.produced = false;
    reg.producedKeys.clear();
    reg.producedVals.clear();
}

StreamReg &
StreamState::defineProduced(std::uint64_t sid)
{
    unsigned idx;
    auto it = smt_.find(sid);
    if (it != smt_.end()) {
        idx = it->second;
    } else {
        idx = allocReg();
        smt_[sid] = idx;
    }
    freed_.erase(sid);
    StreamReg &reg = regs_[idx];
    reg.valid = true;
    reg.sid = sid;
    reg.keyAddr = 0;
    reg.valAddr = 0;
    reg.length = 0;
    reg.priority = 0;
    reg.isKv = false;
    reg.produced = true;
    reg.producedKeys.clear();
    reg.producedVals.clear();
    return reg;
}

void
StreamState::free(std::uint64_t sid)
{
    auto it = smt_.find(sid);
    if (it == smt_.end()) {
        if (freed_.count(sid))
            throw StreamFault(
                StreamFault::Kind::DoubleFree, sid,
                strprintf("S_FREE of already-freed stream id %llu",
                          static_cast<unsigned long long>(sid)));
        throw StreamFault(
            StreamFault::Kind::FreeUnallocated, sid,
            strprintf("S_FREE of never-allocated stream id %llu",
                      static_cast<unsigned long long>(sid)));
    }
    regs_[it->second].valid = false;
    smt_.erase(it);
    freed_.insert(sid);
}

StreamReg &
StreamState::lookup(std::uint64_t sid)
{
    auto it = smt_.find(sid);
    if (it == smt_.end()) {
        if (freed_.count(sid))
            throw StreamFault(
                StreamFault::Kind::UseAfterFree, sid,
                strprintf("reference to freed stream id %llu",
                          static_cast<unsigned long long>(sid)));
        throw StreamException(strprintf(
            "reference to unmapped stream id %llu",
            static_cast<unsigned long long>(sid)));
    }
    return regs_[it->second];
}

const StreamReg &
StreamState::lookup(std::uint64_t sid) const
{
    return const_cast<StreamState *>(this)->lookup(sid);
}

bool
StreamState::isMapped(std::uint64_t sid) const
{
    return smt_.count(sid) != 0;
}

std::vector<Key>
StreamState::keys(const StreamReg &reg) const
{
    if (reg.produced)
        return reg.producedKeys;
    return mem_->readArray<Key>(reg.keyAddr, reg.length);
}

std::vector<Value>
StreamState::values(const StreamReg &reg) const
{
    if (!reg.isKv && !reg.produced)
        throw StreamException("value access on a key-only stream");
    if (reg.produced)
        return reg.producedVals;
    return mem_->readArray<Value>(reg.valAddr, reg.length);
}

std::span<const Key>
StreamState::keySpan(const StreamReg &reg) const
{
    if (reg.produced)
        return reg.producedKeys;
    return mem_->viewArray<Key>(reg.keyAddr, reg.length);
}

std::span<const Value>
StreamState::valueSpan(const StreamReg &reg) const
{
    if (!reg.isKv && !reg.produced)
        throw StreamException("value access on a key-only stream");
    if (reg.produced)
        return reg.producedVals;
    return mem_->viewArray<Value>(reg.valAddr, reg.length);
}

unsigned
StreamState::activeCount() const
{
    return static_cast<unsigned>(smt_.size());
}

void
StreamState::loadGfr(std::uint64_t g0, std::uint64_t g1, std::uint64_t g2)
{
    gfr_ = {g0, g1, g2};
}

std::uint64_t
StreamState::gfr(unsigned idx) const
{
    if (idx >= 3)
        panic("GFR index %u out of range", idx);
    return gfr_[idx];
}

StreamState::Checkpoint
StreamState::checkpoint() const
{
    return Checkpoint{regs_, smt_, freed_, gfr_};
}

void
StreamState::restore(Checkpoint cp)
{
    regs_ = std::move(cp.regs);
    smt_ = std::move(cp.smt);
    freed_ = std::move(cp.freed);
    gfr_ = cp.gfr;
}

} // namespace sc::isa
