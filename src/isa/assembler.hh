/**
 * @file
 * Textual assembler for stream-ISA programs.
 *
 * Syntax (one instruction per line):
 *     ; comment          # comment
 *     loop:              a label
 *     LI r1, 42
 *     S_READ r1, r2, r3, r4
 *     S_VINTER r8, r9, r10, MAC
 *     S_VMERGE f0, f1, r8, r9, r10
 *     FLI f0, 2.5
 *     BLT r1, r2, loop   branch targets may be labels or offsets
 */

#ifndef SPARSECORE_ISA_ASSEMBLER_HH
#define SPARSECORE_ISA_ASSEMBLER_HH

#include <string>

#include "common/logging.hh"
#include "isa/stream_inst.hh"

namespace sc::isa {

/** Raised on malformed assembly input. */
class AsmError : public SimError
{
  public:
    explicit AsmError(const std::string &msg)
        : SimError("asm error: " + msg)
    {}
};

/** Assemble a program from source text. Throws AsmError. */
Program assemble(const std::string &source);

/** Disassemble a program back to text (labels become offsets). */
std::string disassemble(const Program &program);

} // namespace sc::isa

#endif // SPARSECORE_ISA_ASSEMBLER_HH
