#include "isa/assembler.hh"

#include <bit>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace sc::isa {

namespace {

/** A raw token list for one source line. */
struct Line
{
    std::size_t number;
    std::string label;            // optional "name:" prefix
    std::string mnemonic;         // empty for label-only lines
    std::vector<std::string> operands;
};

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<Line>
tokenize(const std::string &source)
{
    std::vector<Line> lines;
    std::istringstream in(source);
    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        // Strip comments.
        for (const char *marker : {";", "#", "//"}) {
            auto pos = raw.find(marker);
            if (pos != std::string::npos)
                raw = raw.substr(0, pos);
        }
        std::string text = trim(raw);
        if (text.empty())
            continue;

        Line line;
        line.number = lineno;
        // A label is an identifier immediately followed by ':' at the
        // start of the line ("loop:" or "loop: LI r1, 2").
        auto colon = text.find(':');
        if (colon != std::string::npos &&
            colon == text.find_first_of(" \t:")) {
            line.label = trim(text.substr(0, colon));
            text = trim(text.substr(colon + 1));
        }
        if (!text.empty()) {
            auto space = text.find_first_of(" \t");
            line.mnemonic = text.substr(0, space);
            if (space != std::string::npos) {
                std::string rest = text.substr(space + 1);
                std::istringstream ops(rest);
                std::string op;
                while (std::getline(ops, op, ','))
                    line.operands.push_back(trim(op));
            }
        }
        lines.push_back(std::move(line));
    }
    return lines;
}

[[noreturn]] void
err(const Line &line, const std::string &what)
{
    throw AsmError(strprintf("line %zu: %s", line.number, what.c_str()));
}

unsigned
parseReg(const Line &line, const std::string &tok, char prefix,
         unsigned limit)
{
    if (tok.size() < 2 ||
        std::tolower(static_cast<unsigned char>(tok[0])) != prefix)
        err(line, "expected register operand '" +
                      std::string(1, prefix) + "N', got '" + tok + "'");
    char *end = nullptr;
    const unsigned long idx = std::strtoul(tok.c_str() + 1, &end, 10);
    if (*end != '\0' || idx >= limit)
        err(line, "bad register '" + tok + "'");
    return static_cast<unsigned>(idx);
}

std::int64_t
parseImm(const Line &line, const std::string &tok)
{
    char *end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 0);
    if (*end != '\0')
        err(line, "bad immediate '" + tok + "'");
    return v;
}

} // namespace

Program
assemble(const std::string &source)
{
    const auto lines = tokenize(source);

    // Pass 1: assign pcs to labels.
    std::map<std::string, std::uint64_t> labels;
    std::uint64_t pc = 0;
    for (const auto &line : lines) {
        if (!line.label.empty()) {
            if (labels.count(line.label))
                throw AsmError("duplicate label '" + line.label + "'");
            labels[line.label] = pc;
        }
        if (!line.mnemonic.empty())
            ++pc;
    }

    // Pass 2: encode.
    Program program;
    pc = 0;
    for (const auto &line : lines) {
        if (line.mnemonic.empty())
            continue;
        const Opcode op = opcodeFromName(line.mnemonic);
        if (op == Opcode::NumOpcodes)
            err(line, "unknown mnemonic '" + line.mnemonic + "'");

        Inst inst;
        inst.op = op;
        const auto &ops = line.operands;
        auto need = [&](std::size_t n) {
            if (ops.size() != n)
                err(line, strprintf("expected %zu operands, got %zu", n,
                                    ops.size()));
        };
        auto gprAt = [&](std::size_t i) {
            return static_cast<std::uint8_t>(
                parseReg(line, ops[i], 'r', numGprs));
        };
        auto fprAt = [&](std::size_t i) {
            return static_cast<std::uint8_t>(
                parseReg(line, ops[i], 'f', numFprs));
        };
        auto branchTarget = [&](std::size_t i) -> std::int64_t {
            auto it = labels.find(ops[i]);
            if (it != labels.end())
                return static_cast<std::int64_t>(it->second) -
                       static_cast<std::int64_t>(pc);
            return parseImm(line, ops[i]);
        };

        switch (op) {
          case Opcode::SRead:
          case Opcode::SSub:
          case Opcode::SSubC:
          case Opcode::SInter:
          case Opcode::SInterC:
            need(4);
            for (unsigned i = 0; i < 4; ++i)
                inst.r[i] = gprAt(i);
            break;
          case Opcode::SVRead:
            need(5);
            for (unsigned i = 0; i < 5; ++i)
                inst.r[i] = gprAt(i);
            break;
          case Opcode::SFree:
            need(1);
            inst.r[0] = gprAt(0);
            break;
          case Opcode::SMerge:
          case Opcode::SMergeC:
          case Opcode::SLdGfr:
          case Opcode::SFetch:
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
            need(3);
            for (unsigned i = 0; i < 3; ++i)
                inst.r[i] = gprAt(i);
            break;
          case Opcode::SVInter: {
            need(4);
            for (unsigned i = 0; i < 3; ++i)
                inst.r[i] = gprAt(i);
            if (ops[3] == "MAC")
                inst.valueOp = streams::ValueOp::Mac;
            else if (ops[3] == "MAX")
                inst.valueOp = streams::ValueOp::MaxAcc;
            else if (ops[3] == "MIN")
                inst.valueOp = streams::ValueOp::MinAcc;
            else
                err(line, "bad value op '" + ops[3] + "'");
            break;
          }
          case Opcode::SVMerge:
            need(5);
            inst.f[0] = fprAt(0);
            inst.f[1] = fprAt(1);
            for (unsigned i = 0; i < 3; ++i)
                inst.r[i] = gprAt(i + 2);
            break;
          case Opcode::SNestInter:
          case Opcode::Mov:
            need(2);
            inst.r[0] = gprAt(0);
            inst.r[1] = gprAt(1);
            break;
          case Opcode::Li:
            need(2);
            inst.r[0] = gprAt(0);
            inst.imm = parseImm(line, ops[1]);
            break;
          case Opcode::Addi:
            need(3);
            inst.r[0] = gprAt(0);
            inst.r[1] = gprAt(1);
            inst.imm = parseImm(line, ops[2]);
            break;
          case Opcode::Fli: {
            need(2);
            inst.f[0] = fprAt(0);
            char *end = nullptr;
            const double v = std::strtod(ops[1].c_str(), &end);
            if (*end != '\0')
                err(line, "bad float literal '" + ops[1] + "'");
            inst.imm = std::bit_cast<std::int64_t>(v);
            break;
          }
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
            need(3);
            inst.r[0] = gprAt(0);
            inst.r[1] = gprAt(1);
            inst.imm = branchTarget(2);
            break;
          case Opcode::Jmp:
            need(1);
            inst.imm = branchTarget(0);
            break;
          case Opcode::Halt:
            need(0);
            break;
          default:
            err(line, "unhandled mnemonic");
        }
        program.push_back(inst);
        ++pc;
    }
    return program;
}

std::string
disassemble(const Program &program)
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < program.size(); ++pc)
        os << pc << ":\t" << program[pc].toString() << '\n';
    return os.str();
}

} // namespace sc::isa
