/**
 * @file
 * Diagnostic types shared by the stream-program static verifier
 * (analysis/verifier.hh), the trace checker (analysis/trace_check.hh)
 * and the online backend checker (analysis/verifying_backend.hh).
 *
 * Every rule has a stable kebab-case id ("use-after-free") that the
 * scverify CLI prints and the golden-diagnostic tests assert on; rule
 * ids are an output format, not just an enum — renaming one is a
 * breaking change for scripts parsing scverify output.
 */

#ifndef SPARSECORE_ANALYSIS_DIAGNOSTICS_HH
#define SPARSECORE_ANALYSIS_DIAGNOSTICS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace sc::analysis {

/** The verifier's rule table (DESIGN.md §12). */
enum class Rule : unsigned
{
    UseBeforeRead,  ///< stream used before any S_READ/S_VREAD
    UseAfterFree,   ///< stream used after S_FREE
    DoubleFree,     ///< S_FREE of an already-freed stream
    StreamLeak,     ///< stream still live at Halt / program exit
    RedefineLive,   ///< (re)definition of a live sid without S_FREE
    ValueOpOnKeyStream, ///< S_VINTER/S_VMERGE without S_VREAD ancestry
    NestInterWithoutGfr, ///< S_NESTINTER not dominated by S_LD_GFR
    PredCycle,      ///< SMT pred0/pred1 dependency cycle
    StreamOverflow, ///< more streams live than stream registers
    NumRules
};

/** Stable kebab-case rule id ("use-after-free"). */
const char *ruleId(Rule rule);
/** One-line description of what the rule guards. */
const char *ruleDescription(Rule rule);

enum class Severity : std::uint8_t { Warning, Error };

/** One finding: rule + location + human-readable text. */
struct Diagnostic
{
    Rule rule = Rule::NumRules;
    Severity severity = Severity::Error;
    /** Program counter (ISA programs) or event index (traces). */
    std::uint64_t pc = 0;
    /** The stream id (ISA programs) or handle (traces) involved. */
    std::uint64_t sid = 0;
    std::string message; ///< includes the offending instruction text

    /** "pc 12: error[use-after-free]: ..." */
    std::string format() const;
};

/** The verifier's outcome: diagnostics in program order. */
struct VerifyReport
{
    std::vector<Diagnostic> diagnostics;

    bool clean() const { return diagnostics.empty(); }
    std::size_t errorCount() const;
    std::size_t warningCount() const;
    bool hasErrors() const { return errorCount() != 0; }

    /** All diagnostics, one per line. */
    std::string format() const;
};

/** Thrown by the debug-build run/replay hooks on verifier errors. */
class VerifyError : public SimError
{
  public:
    explicit VerifyError(const std::string &msg)
        : SimError("stream verifier: " + msg)
    {}
};

/**
 * Whether the run/replay hooks verify by default: on in debug builds
 * (!NDEBUG), off in release, overridable either way with SC_VERIFY=0
 * or SC_VERIFY=1 in the environment.
 */
bool verifyByDefault();

} // namespace sc::analysis

#endif // SPARSECORE_ANALYSIS_DIAGNOSTICS_HH
