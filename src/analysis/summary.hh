/**
 * @file
 * Quantitative program summaries: scverify v2's extension of the
 * boolean lifetime rules (verifier.hh, trace_check.hh) to numbers.
 *
 * Two analyses share the ProgramSummary result type:
 *
 *  - **Pressure**: the maximum live-stream count per program point.
 *    For ISA programs it rides the verifier's branch-aware fixpoint
 *    (per-pc live counts from the block in-states, exact whenever the
 *    constant lattice kept every sid); for traces and compiled SCBC
 *    images it is the concrete running live count of the event walk.
 *    Pressure against the job's real `ArchConfig` — not the hardcoded
 *    16 — is what admission control (api/job_queue.hh) checks.
 *
 *  - **Cost bounds**: a [lower, upper] simulated-cycle interval for a
 *    SparseCore replay of a trace/SCBC image, derived from the same
 *    streams::suCost model the engine charges. The lower bound is the
 *    max of four independently-sound resource bounds (deterministic
 *    scalar issue cycles, SU occupancy, aggregate stream bandwidth,
 *    value-load queue); the upper bound is a potential-function sum of
 *    per-event worst cases (all-miss memory, every branch mispredicts,
 *    exact SMT-spill accounting via a mirrored arch::Smt). The sweep
 *    property tests pin lower <= simulated cycles <= upper for every
 *    (app, dataset) in the fig07/11/12/13 smoke sweeps; see
 *    DESIGN.md §17 for the soundness argument.
 *
 * Both run over all three program forms (ISA program, captured trace,
 * compiled bytecode), and the JSON emitters here are the one output
 * path shared by `scverify --json`, the verdict cache and the tests.
 */

#ifndef SPARSECORE_ANALYSIS_SUMMARY_HH
#define SPARSECORE_ANALYSIS_SUMMARY_HH

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hh"
#include "analysis/verifier.hh"
#include "common/json.hh"
#include "isa/stream_inst.hh"
#include "trace/trace.hh"

namespace sc::arch {
struct SparseCoreConfig;
} // namespace sc::arch

namespace sc::trace {
class BytecodeProgram;
} // namespace sc::trace

namespace sc::analysis {

/** One pressure sample: `live` streams after executing `pc`. */
struct PressurePoint
{
    std::uint64_t pc = 0;
    unsigned live = 0;
};

/** Static [lower, upper] simulated-cycle interval (SparseCore). */
struct CostBounds
{
    Cycles lower = 0;
    Cycles upper = 0;
    /** False when no cost model applies (ISA programs, which carry no
     *  operand data to cost). */
    bool valid = false;

    bool
    contains(Cycles cycles) const
    {
        return valid && lower <= cycles && cycles <= upper;
    }
};

/** Quantitative result of one summarize*() run. */
struct ProgramSummary
{
    /** Program points analyzed: instructions (ISA) or events. */
    std::uint64_t points = 0;
    /** Stream definitions (loads + producing ops) encountered. */
    std::uint64_t defines = 0;
    /** Stream frees encountered. */
    std::uint64_t frees = 0;

    /** Peak live-stream pressure and the first point reaching it. */
    unsigned maxPressure = 0;
    std::uint64_t maxPressurePc = 0;
    /**
     * True when the pressure numbers are exact: always for the
     * concrete trace/bytecode walk; for ISA programs only while the
     * verifier's lattice kept every sid (no sidsUnknown, no stream
     * merged to Top).
     */
    bool pressureExact = true;
    /**
     * Pressure profile. ISA programs record one point per executed
     * pc (program order); traces record the watermark envelope — the
     * event index of each new live-count maximum — so the profile
     * stays O(maxPressure) for million-event traces.
     */
    std::vector<PressurePoint> profile;

    CostBounds cost;
};

/**
 * Summarize an ISA program: per-pc pressure from the verifier's
 * branch-aware fixpoint. Cost bounds stay invalid (assembly carries
 * no operand spans to cost). Defined alongside verify() so the
 * abstract domain stays private to verifier.cc.
 */
ProgramSummary summarizeProgram(const isa::Program &program,
                                const VerifyOptions &options = {});

/** Summarize a captured trace: concrete pressure + cost bounds for a
 *  SparseCore replay under `config`. */
ProgramSummary summarizeTrace(const trace::Trace &trace,
                              const arch::SparseCoreConfig &config);

/** Summarize a compiled SCBC image — decodes nothing: walks the
 *  bytecode directly, so it doubles as a structural check and yields
 *  numbers identical to summarizeTrace on the source trace. */
ProgramSummary summarizeBytecode(const trace::BytecodeProgram &program,
                                 const arch::SparseCoreConfig &config);

// ---------------- JSON emission ----------------
// The one scverify/--json shape, shared with the golden fixtures and
// the admission tests (same idiom as api::jsonValue in api/report.hh).

JsonValue jsonValue(const Diagnostic &diagnostic);
JsonValue jsonValue(const VerifyReport &report);
JsonValue jsonValue(const CostBounds &bounds);
JsonValue jsonValue(const ProgramSummary &summary);

} // namespace sc::analysis

#endif // SPARSECORE_ANALYSIS_SUMMARY_HH
