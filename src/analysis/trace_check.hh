/**
 * @file
 * Stream-lifetime checking for execution-event sequences: the same
 * contract the static verifier (analysis/verifier.hh) enforces on
 * stream-ISA programs, applied to the dynamic event stream an
 * algorithm reports to an ExecBackend — either after the fact over a
 * captured trace::Trace (verifyTrace) or online while a backend runs
 * (analysis/verifying_backend.hh).
 *
 * Event sequences are branch-free, so no lattice is needed: the
 * checker walks the concrete define/use/free order and reports the
 * same rule ids the static pass uses. Handles are backend handles
 * (Machine::run) or dense trace handles (replay) rather than sids;
 * diagnostics carry the event index as their pc.
 */

#ifndef SPARSECORE_ANALYSIS_TRACE_CHECK_HH
#define SPARSECORE_ANALYSIS_TRACE_CHECK_HH

#include <cstdint>
#include <map>
#include <string>

#include "analysis/diagnostics.hh"
#include "isa/stream_inst.hh"
#include "trace/trace.hh"

namespace sc::trace {
class BytecodeProgram;
} // namespace sc::trace

namespace sc::arch {
struct SparseCoreConfig;
} // namespace sc::arch

namespace sc::analysis {

/**
 * The event-order lifetime checker. Drive it with one call per
 * stream-touching event; query report() at any point.
 */
class StreamLifetimeChecker
{
  public:
    struct Options
    {
        unsigned maxLiveStreams = isa::numStreamRegs;
        /** The SMT virtualizes past the register file by spilling
         *  (§4.1), so dynamic overflow is a performance hazard, not
         *  a correctness error — Warning by default here, unlike the
         *  static pass. */
        Severity overflowSeverity = Severity::Warning;

        /** Options for a concrete machine: the overflow capacity
         *  comes from the job's ArchConfig, not the ISA default. */
        static Options forArch(const arch::SparseCoreConfig &config);
    };

    StreamLifetimeChecker() = default;
    explicit StreamLifetimeChecker(Options options) : opt_(options) {}

    /** Sentinel handles (backend::noStream / trace::noTraceStream as
     *  64-bit values) are ignored by every hook. */
    void onDefine(std::uint64_t handle, bool kv, const char *what);
    void onFree(std::uint64_t handle, const char *what);
    void onUse(std::uint64_t handle, bool need_kv, const char *what);
    /** End of the event stream: leak check. */
    void onEnd();

    /** Advance the event counter (diagnostic pc) without checking —
     *  call once per non-stream event to keep indices aligned. */
    void skipEvent() { ++seq_; }

    const VerifyReport &report() const { return report_; }
    bool hasErrors() const { return report_.hasErrors(); }
    void reset();

  private:
    enum class Lt : std::uint8_t { Key, Kv, Freed };

    static bool ignored(std::uint64_t handle);
    void emit(Rule rule, std::uint64_t handle, const std::string &msg,
              Severity severity = Severity::Error);

    Options opt_;
    std::map<std::uint64_t, Lt> streams_;
    unsigned live_ = 0;
    std::uint64_t seq_ = 0;
    VerifyReport report_;
};

/** Check an event sequence against the stream-lifetime contract —
 *  the shared core of verifyTrace/verifyBytecode and scverify. */
VerifyReport verifyEvents(const std::vector<trace::Event> &events,
                          StreamLifetimeChecker::Options options = {});

/** Check a captured trace against the stream-lifetime contract. */
VerifyReport verifyTrace(const trace::Trace &trace,
                         StreamLifetimeChecker::Options options = {});

/** Check a compiled bytecode program: decode back to event order and
 *  run the shared event checker, so both trace forms are verified
 *  against one contract. */
VerifyReport
verifyBytecode(const trace::BytecodeProgram &program,
               StreamLifetimeChecker::Options options = {});

} // namespace sc::analysis

#endif // SPARSECORE_ANALYSIS_TRACE_CHECK_HH
