#include "analysis/summary.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "arch/config.hh"
#include "arch/smt.hh"
#include "trace/bytecode.hh"

namespace sc::analysis {

namespace {

using streams::KeySpan;
using streams::SetOpKind;
using trace::Event;
using trace::EventKind;

constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return b == 0 ? a : (a + b - 1) / b;
}

/** Resolved nested element — the adapters flatten both trace forms
 *  (Trace::nestedEntry, BytecodeProgram::nestedEntry) to this. */
struct NestedRef
{
    Addr keyAddr = 0;
    KeySpan nested;
    Key bound = noBound;
};

/**
 * The shared pressure + cost accumulator both adapters drive, one
 * call per source event in replay order.
 *
 * Pressure is the concrete live count of the event walk, counted
 * exactly as StreamLifetimeChecker does (sentinel handles ignored,
 * redefines keep the count, frees of unknown handles are no-ops).
 *
 * Cost mirrors arch::Engine charge by charge (engine.cc is the
 * ground truth; every formula below cites its path):
 *
 *  Lower bound = max of four independently-sound resource bounds:
 *   - scalar: the deterministic executeOps issue cycles every event
 *     charges regardless of cache/predictor state,
 *   - SU: total SU busy time sum(suPipelineLatency + suCost.cycles)
 *     spread over numSus (occupy intervals are disjoint per SU and
 *     finish() drains to the last completion),
 *   - bandwidth: the fluid server only moves aggregateBandwidth
 *     elements per cycle and bwFreeAt_ is monotone,
 *   - value loads: the shared load queue drains valueLoadsPerCycle.
 *
 *  Upper bound = potential-function sum: with
 *  Phi = max(now, maxCompletion_, ceil(bwFreeAt_), ceil(valueFreeAt_))
 *  every engine stall targets a completion <= Phi, so Phi only grows
 *  by per-event deltas; each delta below assumes worst-case memory
 *  (all-miss latencies), every branch mispredicted, and exact SMT
 *  spill penalties from a mirrored arch::Smt driven in the engine's
 *  creation order.
 */
class SummaryAccum
{
  public:
    explicit SummaryAccum(const arch::SparseCoreConfig &cfg)
        : cfg_(cfg), smt_(cfg.numStreamRegs)
    {
        const auto &m = cfg.mem;
        maxL1_ = m.l1Latency + m.l2Latency + m.l3Latency + m.memLatency;
        maxL2_ = m.l2Latency + m.l3Latency + m.memLatency;
        spillPenalty_ = m.l2Latency + m.l3Latency;
        branchUb_ = 1 + cfg.core.mispredictPenalty;
        loadUb_ = 1 + static_cast<Cycles>(std::llround(
                          static_cast<double>(maxL2_) *
                          cfg.core.missStallFraction));
    }

    // ---------------- one call per source event ----------------

    void
    scalarOps(std::uint64_t n, std::uint32_t repeat)
    {
        lbScalar_ += repeat * issue(n);
        ub_ += repeat * issue(n);
        pc_ += repeat;
    }

    void
    scalarBranch()
    {
        lbScalar_ += 1;
        ub_ += branchUb_;
        ++pc_;
    }

    void
    scalarLoad()
    {
        lbScalar_ += 1;
        ub_ += loadUb_;
        ++pc_;
    }

    void
    streamLoad(std::uint64_t handle, Addr key_addr, std::uint64_t len,
               bool kv)
    {
        (void)kv;
        streamLoadCore(key_addr, len, handle);
        pressureDefine(handle);
        ++pc_;
    }

    void
    streamFree(std::uint64_t handle)
    {
        lbScalar_ += issue(1);
        ub_ += issue(1);
        const auto it = handleSid_.find(handle);
        if (it != handleSid_.end())
            freeEngineStream(it->second);
        pressureFree(handle);
        ++pc_;
    }

    void
    setOp(std::uint64_t handle, SetOpKind kind, KeySpan a, KeySpan b,
          Key bound, std::uint64_t result_len)
    {
        (void)result_len;
        lbScalar_ += issue(2);
        ub_ += issue(2);
        ub_ += chargeSetOp(kind, a, b, bound);
        ub_ += defineEngineStream(handle);
        pressureDefine(handle);
        ++pc_;
    }

    void
    setOpCount(SetOpKind kind, KeySpan a, KeySpan b, Key bound)
    {
        lbScalar_ += issue(2);
        ub_ += issue(2);
        ub_ += chargeSetOp(kind, a, b, bound);
        ++pc_;
    }

    void
    valueIntersect(KeySpan a, KeySpan b, std::uint64_t matches)
    {
        lbScalar_ += issue(2);
        ub_ += issue(2);
        // engine.cc valueIntersect: the intersect schedules unbounded.
        ub_ += chargeSetOp(SetOpKind::Intersect, a, b, noBound);
        const std::uint64_t loads = 2 * matches;
        valueLoads_ += loads;
        ub_ += ceilDiv(loads, vlpc()) + 1 + svpuUb(matches) / 4;
        ++pc_;
    }

    void
    valueMerge(std::uint64_t handle, KeySpan a, KeySpan b, bool a_val,
               bool b_val, std::uint64_t result_len)
    {
        lbScalar_ += issue(2);
        ub_ += issue(2);
        ub_ += chargeSetOp(SetOpKind::Merge, a, b, noBound);
        ub_ += defineEngineStream(handle);
        const std::uint64_t queue_loads =
            (a_val ? a.size() : 0) + (b_val ? b.size() : 0);
        // SVPU pair lists are padded to the longer side; with both
        // operands produced on chip no value work is modeled at all.
        const std::uint64_t pairs = std::max<std::uint64_t>(
            a_val ? a.size() : 0, b_val ? b.size() : 0);
        valueLoads_ += queue_loads;
        ub_ += ceilDiv(queue_loads, vlpc()) + 1 + svpuUb(pairs) / 8 +
               result_len / 4;
        pressureDefine(handle);
        ++pc_;
    }

    void
    nestedGroup(KeySpan s_keys, const std::vector<NestedRef> &elems)
    {
        if (cfg_.nestedIntersection) {
            // engine.cc nestedIntersect + the backend's trailing
            // accumulator-copy scalarOps(1).
            lbScalar_ += issue(1) + issue(elems.size()) + issue(1);
            ub_ += issue(1) + issue(elems.size()) + issue(1);
            // Per-element worst translation-pipeline advance: the
            // info load divided by the MLP (integer, as the
            // translator computes it) plus the one-cycle step.
            const Cycles trans_ub =
                std::max<Cycles>(
                    1, maxL1_ / std::max(1u, cfg_.valueLoadMlp)) +
                1;
            for (const NestedRef &e : elems) {
                ub_ += trans_ub + maxL2_;
                ub_ += chargeSetOp(SetOpKind::Intersect, s_keys,
                                   e.nested, e.bound);
            }
        } else {
            // ExecBackend's lowered loop: iterate + per-element
            // load/setOpCount/free/accumulate, all inside this one
            // event. The temporaries are engine streams (they take
            // SMT slots) but never trace handles, so they stay out
            // of the pressure profile — exactly like the replay.
            chargeIterate(s_keys.size(), 3);
            for (const NestedRef &e : elems) {
                const std::uint64_t sid =
                    streamLoadCore(e.keyAddr, e.nested.size(),
                                   /*handle=*/kNoHandle);
                lbScalar_ += issue(2);
                ub_ += issue(2);
                ub_ += chargeSetOp(SetOpKind::Intersect, s_keys,
                                   e.nested, e.bound);
                lbScalar_ += issue(1);
                ub_ += issue(1);
                freeEngineStream(sid);
                lbScalar_ += issue(1);
                ub_ += issue(1);
            }
        }
        ++pc_;
    }

    void
    consumeStream()
    {
        // waitFor stalls to a completion Phi already covers.
        ++pc_;
    }

    void
    iterateStream(std::uint64_t n, unsigned ops)
    {
        chargeIterate(n, ops);
        ++pc_;
    }

    ProgramSummary
    finish() &&
    {
        summary_.points = pc_;
        summary_.pressureExact = true;
        summary_.cost.lower = std::max(
            {lbScalar_, ceilDiv(suBusy_, std::max(1u, cfg_.numSus)),
             ceilDiv(bwElems_, std::max(1u, cfg_.aggregateBandwidth)),
             ceilDiv(valueLoads_, vlpc())});
        summary_.cost.upper = ub_;
        summary_.cost.valid = true;
        return std::move(summary_);
    }

  private:
    static constexpr std::uint64_t kNoHandle = ~std::uint64_t{0};

    std::uint64_t
    issue(std::uint64_t n) const
    {
        return ceilDiv(n, std::max(1u, cfg_.core.issueWidth));
    }

    std::uint64_t
    vlpc() const
    {
        return std::max(1u, cfg_.valueLoadsPerCycle);
    }

    /** Worst-case Svpu::process cycles for n pairs: every value load
     *  misses to memory, reduction at one pair per cycle. */
    Cycles
    svpuUb(std::uint64_t n) const
    {
        if (n == 0)
            return 0;
        const Cycles load_time =
            ceilDiv(2 * maxL1_ * n, std::max(1u, cfg_.valueLoadMlp));
        return std::max(load_time, n);
    }

    /** SCache::allocate worst case: first sub-slot lines all miss;
     *  line count is exact from the base address alignment. */
    Cycles
    refillUb(Addr key_addr, std::uint64_t num_keys) const
    {
        const std::uint64_t fetch_keys = std::min<std::uint64_t>(
            num_keys, cfg_.scacheSlotKeys / 2);
        if (fetch_keys == 0)
            return 0;
        const unsigned line_bytes = std::max(1u, cfg_.mem.l2.lineBytes);
        const Addr first = key_addr / line_bytes;
        const Addr last =
            (key_addr + (fetch_keys - 1) * sizeof(Key)) / line_bytes;
        return maxL2_ + (last - first);
    }

    /** Engine-side stream creation: next creation-order sid through
     *  the mirrored SMT. Returns the spill penalty (0 or exact). */
    Cycles
    defineEngineStream(std::uint64_t handle)
    {
        const std::uint64_t sid = nextSid_++;
        auto entry = smt_.define(sid);
        Cycles extra = 0;
        if (!entry) {
            extra = spillPenalty_;
            smt_.spillOne();
            entry = smt_.define(sid);
        }
        sidIndex_[sid] = *entry;
        if (handle != kNoHandle)
            handleSid_[handle] = sid;
        return extra;
    }

    void
    freeEngineStream(std::uint64_t sid)
    {
        // A spilled sid is gone from the SMT; the engine would panic
        // on its S_FREE, but the analysis stays total (the lifetime
        // checker separately reports the overflow that caused it).
        if (!smt_.lookup(sid))
            return;
        smt_.decodeFree(sid);
        smt_.retireFree(sidIndex_.at(sid));
    }

    /** Common makeStream charge: scalarOps(3) + spill + refill (the
     *  refill dominates the scratchpad-hit path's one cycle). */
    std::uint64_t
    streamLoadCore(Addr key_addr, std::uint64_t len,
                   std::uint64_t handle)
    {
        lbScalar_ += issue(3);
        ub_ += issue(3);
        const std::uint64_t sid = nextSid_;
        ub_ += defineEngineStream(handle);
        ub_ += std::max<Cycles>(refillUb(key_addr, len),
                                cfg_.scratchpadLatency);
        return sid;
    }

    /** One scheduleSetOp: SU busy + bandwidth dues, and the UB delta
     *  (pipeline + comparator cycles + fluid-server advance). */
    Cycles
    chargeSetOp(SetOpKind kind, KeySpan a, KeySpan b, Key bound)
    {
        const auto cost =
            streams::suCost(a, b, kind, bound, cfg_.suWindow);
        const Cycles intrinsic = cfg_.suPipelineLatency + cost.cycles;
        const std::uint64_t elems = cost.aConsumed + cost.bConsumed;
        suBusy_ += intrinsic;
        bwElems_ += elems;
        return intrinsic +
               ceilDiv(elems, std::max(1u, cfg_.aggregateBandwidth)) +
               1;
    }

    /** Engine::fetchLoop: one scalarOps batch + n predictor branches
     *  (each a guaranteed issue cycle; mispredicts only in the UB). */
    void
    chargeIterate(std::uint64_t n, unsigned ops)
    {
        lbScalar_ += issue(n * ops) + n;
        ub_ += issue(n * ops) + n * branchUb_;
    }

    // ---------------- pressure ----------------

    static bool
    ignoredHandle(std::uint64_t handle)
    {
        return handle == kNoHandle ||
               handle == trace::noTraceStream ||
               handle == ~std::uint64_t{0};
    }

    void
    pressureDefine(std::uint64_t handle)
    {
        ++summary_.defines;
        if (ignoredHandle(handle))
            return;
        const auto it = liveSet_.find(handle);
        if (it == liveSet_.end() || !it->second)
            ++live_;
        liveSet_[handle] = true;
        if (live_ > summary_.maxPressure) {
            summary_.maxPressure = live_;
            summary_.maxPressurePc = pc_;
            summary_.profile.push_back({pc_, live_});
        }
    }

    void
    pressureFree(std::uint64_t handle)
    {
        ++summary_.frees;
        if (ignoredHandle(handle))
            return;
        const auto it = liveSet_.find(handle);
        if (it != liveSet_.end() && it->second) {
            it->second = false;
            --live_;
        }
    }

    const arch::SparseCoreConfig &cfg_;

    Cycles maxL1_ = 0;       ///< all-miss l1Access latency
    Cycles maxL2_ = 0;       ///< all-miss l2Access latency
    Cycles spillPenalty_ = 0;
    Cycles branchUb_ = 0;
    Cycles loadUb_ = 0;

    // Lower-bound resources.
    Cycles lbScalar_ = 0;
    Cycles suBusy_ = 0;
    std::uint64_t bwElems_ = 0;
    std::uint64_t valueLoads_ = 0;
    // Upper-bound potential sum.
    Cycles ub_ = 0;

    // Engine mirror: creation-order sids through the real SMT.
    arch::Smt smt_;
    std::uint64_t nextSid_ = 0;
    std::unordered_map<std::uint64_t, unsigned> sidIndex_;
    std::unordered_map<std::uint64_t, std::uint64_t> handleSid_;

    // Pressure state (trace-handle granularity, checker semantics).
    std::map<std::uint64_t, bool> liveSet_;
    unsigned live_ = 0;

    std::uint64_t pc_ = 0;
    ProgramSummary summary_;
};

/** walkBytecode handler feeding the accumulator. */
struct BytecodeSummarizer
{
    const trace::BytecodeProgram &bc;
    SummaryAccum &acc;
    std::vector<NestedRef> elems; // reused across groups

    void
    scalarOps(std::uint64_t n, std::uint32_t repeat)
    {
        acc.scalarOps(n, repeat);
    }
    void scalarBranch(std::uint64_t, bool) { acc.scalarBranch(); }
    void scalarLoad(Addr) { acc.scalarLoad(); }
    void
    streamLoad(trace::TraceStream res, Addr addr, std::uint64_t len,
               std::uint8_t, trace::SpanRef)
    {
        acc.streamLoad(res, addr, len, /*kv=*/false);
    }
    void
    streamLoadKv(trace::TraceStream res, Addr key_addr, Addr,
                 std::uint64_t len, std::uint8_t, trace::SpanRef)
    {
        acc.streamLoad(res, key_addr, len, /*kv=*/true);
    }
    void streamFree(trace::TraceStream a) { acc.streamFree(a); }
    void
    setOp(trace::TraceStream res, std::uint8_t kind,
          trace::TraceStream, trace::TraceStream, trace::SpanRef s0,
          trace::SpanRef s1, Key bound, trace::SpanRef s2, Addr)
    {
        acc.setOp(res, static_cast<SetOpKind>(kind), bc.span(s0),
                  bc.span(s1), bound, s2.len);
    }
    void
    setOpCount(std::uint8_t kind, trace::TraceStream,
               trace::TraceStream, trace::SpanRef s0, trace::SpanRef s1,
               Key bound, std::uint64_t)
    {
        acc.setOpCount(static_cast<SetOpKind>(kind), bc.span(s0),
                       bc.span(s1), bound);
    }
    void
    valueIntersect(bool, trace::TraceStream, trace::TraceStream,
                   trace::SpanRef s0, trace::SpanRef s1, Addr, Addr,
                   trace::SpanRef s2, trace::SpanRef)
    {
        acc.valueIntersect(bc.span(s0), bc.span(s1), s2.len);
    }
    void
    valueMerge(trace::TraceStream res, trace::TraceStream,
               trace::TraceStream, trace::SpanRef s0, trace::SpanRef s1,
               Addr a_val, Addr b_val, std::uint64_t n, Addr)
    {
        acc.valueMerge(res, bc.span(s0), bc.span(s1), a_val != 0,
                       b_val != 0, n);
    }
    void
    nestedGroup(trace::TraceStream, trace::SpanRef s0,
                std::uint64_t index, std::uint32_t count)
    {
        elems.clear();
        elems.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            const trace::NestedEntry &e = bc.nestedEntry(index + i);
            elems.push_back(
                {e.keyAddr, bc.span(e.nested), e.bound});
        }
        acc.nestedGroup(bc.span(s0), elems);
    }
    void consumeStream(trace::TraceStream) { acc.consumeStream(); }
    void
    iterateStream(trace::TraceStream, std::uint64_t n, std::uint8_t ops)
    {
        acc.iterateStream(n, ops);
    }
};

} // namespace

ProgramSummary
summarizeTrace(const trace::Trace &trace,
               const arch::SparseCoreConfig &config)
{
    SummaryAccum acc(config);
    std::vector<NestedRef> elems;
    for (const Event &e : trace.events()) {
        switch (e.kind) {
          case EventKind::ScalarOps:
            acc.scalarOps(e.n, 1);
            break;
          case EventKind::ScalarBranch:
            acc.scalarBranch();
            break;
          case EventKind::ScalarLoad:
            acc.scalarLoad();
            break;
          case EventKind::StreamLoad:
            acc.streamLoad(e.result, e.addr0, e.n, /*kv=*/false);
            break;
          case EventKind::StreamLoadKv:
            acc.streamLoad(e.result, e.addr0, e.n, /*kv=*/true);
            break;
          case EventKind::StreamFree:
            acc.streamFree(e.a);
            break;
          case EventKind::SetOp:
            acc.setOp(e.result, static_cast<SetOpKind>(e.aux),
                      trace.span(e.s0), trace.span(e.s1), e.bound,
                      e.s2.len);
            break;
          case EventKind::SetOpCount:
            acc.setOpCount(static_cast<SetOpKind>(e.aux),
                           trace.span(e.s0), trace.span(e.s1),
                           e.bound);
            break;
          case EventKind::ValueIntersect:
          case EventKind::DenseValueIntersect:
            acc.valueIntersect(trace.span(e.s0), trace.span(e.s1),
                               e.s2.len);
            break;
          case EventKind::ValueMerge:
            acc.valueMerge(e.result, trace.span(e.s0),
                           trace.span(e.s1), e.addr0 != 0,
                           e.addr1 != 0, e.n);
            break;
          case EventKind::NestedGroup: {
            elems.clear();
            elems.reserve(e.aux2);
            for (std::uint32_t i = 0; i < e.aux2; ++i) {
                const trace::NestedEntry &entry =
                    trace.nestedEntry(e.n + i);
                elems.push_back({entry.keyAddr,
                                 trace.span(entry.nested),
                                 entry.bound});
            }
            acc.nestedGroup(trace.span(e.s0), elems);
            break;
          }
          case EventKind::ConsumeStream:
            acc.consumeStream();
            break;
          case EventKind::IterateStream:
            acc.iterateStream(e.n, e.aux);
            break;
          case EventKind::NumKinds:
            panic("trace summary: corrupt event kind");
        }
    }
    return std::move(acc).finish();
}

ProgramSummary
summarizeBytecode(const trace::BytecodeProgram &program,
                  const arch::SparseCoreConfig &config)
{
    SummaryAccum acc(config);
    BytecodeSummarizer handler{program, acc, {}};
    trace::walkBytecode(program, handler);
    return std::move(acc).finish();
}

// ---------------- JSON emission ----------------

JsonValue
jsonValue(const Diagnostic &diagnostic)
{
    JsonValue v = JsonValue::object();
    v.set("rule", JsonValue::str(ruleId(diagnostic.rule)));
    v.set("severity",
          JsonValue::str(diagnostic.severity == Severity::Error
                             ? "error"
                             : "warning"));
    v.set("pc", JsonValue::number(diagnostic.pc));
    v.set("sid", JsonValue::number(diagnostic.sid));
    v.set("message", JsonValue::str(diagnostic.message));
    return v;
}

JsonValue
jsonValue(const VerifyReport &report)
{
    JsonValue v = JsonValue::object();
    v.set("errors",
          JsonValue::number(std::uint64_t{report.errorCount()}));
    v.set("warnings",
          JsonValue::number(std::uint64_t{report.warningCount()}));
    JsonValue list = JsonValue::array();
    for (const Diagnostic &d : report.diagnostics)
        list.push(jsonValue(d));
    v.set("diagnostics", std::move(list));
    return v;
}

JsonValue
jsonValue(const CostBounds &bounds)
{
    JsonValue v = JsonValue::object();
    v.set("valid", JsonValue::boolean(bounds.valid));
    v.set("lower", JsonValue::number(bounds.lower));
    v.set("upper", JsonValue::number(bounds.upper));
    return v;
}

JsonValue
jsonValue(const ProgramSummary &summary)
{
    JsonValue v = JsonValue::object();
    v.set("points", JsonValue::number(summary.points));
    v.set("defines", JsonValue::number(summary.defines));
    v.set("frees", JsonValue::number(summary.frees));
    v.set("max_pressure",
          JsonValue::number(std::uint64_t{summary.maxPressure}));
    v.set("max_pressure_pc", JsonValue::number(summary.maxPressurePc));
    v.set("pressure_exact",
          JsonValue::boolean(summary.pressureExact));
    JsonValue profile = JsonValue::array();
    for (const PressurePoint &p : summary.profile) {
        JsonValue point = JsonValue::object();
        point.set("pc", JsonValue::number(p.pc));
        point.set("live", JsonValue::number(std::uint64_t{p.live}));
        profile.push(std::move(point));
    }
    v.set("profile", std::move(profile));
    v.set("cost", jsonValue(summary.cost));
    return v;
}

} // namespace sc::analysis
