#include "analysis/diagnostics.hh"

#include <cstdlib>

#include "common/config.hh"

namespace sc::analysis {

const char *
ruleId(Rule rule)
{
    switch (rule) {
      case Rule::UseBeforeRead:
        return "use-before-read";
      case Rule::UseAfterFree:
        return "use-after-free";
      case Rule::DoubleFree:
        return "double-free";
      case Rule::StreamLeak:
        return "stream-leak";
      case Rule::RedefineLive:
        return "redefine-live";
      case Rule::ValueOpOnKeyStream:
        return "value-op-on-key-stream";
      case Rule::NestInterWithoutGfr:
        return "nestinter-without-gfr";
      case Rule::PredCycle:
        return "pred-cycle";
      case Rule::StreamOverflow:
        return "stream-overflow";
      case Rule::NumRules:
        break;
    }
    return "unknown-rule";
}

const char *
ruleDescription(Rule rule)
{
    switch (rule) {
      case Rule::UseBeforeRead:
        return "stream used before S_READ/S_VREAD allocated it";
      case Rule::UseAfterFree:
        return "stream used after S_FREE released it";
      case Rule::DoubleFree:
        return "S_FREE of an already-freed stream";
      case Rule::StreamLeak:
        return "stream still live at program exit";
      case Rule::RedefineLive:
        return "live stream redefined without an intervening S_FREE";
      case Rule::ValueOpOnKeyStream:
        return "value operation on a stream without S_VREAD ancestry";
      case Rule::NestInterWithoutGfr:
        return "S_NESTINTER not dominated by S_LD_GFR";
      case Rule::PredCycle:
        return "SMT pred0/pred1 dependency cycle";
      case Rule::StreamOverflow:
        return "more simultaneously-live streams than stream registers";
      case Rule::NumRules:
        break;
    }
    return "unknown rule";
}

std::string
Diagnostic::format() const
{
    return strprintf(
        "pc %llu: %s[%s]: %s",
        static_cast<unsigned long long>(pc),
        severity == Severity::Error ? "error" : "warning", ruleId(rule),
        message.c_str());
}

std::size_t
VerifyReport::errorCount() const
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == Severity::Error)
            ++n;
    return n;
}

std::size_t
VerifyReport::warningCount() const
{
    return diagnostics.size() - errorCount();
}

std::string
VerifyReport::format() const
{
    std::string out;
    for (const Diagnostic &d : diagnostics) {
        out += d.format();
        out += '\n';
    }
    return out;
}

bool
verifyByDefault()
{
    // SC_VERIFY through the common/config loader; unset falls back
    // to the build type.
    if (const auto verify = config().verify)
        return *verify;
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

} // namespace sc::analysis
