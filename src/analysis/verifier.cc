#include "analysis/verifier.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "analysis/summary.hh"
#include "arch/config.hh"

namespace sc::analysis {

using isa::Inst;
using isa::Opcode;
using isa::Program;

namespace {

/** Signed branch target, or nullopt when it leaves the program (the
 *  interpreter's run loop treats that as a clean stop). */
std::optional<std::uint64_t>
branchTarget(const Program &program, std::uint64_t pc,
             std::int64_t imm)
{
    const std::int64_t t = static_cast<std::int64_t>(pc) + imm;
    if (t < 0 || t >= static_cast<std::int64_t>(program.size()))
        return std::nullopt;
    return static_cast<std::uint64_t>(t);
}

bool
isBranch(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne ||
           op == Opcode::Blt || op == Opcode::Bge;
}

// ---------------- the abstract domain ----------------

/** Constant-propagation value for one GPR. */
struct GprVal
{
    bool known = true;
    std::uint64_t v = 0;

    bool
    operator==(const GprVal &o) const
    {
        return known == o.known && (!known || v == o.v);
    }
};

GprVal
mergeGpr(const GprVal &a, const GprVal &b)
{
    if (a.known && b.known && a.v == b.v)
        return a;
    return {false, 0};
}

/** Per-stream lifetime lattice (DESIGN.md §12). */
enum class Sv : std::uint8_t { Unalloc, Key, Kv, Freed, Top };

bool
isLive(Sv s)
{
    return s == Sv::Key || s == Sv::Kv;
}

struct StreamAbs
{
    Sv sv = Sv::Unalloc;
    /** Producer sids (SMT pred0/pred1 links) of the defining op. */
    std::vector<std::uint64_t> preds; // sorted, unique

    bool
    operator==(const StreamAbs &o) const
    {
        return sv == o.sv && preds == o.preds;
    }
};

/** Three-valued "S_LD_GFR executed on every path here" fact. */
enum class Tri : std::uint8_t { No, Yes, Top };

struct AbsState
{
    std::array<GprVal, isa::numGprs> gprs{};
    std::map<std::uint64_t, StreamAbs> streams; // absent = Unalloc
    Tri gfr = Tri::No;
    /** A define/free targeted a sid the constant lattice lost: every
     *  lifetime rule is suppressed from here on (conservative). */
    bool sidsUnknown = false;

    /** Pointwise join; returns true when this state changed. */
    bool merge(const AbsState &o);
};

bool
AbsState::merge(const AbsState &o)
{
    bool changed = false;
    for (unsigned i = 0; i < isa::numGprs; ++i) {
        const GprVal m = mergeGpr(gprs[i], o.gprs[i]);
        if (!(m == gprs[i])) {
            gprs[i] = m;
            changed = true;
        }
    }
    for (const auto &[sid, sa] : o.streams) {
        auto [it, inserted] = streams.try_emplace(sid, StreamAbs{});
        StreamAbs &mine = it->second;
        const StreamAbs before = mine;
        if (mine.sv != sa.sv)
            mine.sv = inserted && sa.sv == Sv::Unalloc
                          ? Sv::Unalloc
                          : (mine.sv == sa.sv ? mine.sv : Sv::Top);
        std::vector<std::uint64_t> u;
        std::set_union(before.preds.begin(), before.preds.end(),
                       sa.preds.begin(), sa.preds.end(),
                       std::back_inserter(u));
        mine.preds = std::move(u);
        if (!(mine == before) || inserted)
            changed = true;
    }
    // Sids absent from `o` are Unalloc there; merge into Top when we
    // hold a different fact.
    for (auto &[sid, sa] : streams) {
        if (o.streams.count(sid))
            continue;
        if (sa.sv != Sv::Unalloc && sa.sv != Sv::Top) {
            sa.sv = Sv::Top;
            changed = true;
        }
    }
    if (gfr != o.gfr && gfr != Tri::Top) {
        gfr = Tri::Top;
        changed = true;
    }
    if (!sidsUnknown && o.sidsUnknown) {
        sidsUnknown = true;
        changed = true;
    }
    return changed;
}

// ---------------- the transfer function ----------------

/** Executes one instruction abstractly; reports into `sink` when the
 *  caller runs the post-fixpoint diagnostic pass. */
class Transfer
{
  public:
    Transfer(const VerifyOptions &options,
             std::vector<Diagnostic> *sink)
        : opt_(options), sink_(sink)
    {}

    void exec(AbsState &st, const Inst &inst, std::uint64_t pc);
    /** Leak check where control leaves the program. */
    void atExit(const AbsState &st, std::uint64_t pc);

  private:
    void report(Rule rule, std::uint64_t pc, std::uint64_t sid,
                const std::string &msg,
                Severity severity = Severity::Error);

    static GprVal gpr(const AbsState &st, unsigned idx);
    static void setGpr(AbsState &st, unsigned idx, GprVal v);
    static std::optional<std::uint64_t> sidOf(const AbsState &st,
                                              unsigned reg);

    void useStream(AbsState &st, const Inst &inst, std::uint64_t pc,
                   unsigned reg, bool need_kv);
    void defineStream(AbsState &st, const Inst &inst, std::uint64_t pc,
                      unsigned reg, bool kv,
                      const std::vector<std::uint64_t> &preds);
    void freeStream(AbsState &st, const Inst &inst, std::uint64_t pc,
                    unsigned reg);
    static bool reachesThroughPreds(const AbsState &st,
                                    std::uint64_t from,
                                    std::uint64_t target);

    const VerifyOptions &opt_;
    std::vector<Diagnostic> *sink_;
};

void
Transfer::report(Rule rule, std::uint64_t pc, std::uint64_t sid,
                 const std::string &msg, Severity severity)
{
    if (!sink_)
        return;
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    d.pc = pc;
    d.sid = sid;
    d.message = msg;
    sink_->push_back(std::move(d));
}

GprVal
Transfer::gpr(const AbsState &st, unsigned idx)
{
    return st.gprs[idx];
}

void
Transfer::setGpr(AbsState &st, unsigned idx, GprVal v)
{
    if (idx == 0)
        return; // r0 is hard-wired zero
    st.gprs[idx] = v;
}

std::optional<std::uint64_t>
Transfer::sidOf(const AbsState &st, unsigned reg)
{
    const GprVal v = gpr(st, reg);
    if (!v.known)
        return std::nullopt;
    return v.v;
}

void
Transfer::useStream(AbsState &st, const Inst &inst, std::uint64_t pc,
                    unsigned reg, bool need_kv)
{
    const auto sid = sidOf(st, inst.r[reg]);
    if (!sid || st.sidsUnknown)
        return; // lost precision: stay silent
    const auto it = st.streams.find(*sid);
    const Sv sv = it == st.streams.end() ? Sv::Unalloc : it->second.sv;
    switch (sv) {
      case Sv::Unalloc:
        report(Rule::UseBeforeRead, pc, *sid,
               strprintf("stream id %llu used before S_READ/S_VREAD"
                         " — %s",
                         static_cast<unsigned long long>(*sid),
                         inst.toString().c_str()));
        return;
      case Sv::Freed:
        report(Rule::UseAfterFree, pc, *sid,
               strprintf("stream id %llu used after S_FREE — %s",
                         static_cast<unsigned long long>(*sid),
                         inst.toString().c_str()));
        return;
      case Sv::Key:
        if (need_kv)
            report(Rule::ValueOpOnKeyStream, pc, *sid,
                   strprintf("stream id %llu is key-only (no S_VREAD"
                             " ancestry) — %s",
                             static_cast<unsigned long long>(*sid),
                             inst.toString().c_str()));
        return;
      case Sv::Kv:
      case Sv::Top:
        return;
    }
}

bool
Transfer::reachesThroughPreds(const AbsState &st, std::uint64_t from,
                              std::uint64_t target)
{
    std::vector<std::uint64_t> stack{from};
    std::set<std::uint64_t> seen;
    while (!stack.empty()) {
        const std::uint64_t cur = stack.back();
        stack.pop_back();
        if (cur == target)
            return true;
        if (!seen.insert(cur).second)
            continue;
        const auto it = st.streams.find(cur);
        if (it == st.streams.end())
            continue;
        for (const std::uint64_t p : it->second.preds)
            stack.push_back(p);
    }
    return false;
}

void
Transfer::defineStream(AbsState &st, const Inst &inst, std::uint64_t pc,
                       unsigned reg, bool kv,
                       const std::vector<std::uint64_t> &preds)
{
    const auto sid = sidOf(st, inst.r[reg]);
    if (!sid) {
        st.sidsUnknown = true; // could have (re)defined any sid
        return;
    }
    if (!st.sidsUnknown) {
        const auto it = st.streams.find(*sid);
        if (it != st.streams.end() && isLive(it->second.sv))
            report(Rule::RedefineLive, pc, *sid,
                   strprintf("stream id %llu is still live; redefining"
                             " it needs an intervening S_FREE — %s",
                             static_cast<unsigned long long>(*sid),
                             inst.toString().c_str()));
        for (const std::uint64_t p : preds) {
            if (p == *sid || reachesThroughPreds(st, p, *sid)) {
                report(Rule::PredCycle, pc, *sid,
                       strprintf("stream id %llu would depend on"
                                 " itself through pred0/pred1 links"
                                 " — %s",
                                 static_cast<unsigned long long>(*sid),
                                 inst.toString().c_str()));
                break;
            }
        }
    }
    StreamAbs &sa = st.streams[*sid];
    sa.sv = kv ? Sv::Kv : Sv::Key;
    sa.preds = preds;
    std::sort(sa.preds.begin(), sa.preds.end());
    sa.preds.erase(std::unique(sa.preds.begin(), sa.preds.end()),
                   sa.preds.end());
    if (!st.sidsUnknown) {
        unsigned live = 0;
        for (const auto &[s, a] : st.streams)
            if (isLive(a.sv))
                ++live;
        if (live > opt_.maxLiveStreams)
            report(Rule::StreamOverflow, pc, *sid,
                   strprintf("%u streams live, register file holds %u"
                             " — %s",
                             live, opt_.maxLiveStreams,
                             inst.toString().c_str()),
                   opt_.overflowSeverity);
    }
}

void
Transfer::freeStream(AbsState &st, const Inst &inst, std::uint64_t pc,
                     unsigned reg)
{
    const auto sid = sidOf(st, inst.r[reg]);
    if (!sid) {
        st.sidsUnknown = true; // could have freed any sid
        return;
    }
    const auto it = st.streams.find(*sid);
    const Sv sv = it == st.streams.end() ? Sv::Unalloc : it->second.sv;
    if (!st.sidsUnknown) {
        if (sv == Sv::Unalloc)
            report(Rule::UseBeforeRead, pc, *sid,
                   strprintf("S_FREE of never-allocated stream id %llu"
                             " — %s",
                             static_cast<unsigned long long>(*sid),
                             inst.toString().c_str()));
        else if (sv == Sv::Freed)
            report(Rule::DoubleFree, pc, *sid,
                   strprintf("stream id %llu freed twice — %s",
                             static_cast<unsigned long long>(*sid),
                             inst.toString().c_str()));
    }
    StreamAbs &sa = st.streams[*sid];
    sa.sv = Sv::Freed;
    sa.preds.clear();
}

void
Transfer::exec(AbsState &st, const Inst &inst, std::uint64_t pc)
{
    auto sids2 = [&]() {
        std::vector<std::uint64_t> preds;
        if (const auto a = sidOf(st, inst.r[0]))
            preds.push_back(*a);
        if (const auto b = sidOf(st, inst.r[1]))
            preds.push_back(*b);
        return preds;
    };

    switch (inst.op) {
      // ---------------- scalar constant propagation ----------------
      case Opcode::Li:
        setGpr(st, inst.r[0],
               {true, static_cast<std::uint64_t>(inst.imm)});
        return;
      case Opcode::Mov:
        setGpr(st, inst.r[0], gpr(st, inst.r[1]));
        return;
      case Opcode::Add: {
        const GprVal a = gpr(st, inst.r[1]), b = gpr(st, inst.r[2]);
        setGpr(st, inst.r[0],
               a.known && b.known ? GprVal{true, a.v + b.v}
                                  : GprVal{false, 0});
        return;
      }
      case Opcode::Sub: {
        const GprVal a = gpr(st, inst.r[1]), b = gpr(st, inst.r[2]);
        setGpr(st, inst.r[0],
               a.known && b.known ? GprVal{true, a.v - b.v}
                                  : GprVal{false, 0});
        return;
      }
      case Opcode::Mul: {
        const GprVal a = gpr(st, inst.r[1]), b = gpr(st, inst.r[2]);
        setGpr(st, inst.r[0],
               a.known && b.known ? GprVal{true, a.v * b.v}
                                  : GprVal{false, 0});
        return;
      }
      case Opcode::Addi: {
        const GprVal a = gpr(st, inst.r[1]);
        setGpr(st, inst.r[0],
               a.known ? GprVal{true,
                                a.v + static_cast<std::uint64_t>(
                                          inst.imm)}
                       : GprVal{false, 0});
        return;
      }
      case Opcode::Fli:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Halt:
        return;

      // ---------------- stream lifetimes ----------------
      case Opcode::SRead:
        defineStream(st, inst, pc, 2, /*kv=*/false, {});
        return;
      case Opcode::SVRead:
        defineStream(st, inst, pc, 2, /*kv=*/true, {});
        return;
      case Opcode::SFree:
        freeStream(st, inst, pc, 0);
        return;
      case Opcode::SFetch:
        useStream(st, inst, pc, 0, /*need_kv=*/false);
        setGpr(st, inst.r[2], {false, 0});
        return;

      case Opcode::SInter:
      case Opcode::SSub:
      case Opcode::SMerge: {
        useStream(st, inst, pc, 0, false);
        useStream(st, inst, pc, 1, false);
        defineStream(st, inst, pc, 2, /*kv=*/false, sids2());
        return;
      }
      case Opcode::SInterC:
      case Opcode::SSubC:
      case Opcode::SMergeC:
        useStream(st, inst, pc, 0, false);
        useStream(st, inst, pc, 1, false);
        setGpr(st, inst.r[2], {false, 0});
        return;

      case Opcode::SVInter:
        useStream(st, inst, pc, 0, /*need_kv=*/true);
        useStream(st, inst, pc, 1, /*need_kv=*/true);
        setGpr(st, inst.r[2], {false, 0});
        return;
      case Opcode::SVMerge:
        useStream(st, inst, pc, 0, /*need_kv=*/true);
        useStream(st, inst, pc, 1, /*need_kv=*/true);
        defineStream(st, inst, pc, 2, /*kv=*/true, sids2());
        return;

      case Opcode::SLdGfr:
        st.gfr = Tri::Yes;
        return;
      case Opcode::SNestInter:
        useStream(st, inst, pc, 0, false);
        if (st.gfr != Tri::Yes)
            report(Rule::NestInterWithoutGfr, pc,
                   sidOf(st, inst.r[0]).value_or(0),
                   strprintf("S_NESTINTER needs a dominating S_LD_GFR"
                             " — %s",
                             inst.toString().c_str()));
        setGpr(st, inst.r[1], {false, 0});
        return;

      case Opcode::NumOpcodes:
        return;
    }
}

void
Transfer::atExit(const AbsState &st, std::uint64_t pc)
{
    if (st.sidsUnknown)
        return;
    for (const auto &[sid, sa] : st.streams)
        if (isLive(sa.sv))
            report(Rule::StreamLeak, pc, sid,
                   strprintf("stream id %llu still live at program"
                             " exit (missing S_FREE)",
                             static_cast<unsigned long long>(sid)));
}

} // namespace

// ---------------- CFG construction ----------------

Cfg
buildCfg(const Program &program)
{
    Cfg cfg;
    const std::uint64_t n = program.size();
    if (n == 0)
        return cfg;

    std::set<std::uint64_t> leaders{0};
    for (std::uint64_t pc = 0; pc < n; ++pc) {
        const Inst &inst = program[pc];
        if (isBranch(inst.op)) {
            if (pc + 1 < n)
                leaders.insert(pc + 1);
            if (const auto t = branchTarget(program, pc, inst.imm))
                leaders.insert(*t);
        } else if (inst.op == Opcode::Jmp) {
            if (pc + 1 < n)
                leaders.insert(pc + 1);
            if (const auto t = branchTarget(program, pc, inst.imm))
                leaders.insert(*t);
        } else if (inst.op == Opcode::Halt) {
            if (pc + 1 < n)
                leaders.insert(pc + 1);
        }
    }

    std::map<std::uint64_t, std::uint32_t> blockAt;
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        Cfg::Block b;
        b.first = *it;
        b.last = std::next(it) == leaders.end() ? n : *std::next(it);
        blockAt[b.first] = static_cast<std::uint32_t>(cfg.blocks.size());
        cfg.blocks.push_back(std::move(b));
    }

    for (Cfg::Block &b : cfg.blocks) {
        const std::uint64_t term = b.last - 1;
        const Inst &inst = program[term];
        if (isBranch(inst.op)) {
            if (b.last < n)
                b.succs.push_back(blockAt.at(b.last));
            if (const auto t = branchTarget(program, term, inst.imm)) {
                const std::uint32_t tb = blockAt.at(*t);
                if (std::find(b.succs.begin(), b.succs.end(), tb) ==
                    b.succs.end())
                    b.succs.push_back(tb);
            }
        } else if (inst.op == Opcode::Jmp) {
            if (const auto t = branchTarget(program, term, inst.imm))
                b.succs.push_back(blockAt.at(*t));
        } else if (inst.op == Opcode::Halt) {
            // exit block
        } else if (b.last < n) {
            b.succs.push_back(blockAt.at(b.last));
        }
    }
    return cfg;
}

// ---------------- the fixpoint + diagnostic pass ----------------

namespace {

/** Fixpoint in-states, indexed like cfg.blocks (nullopt =
 *  unreachable). Shared by verify() and summarizeProgram(). */
struct Fixpoint
{
    Cfg cfg;
    std::vector<std::optional<AbsState>> in;
};

/** True when some edge out of the block leaves the program: Halt,
 *  fall-off-the-end, or a branch/jump target past the end (all of
 *  which the interpreter treats as a clean stop). */
bool
blockExits(const Program &program, const Cfg::Block &b)
{
    const Inst &inst = program[b.last - 1];
    if (inst.op == Opcode::Halt)
        return true;
    if (isBranch(inst.op))
        return b.last >= program.size() ||
               !branchTarget(program, b.last - 1, inst.imm);
    if (inst.op == Opcode::Jmp)
        return !branchTarget(program, b.last - 1, inst.imm);
    return b.last >= program.size();
}

/** Worklist fixpoint over block in-states (silent: no diagnostics). */
Fixpoint
runFixpoint(const Program &program, const VerifyOptions &options)
{
    Fixpoint fp;
    fp.cfg = buildCfg(program);
    if (fp.cfg.blocks.empty())
        return fp;
    fp.in.resize(fp.cfg.blocks.size());
    fp.in[0] = AbsState{};
    std::vector<std::uint32_t> worklist{0};
    Transfer silent(options, nullptr);
    while (!worklist.empty()) {
        const std::uint32_t bi = worklist.back();
        worklist.pop_back();
        const Cfg::Block &b = fp.cfg.blocks[bi];
        AbsState st = *fp.in[bi];
        for (std::uint64_t pc = b.first; pc < b.last; ++pc)
            silent.exec(st, program[pc], pc);
        for (const std::uint32_t s : b.succs) {
            if (!fp.in[s]) {
                fp.in[s] = st;
                worklist.push_back(s);
            } else if (fp.in[s]->merge(st)) {
                worklist.push_back(s);
            }
        }
    }
    return fp;
}

} // namespace

VerifyReport
verify(const Program &program, const VerifyOptions &options)
{
    VerifyReport report;
    const Fixpoint fp = runFixpoint(program, options);
    const Cfg &cfg = fp.cfg;
    const auto &in = fp.in;
    if (cfg.blocks.empty())
        return report;

    // Diagnostic pass: each reachable block once, over its fixpoint
    // in-state, with duplicates (same rule, pc, sid) collapsed.
    std::vector<Diagnostic> raw;
    Transfer reporting(options, &raw);
    for (std::uint32_t bi = 0; bi < cfg.blocks.size(); ++bi) {
        if (!in[bi])
            continue; // unreachable
        const Cfg::Block &b = cfg.blocks[bi];
        AbsState st = *in[bi];
        for (std::uint64_t pc = b.first; pc < b.last; ++pc)
            reporting.exec(st, program[pc], pc);
        if (blockExits(program, b))
            reporting.atExit(st, b.last - 1);
    }

    std::set<std::tuple<unsigned, std::uint64_t, std::uint64_t>> seen;
    for (Diagnostic &d : raw)
        if (seen.emplace(static_cast<unsigned>(d.rule), d.pc, d.sid)
                .second)
            report.diagnostics.push_back(std::move(d));
    // Deterministic order regardless of worklist iteration: pc, then
    // sid, then rule (pinned byte-for-byte by the --json goldens).
    std::stable_sort(report.diagnostics.begin(),
                     report.diagnostics.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.pc != b.pc)
                             return a.pc < b.pc;
                         if (a.sid != b.sid)
                             return a.sid < b.sid;
                         return static_cast<unsigned>(a.rule) <
                                static_cast<unsigned>(b.rule);
                     });
    return report;
}

// ---------------- quantitative summary (summary.hh) ----------------

ProgramSummary
summarizeProgram(const Program &program, const VerifyOptions &options)
{
    ProgramSummary summary;
    const Fixpoint fp = runFixpoint(program, options);
    Transfer silent(options, nullptr);
    for (std::uint32_t bi = 0; bi < fp.cfg.blocks.size(); ++bi) {
        if (!fp.in[bi])
            continue; // unreachable
        const Cfg::Block &b = fp.cfg.blocks[bi];
        AbsState st = *fp.in[bi];
        for (std::uint64_t pc = b.first; pc < b.last; ++pc) {
            const Inst &inst = program[pc];
            if (isa::definesStream(inst.op))
                ++summary.defines;
            if (isa::freesStream(inst.op))
                ++summary.frees;
            silent.exec(st, inst, pc);
            unsigned live = 0;
            bool lost = st.sidsUnknown;
            for (const auto &[sid, sa] : st.streams) {
                if (isLive(sa.sv))
                    ++live;
                else if (sa.sv == Sv::Top)
                    lost = true; // possibly live on some path
            }
            if (lost)
                summary.pressureExact = false;
            summary.profile.push_back(
                {pc, live});
            ++summary.points;
            if (live > summary.maxPressure) {
                summary.maxPressure = live;
                summary.maxPressurePc = pc;
            }
        }
    }
    return summary;
}

VerifyOptions
VerifyOptions::forArch(const arch::SparseCoreConfig &config)
{
    VerifyOptions options;
    options.maxLiveStreams = config.numStreamRegs;
    return options;
}

} // namespace sc::analysis
