#include "analysis/verifying_backend.hh"

namespace sc::analysis {

VerifyingBackend::VerifyingBackend(backend::ExecBackend &inner,
                                   StreamLifetimeChecker::Options options)
    : inner_(inner), checker_(options)
{}

void
VerifyingBackend::throwOnErrors() const
{
    if (checker_.hasErrors())
        throw VerifyError(checker_.report().format());
}

std::string
VerifyingBackend::name() const
{
    return "verify(" + inner_.name() + ")";
}

void
VerifyingBackend::begin()
{
    checker_.reset();
    inner_.begin();
}

Cycles
VerifyingBackend::finish()
{
    checker_.onEnd();
    throwOnErrors();
    return inner_.finish();
}

sim::CycleBreakdown
VerifyingBackend::breakdown() const
{
    return inner_.breakdown();
}

void
VerifyingBackend::scalarOps(std::uint64_t n)
{
    checker_.skipEvent();
    inner_.scalarOps(n);
}

void
VerifyingBackend::scalarBranch(std::uint64_t pc, bool taken)
{
    checker_.skipEvent();
    inner_.scalarBranch(pc, taken);
}

void
VerifyingBackend::scalarLoad(Addr addr)
{
    checker_.skipEvent();
    inner_.scalarLoad(addr);
}

backend::BackendStream
VerifyingBackend::streamLoad(Addr key_addr, std::uint32_t length,
                             unsigned priority, streams::KeySpan keys)
{
    const auto handle =
        inner_.streamLoad(key_addr, length, priority, keys);
    checker_.onDefine(handle, /*kv=*/false, "streamLoad");
    throwOnErrors();
    return handle;
}

backend::BackendStream
VerifyingBackend::streamLoadKv(Addr key_addr, Addr val_addr,
                               std::uint32_t length, unsigned priority,
                               streams::KeySpan keys)
{
    const auto handle = inner_.streamLoadKv(key_addr, val_addr, length,
                                            priority, keys);
    checker_.onDefine(handle, /*kv=*/true, "streamLoadKv");
    throwOnErrors();
    return handle;
}

void
VerifyingBackend::streamFree(backend::BackendStream handle)
{
    // Check before forwarding: a double free may be destructive in
    // the inner backend, and the diagnostic is the better failure.
    checker_.onFree(handle, "streamFree");
    throwOnErrors();
    inner_.streamFree(handle);
}

backend::BackendStream
VerifyingBackend::setOp(streams::SetOpKind kind, backend::BackendStream a,
                        backend::BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Key bound,
                        streams::KeySpan result, Addr out_addr)
{
    checker_.onUse(a, false, "setOp operand a");
    checker_.onUse(b, false, "setOp operand b");
    const auto handle =
        inner_.setOp(kind, a, b, ak, bk, bound, result, out_addr);
    checker_.onDefine(handle, /*kv=*/false, "setOp result");
    throwOnErrors();
    return handle;
}

void
VerifyingBackend::setOpCount(streams::SetOpKind kind,
                             backend::BackendStream a,
                             backend::BackendStream b, streams::KeySpan ak,
                             streams::KeySpan bk, Key bound,
                             std::uint64_t count)
{
    checker_.onUse(a, false, "setOpCount operand a");
    checker_.onUse(b, false, "setOpCount operand b");
    checker_.skipEvent();
    throwOnErrors();
    inner_.setOpCount(kind, a, b, ak, bk, bound, count);
}

void
VerifyingBackend::valueIntersect(backend::BackendStream a,
                                 backend::BackendStream b,
                                 streams::KeySpan ak, streams::KeySpan bk,
                                 Addr a_val_base, Addr b_val_base,
                                 std::span<const std::uint32_t> match_a,
                                 std::span<const std::uint32_t> match_b)
{
    checker_.onUse(a, true, "valueIntersect operand a");
    checker_.onUse(b, true, "valueIntersect operand b");
    checker_.skipEvent();
    throwOnErrors();
    inner_.valueIntersect(a, b, ak, bk, a_val_base, b_val_base, match_a,
                          match_b);
}

void
VerifyingBackend::denseValueIntersect(
    backend::BackendStream a, backend::BackendStream b,
    streams::KeySpan ak, streams::KeySpan bk, Addr a_val_base,
    Addr b_val_base, std::span<const std::uint32_t> match_a,
    std::span<const std::uint32_t> match_b)
{
    checker_.onUse(a, true, "denseValueIntersect operand a");
    checker_.onUse(b, true, "denseValueIntersect operand b");
    checker_.skipEvent();
    throwOnErrors();
    inner_.denseValueIntersect(a, b, ak, bk, a_val_base, b_val_base,
                               match_a, match_b);
}

backend::BackendStream
VerifyingBackend::valueMerge(backend::BackendStream a,
                             backend::BackendStream b, streams::KeySpan ak,
                             streams::KeySpan bk, Addr a_val_base,
                             Addr b_val_base, std::uint64_t result_len,
                             Addr out_addr)
{
    checker_.onUse(a, true, "valueMerge operand a");
    checker_.onUse(b, true, "valueMerge operand b");
    const auto handle = inner_.valueMerge(a, b, ak, bk, a_val_base,
                                          b_val_base, result_len, out_addr);
    checker_.onDefine(handle, /*kv=*/true, "valueMerge result");
    throwOnErrors();
    return handle;
}

VerifyingBackend::Caps
VerifyingBackend::caps() const
{
    return inner_.caps();
}

void
VerifyingBackend::nestedIntersect(backend::BackendStream s,
                                  streams::KeySpan s_keys,
                                  const std::vector<backend::NestedItem>
                                      &elems)
{
    checker_.onUse(s, false, "nestedIntersect group stream");
    checker_.skipEvent();
    throwOnErrors();
    // Forward to the inner backend so its native/lowered dispatch
    // decision is preserved; the lowered path's per-element calls come
    // back through the inner backend directly, not through us, which
    // matches the trace checker treating the group as one event.
    inner_.nestedIntersect(s, s_keys, elems);
}

void
VerifyingBackend::consumeStream(backend::BackendStream handle)
{
    checker_.onUse(handle, false, "consumeStream");
    checker_.skipEvent();
    throwOnErrors();
    inner_.consumeStream(handle);
}

void
VerifyingBackend::iterateStream(backend::BackendStream handle,
                                std::uint64_t n, unsigned ops_per_element)
{
    checker_.onUse(handle, false, "iterateStream");
    checker_.skipEvent();
    throwOnErrors();
    inner_.iterateStream(handle, n, ops_per_element);
}

} // namespace sc::analysis
