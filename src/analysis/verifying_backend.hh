/**
 * @file
 * VerifyingBackend: an ExecBackend decorator that forwards every call
 * to an inner backend unchanged while running the stream-lifetime
 * checker (analysis/trace_check.hh) over the live event stream.
 *
 * Machine::run wraps its backend with this in debug builds (opt-out
 * via RunOptions::verify), so every existing test that runs a
 * workload doubles as a verifier test. Forwarding is transparent —
 * handles, caps and timing all come from the inner backend — so the
 * wrapper can never change simulated cycles, only raise VerifyError
 * when modeling code breaks the stream contract.
 */

#ifndef SPARSECORE_ANALYSIS_VERIFYING_BACKEND_HH
#define SPARSECORE_ANALYSIS_VERIFYING_BACKEND_HH

#include "analysis/trace_check.hh"
#include "backend/exec_backend.hh"

namespace sc::analysis {

/** The decorator. The inner backend must outlive it. */
class VerifyingBackend : public backend::ExecBackend
{
  public:
    explicit VerifyingBackend(backend::ExecBackend &inner,
                              StreamLifetimeChecker::Options options =
                                  {});

    std::string name() const override;
    void begin() override;
    /** Throws VerifyError when the run violated the contract
     *  (including leak checks that only resolve at the end). */
    Cycles finish() override;
    sim::CycleBreakdown breakdown() const override;

    void scalarOps(std::uint64_t n) override;
    void scalarBranch(std::uint64_t pc, bool taken) override;
    void scalarLoad(Addr addr) override;

    backend::BackendStream streamLoad(Addr key_addr,
                                      std::uint32_t length,
                                      unsigned priority,
                                      streams::KeySpan keys) override;
    backend::BackendStream streamLoadKv(Addr key_addr, Addr val_addr,
                                        std::uint32_t length,
                                        unsigned priority,
                                        streams::KeySpan keys) override;
    void streamFree(backend::BackendStream handle) override;

    backend::BackendStream setOp(streams::SetOpKind kind,
                                 backend::BackendStream a,
                                 backend::BackendStream b,
                                 streams::KeySpan ak,
                                 streams::KeySpan bk, Key bound,
                                 streams::KeySpan result,
                                 Addr out_addr) override;
    void setOpCount(streams::SetOpKind kind, backend::BackendStream a,
                    backend::BackendStream b, streams::KeySpan ak,
                    streams::KeySpan bk, Key bound,
                    std::uint64_t count) override;

    void valueIntersect(backend::BackendStream a,
                        backend::BackendStream b, streams::KeySpan ak,
                        streams::KeySpan bk, Addr a_val_base,
                        Addr b_val_base,
                        std::span<const std::uint32_t> match_a,
                        std::span<const std::uint32_t> match_b) override;
    void denseValueIntersect(
        backend::BackendStream a, backend::BackendStream b,
        streams::KeySpan ak, streams::KeySpan bk, Addr a_val_base,
        Addr b_val_base, std::span<const std::uint32_t> match_a,
        std::span<const std::uint32_t> match_b) override;
    backend::BackendStream valueMerge(backend::BackendStream a,
                                      backend::BackendStream b,
                                      streams::KeySpan ak,
                                      streams::KeySpan bk,
                                      Addr a_val_base, Addr b_val_base,
                                      std::uint64_t result_len,
                                      Addr out_addr) override;

    Caps caps() const override;
    void nestedIntersect(
        backend::BackendStream s, streams::KeySpan s_keys,
        const std::vector<backend::NestedItem> &elems) override;

    void consumeStream(backend::BackendStream handle) override;
    void iterateStream(backend::BackendStream handle, std::uint64_t n,
                       unsigned ops_per_element) override;

    const VerifyReport &report() const { return checker_.report(); }

  private:
    /** Fail fast: raise as soon as an error diagnostic appears. */
    void throwOnErrors() const;

    backend::ExecBackend &inner_;
    StreamLifetimeChecker checker_;
};

} // namespace sc::analysis

#endif // SPARSECORE_ANALYSIS_VERIFYING_BACKEND_HH
