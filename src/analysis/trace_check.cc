#include "analysis/trace_check.hh"

#include "arch/config.hh"
#include "backend/exec_backend.hh"
#include "trace/bytecode.hh"

namespace sc::analysis {

StreamLifetimeChecker::Options
StreamLifetimeChecker::Options::forArch(
    const arch::SparseCoreConfig &config)
{
    Options options;
    options.maxLiveStreams = config.numStreamRegs;
    return options;
}

using trace::Event;
using trace::EventKind;

bool
StreamLifetimeChecker::ignored(std::uint64_t handle)
{
    return handle == backend::noStream ||
           handle == trace::noTraceStream ||
           handle == ~std::uint64_t{0};
}

void
StreamLifetimeChecker::emit(Rule rule, std::uint64_t handle,
                            const std::string &msg, Severity severity)
{
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    d.pc = seq_;
    d.sid = handle;
    d.message = msg;
    report_.diagnostics.push_back(std::move(d));
}

void
StreamLifetimeChecker::onDefine(std::uint64_t handle, bool kv,
                                const char *what)
{
    // seq_ is advanced on return so the diagnostics emitted here
    // carry this event's index.
    struct Advance
    {
        std::uint64_t &seq;
        ~Advance() { ++seq; }
    } advance{seq_};
    if (ignored(handle))
        return;
    const auto it = streams_.find(handle);
    if (it != streams_.end() && it->second != Lt::Freed)
        emit(Rule::RedefineLive, handle,
             strprintf("stream handle %llu redefined while live — %s",
                       static_cast<unsigned long long>(handle), what));
    if (it == streams_.end() || it->second == Lt::Freed)
        ++live_;
    streams_[handle] = kv ? Lt::Kv : Lt::Key;
    if (live_ > opt_.maxLiveStreams)
        emit(Rule::StreamOverflow, handle,
             strprintf("%u streams live, register file holds %u — %s",
                       live_, opt_.maxLiveStreams, what),
             opt_.overflowSeverity);
}

void
StreamLifetimeChecker::onFree(std::uint64_t handle, const char *what)
{
    struct Advance
    {
        std::uint64_t &seq;
        ~Advance() { ++seq; }
    } advance{seq_};
    if (ignored(handle))
        return;
    const auto it = streams_.find(handle);
    if (it == streams_.end()) {
        emit(Rule::UseBeforeRead, handle,
             strprintf("free of never-loaded stream handle %llu — %s",
                       static_cast<unsigned long long>(handle), what));
        return;
    }
    if (it->second == Lt::Freed) {
        emit(Rule::DoubleFree, handle,
             strprintf("stream handle %llu freed twice — %s",
                       static_cast<unsigned long long>(handle), what));
        return;
    }
    it->second = Lt::Freed;
    --live_;
}

void
StreamLifetimeChecker::onUse(std::uint64_t handle, bool need_kv,
                             const char *what)
{
    // Uses share their event's index with any sibling hook calls;
    // only onDefine/onFree/skipEvent advance the counter, so a setOp
    // event's two uses and one define all report the same pc.
    if (ignored(handle))
        return;
    const auto it = streams_.find(handle);
    if (it == streams_.end()) {
        emit(Rule::UseBeforeRead, handle,
             strprintf("stream handle %llu used before any load — %s",
                       static_cast<unsigned long long>(handle), what));
        return;
    }
    if (it->second == Lt::Freed) {
        emit(Rule::UseAfterFree, handle,
             strprintf("stream handle %llu used after free — %s",
                       static_cast<unsigned long long>(handle), what));
        return;
    }
    if (need_kv && it->second == Lt::Key)
        emit(Rule::ValueOpOnKeyStream, handle,
             strprintf("stream handle %llu is key-only (no kv load"
                       " ancestry) — %s",
                       static_cast<unsigned long long>(handle), what));
}

void
StreamLifetimeChecker::onEnd()
{
    for (const auto &[handle, lt] : streams_)
        if (lt != Lt::Freed)
            emit(Rule::StreamLeak, handle,
                 strprintf("stream handle %llu still live at the end"
                           " of the event stream (missing free)",
                           static_cast<unsigned long long>(handle)));
}

void
StreamLifetimeChecker::reset()
{
    streams_.clear();
    live_ = 0;
    seq_ = 0;
    report_ = VerifyReport{};
}

VerifyReport
verifyEvents(const std::vector<Event> &events,
             StreamLifetimeChecker::Options options)
{
    StreamLifetimeChecker chk(options);
    for (const Event &e : events) {
        const char *what = eventKindName(e.kind);
        switch (e.kind) {
          case EventKind::StreamLoad:
            chk.onDefine(e.result, /*kv=*/false, what);
            break;
          case EventKind::StreamLoadKv:
            chk.onDefine(e.result, /*kv=*/true, what);
            break;
          case EventKind::StreamFree:
            chk.onFree(e.a, what);
            break;
          case EventKind::SetOp:
            chk.onUse(e.a, false, what);
            chk.onUse(e.b, false, what);
            chk.onDefine(e.result, /*kv=*/false, what);
            break;
          case EventKind::SetOpCount:
            chk.onUse(e.a, false, what);
            chk.onUse(e.b, false, what);
            chk.skipEvent();
            break;
          case EventKind::ValueIntersect:
          case EventKind::DenseValueIntersect:
            chk.onUse(e.a, true, what);
            chk.onUse(e.b, true, what);
            chk.skipEvent();
            break;
          case EventKind::ValueMerge:
            chk.onUse(e.a, true, what);
            chk.onUse(e.b, true, what);
            chk.onDefine(e.result, /*kv=*/true, what);
            break;
          case EventKind::NestedGroup:
            chk.onUse(e.a, false, what);
            chk.skipEvent();
            break;
          case EventKind::ConsumeStream:
          case EventKind::IterateStream:
            chk.onUse(e.a, false, what);
            chk.skipEvent();
            break;
          case EventKind::ScalarOps:
          case EventKind::ScalarBranch:
          case EventKind::ScalarLoad:
          case EventKind::NumKinds:
            chk.skipEvent();
            break;
        }
    }
    chk.onEnd();
    return chk.report();
}

VerifyReport
verifyTrace(const trace::Trace &trace,
            StreamLifetimeChecker::Options options)
{
    return verifyEvents(trace.events(), options);
}

VerifyReport
verifyBytecode(const trace::BytecodeProgram &program,
               StreamLifetimeChecker::Options options)
{
    return verifyEvents(program.decodeEvents(), options);
}

} // namespace sc::analysis
