/**
 * @file
 * scverify's core: a branch-aware static verifier for stream-ISA
 * programs (isa::Program).
 *
 * The pass builds a CFG from branch immediates, then runs a worklist
 * fixpoint propagating an abstract state through every basic block:
 *
 *  - per-GPR constant lattice {unreached, const c, unknown} so the
 *    stream ids flowing into S_READ/S_FREE/S_INTER operand registers
 *    are known wherever the program materializes them with LI/ADDI
 *    chains (which is how every emitted program does it);
 *  - per-stream-id lattice {unallocated, key, key/value, freed, top}
 *    tracking the architectural lifetime S_READ -> uses -> S_FREE,
 *    with pred0/pred1 producer links for SMT dependency-cycle
 *    detection;
 *  - a GFR dominator bit for the S_NESTINTER micro-op contract.
 *
 * Joins are pointwise; conflicting facts go to top, which makes every
 * check conservative: the verifier only reports what holds on some
 * statically-realizable path and stays silent where the lattice lost
 * precision (e.g. a sid register merged to unknown in a loop). See
 * DESIGN.md §12 for the rule table.
 */

#ifndef SPARSECORE_ANALYSIS_VERIFIER_HH
#define SPARSECORE_ANALYSIS_VERIFIER_HH

#include <cstdint>
#include <vector>

#include "analysis/diagnostics.hh"
#include "isa/stream_inst.hh"

namespace sc::arch {
struct SparseCoreConfig;
} // namespace sc::arch

namespace sc::analysis {

/** Basic-block control-flow graph over a Program (pc = index). */
struct Cfg
{
    struct Block
    {
        std::uint64_t first = 0; ///< pc of the first instruction
        std::uint64_t last = 0;  ///< pc one past the last instruction
        /** Successor block indices. Empty for exit blocks (Halt,
         *  fall-off-the-end, or branches past the program, which the
         *  interpreter treats as a clean stop). */
        std::vector<std::uint32_t> succs;
    };

    std::vector<Block> blocks; ///< in program order; entry = block 0
};

/** Build the CFG: leaders at pc 0, branch targets and fallthroughs. */
Cfg buildCfg(const isa::Program &program);

/** Verifier knobs. */
struct VerifyOptions
{
    /** Live-stream capacity for Rule::StreamOverflow (§3.2: 16). */
    unsigned maxLiveStreams = isa::numStreamRegs;
    /** Severity of Rule::StreamOverflow. Architectural register-file
     *  overflow is an error for ISA programs; trace-level checkers
     *  downgrade it because the SMT virtualizes by spilling (§4.1). */
    Severity overflowSeverity = Severity::Error;

    /** Options for a concrete machine: the overflow capacity comes
     *  from the job's ArchConfig instead of the ISA default. */
    static VerifyOptions forArch(const arch::SparseCoreConfig &config);
};

/** Statically verify a program; diagnostics in program order. */
VerifyReport verify(const isa::Program &program,
                    const VerifyOptions &options = {});

} // namespace sc::analysis

#endif // SPARSECORE_ANALYSIS_VERIFIER_HH
