/**
 * @file
 * Parameterized property sweeps over the SparseCore engine: resource
 * monotonicity, determinism, and configuration sensitivity across
 * random workloads.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "backend/sparsecore_backend.hh"
#include "common/rng.hh"
#include "gpm/apps.hh"
#include "gpm/executor.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::arch;

namespace {

Cycles
mineWith(const SparseCoreConfig &config, const graph::CsrGraph &g,
         gpm::GpmApp app)
{
    backend::SparseCoreBackend be(config);
    gpm::PlanExecutor executor(g, be);
    return executor.runMany(gpm::gpmAppPlans(app)).cycles;
}

} // namespace

class EngineProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    graph::CsrGraph
    makeGraph() const
    {
        return test::randomTestGraph(200 + GetParam() % 100,
                                     2500 + GetParam() % 1000,
                                     GetParam() * 31);
    }
};

TEST_P(EngineProperty, Deterministic)
{
    const auto g = makeGraph();
    const SparseCoreConfig config;
    EXPECT_EQ(mineWith(config, g, gpm::GpmApp::T),
              mineWith(config, g, gpm::GpmApp::T));
}

TEST_P(EngineProperty, WiderComparatorNeverSlower)
{
    const auto g = makeGraph();
    SparseCoreConfig narrow, wide;
    narrow.suWindow = 2;
    wide.suWindow = 32;
    EXPECT_LE(mineWith(wide, g, gpm::GpmApp::TS),
              mineWith(narrow, g, gpm::GpmApp::TS));
}

TEST_P(EngineProperty, NestedNeverSlowerThanExplicit)
{
    const auto g = makeGraph();
    const SparseCoreConfig config;
    EXPECT_LE(mineWith(config, g, gpm::GpmApp::T),
              mineWith(config, g, gpm::GpmApp::TS));
    EXPECT_LE(mineWith(config, g, gpm::GpmApp::C4),
              mineWith(config, g, gpm::GpmApp::C4S));
}

TEST_P(EngineProperty, BiggerScratchpadNeverSlower)
{
    const auto g = makeGraph();
    SparseCoreConfig tiny, big;
    tiny.scratchpadBytes = 256;
    big.scratchpadBytes = 64 * 1024;
    EXPECT_LE(mineWith(big, g, gpm::GpmApp::TT),
              mineWith(tiny, g, gpm::GpmApp::TT) +
                  mineWith(tiny, g, gpm::GpmApp::TT) / 10);
}

TEST_P(EngineProperty, RootPartitionCountsSumExactly)
{
    const auto g = makeGraph();
    backend::SparseCoreBackend whole_be;
    gpm::PlanExecutor whole(g, whole_be);
    const auto total =
        whole.runMany(gpm::gpmAppPlans(gpm::GpmApp::TT)).embeddings;

    std::uint64_t sum = 0;
    for (unsigned offset = 0; offset < 3; ++offset) {
        backend::SparseCoreBackend be;
        gpm::PlanExecutor part(g, be);
        part.setRootRange(offset, 3);
        sum += part.runMany(gpm::gpmAppPlans(gpm::GpmApp::TT))
                   .embeddings;
    }
    EXPECT_EQ(sum, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------- functional event-shape checks ----------------

#include "backend/functional_backend.hh"

TEST(ExecutorEvents, TriangleEventMixIsSane)
{
    const auto g = test::randomTestGraph(150, 1200, 606);
    backend::FunctionalBackend be;
    gpm::PlanExecutor executor(g, be);
    executor.runMany(gpm::gpmAppPlans(gpm::GpmApp::T));
    // Nested triangle counting: one nested intersect per root with
    // candidates, no produced set ops, loads balanced by frees.
    EXPECT_GT(be.stats().get("nestedIntersects"), 0u);
    EXPECT_EQ(be.stats().get("setOp.intersect"), 0u);
    EXPECT_EQ(be.liveStreams(), 0);
    EXPECT_EQ(be.stats().get("streamLoads"),
              be.stats().get("streamFrees"));
}

TEST(ExecutorEvents, ExplicitVariantReplacesNestedWithCounts)
{
    const auto g = test::randomTestGraph(150, 1200, 607);
    backend::FunctionalBackend be;
    gpm::PlanExecutor executor(g, be);
    executor.runMany(gpm::gpmAppPlans(gpm::GpmApp::TS));
    EXPECT_EQ(be.stats().get("nestedIntersects"), 0u);
    EXPECT_GT(be.stats().get("setOpCount.intersect"), 0u);
}

TEST(ExecutorEvents, CountingRewriteAvoidsSubtractCounts)
{
    // The |A-B| = |A| - |A & B| rewrite: TC's final level must emit
    // intersection counts, not subtraction counts.
    const auto g = test::randomTestGraph(150, 1200, 608);
    backend::FunctionalBackend be;
    gpm::PlanExecutor executor(g, be);
    executor.runMany(gpm::gpmAppPlans(gpm::GpmApp::TC));
    EXPECT_EQ(be.stats().get("setOpCount.subtract"), 0u);
    EXPECT_GT(be.stats().get("setOpCount.intersect"), 0u);
}
