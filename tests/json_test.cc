/**
 * @file
 * Tests for the strict JSON layer (common/json.hh): parse/dump
 * round-trips, byte-stable emission, and the never-throwing error
 * reporting (line/column diagnostics) the JobSpec API builds on.
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/json.hh"

using namespace sc;

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").value->isNull());
    EXPECT_EQ(parseJson("true").value->asBool(), true);
    EXPECT_EQ(parseJson("false").value->asBool(), false);
    EXPECT_EQ(parseJson("42").value->asUint(), 42u);
    EXPECT_EQ(parseJson("-7").value->asInt(), -7);
    EXPECT_DOUBLE_EQ(parseJson("2.5").value->asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(parseJson("1e3").value->asDouble(), 1000.0);
    EXPECT_EQ(parseJson("\"hi\"").value->asString(), "hi");
}

TEST(Json, ParsesContainers)
{
    const auto r = parseJson(R"({"a":[1,2,3],"b":{"c":"d"},"e":null})");
    ASSERT_TRUE(r.ok());
    const JsonValue &v = *r.value;
    ASSERT_TRUE(v.isObject());
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->items().size(), 3u);
    EXPECT_EQ(v.find("b")->find("c")->asString(), "d");
    EXPECT_TRUE(v.find("e")->isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, DumpIsByteStableAndRoundTrips)
{
    const std::string text =
        R"({"s":"a\"b\\c","n":-12,"u":18446744073709551615,"d":0.5,)"
        R"("b":true,"x":null,"arr":[1,[2],{}],"o":{"k":"v"}})";
    const auto r = parseJson(text);
    ASSERT_TRUE(r.ok()) << r.describe();
    const std::string once = r.value->dump();
    const auto again = parseJson(once);
    ASSERT_TRUE(again.ok());
    // Fixed point after one dump: dump(parse(dump(x))) == dump(x).
    EXPECT_EQ(again.value->dump(), once);
}

TEST(Json, EscapesControlCharactersAndUnicode)
{
    JsonValue v = JsonValue::str(std::string("a\nb\tc\x01") + "\"");
    const std::string dumped = v.dump();
    const auto r = parseJson(dumped);
    ASSERT_TRUE(r.ok()) << dumped;
    EXPECT_EQ(r.value->asString(), v.asString());
    // \uXXXX escapes decode to UTF-8.
    EXPECT_EQ(parseJson("\"A\\u00e9\"").value->asString(),
              "A\xc3\xa9");
}

TEST(Json, ObjectSetReplacesAndRemoveErases)
{
    JsonValue o = JsonValue::object();
    o.set("a", JsonValue::number(std::uint64_t{1}));
    o.set("b", JsonValue::number(std::uint64_t{2}));
    o.set("a", JsonValue::number(std::uint64_t{3})); // replace in place
    EXPECT_EQ(o.dump(), R"({"a":3,"b":2})");
    EXPECT_TRUE(o.remove("a"));
    EXPECT_FALSE(o.remove("a"));
    EXPECT_EQ(o.dump(), R"({"b":2})");
}

TEST(Json, IntegerClassification)
{
    EXPECT_TRUE(parseJson("7").value->isInteger());
    EXPECT_TRUE(parseJson("7.0").value->isInteger());
    EXPECT_FALSE(parseJson("7.5").value->isInteger());
    // 2^53 + 1 is not exactly representable as double — when parsed
    // as an integer literal it stays exact.
    EXPECT_EQ(parseJson("9007199254740993").value->asUint(),
              9007199254740993ull);
}

TEST(Json, ErrorsNeverThrowAndCarryPosition)
{
    const char *bad[] = {
        "",             // empty input
        "{",            // truncated object
        "[1,2",         // truncated array
        "{\"a\":}",     // missing value
        "{\"a\" 1}",    // missing colon
        "{a:1}",        // unquoted key
        "[1,]",         // trailing comma
        "\"unterminated", // unterminated string
        "01",           // leading zero
        "1.",           // malformed fraction
        "1e",           // malformed exponent
        "nul",          // bad keyword
        "{} extra",     // trailing characters
        "\"\x01\"",     // raw control character
    };
    for (const char *text : bad) {
        const auto r = parseJson(text);
        EXPECT_FALSE(r.ok()) << "accepted: " << text;
        EXPECT_FALSE(r.error.empty());
        EXPECT_GE(r.line, 1u);
        EXPECT_NE(r.describe().find("line"), std::string::npos);
    }
}

TEST(Json, ReportsLineAndColumn)
{
    const auto r = parseJson("{\"a\": 1,\n  \"b\": }\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.line, 2u);
}

TEST(Json, DepthLimitIsAnErrorNotACrash)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    const auto r = parseJson(deep);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.error.find("deep"), std::string::npos);
}

TEST(Json, NonFiniteDoublesDumpAsNull)
{
    EXPECT_EQ(JsonValue::number(
                  std::numeric_limits<double>::infinity())
                  .dump(),
              "null");
}
