/**
 * @file
 * Behavioural tests for the SparseCore engine: scheduling overlap,
 * resource scaling (SUs, bandwidth — the Fig. 12/13 mechanisms),
 * nested intersection, scratchpad reuse, SMT virtualization, and
 * breakdown consistency.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "arch/engine.hh"
#include "common/rng.hh"

using namespace sc;
using namespace sc::arch;
using streams::SetOpKind;

namespace {

/** Sorted random keys for synthetic streams. */
std::vector<Key>
keys(Rng &rng, std::size_t n, Key universe = 100000)
{
    std::vector<Key> v(n);
    for (auto &k : v)
        k = static_cast<Key>(rng.below(universe));
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

/** Run a batch of independent intersect-count pairs on the engine. */
Cycles
runBatch(const SparseCoreConfig &config, unsigned pairs,
         std::size_t stream_len, std::uint64_t seed = 1)
{
    Engine engine(config);
    Rng rng(seed);
    for (unsigned i = 0; i < pairs; ++i) {
        const auto a = keys(rng, stream_len);
        const auto b = keys(rng, stream_len);
        const Addr addr_a = 0x10000000 + i * 0x10000;
        const Addr addr_b = 0x20000000 + i * 0x10000;
        const auto ha = engine.streamRead(
            addr_a, static_cast<std::uint32_t>(a.size()), 0, a);
        const auto hb = engine.streamRead(
            addr_b, static_cast<std::uint32_t>(b.size()), 0, b);
        engine.setOpCount(SetOpKind::Intersect, ha, hb, a, b, noBound);
        engine.streamFree(ha);
        engine.streamFree(hb);
    }
    return engine.finish();
}

} // namespace

TEST(Engine, MoreSusNeverSlower)
{
    SparseCoreConfig c1, c2, c4, c8;
    c1.numSus = 1;
    c2.numSus = 2;
    c4.numSus = 4;
    c8.numSus = 8;
    const Cycles t1 = runBatch(c1, 64, 300);
    const Cycles t2 = runBatch(c2, 64, 300);
    const Cycles t4 = runBatch(c4, 64, 300);
    const Cycles t8 = runBatch(c8, 64, 300);
    EXPECT_LE(t2, t1);
    EXPECT_LE(t4, t2);
    EXPECT_LE(t8, t4);
    // Going 1 -> 4 SUs must actually help on an op-rich batch.
    EXPECT_LT(t4 * 5, t1 * 4);
}

TEST(Engine, MoreBandwidthNeverSlower)
{
    Cycles prev = ~Cycles{0};
    for (unsigned bw : {2u, 4u, 8u, 16u, 32u, 64u}) {
        SparseCoreConfig c;
        c.aggregateBandwidth = bw;
        const Cycles t = runBatch(c, 48, 400);
        EXPECT_LE(t, prev) << "bw " << bw;
        prev = t;
    }
}

TEST(Engine, BandwidthSaturates)
{
    // The Fig. 13 diminishing-returns shape: 32 -> 64 gains less
    // than 2 -> 4.
    SparseCoreConfig c;
    c.aggregateBandwidth = 2;
    const double t2 = runBatch(c, 48, 400);
    c.aggregateBandwidth = 4;
    const double t4 = runBatch(c, 48, 400);
    c.aggregateBandwidth = 32;
    const double t32 = runBatch(c, 48, 400);
    c.aggregateBandwidth = 64;
    const double t64 = runBatch(c, 48, 400);
    EXPECT_GT(t2 / t4, t32 / std::max(1.0, t64));
}

TEST(Engine, BoundedOpCheaperThanFull)
{
    SparseCoreConfig config;
    Rng rng(3);
    const auto a = keys(rng, 500);
    const auto b = keys(rng, 500);

    Engine full(config);
    auto ha = full.streamRead(0x1000, a.size(), 0, a);
    auto hb = full.streamRead(0x9000, b.size(), 0, b);
    full.setOpCount(SetOpKind::Intersect, ha, hb, a, b, noBound);
    const Cycles t_full = full.finish();

    Engine bounded(config);
    ha = bounded.streamRead(0x1000, a.size(), 0, a);
    hb = bounded.streamRead(0x9000, b.size(), 0, b);
    bounded.setOpCount(SetOpKind::Intersect, ha, hb, a, b, a[50]);
    const Cycles t_bounded = bounded.finish();
    EXPECT_LT(t_bounded, t_full);
}

TEST(Engine, ScratchpadHitsForHighPriorityReuse)
{
    SparseCoreConfig config;
    Engine engine(config);
    Rng rng(5);
    const auto a = keys(rng, 200);
    // Load the same high-priority stream repeatedly (the reused
    // operand pattern of tailed-triangle inner loops).
    for (int i = 0; i < 10; ++i) {
        const auto h = engine.streamRead(0x4000, a.size(), 1, a);
        engine.streamFree(h);
    }
    EXPECT_GE(engine.stats().get("scratchpadStreamHits"), 9u);

    // Priority-0 loads never hit the scratchpad.
    Engine engine2(config);
    for (int i = 0; i < 10; ++i) {
        const auto h = engine2.streamRead(0x4000, a.size(), 0, a);
        engine2.streamFree(h);
    }
    EXPECT_EQ(engine2.stats().get("scratchpadStreamHits"), 0u);
}

TEST(Engine, DependentOpsSerialize)
{
    // C = A & B; D = C & E. The second op cannot start before the
    // first completes: total must exceed an independent pair's time.
    SparseCoreConfig config;
    Rng rng(7);
    const auto a = keys(rng, 400);
    const auto b = keys(rng, 400);
    std::vector<Key> c_keys;
    streams::intersect(a, b, noBound, &c_keys);

    Engine dep(config);
    auto ha = dep.streamRead(0x1000, a.size(), 0, a);
    auto hb = dep.streamRead(0x9000, b.size(), 0, b);
    auto hc = dep.setOp(SetOpKind::Intersect, ha, hb, a, b, noBound,
                        c_keys.size());
    dep.setOpCount(SetOpKind::Intersect, hc, ha, c_keys, a, noBound);
    const Cycles t_dep = dep.finish();

    Engine indep(config);
    ha = indep.streamRead(0x1000, a.size(), 0, a);
    hb = indep.streamRead(0x9000, b.size(), 0, b);
    indep.setOpCount(SetOpKind::Intersect, ha, hb, a, b, noBound);
    indep.setOpCount(SetOpKind::Intersect, hb, ha, b, a, noBound);
    const Cycles t_indep = indep.finish();
    EXPECT_GT(t_dep, t_indep - t_indep / 4);
}

TEST(Engine, NestedCheaperThanExplicitLoop)
{
    // The §6.3.2 effect: S_NESTINTER removes per-iteration scalar
    // work and issues intersections in bursts.
    SparseCoreConfig config;
    Rng rng(11);
    const auto s = keys(rng, 64, 4096);
    std::vector<std::vector<Key>> nested_lists;
    for (std::size_t i = 0; i < s.size(); ++i)
        nested_lists.push_back(keys(rng, 60, 4096));

    Engine nested(config);
    auto hs = nested.streamRead(0x1000, s.size(), 0, s);
    std::vector<NestedElem> elems;
    for (std::size_t i = 0; i < s.size(); ++i)
        elems.push_back({0x2000 + i * 8, 0x900000 + i * 0x1000,
                         nested_lists[i], s[i]});
    nested.nestedIntersect(hs, s, elems);
    const Cycles t_nested = nested.finish();

    Engine loop(config);
    hs = loop.streamRead(0x1000, s.size(), 0, s);
    loop.fetchLoop(hs, s.size(), 3);
    for (std::size_t i = 0; i < s.size(); ++i) {
        auto hn = loop.streamRead(0x900000 + i * 0x1000,
                                  nested_lists[i].size(), 0,
                                  nested_lists[i]);
        loop.setOpCount(SetOpKind::Intersect, hs, hn, s,
                        nested_lists[i], s[i]);
        loop.streamFree(hn);
        loop.scalarOps(1);
    }
    const Cycles t_loop = loop.finish();
    EXPECT_LT(t_nested, t_loop);
}

TEST(Engine, SmtVirtualizationKicksIn)
{
    SparseCoreConfig config;
    Engine engine(config);
    Rng rng(13);
    const auto a = keys(rng, 16);
    std::vector<StreamHandle> handles;
    for (unsigned i = 0; i < 20; ++i)
        handles.push_back(
            engine.streamRead(0x1000 + i * 0x100, a.size(), 0, a));
    EXPECT_GT(engine.stats().get("smtVirtualizationStalls"), 0u);
    engine.finish();
}

TEST(Engine, DoubleFreePanics)
{
    Engine engine;
    Rng rng(17);
    const auto a = keys(rng, 8);
    const auto h = engine.streamRead(0x1000, a.size(), 0, a);
    engine.streamFree(h);
    EXPECT_THROW(engine.streamFree(h), SimError);
}

TEST(Engine, BreakdownSumsToTotal)
{
    SparseCoreConfig config;
    const Cycles total = runBatch(config, 32, 200, 19);
    Engine engine(config);
    Rng rng(19);
    for (unsigned i = 0; i < 32; ++i) {
        const auto a = keys(rng, 200);
        const auto b = keys(rng, 200);
        const auto ha = engine.streamRead(0x10000000 + i * 0x10000,
                                          a.size(), 0, a);
        const auto hb = engine.streamRead(0x20000000 + i * 0x10000,
                                          b.size(), 0, b);
        engine.setOpCount(SetOpKind::Intersect, ha, hb, a, b, noBound);
        engine.streamFree(ha);
        engine.streamFree(hb);
    }
    EXPECT_EQ(engine.finish(), total); // deterministic
    EXPECT_EQ(engine.breakdown().total(), engine.now());
}

TEST(Engine, StreamLengthHistogramPopulated)
{
    Engine engine;
    Rng rng(23);
    const auto a = keys(rng, 120);
    const auto b = keys(rng, 80);
    const auto ha = engine.streamRead(0x1000, a.size(), 0, a);
    const auto hb = engine.streamRead(0x9000, b.size(), 0, b);
    engine.setOpCount(SetOpKind::Intersect, ha, hb, a, b, noBound);
    engine.finish();
    EXPECT_GE(engine.streamLengthHist().samples(), 4u);
    EXPECT_EQ(engine.streamLengthHist().maxValue(), a.size());
}

TEST(Engine, RejectsBadConfig)
{
    SparseCoreConfig c;
    c.numSus = 0;
    EXPECT_THROW(Engine{c}, SimError);
    c.numSus = 4;
    c.aggregateBandwidth = 0;
    EXPECT_THROW(Engine{c}, SimError);
}
