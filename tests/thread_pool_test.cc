/**
 * @file
 * Tests for the host work-stealing thread pool: full index coverage,
 * ordered parallel map, inline execution on a 1-thread pool,
 * reentrancy (nested forEach), exception propagation from tasks, and
 * SC_HOST_THREADS parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/parallel_for.hh"
#include "common/thread_pool.hh"

using namespace sc;

TEST(ThreadPool, ForEachCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 10'000;
    std::vector<std::atomic<unsigned>> hits(n);
    parallelFor(pool, n, [&](std::size_t i) { ++hits[i]; }, 64);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    ThreadPool pool(3);
    const auto out = parallelMap<std::size_t>(
        pool, 500, [](std::size_t i) { return i * i; }, 7);
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    const auto caller = std::this_thread::get_id();
    parallelFor(pool, 32, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ThreadPool, NestedForEachDoesNotDeadlock)
{
    ThreadPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    parallelFor(pool, 8, [&](std::size_t i) {
        parallelFor(pool, 16,
                    [&](std::size_t j) { sum += i * 16 + j; });
    });
    // Sum over [0, 128).
    EXPECT_EQ(sum.load(), 128u * 127u / 2);
}

TEST(ThreadPool, ExceptionFromTaskPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        parallelFor(pool, 100,
                    [](std::size_t i) {
                        if (i == 37)
                            panic("task failure at %zu", i);
                    }),
        SimError);
    // The pool survives a failed loop and runs the next one.
    std::atomic<unsigned> ran{0};
    parallelFor(pool, 10, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 10u);
}

TEST(ThreadPool, ZeroIterationsIsANoop)
{
    ThreadPool pool(2);
    bool ran = false;
    parallelFor(pool, 0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, DefaultThreadsHonorsConfig)
{
    // The process config is read once at startup (common/config.hh),
    // so the env-var path is exercised through loadConfig's injected
    // lookup rather than by mutating the live environment.
    const auto with = [](const char *value) {
        return loadConfig([value](const char *name)
                              -> std::optional<std::string> {
            if (std::string_view(name) == "SC_HOST_THREADS" && value)
                return std::string(value);
            return std::nullopt;
        });
    };
    EXPECT_EQ(with("3").hostThreads, 3u);
    EXPECT_EQ(with(nullptr).hostThreads, 0u); // 0 = hardware default
    EXPECT_EQ(with("bogus").hostThreads, 0u); // warn + fall back
    EXPECT_GE(ThreadPool::defaultNumThreads(), 1u);
}

TEST(ThreadPool, SubmittedTasksAllRun)
{
    std::atomic<unsigned> ran{0};
    {
        ThreadPool pool(4);
        for (unsigned i = 0; i < 64; ++i)
            pool.submit([&ran] { ++ran; });
        // Destructor drains the queues before joining.
    }
    EXPECT_EQ(ran.load(), 64u);
}
