; nestinter-without-gfr: S_NESTINTER with no dominating S_LD_GFR, so
; the micro-op expansion has no CSR base registers to walk.
LI r1, 4096         ; pc 0
LI r2, 4            ; pc 1
LI r3, 1            ; pc 2
S_READ r1, r2, r3, r0   ; pc 3
S_NESTINTER r3, r4  ; pc 4: <- diagnostic here
S_FREE r3           ; pc 5
HALT                ; pc 6
