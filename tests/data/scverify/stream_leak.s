; stream-leak: sid 1 is still live when the program halts.
LI r1, 4096         ; pc 0
LI r2, 4            ; pc 1
LI r3, 1            ; pc 2
S_READ r1, r2, r3, r0   ; pc 3
HALT                ; pc 4: <- diagnostic here (exit point)
