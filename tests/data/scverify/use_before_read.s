; use-before-read: sids 1 and 2 feed S_INTER without ever being
; loaded by S_READ/S_VREAD.
LI r1, 1            ; pc 0: sid 1 (never loaded)
LI r2, 2            ; pc 1: sid 2 (never loaded)
LI r3, 3            ; pc 2: output sid
S_INTER r1, r2, r3, r0  ; pc 3: <- diagnostic here
S_FREE r3           ; pc 4
HALT                ; pc 5
