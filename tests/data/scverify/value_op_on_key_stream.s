; value-op-on-key-stream: S_VINTER over streams loaded with S_READ
; (key-only) instead of S_VREAD.
LI r1, 4096         ; pc 0
LI r2, 4            ; pc 1
LI r3, 1            ; pc 2
LI r4, 2            ; pc 3
S_READ r1, r2, r3, r0   ; pc 4: key-only load
S_READ r1, r2, r4, r0   ; pc 5: key-only load
S_VINTER r3, r4, r5, MAC ; pc 6: <- diagnostic here
S_FREE r3           ; pc 7
S_FREE r4           ; pc 8
HALT                ; pc 9
