; pred-cycle: sid 3 is produced from sids {1, 2}; after freeing sid 1,
; redefining it from {3, 2} would make sid 1 depend on itself through
; the SMT pred0/pred1 links.
LI r1, 4096         ; pc 0
LI r2, 4            ; pc 1
LI r3, 1            ; pc 2: sid 1
LI r4, 2            ; pc 3: sid 2
S_READ r1, r2, r3, r0   ; pc 4
S_READ r1, r2, r4, r0   ; pc 5
LI r5, 3            ; pc 6: sid 3
S_INTER r3, r4, r5, r0  ; pc 7: sid 3 preds = {1, 2}
S_FREE r3           ; pc 8
S_INTER r5, r4, r3, r0  ; pc 9: <- diagnostic here (1 <- {3, 2} <- 1)
S_FREE r4           ; pc 10
S_FREE r5           ; pc 11
S_FREE r3           ; pc 12
HALT                ; pc 13
