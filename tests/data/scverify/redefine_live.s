; redefine-live: sid 1 is S_READ twice with no intervening S_FREE.
LI r1, 4096         ; pc 0
LI r2, 4            ; pc 1
LI r3, 1            ; pc 2
S_READ r1, r2, r3, r0   ; pc 3
S_READ r1, r2, r3, r0   ; pc 4: <- diagnostic here
S_FREE r3           ; pc 5
HALT                ; pc 6
