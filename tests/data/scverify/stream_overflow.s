; stream-overflow: the 17th simultaneously-live stream exceeds
; the 16-entry architectural stream register file.
LI r1, 4096         ; pc 0
LI r2, 4            ; pc 1
LI r3, 1            ; pc 2: first sid
S_READ r1, r2, r3, r0   ; pc 3
ADDI r3, r3, 1      ; pc 4
S_READ r1, r2, r3, r0   ; pc 5
ADDI r3, r3, 1      ; pc 6
S_READ r1, r2, r3, r0   ; pc 7
ADDI r3, r3, 1      ; pc 8
S_READ r1, r2, r3, r0   ; pc 9
ADDI r3, r3, 1      ; pc 10
S_READ r1, r2, r3, r0   ; pc 11
ADDI r3, r3, 1      ; pc 12
S_READ r1, r2, r3, r0   ; pc 13
ADDI r3, r3, 1      ; pc 14
S_READ r1, r2, r3, r0   ; pc 15
ADDI r3, r3, 1      ; pc 16
S_READ r1, r2, r3, r0   ; pc 17
ADDI r3, r3, 1      ; pc 18
S_READ r1, r2, r3, r0   ; pc 19
ADDI r3, r3, 1      ; pc 20
S_READ r1, r2, r3, r0   ; pc 21
ADDI r3, r3, 1      ; pc 22
S_READ r1, r2, r3, r0   ; pc 23
ADDI r3, r3, 1      ; pc 24
S_READ r1, r2, r3, r0   ; pc 25
ADDI r3, r3, 1      ; pc 26
S_READ r1, r2, r3, r0   ; pc 27
ADDI r3, r3, 1      ; pc 28
S_READ r1, r2, r3, r0   ; pc 29
ADDI r3, r3, 1      ; pc 30
S_READ r1, r2, r3, r0   ; pc 31
ADDI r3, r3, 1      ; pc 32
S_READ r1, r2, r3, r0   ; pc 33
ADDI r3, r3, 1      ; pc 34
S_READ r1, r2, r3, r0   ; pc 35: <- diagnostic here (17 live)
S_FREE r3           ; pc 36
ADDI r3, r3, -1     ; pc 37
S_FREE r3           ; pc 38
ADDI r3, r3, -1     ; pc 39
S_FREE r3           ; pc 40
ADDI r3, r3, -1     ; pc 41
S_FREE r3           ; pc 42
ADDI r3, r3, -1     ; pc 43
S_FREE r3           ; pc 44
ADDI r3, r3, -1     ; pc 45
S_FREE r3           ; pc 46
ADDI r3, r3, -1     ; pc 47
S_FREE r3           ; pc 48
ADDI r3, r3, -1     ; pc 49
S_FREE r3           ; pc 50
ADDI r3, r3, -1     ; pc 51
S_FREE r3           ; pc 52
ADDI r3, r3, -1     ; pc 53
S_FREE r3           ; pc 54
ADDI r3, r3, -1     ; pc 55
S_FREE r3           ; pc 56
ADDI r3, r3, -1     ; pc 57
S_FREE r3           ; pc 58
ADDI r3, r3, -1     ; pc 59
S_FREE r3           ; pc 60
ADDI r3, r3, -1     ; pc 61
S_FREE r3           ; pc 62
ADDI r3, r3, -1     ; pc 63
S_FREE r3           ; pc 64
ADDI r3, r3, -1     ; pc 65
S_FREE r3           ; pc 66
ADDI r3, r3, -1     ; pc 67
S_FREE r3           ; pc 68
HALT                ; pc 69
