; use-after-free: sid 1 is loaded, freed, then fetched.
LI r1, 4096         ; pc 0: address
LI r2, 4            ; pc 1: length
LI r3, 1            ; pc 2: sid
S_READ r1, r2, r3, r0   ; pc 3
S_FREE r3           ; pc 4
LI r4, 0            ; pc 5: fetch offset
S_FETCH r3, r4, r5  ; pc 6: <- diagnostic here
HALT                ; pc 7
