/**
 * @file
 * Tests for the timing substrate: cache tag model, memory hierarchy,
 * branch predictors, and the core cost model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache.hh"
#include "sim/core_model.hh"
#include "sim/mem_hierarchy.hh"

using namespace sc;
using namespace sc::sim;

TEST(Cache, HitAfterMiss)
{
    Cache c({"test", 1024, 2, 64});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1004)); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEviction)
{
    // 2 ways, 8 sets, 64B lines: three lines mapping to one set.
    Cache c({"test", 1024, 2, 64});
    const Addr set_stride = 8 * 64;
    c.access(0 * set_stride);
    c.access(1 * set_stride);
    c.access(2 * set_stride);          // evicts line 0 (LRU)
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(1 * set_stride));
    EXPECT_TRUE(c.contains(2 * set_stride));
}

TEST(Cache, LruTouchOnHit)
{
    Cache c({"test", 1024, 2, 64});
    const Addr set_stride = 8 * 64;
    c.access(0 * set_stride);
    c.access(1 * set_stride);
    c.access(0 * set_stride);          // touch 0: now 1 is LRU
    c.access(2 * set_stride);          // evicts 1
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(1 * set_stride));
}

TEST(Cache, FlushInvalidatesEverything)
{
    Cache c({"test", 1024, 2, 64});
    c.access(0x40);
    c.flush();
    EXPECT_FALSE(c.contains(0x40));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({"bad", 1000, 7, 64}), SimError);
    EXPECT_THROW(Cache({"bad", 1024, 0, 64}), SimError);
    EXPECT_THROW(Cache({"bad", 1024, 2, 60}), SimError);
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // 12 MB 16-way with 64 B lines has 12288 sets (Table 2's L3).
    Cache c({"l3", 12 * 1024 * 1024, 16, 64});
    EXPECT_EQ(c.numSets(), 12288u);
    EXPECT_FALSE(c.access(0x100000));
    EXPECT_TRUE(c.access(0x100000));
}

TEST(MemHierarchy, LatencyComposition)
{
    MemParams p;
    MemHierarchy m(p);
    MemLevel level;
    // Cold: miss everywhere.
    const Cycles cold = m.l1Access(0x5000, level);
    EXPECT_EQ(level, MemLevel::Memory);
    EXPECT_EQ(cold, p.l1Latency + p.l2Latency + p.l3Latency +
                        p.memLatency);
    // Warm: L1 hit.
    const Cycles warm = m.l1Access(0x5000, level);
    EXPECT_EQ(level, MemLevel::L1);
    EXPECT_EQ(warm, p.l1Latency);
}

TEST(MemHierarchy, L2PathBypassesL1)
{
    MemParams p;
    MemHierarchy m(p);
    m.l2Access(0x9000);
    // The line went to L2/L3 but not L1.
    EXPECT_FALSE(m.l1().contains(0x9000));
    EXPECT_TRUE(m.l2().contains(0x9000));
    MemLevel level;
    m.l2Access(0x9000, level);
    EXPECT_EQ(level, MemLevel::L2);
}

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    TwoBitPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.predict(0x40, true);
    EXPECT_LT(bp.mispredictRate(), 0.05);
}

TEST(BranchPredictor, GshareLearnsAlternation)
{
    GsharePredictor bp;
    for (int i = 0; i < 2000; ++i)
        bp.predict(0x40, i % 2 == 0);
    // Alternation is a trivial history pattern for gshare.
    EXPECT_LT(bp.mispredictRate(), 0.1);
}

TEST(BranchPredictor, RandomIsHardForTwoBit)
{
    TwoBitPredictor bp;
    Rng rng(42);
    for (int i = 0; i < 5000; ++i)
        bp.predict(0x40, rng.chance(0.5));
    EXPECT_GT(bp.mispredictRate(), 0.3);
}

TEST(CoreModel, OpsChargeIssueWidth)
{
    CoreModel core;
    core.executeOps(8); // width 4 -> 2 cycles
    EXPECT_EQ(core.cycles(), 2u);
    EXPECT_EQ(core.breakdown()[CycleClass::OtherCompute], 2u);
}

TEST(CoreModel, MispredictChargesPenalty)
{
    CoreParams p;
    CoreModel core(p);
    Rng rng(7);
    Cycles before = core.breakdown()[CycleClass::Mispredict];
    for (int i = 0; i < 1000; ++i)
        core.executeBranch(0x44, rng.chance(0.5));
    const Cycles penalty =
        core.breakdown()[CycleClass::Mispredict] - before;
    // Random branches: expect a large, penalty-quantized charge.
    EXPECT_GT(penalty, 100 * p.mispredictPenalty);
    EXPECT_EQ(penalty % p.mispredictPenalty, 0u);
}

TEST(CoreModel, SequentialLoadsMostlyHit)
{
    CoreModel core;
    for (Addr a = 0; a < 64 * 1024; a += 4)
        core.load(0x100000 + a);
    // 16 keys per line -> 1/16 of loads miss L1; the rest add no
    // stall. Confirm cache-stall cycles are far below 1 per load.
    const double per_load =
        static_cast<double>(core.breakdown()[CycleClass::Cache]) /
        (64.0 * 1024 / 4);
    EXPECT_LT(per_load, 10.0);
    EXPECT_GT(core.mem().l1().hits(), core.mem().l1().misses());
}

TEST(CoreModel, ResetClearsState)
{
    CoreModel core;
    core.executeOps(100);
    core.load(0x1234);
    core.reset();
    EXPECT_EQ(core.cycles(), 0u);
    EXPECT_EQ(core.mem().l1().hits() + core.mem().l1().misses(), 0u);
}

TEST(CycleBreakdown, FractionsSumToOne)
{
    CycleBreakdown bd;
    bd[CycleClass::Cache] = 10;
    bd[CycleClass::Mispredict] = 20;
    bd[CycleClass::OtherCompute] = 30;
    bd[CycleClass::Intersection] = 40;
    EXPECT_EQ(bd.total(), 100u);
    double sum = 0;
    for (unsigned i = 0;
         i < static_cast<unsigned>(CycleClass::NumClasses); ++i)
        sum += bd.fraction(static_cast<CycleClass>(i));
    EXPECT_NEAR(sum, 1.0, 1e-9);
}
