/**
 * @file
 * Tests for multi-core mining (Table 2: six cores): count
 * conservation across the root split, speedup over one core, load
 * balance, the 4-motif application added on top of the paper's app
 * set, and the host-parallel runtime (determinism across host thread
 * counts, exception propagation, chunked load balance, wall-clock
 * speedup).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "api/machine.hh"
#include "api/parallel.hh"
#include "backend/functional_backend.hh"
#include "common/parallel_for.hh"
#include "graph/generators.hh"
#include "gpm/executor.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::api;

TEST(Parallel, CountsConservedAcrossSplit)
{
    const auto g = test::randomTestGraph(300, 3000, 91);
    Machine machine;
    const auto serial = machine.run(RunRequest::gpm(gpm::GpmApp::T, g),
                                    Substrate::SparseCore);
    for (unsigned cores : {2u, 3u, 6u}) {
        const auto par =
            mineParallelSparseCore(gpm::GpmApp::T, g, cores);
        EXPECT_EQ(par.embeddings, serial.functionalResult)
            << cores << " cores";
        EXPECT_EQ(par.perCore.size(), cores);
    }
}

TEST(Parallel, SixCoresFasterThanOne)
{
    const auto g = test::randomTestGraph(400, 6000, 92);
    const auto one = mineParallelSparseCore(gpm::GpmApp::C4, g, 1);
    const auto six = mineParallelSparseCore(gpm::GpmApp::C4, g, 6);
    EXPECT_LT(six.cycles * 2, one.cycles); // at least 2x from 6 cores
    EXPECT_GT(six.balance(), 0.3);         // interleaving balances
}

TEST(Parallel, CpuParallelMatchesCounts)
{
    const auto g = test::randomTestGraph(200, 1500, 93);
    const auto sc_par =
        mineParallelSparseCore(gpm::GpmApp::TC, g, 4);
    const auto cpu_par = mineParallelCpu(gpm::GpmApp::TC, g, 4);
    EXPECT_EQ(sc_par.embeddings, cpu_par.embeddings);
    EXPECT_LT(sc_par.cycles, cpu_par.cycles);
}

TEST(Parallel, RootRangeValidation)
{
    const auto g = test::randomTestGraph(50, 100, 94);
    backend::FunctionalBackend be;
    gpm::PlanExecutor executor(g, be);
    EXPECT_THROW(executor.setRootRange(4, 4), SimError);
    EXPECT_THROW(executor.setRootRange(0, 0), SimError);
}

TEST(HostParallel, DeterministicAcrossHostThreadCounts)
{
    // Byte-identical ParallelGpmResult whether the host pool has one
    // thread (pure inline execution) or several: fixed chunk→core
    // cycle attribution + ordered reduction.
    ThreadPool one(1), many(4);
    for (std::uint64_t seed : {41ull, 42ull}) {
        const auto g = test::randomTestGraph(250, 2500, seed);
        for (const gpm::GpmApp app : {gpm::GpmApp::T, gpm::GpmApp::C4}) {
            HostOptions h1, hN;
            h1.pool = &one;
            hN.pool = &many;
            const auto r1 =
                mineParallelSparseCore(app, g, 6, {}, 1, h1);
            const auto rN =
                mineParallelSparseCore(app, g, 6, {}, 1, hN);
            EXPECT_EQ(r1.embeddings, rN.embeddings);
            EXPECT_EQ(r1.cycles, rN.cycles);
            ASSERT_EQ(r1.perCore.size(), rN.perCore.size());
            for (std::size_t c = 0; c < r1.perCore.size(); ++c)
                EXPECT_EQ(r1.perCore[c], rN.perCore[c])
                    << "core " << c << " seed " << seed;
        }
    }
}

TEST(HostParallel, LegacyChunkingMatchesPerCoreSplit)
{
    // chunksPerCore = 1 is exactly the legacy one-session-per-core
    // split, so chunked runs must conserve the embedding count.
    const auto g = test::randomTestGraph(300, 3000, 91);
    HostOptions legacy;
    legacy.chunksPerCore = 1;
    HostOptions chunked;
    chunked.chunksPerCore = 4;
    const auto a =
        mineParallelSparseCore(gpm::GpmApp::T, g, 6, {}, 1, legacy);
    const auto b =
        mineParallelSparseCore(gpm::GpmApp::T, g, 6, {}, 1, chunked);
    EXPECT_EQ(a.embeddings, b.embeddings);
    EXPECT_EQ(a.perCore.size(), b.perCore.size());
}

TEST(HostParallel, ExceptionFromSimulationTaskPropagates)
{
    // A panic inside a pool task (here: a plan with too few
    // positions) must surface in the calling thread as SimError.
    const auto g = test::randomTestGraph(50, 200, 17);
    ThreadPool pool(4);
    EXPECT_THROW(
        parallelFor(pool, 8,
                    [&](std::size_t) {
                        backend::FunctionalBackend be;
                        gpm::PlanExecutor executor(g, be);
                        gpm::MiningPlan bad;
                        executor.run(bad);
                    }),
        SimError);
}

TEST(HostParallel, ChunkingBalancesSkewedGraph)
{
    // Regression: on a heavily skewed degree distribution the chunked
    // split must not leave the simulated-core balance worse than the
    // legacy per-core split, and must keep it well above the
    // serialized-behind-one-core regime.
    const auto g = graph::generateChungLu(600, 6000, 580, 1.6, 1234,
                                          "skewed");
    HostOptions legacy;
    legacy.chunksPerCore = 1;
    HostOptions chunked; // default K = 4
    const auto coarse =
        mineParallelSparseCore(gpm::GpmApp::T, g, 6, {}, 1, legacy);
    const auto fine =
        mineParallelSparseCore(gpm::GpmApp::T, g, 6, {}, 1, chunked);
    EXPECT_EQ(coarse.embeddings, fine.embeddings);
    EXPECT_GE(fine.balance(), coarse.balance() * 0.95);
    EXPECT_GT(fine.balance(), 0.5);
}

TEST(HostParallel, WallClockSpeedupWithFourThreads)
{
    // Acceptance: >= 2x host wall-clock speedup on a multi-core
    // mining run with >= 4 host threads vs the 1-thread path. Only
    // meaningful on hosts that actually have >= 4 hardware threads.
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads, have "
                     << std::thread::hardware_concurrency();

    const auto g = test::randomTestGraph(500, 8000, 7);
    ThreadPool one(1), four(4);
    HostOptions h1, h4;
    h1.pool = &one;
    h4.pool = &four;
    // Warm up caches / page in the graph.
    mineParallelSparseCore(gpm::GpmApp::T, g, 6, {}, 1, h1);

    const auto time_run = [&](const HostOptions &h) {
        const auto start = std::chrono::steady_clock::now();
        const auto r =
            mineParallelSparseCore(gpm::GpmApp::C4, g, 6, {}, 1, h);
        const double s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        return std::make_pair(r, s);
    };
    const auto [r1, t1] = time_run(h1);
    const auto [r4, t4] = time_run(h4);
    EXPECT_EQ(r1.embeddings, r4.embeddings);
    EXPECT_EQ(r1.cycles, r4.cycles);
    EXPECT_GE(t1 / t4, 2.0)
        << "1-thread " << t1 << " s vs 4-thread " << t4 << " s";
}

TEST(FourMotif, MatchesBruteForce)
{
    for (std::uint64_t seed : {5, 6}) {
        const auto g = test::randomTestGraph(18, 60, seed);
        backend::FunctionalBackend be;
        gpm::PlanExecutor executor(g, be);
        std::vector<std::uint64_t> counts;
        executor.runMany(gpm::gpmAppPlans(gpm::GpmApp::M4), &counts);
        ASSERT_EQ(counts.size(), 6u);
        using gpm::Pattern;
        const Pattern patterns[6] = {
            Pattern::path(4),   Pattern::star(3),
            Pattern::cycle(4),  Pattern::tailedTriangle(),
            Pattern::diamond(), Pattern::clique(4)};
        for (unsigned p = 0; p < 6; ++p)
            EXPECT_EQ(counts[p],
                      test::bruteForceCount(g, patterns[p], true))
                << patterns[p].name() << " seed " << seed;
    }
}

TEST(FourMotif, PartitionsAllFourSubsets)
{
    // Every connected 4-subset is exactly one of the six motifs, so
    // the motif total equals the number of connected 4-subsets.
    const auto g = test::randomTestGraph(16, 50, 7);
    backend::FunctionalBackend be;
    gpm::PlanExecutor executor(g, be);
    const auto total =
        executor.runMany(gpm::gpmAppPlans(gpm::GpmApp::M4))
            .embeddings;

    std::uint64_t connected = 0;
    const VertexId n = g.numVertices();
    for (VertexId a = 0; a < n; ++a)
        for (VertexId b = a + 1; b < n; ++b)
            for (VertexId c = b + 1; c < n; ++c)
                for (VertexId d = c + 1; d < n; ++d) {
                    gpm::Pattern induced(4);
                    const VertexId verts[4] = {a, b, c, d};
                    for (unsigned i = 0; i < 4; ++i)
                        for (unsigned j = i + 1; j < 4; ++j)
                            if (g.hasEdge(verts[i], verts[j]))
                                induced.addEdge(i, j);
                    if (induced.isConnected())
                        ++connected;
                }
    EXPECT_EQ(total, connected);
}
