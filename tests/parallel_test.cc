/**
 * @file
 * Tests for multi-core mining (Table 2: six cores): count
 * conservation across the root split, speedup over one core, load
 * balance, and the 4-motif application added on top of the paper's
 * app set.
 */

#include <gtest/gtest.h>

#include "api/machine.hh"
#include "api/parallel.hh"
#include "backend/functional_backend.hh"
#include "gpm/executor.hh"
#include "test_util.hh"

using namespace sc;
using namespace sc::api;

TEST(Parallel, CountsConservedAcrossSplit)
{
    const auto g = test::randomTestGraph(300, 3000, 91);
    Machine machine;
    const auto serial = machine.mineSparseCore(gpm::GpmApp::T, g);
    for (unsigned cores : {2u, 3u, 6u}) {
        const auto par =
            mineParallelSparseCore(gpm::GpmApp::T, g, cores);
        EXPECT_EQ(par.embeddings, serial.embeddings)
            << cores << " cores";
        EXPECT_EQ(par.perCore.size(), cores);
    }
}

TEST(Parallel, SixCoresFasterThanOne)
{
    const auto g = test::randomTestGraph(400, 6000, 92);
    const auto one = mineParallelSparseCore(gpm::GpmApp::C4, g, 1);
    const auto six = mineParallelSparseCore(gpm::GpmApp::C4, g, 6);
    EXPECT_LT(six.cycles * 2, one.cycles); // at least 2x from 6 cores
    EXPECT_GT(six.balance(), 0.3);         // interleaving balances
}

TEST(Parallel, CpuParallelMatchesCounts)
{
    const auto g = test::randomTestGraph(200, 1500, 93);
    const auto sc_par =
        mineParallelSparseCore(gpm::GpmApp::TC, g, 4);
    const auto cpu_par = mineParallelCpu(gpm::GpmApp::TC, g, 4);
    EXPECT_EQ(sc_par.embeddings, cpu_par.embeddings);
    EXPECT_LT(sc_par.cycles, cpu_par.cycles);
}

TEST(Parallel, RootRangeValidation)
{
    const auto g = test::randomTestGraph(50, 100, 94);
    backend::FunctionalBackend be;
    gpm::PlanExecutor executor(g, be);
    EXPECT_THROW(executor.setRootRange(4, 4), SimError);
    EXPECT_THROW(executor.setRootRange(0, 0), SimError);
}

TEST(FourMotif, MatchesBruteForce)
{
    for (std::uint64_t seed : {5, 6}) {
        const auto g = test::randomTestGraph(18, 60, seed);
        backend::FunctionalBackend be;
        gpm::PlanExecutor executor(g, be);
        std::vector<std::uint64_t> counts;
        executor.runMany(gpm::gpmAppPlans(gpm::GpmApp::M4), &counts);
        ASSERT_EQ(counts.size(), 6u);
        using gpm::Pattern;
        const Pattern patterns[6] = {
            Pattern::path(4),   Pattern::star(3),
            Pattern::cycle(4),  Pattern::tailedTriangle(),
            Pattern::diamond(), Pattern::clique(4)};
        for (unsigned p = 0; p < 6; ++p)
            EXPECT_EQ(counts[p],
                      test::bruteForceCount(g, patterns[p], true))
                << patterns[p].name() << " seed " << seed;
    }
}

TEST(FourMotif, PartitionsAllFourSubsets)
{
    // Every connected 4-subset is exactly one of the six motifs, so
    // the motif total equals the number of connected 4-subsets.
    const auto g = test::randomTestGraph(16, 50, 7);
    backend::FunctionalBackend be;
    gpm::PlanExecutor executor(g, be);
    const auto total =
        executor.runMany(gpm::gpmAppPlans(gpm::GpmApp::M4))
            .embeddings;

    std::uint64_t connected = 0;
    const VertexId n = g.numVertices();
    for (VertexId a = 0; a < n; ++a)
        for (VertexId b = a + 1; b < n; ++b)
            for (VertexId c = b + 1; c < n; ++c)
                for (VertexId d = c + 1; d < n; ++d) {
                    gpm::Pattern induced(4);
                    const VertexId verts[4] = {a, b, c, d};
                    for (unsigned i = 0; i < 4; ++i)
                        for (unsigned j = i + 1; j < 4; ++j)
                            if (g.hasEdge(verts[i], verts[j]))
                                induced.addEdge(i, j);
                    if (induced.isConnected())
                        ++connected;
                }
    EXPECT_EQ(total, connected);
}
