/**
 * @file
 * Tests for the stream-program static verifier (src/analysis): golden
 * diagnostics for every rule over the committed fixture programs, CFG
 * construction, the trace-level lifetime checker, the VerifyingBackend
 * decorator and the run/replay hooks, and a mutation property test
 * (breaking a known-good random program must be flagged).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_check.hh"
#include "analysis/verifier.hh"
#include "analysis/verifying_backend.hh"
#include "api/machine.hh"
#include "backend/functional_backend.hh"
#include "isa/assembler.hh"
#include "test_util.hh"
#include "trace/recorder.hh"
#include "trace/replay.hh"

using namespace sc;
using analysis::Rule;

namespace {

std::string
readFixture(const std::string &name)
{
    const std::string path =
        std::string(SPARSECORE_TEST_DATA_DIR "/scverify/") + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

analysis::VerifyReport
verifyFixture(const std::string &name)
{
    return analysis::verify(isa::assemble(readFixture(name)));
}

/** True when the report contains `rule` anchored at `pc`. */
bool
hasDiag(const analysis::VerifyReport &report, Rule rule,
        std::uint64_t pc)
{
    for (const auto &d : report.diagnostics)
        if (d.rule == rule && d.pc == pc)
            return true;
    return false;
}

} // namespace

// ---------------- golden diagnostics per rule ----------------

struct GoldenCase
{
    const char *file;
    Rule rule;
    std::uint64_t pc;
};

class GoldenDiagnostics : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenDiagnostics, FixtureDrawsExactlyItsRule)
{
    const GoldenCase &c = GetParam();
    const auto report = verifyFixture(c.file);
    EXPECT_TRUE(report.hasErrors()) << c.file;
    EXPECT_TRUE(hasDiag(report, c.rule, c.pc))
        << c.file << " expected " << analysis::ruleId(c.rule)
        << " at pc " << c.pc << "; got:\n"
        << report.format();
    // Minimal fixtures: every diagnostic they draw is the one under
    // test (no collateral noise).
    for (const auto &d : report.diagnostics)
        EXPECT_EQ(d.rule, c.rule) << c.file << ": " << d.format();
}

INSTANTIATE_TEST_SUITE_P(
    Rules, GoldenDiagnostics,
    ::testing::Values(
        GoldenCase{"use_before_read.s", Rule::UseBeforeRead, 3},
        GoldenCase{"use_after_free.s", Rule::UseAfterFree, 6},
        GoldenCase{"double_free.s", Rule::DoubleFree, 5},
        GoldenCase{"stream_leak.s", Rule::StreamLeak, 4},
        GoldenCase{"redefine_live.s", Rule::RedefineLive, 4},
        GoldenCase{"value_op_on_key_stream.s",
                   Rule::ValueOpOnKeyStream, 6},
        GoldenCase{"nestinter_without_gfr.s",
                   Rule::NestInterWithoutGfr, 4},
        GoldenCase{"pred_cycle.s", Rule::PredCycle, 9},
        GoldenCase{"stream_overflow.s", Rule::StreamOverflow, 35}),
    [](const auto &info) {
        std::string n = info.param.file;
        n.resize(n.size() - 2); // drop ".s"
        return n;
    });

TEST(Diagnostics, RuleIdsAreStable)
{
    // These ids are output format (scverify prints them; scripts
    // parse them) — changing one is a breaking change.
    EXPECT_STREQ(analysis::ruleId(Rule::UseBeforeRead),
                 "use-before-read");
    EXPECT_STREQ(analysis::ruleId(Rule::UseAfterFree),
                 "use-after-free");
    EXPECT_STREQ(analysis::ruleId(Rule::DoubleFree), "double-free");
    EXPECT_STREQ(analysis::ruleId(Rule::StreamLeak), "stream-leak");
    EXPECT_STREQ(analysis::ruleId(Rule::RedefineLive),
                 "redefine-live");
    EXPECT_STREQ(analysis::ruleId(Rule::ValueOpOnKeyStream),
                 "value-op-on-key-stream");
    EXPECT_STREQ(analysis::ruleId(Rule::NestInterWithoutGfr),
                 "nestinter-without-gfr");
    EXPECT_STREQ(analysis::ruleId(Rule::PredCycle), "pred-cycle");
    EXPECT_STREQ(analysis::ruleId(Rule::StreamOverflow),
                 "stream-overflow");
}

TEST(Diagnostics, FormatCarriesPcRuleAndSeverity)
{
    analysis::Diagnostic d;
    d.rule = Rule::UseAfterFree;
    d.severity = analysis::Severity::Error;
    d.pc = 12;
    d.message = "boom";
    const std::string s = d.format();
    EXPECT_NE(s.find("pc 12"), std::string::npos) << s;
    EXPECT_NE(s.find("error[use-after-free]"), std::string::npos) << s;
    EXPECT_NE(s.find("boom"), std::string::npos) << s;
}

// ---------------- clean programs stay clean ----------------

TEST(Verifier, BalancedProgramIsClean)
{
    const auto report = analysis::verify(isa::assemble(R"(
        LI r1, 0x1000
        LI r2, 8
        LI r3, 1
        S_READ r1, r2, r3, r0
        LI r4, 2
        S_READ r1, r2, r4, r0
        LI r5, 3
        S_INTER r3, r4, r5, r0
        S_FREE r3
        S_FREE r4
        S_FREE r5
        HALT
    )"));
    EXPECT_TRUE(report.clean()) << report.format();
}

TEST(Verifier, LoopWithUnknownSidStaysSilent)
{
    // The sid register is loop-carried (ADDI), so the constant
    // lattice widens to unknown and the lifetime rules must go
    // conservative — no false positives, no crash.
    const auto report = analysis::verify(isa::assemble(R"(
        LI r1, 0x1000
        LI r2, 8
        LI r3, 1
        LI r5, 5
    loop:
        S_READ r1, r2, r3, r0
        S_FREE r3
        ADDI r3, r3, 1
        BLT r3, r5, loop
        HALT
    )"));
    EXPECT_TRUE(report.clean()) << report.format();
}

TEST(Verifier, BranchSkippingFreeStillLeaksOnFallthroughPath)
{
    // Free on one path only: the exit state merges live|freed to Top,
    // which is conservative — but the path that halts directly after
    // the load must still flag the leak when the free is entirely
    // unreachable from it.
    const auto report = analysis::verify(isa::assemble(R"(
        LI r1, 0x1000
        LI r2, 8
        LI r3, 1
        S_READ r1, r2, r3, r0
        HALT
        S_FREE r3
        HALT
    )"));
    EXPECT_TRUE(hasDiag(report, Rule::StreamLeak, 4))
        << report.format();
}

TEST(Verifier, GfrOnOnePathOnlyFlagsNestInter)
{
    // S_LD_GFR on the taken path only: merge gives Top, not Yes, so
    // S_NESTINTER is not dominated and must be flagged.
    const auto report = analysis::verify(isa::assemble(R"(
        LI r1, 0x1000
        LI r2, 8
        LI r3, 1
        S_READ r1, r2, r3, r0
        BEQ r3, r0, skip
        S_LD_GFR r1, r1, r1
    skip:
        S_NESTINTER r3, r5
        S_FREE r3
        HALT
    )"));
    EXPECT_TRUE(hasDiag(report, Rule::NestInterWithoutGfr, 6))
        << report.format();
}

// ---------------- CFG construction ----------------

TEST(Cfg, StraightLineIsOneBlock)
{
    const auto cfg = analysis::buildCfg(isa::assemble(R"(
        LI r1, 1
        LI r2, 2
        HALT
    )"));
    ASSERT_EQ(cfg.blocks.size(), 1u);
    EXPECT_EQ(cfg.blocks[0].first, 0u);
    EXPECT_EQ(cfg.blocks[0].last, 3u);
    EXPECT_TRUE(cfg.blocks[0].succs.empty());
}

TEST(Cfg, BackwardBranchMakesLoop)
{
    const auto cfg = analysis::buildCfg(isa::assemble(R"(
        LI r1, 0
        LI r2, 5
    loop:
        ADDI r1, r1, 1
        BLT r1, r2, loop
        HALT
    )"));
    // Blocks: [0,2) entry, [2,4) loop body, [4,5) halt.
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.blocks[0].succs, std::vector<std::uint32_t>{1});
    EXPECT_EQ(cfg.blocks[1].succs, (std::vector<std::uint32_t>{2, 1}));
    EXPECT_TRUE(cfg.blocks[2].succs.empty());
}

TEST(Cfg, BranchPastProgramIsExitEdge)
{
    const auto cfg = analysis::buildCfg(isa::assemble(R"(
        LI r1, 1
        BEQ r1, r0, 100
        HALT
    )"));
    ASSERT_EQ(cfg.blocks.size(), 2u);
    // The out-of-range target contributes no successor; only the
    // fallthrough edge to the HALT block remains.
    EXPECT_EQ(cfg.blocks[0].succs, std::vector<std::uint32_t>{1});
}

// ---------------- trace-level lifetime checking ----------------

namespace {

/** Record a handful of backend events and return the trace. */
template <typename Fn>
trace::Trace
record(Fn &&fn)
{
    trace::TraceRecorder rec;
    rec.begin();
    fn(rec);
    return rec.takeTrace();
}

const std::vector<Key> someKeys{1, 2, 3};

} // namespace

TEST(TraceCheck, BalancedTraceIsClean)
{
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        const auto b = rec.streamLoad(0x2000, 3, 0, someKeys);
        const auto c =
            rec.setOp(streams::SetOpKind::Intersect, a, b, someKeys,
                      someKeys, noBound, someKeys, 0x3000);
        rec.streamFree(a);
        rec.streamFree(b);
        rec.streamFree(c);
    });
    const auto report = analysis::verifyTrace(tr);
    EXPECT_TRUE(report.clean()) << report.format();
}

TEST(TraceCheck, LeakedStreamIsFlagged)
{
    const auto tr = record([&](trace::TraceRecorder &rec) {
        rec.streamLoad(0x1000, 3, 0, someKeys);
    });
    const auto report = analysis::verifyTrace(tr);
    ASSERT_EQ(report.diagnostics.size(), 1u) << report.format();
    EXPECT_EQ(report.diagnostics[0].rule, Rule::StreamLeak);
}

TEST(TraceCheck, DoubleFreeIsFlaggedWithEventIndex)
{
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        rec.streamFree(a);
        rec.streamFree(a);
    });
    const auto report = analysis::verifyTrace(tr);
    ASSERT_EQ(report.diagnostics.size(), 1u) << report.format();
    EXPECT_EQ(report.diagnostics[0].rule, Rule::DoubleFree);
    EXPECT_EQ(report.diagnostics[0].pc, 2u); // third event
}

TEST(TraceCheck, ValueOpOnKeyLoadedStreamIsFlagged)
{
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        const auto b =
            rec.streamLoadKv(0x2000, 0x4000, 3, 0, someKeys);
        rec.valueIntersect(a, b, someKeys, someKeys, 0x3000, 0x4000,
                           {}, {});
        rec.streamFree(a);
        rec.streamFree(b);
    });
    const auto report = analysis::verifyTrace(tr);
    ASSERT_EQ(report.diagnostics.size(), 1u) << report.format();
    EXPECT_EQ(report.diagnostics[0].rule, Rule::ValueOpOnKeyStream);
}

TEST(TraceCheck, OverflowIsAWarningNotAnError)
{
    // Trace-level overflow is a spill hazard (§4.1), not an error:
    // the report must carry it as a warning and stay error-free.
    analysis::StreamLifetimeChecker::Options options;
    options.maxLiveStreams = 2;
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        const auto b = rec.streamLoad(0x2000, 3, 0, someKeys);
        const auto c = rec.streamLoad(0x3000, 3, 0, someKeys);
        rec.streamFree(a);
        rec.streamFree(b);
        rec.streamFree(c);
    });
    const auto report = analysis::verifyTrace(tr, options);
    EXPECT_FALSE(report.hasErrors()) << report.format();
    EXPECT_EQ(report.warningCount(), 1u) << report.format();
}

// ---------------- the replay + Machine::run hooks ----------------

TEST(VerifyHooks, ReplayRejectsBadTraceWhenVerifying)
{
    const auto tr = record([&](trace::TraceRecorder &rec) {
        const auto a = rec.streamLoad(0x1000, 3, 0, someKeys);
        rec.streamFree(a);
        rec.streamFree(a);
    });
    backend::FunctionalBackend be;
    EXPECT_THROW(trace::replay(tr, be, /*verify=*/true),
                 analysis::VerifyError);
    // Opting out must execute normally (replay tolerates the double
    // free at functional level or faults in the backend — here the
    // functional backend ignores frees of unknown handles).
    backend::FunctionalBackend be2;
    EXPECT_NO_THROW(trace::replay(tr, be2, /*verify=*/false));
}

TEST(VerifyHooks, VerifyingBackendThrowsAtTheFaultingCall)
{
    backend::FunctionalBackend inner;
    analysis::VerifyingBackend vbe(inner);
    EXPECT_EQ(vbe.name(), "verify(functional)");
    vbe.begin();
    const auto a = vbe.streamLoad(0x1000, 3, 0, someKeys);
    vbe.streamFree(a);
    EXPECT_THROW(vbe.streamFree(a), analysis::VerifyError);
}

TEST(VerifyHooks, VerifyingBackendFlagsLeakAtFinish)
{
    backend::FunctionalBackend inner;
    analysis::VerifyingBackend vbe(inner);
    vbe.begin();
    vbe.streamLoad(0x1000, 3, 0, someKeys);
    EXPECT_THROW(vbe.finish(), analysis::VerifyError);
}

TEST(VerifyHooks, MachineRunVerifiedMatchesUnverified)
{
    const auto g = test::randomTestGraph(60, 400, 9);
    const api::Machine machine;

    api::RunOptions verified;
    verified.verify = true;
    api::RunOptions unverified;
    unverified.verify = false;

    for (const auto substrate :
         {api::Substrate::Cpu, api::Substrate::SparseCore}) {
        const auto v = machine.run(
            api::RunRequest::gpm(gpm::GpmApp::TC, g, verified),
            substrate);
        const auto u = machine.run(
            api::RunRequest::gpm(gpm::GpmApp::TC, g, unverified),
            substrate);
        // The wrapper must be timing-transparent.
        EXPECT_EQ(v.cycles, u.cycles);
        EXPECT_EQ(v.functionalResult, u.functionalResult);
    }
}

// ---------------- mutation property test ----------------

namespace {

/** One op of a structured random straight-line stream program. */
struct GenOp
{
    enum class Kind { Load, SetOp, Free } kind;
    std::uint64_t sid = 0;      // Load/Free: the sid
    std::uint64_t a = 0, b = 0; // SetOp: operand sids (sid = output)
};

std::string
materialize(const std::vector<GenOp> &ops)
{
    std::ostringstream out;
    out << "LI r1, 0x1000\nLI r2, 8\n";
    for (const GenOp &op : ops) {
        switch (op.kind) {
          case GenOp::Kind::Load:
            out << "LI r3, " << op.sid << "\n"
                << "S_READ r1, r2, r3, r0\n";
            break;
          case GenOp::Kind::SetOp:
            out << "LI r4, " << op.a << "\nLI r5, " << op.b << "\n"
                << "LI r6, " << op.sid << "\n"
                << "S_INTER r4, r5, r6, r0\n";
            break;
          case GenOp::Kind::Free:
            out << "LI r7, " << op.sid << "\nS_FREE r7\n";
            break;
        }
    }
    out << "HALT\n";
    return out.str();
}

/** Balanced random program: every defined sid is freed exactly once,
 *  set ops only read live sids, never more than 8 live at once. */
std::vector<GenOp>
generateCleanOps(std::mt19937 &rng)
{
    std::vector<GenOp> ops;
    std::vector<std::uint64_t> live;
    std::uint64_t next_sid = 1;
    const unsigned steps =
        8 + static_cast<unsigned>(rng() % 8);
    for (unsigned i = 0; i < steps; ++i) {
        const unsigned choice = rng() % 3;
        if (choice == 0 || live.size() < 2) {
            if (live.size() >= 8)
                continue;
            ops.push_back({GenOp::Kind::Load, next_sid, 0, 0});
            live.push_back(next_sid++);
        } else if (choice == 1) {
            if (live.size() >= 8)
                continue;
            const auto a = live[rng() % live.size()];
            const auto b = live[rng() % live.size()];
            ops.push_back({GenOp::Kind::SetOp, next_sid, a, b});
            live.push_back(next_sid++);
        } else {
            const auto idx = rng() % live.size();
            ops.push_back({GenOp::Kind::Free, live[idx], 0, 0});
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        }
    }
    for (const auto sid : live)
        ops.push_back({GenOp::Kind::Free, sid, 0, 0});
    return ops;
}

bool
reportsRule(const analysis::VerifyReport &report, Rule rule)
{
    for (const auto &d : report.diagnostics)
        if (d.rule == rule)
            return true;
    return false;
}

} // namespace

TEST(VerifierProperty, MutatingACleanProgramIsFlagged)
{
    std::mt19937 rng(1234);
    for (unsigned iter = 0; iter < 50; ++iter) {
        const auto ops = generateCleanOps(rng);
        const auto base =
            analysis::verify(isa::assemble(materialize(ops)));
        ASSERT_TRUE(base.clean())
            << "iteration " << iter << ":\n"
            << materialize(ops) << base.format();

        // Mutation 1: drop one free -> that sid must leak.
        std::vector<std::size_t> frees;
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (ops[i].kind == GenOp::Kind::Free)
                frees.push_back(i);
        ASSERT_FALSE(frees.empty());
        auto dropped = ops;
        dropped.erase(dropped.begin() +
                      static_cast<std::ptrdiff_t>(
                          frees[rng() % frees.size()]));
        const auto leak =
            analysis::verify(isa::assemble(materialize(dropped)));
        EXPECT_TRUE(reportsRule(leak, Rule::StreamLeak))
            << "iteration " << iter << ":\n"
            << materialize(dropped) << leak.format();

        // Mutation 2: free an already fully-freed sid again at the
        // end -> double-free.
        auto doubled = ops;
        doubled.push_back(
            {GenOp::Kind::Free, ops[frees[0]].sid, 0, 0});
        const auto dfree =
            analysis::verify(isa::assemble(materialize(doubled)));
        EXPECT_TRUE(reportsRule(dfree, Rule::DoubleFree))
            << "iteration " << iter << ":\n"
            << materialize(doubled) << dfree.format();
    }
}
