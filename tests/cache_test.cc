/**
 * @file
 * Semantics of the shared artifact-lifecycle primitive
 * (common/cache.hh): build-once, LRU eviction under a byte budget,
 * pinning of in-use values, in-flight build deduplication under
 * concurrency, and exception propagation. The ArtifactStore and the
 * dataset registry both ride on these guarantees.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cache.hh"

using namespace sc;

namespace {

using Cache = LruCache<std::string, int>;

Cache::ValuePtr
boxed(int v)
{
    return std::make_shared<const int>(v);
}

/** Bytes function charging a fixed 10 bytes per entry. */
std::size_t
tenBytes(const int &)
{
    return 10;
}

} // namespace

TEST(LruCache, BuildsOnceThenHits)
{
    Cache cache;
    int builds = 0;
    const auto build = [&] {
        ++builds;
        return boxed(42);
    };
    EXPECT_EQ(*cache.getOrBuild("k", build), 42);
    EXPECT_EQ(*cache.getOrBuild("k", build), 42);
    EXPECT_EQ(builds, 1);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.entries, 1u);
}

TEST(LruCache, FindDoesNotBuild)
{
    Cache cache;
    EXPECT_EQ(cache.find("missing"), nullptr);
    cache.getOrBuild("k", [] { return boxed(7); });
    const auto v = cache.find("k");
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 7);
}

TEST(LruCache, EvictsLeastRecentlyUsedAtCapacity)
{
    // 10 bytes per entry, 25-byte budget: two entries fit, the third
    // pushes the least recently used one out.
    Cache cache(25, tenBytes);
    cache.getOrBuild("a", [] { return boxed(1); });
    cache.getOrBuild("b", [] { return boxed(2); });
    cache.getOrBuild("a", [] { return boxed(1); }); // a is now MRU
    cache.getOrBuild("c", [] { return boxed(3); }); // evicts b
    EXPECT_EQ(cache.find("b"), nullptr);
    EXPECT_NE(cache.find("a"), nullptr);
    EXPECT_NE(cache.find("c"), nullptr);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.bytes, 20u);
}

TEST(LruCache, PinnedEntriesSurviveEviction)
{
    Cache cache(15, tenBytes); // budget for one entry
    // Hold the first value: the entry is pinned and must survive any
    // amount of pressure, even while the cache runs over budget.
    const auto pinned = cache.getOrBuild("pin", [] { return boxed(1); });
    cache.getOrBuild("b", [] { return boxed(2); });
    cache.getOrBuild("c", [] { return boxed(3); });
    EXPECT_NE(cache.find("pin"), nullptr);
    EXPECT_GE(cache.stats().bytes, 10u);
    // Release the pin: the next eviction pass may drop it.
    const int value = *pinned;
    EXPECT_EQ(value, 1);
    // (pinned still held here, so setCapacity(0 bytes) keeps it)
    cache.setCapacity(5);
    EXPECT_NE(cache.find("pin"), nullptr);
}

TEST(LruCache, ReleasedPinIsEvictable)
{
    Cache cache(15, tenBytes);
    {
        const auto held =
            cache.getOrBuild("a", [] { return boxed(1); });
        cache.getOrBuild("b", [] { return boxed(2); });
        // Over budget with "a" pinned: an eviction pass drops the
        // unpinned "b" instead.
        cache.setCapacity(15);
        EXPECT_NE(cache.find("a"), nullptr);
        EXPECT_EQ(cache.find("b"), nullptr);
    }
    // Pin released: the next pass can evict "a".
    cache.getOrBuild("c", [] { return boxed(3); });
    EXPECT_EQ(cache.find("a"), nullptr);
    EXPECT_NE(cache.find("c"), nullptr);
}

TEST(LruCache, BuilderExceptionLeavesNoEntry)
{
    Cache cache;
    EXPECT_THROW(cache.getOrBuild(
                     "k",
                     []() -> Cache::ValuePtr {
                         throw std::runtime_error("build failed");
                     }),
                 std::runtime_error);
    // The failed build left nothing behind; a retry builds again.
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(*cache.getOrBuild("k", [] { return boxed(9); }), 9);
}

TEST(LruCache, ConcurrentRequestsBuildOnce)
{
    // Many threads racing on few keys: each key's builder runs
    // exactly once; everyone gets the shared value.
    Cache cache;
    constexpr int kThreads = 8;
    constexpr int kKeys = 4;
    constexpr int kRounds = 50;
    std::atomic<int> builds{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int r = 0; r < kRounds; ++r) {
                const int k = r % kKeys;
                const auto v = cache.getOrBuild(
                    "key" + std::to_string(k), [&] {
                        ++builds;
                        return boxed(k);
                    });
                EXPECT_EQ(*v, k);
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(builds.load(), kKeys);
    const CacheStats s = cache.stats();
    EXPECT_EQ(s.misses, static_cast<std::uint64_t>(kKeys));
    EXPECT_EQ(s.hits + s.misses,
              static_cast<std::uint64_t>(kThreads) * kRounds);
}

TEST(LruCache, ClearDropsEntriesButKeepsExternalRefs)
{
    Cache cache;
    const auto held = cache.getOrBuild("k", [] { return boxed(5); });
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().bytes, 0u);
    EXPECT_EQ(*held, 5); // external shared_ptr stays valid
}
