/**
 * @file
 * Tests for the consolidated environment-knob loader
 * (common/config.hh): defaults, parsing, precedence of the injected
 * lookup, strict rejection of malformed values on load-bearing knobs
 * and warn-and-fall-back on tuning knobs.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "common/config.hh"
#include "common/logging.hh"

using namespace sc;

namespace {

/** loadConfig over a fixed environment map. */
Config
load(const std::map<std::string, std::string> &env)
{
    return loadConfig(
        [&env](const char *name) -> std::optional<std::string> {
            const auto it = env.find(name);
            if (it == env.end())
                return std::nullopt;
            return it->second;
        });
}

} // namespace

TEST(Config, Defaults)
{
    const Config cfg = load({});
    EXPECT_EQ(cfg.replay, "auto");
    EXPECT_EQ(cfg.jobSched, "affinity");
    EXPECT_FALSE(cfg.verify.has_value());
    EXPECT_TRUE(cfg.artifactCache);
    EXPECT_EQ(cfg.artifactCacheBytes, std::size_t{1} << 30);
    EXPECT_EQ(cfg.hostThreads, 0u);
    EXPECT_EQ(cfg.forceKernel, "auto");
    EXPECT_EQ(cfg.forceSetindex, "auto");
    EXPECT_EQ(cfg.benchDir, "bench_results");
    EXPECT_FALSE(cfg.benchSmoke);
}

TEST(Config, ParsesEveryKnob)
{
    const Config cfg = load({
        {"SC_REPLAY", "event"},
        {"SC_JOB_SCHED", "fifo"},
        {"SC_VERIFY", "1"},
        {"SC_ARTIFACT_CACHE", "off"},
        {"SC_ARTIFACT_CACHE_BYTES", "1048576"},
        {"SC_HOST_THREADS", "8"},
        {"SC_FORCE_KERNEL", "scalar"},
        {"SC_FORCE_SETINDEX", "bitmap"},
        {"SC_BENCH_DIR", "/tmp/b"},
        {"SC_BENCH_SMOKE", "1"},
    });
    EXPECT_EQ(cfg.replay, "event");
    EXPECT_EQ(cfg.jobSched, "fifo");
    ASSERT_TRUE(cfg.verify.has_value());
    EXPECT_TRUE(*cfg.verify);
    EXPECT_FALSE(cfg.artifactCache);
    EXPECT_EQ(cfg.artifactCacheBytes, 1048576u);
    EXPECT_EQ(cfg.hostThreads, 8u);
    EXPECT_EQ(cfg.forceKernel, "scalar");
    EXPECT_EQ(cfg.forceSetindex, "bitmap");
    EXPECT_EQ(cfg.benchDir, "/tmp/b");
    EXPECT_TRUE(cfg.benchSmoke);
}

TEST(Config, VerifyZeroDisables)
{
    const Config cfg = load({{"SC_VERIFY", "0"}});
    ASSERT_TRUE(cfg.verify.has_value());
    EXPECT_FALSE(*cfg.verify);
}

TEST(Config, LoadBearingKnobsRejectBadValues)
{
    // A typo in SC_REPLAY or the cache knobs must fail loudly, not
    // silently run a different experiment.
    EXPECT_THROW(load({{"SC_REPLAY", "bytecod"}}), SimError);
    EXPECT_THROW(load({{"SC_JOB_SCHED", "lifo"}}), SimError);
    EXPECT_THROW(load({{"SC_ARTIFACT_CACHE", "maybe"}}), SimError);
    EXPECT_THROW(load({{"SC_ARTIFACT_CACHE_BYTES", "1GB"}}), SimError);
}

TEST(Config, TuningKnobsWarnAndFallBack)
{
    // Host-side tuning knobs never change simulated results, so a
    // bad value degrades to the default instead of aborting.
    EXPECT_EQ(load({{"SC_HOST_THREADS", "0"}}).hostThreads, 0u);
    EXPECT_EQ(load({{"SC_HOST_THREADS", "99999"}}).hostThreads, 0u);
    EXPECT_EQ(load({{"SC_HOST_THREADS", "four"}}).hostThreads, 0u);
    EXPECT_EQ(load({{"SC_FORCE_KERNEL", "avx512"}}).forceKernel,
              "auto");
    EXPECT_EQ(load({{"SC_FORCE_SETINDEX", "btree"}}).forceSetindex,
              "auto");
}

TEST(Config, ProcessConfigIsStable)
{
    // config() is read-once: two calls return the same object.
    EXPECT_EQ(&config(), &config());
}

TEST(Config, DescribeCoversEveryKnob)
{
    const auto knobs = describeConfig();
    ASSERT_EQ(knobs.size(), 10u);
    for (const ConfigKnob &k : knobs) {
        EXPECT_EQ(k.name.rfind("SC_", 0), 0u) << k.name;
        EXPECT_FALSE(k.value.empty()) << k.name;
        EXPECT_FALSE(k.help.empty()) << k.name;
        EXPECT_TRUE(k.source == "env" || k.source == "default")
            << k.name;
    }
}
